#!/usr/bin/env python
"""Writing the paper's benchmark as an MPI-style program (simmpi).

The `repro.simmpi` layer lets you express workloads the way the paper's
benchmarks were written — as per-rank MPI programs — and execute them in
virtual time over the contention model.  This script:

1. re-implements Experiment A (bisection pairing, rounds of chunked
   exchanges with the antipodal partner) as a rank program and shows it
   reproduces the flow-level harness's times and the ×2 geometry gap;
2. writes a naive vs. a communication-avoiding stencil exchange and
   compares them across geometries — the kind of what-if the library is
   meant to enable.

Run:  python examples/simmpi_pingpong.py
"""

from __future__ import annotations

from repro.allocation import PartitionGeometry
from repro.experiments.pairing import PairingParameters, run_pairing
from repro.simmpi import Barrier, Compute, SendRecv, VirtualMpi


def pairing_program(torus, chunk_gb: float, rounds: int):
    """The paper's Experiment A as a rank program."""
    verts = list(torus.vertices())
    index = {v: i for i, v in enumerate(verts)}

    def program(rank, size):
        peer = index[torus.antipode(verts[rank])]
        for _ in range(rounds):
            yield SendRecv(peer=peer, gb=chunk_gb)

    return program


def experiment_a() -> None:
    print("=" * 70)
    print("1. Experiment A as an MPI program (2 rounds, 1 midplane sizes)")
    print("=" * 70)
    params = PairingParameters(rounds=2)
    for dims in ((4, 1, 1, 1), (2, 2, 1, 1)):
        geo = PartitionGeometry(dims)
        torus = geo.bgq_network()
        world = VirtualMpi(torus, link_bandwidth=params.link_bandwidth)
        prog = pairing_program(
            torus,
            chunk_gb=params.chunks_per_round * params.chunk_gb,
            rounds=params.rounds,
        )
        simmpi_time = world.run(prog).time
        harness_time = run_pairing(geo, params).time_seconds
        print(f"  {geo.label():<14} simmpi {simmpi_time:6.2f} s   "
              f"flow-level harness {harness_time:6.2f} s")
    print("  -> the two independent execution models agree exactly.")


def stencil_program(torus, halo_gb: float, steps: int):
    """A 1-D halo exchange along the partition's longest dimension.

    Each step computes locally, then exchanges halos with both ring
    neighbors.  Like real MPI code, the exchanges must be *phased*
    (even coordinates exchange right-then-left, odd ones left-then-
    right) or every rank waits on a partner that never answers — the
    engine's deadlock detector catches the unphased variant.
    """
    verts = list(torus.vertices())
    index = {v: i for i, v in enumerate(verts)}
    a = torus.dims[0]

    def neighbor(v, delta):
        return index[((v[0] + delta) % a,) + v[1:]]

    def program(rank, size):
        v = verts[rank]
        right = neighbor(v, +1)
        left = neighbor(v, -1)
        first, second = (
            (right, left) if v[0] % 2 == 0 else (left, right)
        )
        for _ in range(steps):
            yield Compute(seconds=0.02)
            yield SendRecv(peer=first, gb=halo_gb)
            yield SendRecv(peer=second, gb=halo_gb)
            yield Barrier()

    return program


def stencil_comparison() -> None:
    print()
    print("=" * 70)
    print("2. Custom workload: halo exchange across geometries")
    print("=" * 70)
    for dims in ((4, 1, 1, 1), (2, 2, 1, 1)):
        geo = PartitionGeometry(dims)
        torus = geo.bgq_network()
        world = VirtualMpi(torus)
        t = world.run(
            stencil_program(torus, halo_gb=0.1, steps=5)
        ).time
        print(f"  {geo.label():<14} 5-step halo exchange: {t:6.3f} s")
    print("  -> nearest-neighbor halos don't cross the bisection, so the")
    print("     geometry doesn't matter — matching the paper's framing")
    print("     that only contention-bound (cut-crossing) workloads gain.")


def main() -> None:
    experiment_a()
    stencil_comparison()


if __name__ == "__main__":
    main()
