#!/usr/bin/env python
"""Bisection pairing experiment — Figures 3 and 4 on the simulator.

Reproduces the paper's Experiment A (furthest-node ping-pong) on both
machines' geometry pairs, with a reduced round count so the script runs
in about a minute.  Also demonstrates the lower-level simulator API:
custom traffic patterns, routing tie-breaks, and per-flow rates.

Run:  python examples/pairing_contention.py
"""

from __future__ import annotations

from repro.allocation import PartitionGeometry
from repro.analysis.report import render_series
from repro.experiments.pairing import PairingParameters, run_pairing
from repro.netsim import (
    LinkNetwork,
    bisection_pairing,
    dimension_ordered_route,
    max_min_fair_rates,
    tornado,
)
from repro.topology import Torus

PARAMS = PairingParameters(rounds=2)  # paper uses 26; 2 keeps this quick

MIRA_ROWS = [
    (4, (4, 1, 1, 1), (2, 2, 1, 1)),
    (8, (4, 2, 1, 1), (2, 2, 2, 1)),
    (16, (4, 4, 1, 1), (2, 2, 2, 2)),
    (24, (4, 3, 2, 1), (3, 2, 2, 2)),
]
JUQUEEN_ROWS = [
    (4, (4, 1, 1, 1), (2, 2, 1, 1)),
    (6, (6, 1, 1, 1), (3, 2, 1, 1)),
    (8, (4, 2, 1, 1), (2, 2, 2, 1)),
    (12, (6, 2, 1, 1), (3, 2, 2, 1)),
    (16, (4, 2, 2, 1), (2, 2, 2, 2)),
]


def run_machine(name: str, rows) -> None:
    print("=" * 70)
    print(f"{name}: bisection pairing, {PARAMS.rounds} rounds of "
          f"{PARAMS.chunks_per_round} x {PARAMS.chunk_gb} GB chunks")
    print("=" * 70)
    worse_series: dict[int, float] = {}
    better_series: dict[int, float] = {}
    for midplanes, worse_dims, better_dims in rows:
        worse = run_pairing(PartitionGeometry(worse_dims), PARAMS)
        better = run_pairing(PartitionGeometry(better_dims), PARAMS)
        worse_series[midplanes] = worse.time_seconds
        better_series[midplanes] = better.time_seconds
        print(f"  {midplanes:>2} midplanes: "
              f"{PartitionGeometry(worse_dims).label():<14} "
              f"{worse.time_seconds:6.2f} s   vs   "
              f"{PartitionGeometry(better_dims).label():<14} "
              f"{better.time_seconds:6.2f} s   "
              f"(x{worse.time_seconds / better.time_seconds:.2f})")
    print()
    print(render_series(
        {"worse geometry": worse_series, "better geometry": better_series},
        y_format="{:.2f}",
    ))
    print()


def low_level_demo() -> None:
    print("=" * 70)
    print("Low-level simulator API: adversarial tornado traffic")
    print("=" * 70)
    torus = Torus((8, 4, 4))
    net = LinkNetwork(torus, link_bandwidth=2.0)
    for pattern_name, pairs in (
        ("antipodal pairing", bisection_pairing(torus)),
        ("tornado (dim 0)", tornado(torus, dim=0)),
    ):
        paths = [
            net.path_to_links(dimension_ordered_route(torus, s, d))
            for s, d in pairs
        ]
        rates = max_min_fair_rates(paths, net.capacities)
        print(f"  {pattern_name:<20} per-flow rate "
              f"{rates.min():.3f}..{rates.max():.3f} GB/s")


def main() -> None:
    run_machine("Mira (Figure 3)", MIRA_ROWS)
    run_machine("JUQUEEN (Figure 4)", JUQUEEN_ROWS)
    low_level_demo()


if __name__ == "__main__":
    main()
