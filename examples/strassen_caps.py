#!/usr/bin/env python
"""Fast matrix multiplication — real Strassen–Winograd + the CAPS model.

Two halves:

1. run the actual Strassen–Winograd recursion on random matrices,
   verify it against NumPy, and count its flops vs the classical
   algorithm;
2. model a CAPS (communication-avoiding parallel Strassen) execution on
   two 4-midplane Mira geometries and show how partition shape changes
   the communication time but not the computation time — a scaled-down
   Figure 5.

Run:  python examples/strassen_caps.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.allocation import PartitionGeometry
from repro.experiments.matmul import run_caps_on_geometry
from repro.kernels import (
    CapsConfig,
    caps_steps,
    classical_flop_count,
    strassen_flop_count,
    strassen_winograd,
)


def sequential_demo() -> None:
    print("=" * 70)
    print("1. Sequential Strassen-Winograd (real computation)")
    print("=" * 70)
    n = 512
    rng = np.random.default_rng(42)
    A = rng.standard_normal((n, n))
    B = rng.standard_normal((n, n))

    t0 = time.perf_counter()
    C_fast = strassen_winograd(A, B, cutoff=64)
    t_fast = time.perf_counter() - t0
    t0 = time.perf_counter()
    C_ref = A @ B
    t_ref = time.perf_counter() - t0

    err = np.abs(C_fast - C_ref).max()
    levels = 3  # 512 -> 64 cutoff
    print(f"  n = {n}: max |error| vs BLAS = {err:.2e}")
    print(f"  strassen_winograd: {t_fast * 1e3:7.1f} ms   "
          f"numpy @: {t_ref * 1e3:7.1f} ms")
    print(f"  flops at {levels} recursion levels: "
          f"{strassen_flop_count(n, levels) / 1e6:.1f} M vs classical "
          f"{classical_flop_count(n) / 1e6:.1f} M "
          f"({strassen_flop_count(n, levels) / classical_flop_count(n):.2f}x)")


def caps_schedule_demo() -> None:
    print()
    print("=" * 70)
    print("2. CAPS communication schedule (paper Table 3, 4-midplane row)")
    print("=" * 70)
    config = CapsConfig(n=32928, num_ranks=31213)
    print(f"  ranks = {config.num_ranks} = {config.f} x 7^{config.k}, "
          f"n = {config.n}")
    for step in caps_steps(config):
        print(f"  BFS step {step.level}: {step.group_size}-way split, "
              f"partner stride {step.stride:>5} ranks, "
              f"{step.bytes_per_rank / 2**20:6.2f} MiB sent per rank")


def geometry_comparison() -> None:
    print()
    print("=" * 70)
    print("3. Geometry sensitivity of CAPS (simulated, scaled Figure 5)")
    print("=" * 70)
    for dims in ((4, 1, 1, 1), (2, 2, 1, 1)):
        geo = PartitionGeometry(dims)
        res = run_caps_on_geometry(
            geo, num_ranks=4802, matrix_dim=9408, max_cores=4
        )
        print(f"  {geo.label():<14} comm {res.communication_time:7.4f} s   "
              f"compute {res.computation_time:7.4f} s   "
              f"total {res.total_time:7.4f} s")
    print("  -> communication shrinks on the balanced geometry;")
    print("     computation is identical (as the paper observes).")


def main() -> None:
    sequential_demo()
    caps_schedule_demo()
    geometry_comparison()


if __name__ == "__main__":
    main()
