#!/usr/bin/env python
"""Fault injection: degraded links, mid-run failures, robust geometry.

The paper's bisection analysis assumes a healthy torus; real machines
run degraded.  This script walks the `repro.faults` subsystem:

1. a rank program on a small torus with a pre-existing failed link —
   routes silently avoid it (fault-aware routing);
2. the same program with a link *dying mid-transfer* — the in-flight
   flow is rerouted over surviving links, visible in
   `RunResult.reroutes`;
3. a fault that disconnects the partition — the run aborts with
   `PartitionDisconnectedError` carrying a structured `FaultReport`
   (never a misleading deadlock);
4. the degraded-bisection study: Mira's default vs optimal 16-midplane
   geometry under sampled link failures — the ×2 ranking is robust.

Run:  python examples/fault_injection.py
"""

from __future__ import annotations

from repro.experiments.faultstudy import degraded_bisection_study
from repro.faults import (
    FaultEvent,
    FaultSet,
    PartitionDisconnectedError,
    random_link_failures,
)
from repro.machines.catalog import MIRA
from repro.simmpi import Recv, Send, VirtualMpi
from repro.topology import Torus


def transfer_program(rank, size):
    """Rank 0 streams 8 GB to the antipodal rank of an 8-ring."""
    if rank == 0:
        yield Send(dst=4, gb=8.0)
    elif rank == 4:
        yield Recv(src=0)


def static_fault() -> None:
    print("=" * 70)
    print("1. Pre-existing failed link: routing avoids it")
    print("=" * 70)
    ring = Torus((8,))
    healthy = VirtualMpi(ring, link_bandwidth=2.0).run(transfer_program)
    faults = FaultSet(failed_links=[((1,), (2,))])
    faulted = VirtualMpi(
        ring, link_bandwidth=2.0, faults=faults
    ).run(transfer_program)
    print(f"healthy 0->4 transfer : {healthy.time:.2f} s")
    print(f"with (1)-(2) down     : {faulted.time:.2f} s "
          "(wraps the other way; bandwidth model, same rate)")
    print()


def midrun_failure() -> None:
    print("=" * 70)
    print("2. Link dies mid-transfer: in-flight flow rerouted")
    print("=" * 70)
    ring = Torus((8,))
    event = FaultEvent(
        time=1.0, faults=FaultSet(failed_links=[((1,), (2,))])
    )
    world = VirtualMpi(ring, link_bandwidth=2.0, fault_events=[event])
    res = world.run(transfer_program)
    print(f"virtual time : {res.time:.2f} s")
    print(f"reroutes     : {res.reroutes} "
          "(remaining volume restarted on the surviving path)")
    print()


def disconnection() -> None:
    print("=" * 70)
    print("3. Partition disconnected: structured abort, not a deadlock")
    print("=" * 70)
    ring = Torus((8,))
    # Sever both links around node (0,) at t = 0.5 s.
    cut = FaultSet(failed_links=[((0,), (1,)), ((7,), (0,))])
    world = VirtualMpi(
        ring, link_bandwidth=2.0,
        fault_events=[FaultEvent(time=0.5, faults=cut)],
    )
    try:
        world.run(transfer_program)
    except PartitionDisconnectedError as exc:
        print(f"aborted      : {exc}")
        print(f"report       : t={exc.report.time} s, "
              f"{len(exc.report.aborted_flows)} flow(s) lost, "
              f"{len(exc.report.failed_links)} directed link(s) down")
    print()


def robustness_study() -> None:
    print("=" * 70)
    print("4. Degraded-bisection study: Mira 16 midplanes")
    print("=" * 70)
    rows = degraded_bisection_study(
        MIRA, 16, max_failures=6, trials=10, seed=0
    )
    print(f"{'k':>2}  {'default':>9}  {'optimal':>9}  stable")
    for r in rows:
        print(
            f"{r.failures:>2}  {r.default_mean_bw:>9.1f}  "
            f"{r.optimal_mean_bw:>9.1f}  "
            f"{100 * r.ranking_stable_fraction:.0f}%"
        )
    print("\nThe Table 1 ranking (2 x 2 x 2 x 2 over 4 x 4 x 1 x 1) "
          "never flips.")


def main() -> None:
    static_fault()
    midrun_failure()
    disconnection()
    robustness_study()
    # Bonus: a whole dimension-plane outage still leaves tori connected.
    t = Torus((4, 4))
    from repro.faults import dimension_outage, surviving_topology
    from repro.topology.base import is_connected_subset

    outage = dimension_outage(t, 0, seed=1)
    view = surviving_topology(t, outage)
    assert is_connected_subset(view, view.vertices())
    print("(and a full dimension-plane outage keeps a 2-D torus "
          "connected — the wrap links survive)")


if __name__ == "__main__":
    main()
