#!/usr/bin/env python
"""Distributed matrix multiplication with real data on virtual hardware.

The flagship demonstration of the whole stack: a SUMMA-style distributed
matmul written as a simmpi rank program, where ranks exchange *actual
NumPy blocks* (broadcast along grid rows and columns), compute real
partial products, and the engine charges virtual network time over a
Blue Gene/Q partition.  We get two things at once:

* **numerical correctness** — the distributed result equals ``A @ B``;
* **performance prediction** — the same program, run on two equal-size
  partition geometries, shows how much of its wall-clock the partition
  shape controls.

Run:  python examples/simmpi_distributed_matmul.py
"""

from __future__ import annotations

import numpy as np

from repro.allocation import PartitionGeometry
from repro.netsim.embedding import block_embedding
from repro.simmpi import Compute, VirtualMpi
from repro.kernels.costmodel import FLOP_RATE_PER_RANK

GRID = 8            # 8x8 rank grid = 64 ranks
N = 1024            # global matrix dimension
WORD = 8            # bytes per element


def run_on_geometry(dims) -> tuple[float, float]:
    geo = PartitionGeometry(dims)
    torus = geo.bgq_network()
    ranks = GRID * GRID
    emb = block_embedding(torus, ranks, node_order="tedcba")

    rng = np.random.default_rng(7)
    nb = N // GRID
    A = rng.standard_normal((N, N))
    B = rng.standard_normal((N, N))
    A_blocks = {
        (i, k): A[i * nb:(i + 1) * nb, k * nb:(k + 1) * nb]
        for i in range(GRID) for k in range(GRID)
    }
    B_blocks = {
        (k, j): B[k * nb:(k + 1) * nb, j * nb:(j + 1) * nb]
        for k in range(GRID) for j in range(GRID)
    }
    C_out: dict[tuple[int, int], np.ndarray] = {}

    # Row/column broadcasts need subgroup communicators; emulate them by
    # running the broadcasts through per-subgroup worlds is overkill —
    # instead exploit that broadcast_ring only talks to local +-1
    # neighbors, and give each rank a translation of its subgroup ring
    # into global rank ids via closures:
    block_gb = nb * nb * WORD / 1024**3
    flops_per_panel = 2 * nb**3

    from repro.simmpi import Isend, Recv

    def program(rank, size):
        i, j = divmod(rank, GRID)
        acc = np.zeros((nb, nb))
        row = [i * GRID + c for c in range(GRID)]     # my row's ranks
        col = [r * GRID + j for r in range(GRID)]     # my column's ranks

        def ring_bcast(group, my_pos, root_pos, data, tag):
            size_g = len(group)
            pos = (my_pos - root_pos) % size_g
            succ = group[(my_pos + 1) % size_g]
            pred = group[(my_pos - 1) % size_g]
            if pos == 0:
                yield Isend(dst=succ, gb=block_gb, payload=data, tag=tag)
                return data
            got = yield Recv(src=pred, tag=tag)
            if pos != size_g - 1:
                yield Isend(dst=succ, gb=block_gb, payload=got, tag=tag)
            return got

        for k in range(GRID):
            a_panel = yield from ring_bcast(
                row, j, k, A_blocks[(i, k)] if j == k else None, tag=10 + k
            )
            b_panel = yield from ring_bcast(
                col, i, k, B_blocks[(k, j)] if i == k else None,
                tag=100 + k,
            )
            yield Compute(seconds=flops_per_panel / FLOP_RATE_PER_RANK)
            acc = acc + a_panel @ b_panel
        C_out[(i, j)] = acc

    world = VirtualMpi(torus, rank_to_node=emb.node_indices)
    result = world.run(program)

    # Assemble and verify numerically.
    C = np.zeros((N, N))
    for (i, j), blk in C_out.items():
        C[i * nb:(i + 1) * nb, j * nb:(j + 1) * nb] = blk
    err = np.abs(C - A @ B).max()
    return result.time, err


def main() -> None:
    print("=" * 72)
    print(f"SUMMA on virtual Blue Gene/Q: {GRID}x{GRID} ranks, "
          f"n = {N}, real NumPy blocks")
    print("=" * 72)
    for dims in ((4, 1, 1, 1), (2, 2, 1, 1)):
        t, err = run_on_geometry(dims)
        geo = PartitionGeometry(dims)
        print(f"  {geo.label():<14} virtual time {t:8.4f} s   "
              f"max |C - A@B| = {err:.2e}")
    print("\n  -> the distributed product is numerically exact on both")
    print("     geometries; the virtual times show how much of SUMMA's")
    print("     broadcast traffic the partition shape can hide.")


if __name__ == "__main__":
    main()
