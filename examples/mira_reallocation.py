#!/usr/bin/env python
"""Mira reallocation study — regenerate Table 1 / Table 6 and advise.

Reproduces the paper's core policy analysis:

* audit Mira's predefined partition list against the physically
  optimal geometries (Tables 1 and 6, Figure 1);
* quantify how much each improvable size gains;
* demonstrate the contention-aware scheduling advisor from the paper's
  future-work section on a hypothetical job queue.

Run:  python examples/mira_reallocation.py
"""

from __future__ import annotations

from repro.allocation import (
    JobRequest,
    PartitionGeometry,
    SchedulingAdvisor,
    compare_policy_to_optimal,
    juqueen_policy,
    mira_policy,
)
from repro.analysis.figures import figure1
from repro.analysis.report import render_series, render_table


def audit_mira() -> None:
    print("=" * 72)
    print("Mira allocation audit (Table 6 with proposals)")
    print("=" * 72)
    rows = []
    for cmp_row in compare_policy_to_optimal(mira_policy()):
        rows.append({
            "midplanes": cmp_row.num_midplanes,
            "nodes": cmp_row.num_nodes,
            "current": cmp_row.current.dims,
            "bw": cmp_row.current_bw,
            "proposed": cmp_row.proposed.dims if cmp_row.is_improved else None,
            "proposed_bw": cmp_row.proposed_bw if cmp_row.is_improved else None,
            "gain": f"x{cmp_row.improvement:.2f}",
        })
    print(render_table(
        rows,
        ["midplanes", "nodes", "current", "bw", "proposed",
         "proposed_bw", "gain"],
    ))
    improved = [r for r in rows if r["proposed"] is not None]
    print(f"\n{len(improved)} of {len(rows)} partition sizes are "
          "improvable, by up to x2 bisection bandwidth.")


def show_figure1() -> None:
    print()
    print("=" * 72)
    print("Figure 1 — normalized bisection bandwidth by partition size")
    print("=" * 72)
    print(render_series(figure1(), y_format="{:.0f}"))


def advise_queue() -> None:
    print()
    print("=" * 72)
    print("Scheduling advisor (paper future work) — JUQUEEN free-cuboid "
          "policy")
    print("=" * 72)
    advisor = SchedulingAdvisor(juqueen_policy())
    queue = [
        ("FFT (contention-bound)", JobRequest(8, 7200.0, 0.8)),
        ("Dense LU (balanced)", JobRequest(8, 7200.0, 0.3)),
        ("Monte Carlo (compute-bound)", JobRequest(8, 7200.0, 0.02)),
    ]
    available = PartitionGeometry((4, 2, 1, 1))  # sub-optimal 8-midplane
    wait = 1200.0
    print(f"available partition: {available.label()} "
          f"(bw {available.normalized_bisection_bandwidth}); an optimal "
          f"one frees up in ~{wait:.0f} s\n")
    for name, job in queue:
        decision = advisor.decide(job, available, expected_wait=wait)
        print(f"  {name:<30} -> {decision.action.upper():8} "
              f"(now {decision.available_time:6.0f} s, "
              f"wait {decision.wait_time:6.0f} s, "
              f"regret avoided {decision.regret:5.0f} s)")


def main() -> None:
    audit_mira()
    show_figure1()
    advise_queue()


if __name__ == "__main__":
    main()
