#!/usr/bin/env python
"""Applying the method to other topologies (Section 5 of the paper).

The isoperimetric workflow applies to any network whose edge-
isoperimetric problem can be solved:

* hypercubes (Pleiades)   — Harper's theorem, directly usable;
* HyperX (clique products) — Lindsey's theorem;
* 2-D meshes               — Ahlswede–Bezrukov corner sets;
* Dragonfly (Cray XC)      — weighted formulation, three candidate
  global-link arrangements;
* arbitrary graphs         — spectral Cheeger bounds + Fiedler sweep.

Run:  python examples/other_topologies.py
"""

from __future__ import annotations

from repro.isoperimetry import (
    cheeger_bounds,
    fiedler_cut,
    harper_min_boundary,
    hyperx_bisection,
    lindsey_min_boundary,
    mesh2d_min_boundary,
    small_set_expansion_exact,
    weighted_torus_bisection,
)
from repro.isoperimetry.harper import hypercube_partition_bandwidth
from repro.isoperimetry.weighted import dragonfly_group_cut
from repro.topology import Dragonfly, Hypercube, Torus


def hypercube_study() -> None:
    print("=" * 70)
    print("Hypercube (Pleiades-style) — Harper's theorem")
    print("=" * 70)
    d = 11  # 2048-node hypercube
    print(f"  machine Q_{d}: {2**d} nodes, bisection "
          f"{hypercube_partition_bandwidth(d, d)} links")
    for sub in (8, 9, 10):
        print(f"  subcube allocation Q_{sub}: internal bisection "
              f"{hypercube_partition_bandwidth(d, sub)} links")
    print("  non-subcube allocation of 1536 nodes: optimal boundary "
          f"{harper_min_boundary(d, 1536)} links (Harper optimum)")
    print("  => equal-size subcubes are all isomorphic: hypercube")
    print("     policies cannot exhibit the torus geometry spread.")


def hyperx_study() -> None:
    print()
    print("=" * 70)
    print("HyperX (clique product) — Lindsey's theorem")
    print("=" * 70)
    dims = (8, 8, 4)
    print(f"  network K{dims[0]} x K{dims[1]} x K{dims[2]}: "
          f"{8 * 8 * 4} routers, bisection {hyperx_bisection(dims):.0f}")
    for t in (32, 64, 128):
        print(f"  optimal {t}-router allocation boundary: "
              f"{lindsey_min_boundary(dims, t)} links")


def mesh_study() -> None:
    print()
    print("=" * 70)
    print("2-D mesh — Ahlswede–Bezrukov corner sets")
    print("=" * 70)
    m = n = 16
    for t in (16, 64, 128):
        print(f"  optimal {t}-node allocation in the {m}x{n} grid: "
              f"boundary {mesh2d_min_boundary(m, n, t)} links")
    print("  weighted 3-D torus (Titan-style, wide x-links):")
    uniform = weighted_torus_bisection((16, 8, 8))
    weighted = weighted_torus_bisection((16, 8, 8), weights=(4.0, 1.0, 1.0))
    print(f"    uniform capacities : bisection {uniform:.0f} "
          "(cut the 16-dim)")
    print(f"    x-links 4x wide    : bisection {weighted:.0f} "
          "(cut moves to a short dim)")


def dragonfly_study() -> None:
    print()
    print("=" * 70)
    print("Dragonfly — weighted cuts under three global arrangements")
    print("=" * 70)
    print("  intra-group (Aries K16 x K6, capacities 1 / 3):")
    print(f"    split 8 of 16 rows      : cut {dragonfly_group_cut(rows_taken=8):.0f}")
    print(f"    split 3 of 6 backplanes : cut "
          f"{dragonfly_group_cut(rows_taken=16, cols_taken=3):.0f} "
          "(3x links make it pricier)")
    for arrangement in ("absolute", "relative", "circulant"):
        d = Dragonfly(num_groups=5, a=4, h=3, arrangement=arrangement)
        cut = d.cut_weight(d.group_vertices(0))
        print(f"  one group vs rest, {arrangement:<9}: weighted cut "
              f"{cut:.0f} (global links x4)")


def slimfly_study() -> None:
    print()
    print("=" * 70)
    print("Slim Fly — MMS construction + numeric analysis")
    print("=" * 70)
    from repro.isoperimetry import ExactSolver, spectral_expansion_estimate
    from repro.topology import SlimFly

    sf = SlimFly(5)
    print(f"  {sf.name}: {sf.num_vertices} routers, degree "
          f"{sf.regular_degree()}, diameter {sf.diameter_upper_bound}")
    est = spectral_expansion_estimate(sf)
    print(f"  conductance via spectral sweep: "
          f"[{est['lower']:.3f}, {est['upper']:.3f}]")
    print("  (the paper: no general isoperimetric solution is expected;")
    print("   exhaustive or spectral analysis per-instance is the tool)")


def spectral_study() -> None:
    print()
    print("=" * 70)
    print("Arbitrary graphs — spectral estimates (Cheeger / Fiedler)")
    print("=" * 70)
    torus = Torus((8, 4))
    lower, upper = cheeger_bounds(torus)
    witness, achieved = fiedler_cut(torus)
    exact = small_set_expansion_exact(Torus((4, 3, 2)),
                                      Torus((4, 3, 2)).num_vertices // 2)
    print(f"  8x4 torus conductance: Cheeger bounds "
          f"[{lower:.4f}, {upper:.4f}], Fiedler sweep achieves "
          f"{achieved:.4f} with |S| = {len(witness)}")
    print(f"  exact small-set expansion of the 4x3x2 torus: {exact:.4f}")


def main() -> None:
    hypercube_study()
    hyperx_study()
    mesh_study()
    dragonfly_study()
    slimfly_study()
    spectral_study()


if __name__ == "__main__":
    main()
