#!/usr/bin/env python
"""Machine design — smaller machines that outperform JUQUEEN.

Reproduces Section 5's design study: the hypothetical JUQUEEN-48
(4×3×2×2) and JUQUEEN-54 (3×3×3×2) have fewer midplanes than JUQUEEN
(7×2×2×2 = 56) yet match or beat its partition bisection bandwidth at
every comparable size (Table 5, Figure 7) — and both are subgraphs of
Mira's network, hence physically constructible.

Run:  python examples/machine_design.py
"""

from __future__ import annotations

from repro.analysis.report import render_series
from repro.experiments.machinedesign import (
    compare_machines,
    is_constructible_within,
    peak_speedup_nearest_size,
    peak_speedup_over_baseline,
)
from repro.machines import JUQUEEN, JUQUEEN_48, JUQUEEN_54, MIRA


def main() -> None:
    machines = [JUQUEEN, JUQUEEN_48, JUQUEEN_54]
    print("=" * 72)
    print("Machines under comparison")
    print("=" * 72)
    for m in machines:
        print(f"  {m.name:<12} {str(m.midplane_dims):<14} "
              f"{m.num_midplanes:>3} midplanes, "
              f"global bisection {m.bisection_bandwidth():.0f}")
        if m is not JUQUEEN:
            ok = is_constructible_within(m, MIRA)
            print(f"               constructible inside Mira: {ok}")

    print()
    print("=" * 72)
    print("Table 5 / Figure 7 — best-case partition bandwidth by size")
    print("=" * 72)
    rows = compare_machines(machines)
    series = {m.name: {} for m in machines}
    for row in rows:
        for m in machines:
            series[m.name][row.num_midplanes] = row.bandwidths[m.name]
    print(render_series(series, y_format="{:.0f}"))

    print()
    print("=" * 72)
    print("Headline speedups over JUQUEEN")
    print("=" * 72)
    print(f"  JUQUEEN-48, same-size peak   : "
          f"x{peak_speedup_over_baseline(rows, 'JUQUEEN', 'JUQUEEN-48'):.2f}"
          "  (48 midplanes: 3072 vs 2048)")
    print(f"  JUQUEEN-54, nearest-size peak: "
          f"x{peak_speedup_nearest_size(rows, 'JUQUEEN', 'JUQUEEN-54'):.2f}"
          "  (54 midplanes at 4608 vs JUQUEEN's 56 at 2048)")
    print()
    print("Interpretation: on contention-bound workloads the smaller")
    print("machines are predicted to perform at least as well as JUQUEEN")
    print("at every common partition size, with up to x2 advantage near")
    print("full-machine scale — JUQUEEN only wins for jobs that strong-")
    print("scale perfectly to all 56 midplanes.")

    print()
    print("=" * 72)
    print("Automated design search (extension): can we find these "
          "machines?")
    print("=" * 72)
    from repro.experiments.designsearch import design_search

    search = design_search(56, JUQUEEN)
    print(f"  scored {len(search)} candidate machine geometries "
          "<= 56 midplanes against JUQUEEN")
    print("  top designs (dominating first):")
    for c in search[:5]:
        dims = "x".join(map(str, c.machine.midplane_dims))
        print(f"    {dims:<10} {c.machine.num_midplanes:>3} midplanes  "
              f"dominates={c.dominated_baseline}  strict wins={c.wins}")
    print("  -> the paper's hand-picked JUQUEEN-48 (4x3x2x2) emerges as")
    print("     the top design; JUQUEEN-54 (3x3x3x2) is in the")
    print("     dominating set with the largest near-size advantage.")


if __name__ == "__main__":
    main()
