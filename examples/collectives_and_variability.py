#!/usr/bin/env python
"""Collectives on partitions + the size-only request lottery.

Two demonstrations that go beyond the paper's measured experiments using
the same machinery:

1. simulate classical MPI collectives (allgather, allreduce,
   all-to-all) on two equal-size partition geometries and see which
   collectives care about the partition shape;
2. replay 200 identical size-only job requests through JUQUEEN's
   free-cuboid policy under different scheduler selection rules — the
   run-time lottery Section 4.3 warns about.

Run:  python examples/collectives_and_variability.py
"""

from __future__ import annotations

from repro.allocation import (
    JobRequest,
    PartitionGeometry,
    juqueen_policy,
    simulate_job_stream,
)
from repro.netsim import (
    LinkNetwork,
    RouteCache,
    pairwise_alltoall,
    recursive_doubling_allreduce,
    ring_allgather,
    simulate_rounds,
)


def collectives_demo() -> None:
    print("=" * 72)
    print("Collectives on equal-size 4-midplane partitions "
          "(1 rank/node, 50 MB blocks)")
    print("=" * 72)
    geometries = [PartitionGeometry((4, 1, 1, 1)),
                  PartitionGeometry((2, 2, 1, 1))]
    block_gb = 0.05
    results: dict[str, list[float]] = {}
    for geo in geometries:
        torus = geo.bgq_network()
        p = torus.num_vertices
        net = LinkNetwork(torus, link_bandwidth=2.0)
        cache = RouteCache(net, torus)
        schedules = {
            "ring allgather": ring_allgather(p, block_gb),
            "recursive-doubling allreduce":
                recursive_doubling_allreduce(p, block_gb),
            # Sample the all-to-all (full P-1 rounds are expensive).
            "pairwise all-to-all (64-rd sample)": [
                pairwise_alltoall(p, block_gb)[int(i * (p - 1) / 64)]
                for i in range(64)
            ],
        }
        for name, rounds in schedules.items():
            total, _ = simulate_rounds(cache, rounds)
            if "sample" in name:
                total *= (p - 1) / 64
            results.setdefault(name, []).append(total)

    print(f"{'collective':<36} {'4x1x1x1':>10} {'2x2x1x1':>10} {'ratio':>7}")
    print("-" * 66)
    for name, (worse, better) in results.items():
        print(f"{name:<36} {worse:>9.3f}s {better:>9.3f}s "
              f"{worse / better:>6.2f}x")
    print("\n-> nearest-neighbor collectives (ring, recursive doubling)")
    print("   barely notice the geometry; the all-to-all — the heart of")
    print("   FFT transposes — gains the most from better bisection.")


def lottery_demo() -> None:
    print()
    print("=" * 72)
    print("The size-only request lottery (JUQUEEN, 8-midplane jobs)")
    print("=" * 72)
    job = JobRequest(num_midplanes=8, optimal_runtime=3600.0,
                     contention_fraction=0.6)
    policy = juqueen_policy()
    print(f"{'selection rule':<12} {'mean':>9} {'stdev':>9} "
          f"{'max/min':>8} {'geometries':>11}")
    print("-" * 54)
    for rule in ("best", "worst", "random", "first-fit"):
        rep = simulate_job_stream(policy, job, 200, rule, seed=11)
        print(f"{rule:<12} {rep.mean:>8.0f}s {rep.stdev:>8.0f}s "
              f"{rep.spread:>7.2f}x {rep.distinct_geometries:>11}")
    print("\n-> under 'random', identical jobs differ by up to 60% wall-")
    print("   clock purely through geometry luck; requesting an explicit")
    print("   geometry (or a geometry-aware scheduler) removes the spread.")


def main() -> None:
    collectives_demo()
    lottery_demo()


if __name__ == "__main__":
    main()
