#!/usr/bin/env python
"""Quickstart — the paper's workflow in five minutes.

Walks the core API end to end:

1. build a torus network and ask isoperimetric questions;
2. model a Blue Gene/Q machine and one of its partitions;
3. find a better-shaped partition of the same size (Corollary 3.4);
4. predict the contention speedup and verify it with the flow-level
   simulator.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    MIRA,
    PartitionGeometry,
    Torus,
    best_cuboid,
    best_geometry_for_machine,
    torus_isoperimetric_bound,
)
from repro.experiments.pairing import PairingParameters, run_pairing


def main() -> None:
    print("=" * 64)
    print("1. Isoperimetry on a torus")
    print("=" * 64)
    torus = Torus((8, 4, 4))
    print(f"network            : {torus.name}  ({torus.num_vertices} nodes)")
    print(f"bisection width    : {torus.bisection_width()} links")
    half = torus.num_vertices // 2
    bound = torus_isoperimetric_bound(torus.dims, half)
    shape, per = best_cuboid(torus.dims, half)
    print(f"Theorem 3.1 bound  : {bound.value:.0f} (r = {bound.r})")
    print(f"best cuboid        : {shape} with perimeter {per}")

    print()
    print("=" * 64)
    print("2. A Blue Gene/Q machine and a partition")
    print("=" * 64)
    print(f"machine            : {MIRA.name} {MIRA.midplane_dims} "
          f"({MIRA.num_nodes} nodes)")
    current = PartitionGeometry((4, 1, 1, 1))  # Mira's 4-midplane shape
    print(f"current partition  : {current.label()} "
          f"-> bisection {current.normalized_bisection_bandwidth}")

    print()
    print("=" * 64)
    print("3. A better geometry of the same size")
    print("=" * 64)
    proposed = best_geometry_for_machine(MIRA, current.num_midplanes)
    print(f"proposed partition : {proposed.label()} "
          f"-> bisection {proposed.normalized_bisection_bandwidth}")
    gain = (proposed.normalized_bisection_bandwidth
            / current.normalized_bisection_bandwidth)
    print(f"predicted speedup  : x{gain:.2f} for contention-bound work")

    print()
    print("=" * 64)
    print("4. Verify with the contention simulator (1 round)")
    print("=" * 64)
    params = PairingParameters(rounds=1)
    t_cur = run_pairing(current, params).time_seconds
    t_prop = run_pairing(proposed, params).time_seconds
    print(f"simulated pairing time, current : {t_cur:7.2f} s")
    print(f"simulated pairing time, proposed: {t_prop:7.2f} s")
    print(f"realized speedup                : x{t_cur / t_prop:.2f}")


if __name__ == "__main__":
    main()
