"""Exact (brute-force) edge-isoperimetric solvers for small graphs.

These solvers enumerate *all* vertex subsets of a given size, so they are
exponential and only usable for graphs with roughly 26 vertices or fewer.
They serve as ground-truth oracles in the test-suite:

* validating the Theorem 3.1 bound and the Lemma 3.2/3.3 cuboid
  constructions on every small torus we can afford;
* probing the paper's open conjecture (is the bound optimal for
  *arbitrary* subsets, not just cuboids?) — see
  :func:`conjecture_counterexample`;
* computing exact small-set expansion for the contention lower bounds.

Implementation: vertices are indexed densely; neighborhoods become
bitmasks; a subset is one ``int``; the cut size of a subset is computed
with popcounts.  Subsets are enumerated with Gosper's hack (next integer
with the same popcount), keeping the inner loop allocation-free.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from .._validation import check_subset_size
from ..topology.base import Topology, Vertex

__all__ = [
    "ExactSolver",
    "exact_min_perimeter",
    "exact_isoperimetric_set",
    "exact_profile",
    "conjecture_counterexample",
]

#: Refuse to enumerate subsets of graphs larger than this.
MAX_BRUTE_FORCE_VERTICES = 28


def _gosper_next(x: int) -> int:
    """Next integer with the same popcount (Gosper's hack)."""
    c = x & -x
    r = x + c
    return (((r ^ x) >> 2) // c) | r


class ExactSolver:
    """Brute-force edge-isoperimetric solver over a fixed topology.

    Precomputes the bitmask adjacency once so repeated queries (different
    subset sizes ``t``) share the setup cost.

    Parameters
    ----------
    topo:
        Any :class:`~repro.topology.base.Topology`; edge weights are
        honoured (weighted perimeters), with an integer fast path when all
        weights equal 1.
    """

    def __init__(self, topo: Topology):
        n = topo.num_vertices
        if n > MAX_BRUTE_FORCE_VERTICES:
            raise ValueError(
                f"{topo.name} has {n} vertices; brute force is limited to "
                f"{MAX_BRUTE_FORCE_VERTICES}"
            )
        self._topo = topo
        self._verts: list[Vertex] = list(topo.vertices())
        self._index = {v: i for i, v in enumerate(self._verts)}
        self._nbr_masks: list[int] = [0] * n
        self._uniform = True
        weights: dict[tuple[int, int], float] = {}
        for v in self._verts:
            i = self._index[v]
            mask = 0
            for u, w in topo.neighbors(v):
                j = self._index[u]
                mask |= 1 << j
                weights[(i, j)] = w
                if w != 1.0:  # repro: allow-float-eq default weight is stored as exactly 1.0; uniformity is a stored-repr property
                    self._uniform = False
            self._nbr_masks[i] = mask
        self._weights = weights
        self._n = n

    @property
    def num_vertices(self) -> int:
        return self._n

    @property
    def is_uniform(self) -> bool:
        """Whether all edge weights are 1 (cut weight == cut count)."""
        return self._uniform

    # ------------------------------------------------------------------ #

    def cut_of_mask(self, mask: int) -> float:
        """Perimeter (weighted) of the subset encoded by bitmask *mask*."""
        if self._uniform:
            total = 0
            m = mask
            while m:
                i = (m & -m).bit_length() - 1
                m &= m - 1
                total += (self._nbr_masks[i] & ~mask).bit_count()
            return float(total)
        total = 0.0
        m = mask
        while m:
            i = (m & -m).bit_length() - 1
            m &= m - 1
            outside = self._nbr_masks[i] & ~mask
            while outside:
                j = (outside & -outside).bit_length() - 1
                outside &= outside - 1
                total += self._weights[(i, j)]
        return total

    def mask_to_set(self, mask: int) -> set[Vertex]:
        """Decode a bitmask into the corresponding vertex set."""
        out: set[Vertex] = set()
        m = mask
        while m:
            i = (m & -m).bit_length() - 1
            m &= m - 1
            out.add(self._verts[i])
        return out

    def min_perimeter(self, t: int) -> tuple[float, set[Vertex]]:
        """Minimum perimeter over all subsets of size *t*, with a witness.

        Returns ``(cut, subset)``; ties are broken by enumeration order
        (deterministic).
        """
        t = check_subset_size(t, self._n)
        best_cut = math.inf
        best_mask = 0
        mask = (1 << t) - 1
        limit = 1 << self._n
        while mask < limit:
            cut = self.cut_of_mask(mask)
            if cut < best_cut:
                best_cut = cut
                best_mask = mask
                if cut == 0:
                    break
            if mask == 0:
                break
            mask = _gosper_next(mask)
        return best_cut, self.mask_to_set(best_mask)

    def small_set_expansion(self, t: int) -> float:
        """Exact small-set expansion ``h_t``: min over ``|A| <= t`` of
        ``cut(A) / (2·interior(A) + cut(A))``.

        For unweighted graphs the denominator is the total degree of
        ``A``; the weighted generalization uses capacities throughout.
        """
        t = check_subset_size(t, self._n)
        best = math.inf
        for size in range(1, t + 1):
            mask = (1 << size) - 1
            limit = 1 << self._n
            while mask < limit:
                cut = self.cut_of_mask(mask)
                incident = self._incident_of_mask(mask)
                if incident > 0:
                    best = min(best, cut / incident)
                mask = _gosper_next(mask)
        return best

    def _incident_of_mask(self, mask: int) -> float:
        """Sum of weighted degrees of the subset (= 2·interior + cut)."""
        total = 0.0
        m = mask
        while m:
            i = (m & -m).bit_length() - 1
            m &= m - 1
            if self._uniform:
                total += self._nbr_masks[i].bit_count()
            else:
                nbrs = self._nbr_masks[i]
                while nbrs:
                    j = (nbrs & -nbrs).bit_length() - 1
                    nbrs &= nbrs - 1
                    total += self._weights[(i, j)]
        return total


def exact_min_perimeter(topo: Topology, t: int) -> float:
    """Minimum perimeter of any size-*t* subset of *topo* (brute force)."""
    return ExactSolver(topo).min_perimeter(t)[0]


def exact_isoperimetric_set(topo: Topology, t: int) -> set[Vertex]:
    """A minimum-perimeter subset of size *t* (brute force witness)."""
    return ExactSolver(topo).min_perimeter(t)[1]


def exact_profile(topo: Topology) -> dict[int, float]:
    """Exact isoperimetric profile: ``t -> min perimeter`` for all
    ``1 <= t <= |V| / 2``."""
    solver = ExactSolver(topo)
    return {
        t: solver.min_perimeter(t)[0]
        for t in range(1, topo.num_vertices // 2 + 1)
    }


def conjecture_counterexample(
    dims: Sequence[int],
) -> tuple[int, float, float] | None:
    """Probe the paper's open conjecture on one small torus.

    The conjecture (Section 3.1 / future work): the Theorem 3.1 lower
    bound holds for *arbitrary* subsets, not just cuboids.  This
    function brute-forces every ``t <= |V|/2`` of the torus with the
    given dimensions and compares the true minimum perimeter against the
    bound.

    Note that arbitrary subsets *can* beat the best cuboid at sizes
    where the bound is not attained (a quasi-cuboid of 9 vertices in the
    5×4 torus has perimeter 10 < the best cuboid's 12) — that does not
    refute the conjecture, because the bound there is only 8.

    Requires every dimension to be at least 3 (proper cycles — the
    convention under which Equation 3 is stated; length-2 dimensions
    follow Harper's hypercube solution instead).

    Returns ``None`` if no counterexample is found (the conjecture holds
    for this torus), else ``(t, exact_min, bound)`` for the first ``t``
    where some subset has a strictly smaller perimeter than the bound.
    """
    from ..topology.torus import Torus
    from .bounds import torus_isoperimetric_bound

    torus = Torus(dims)
    if any(a < 3 for a in torus.dims):
        raise ValueError(
            "conjecture probing requires all dimensions >= 3 (got "
            f"{torus.dims}); Equation 3 is stated for proper cycles"
        )
    solver = ExactSolver(torus)
    for t in range(1, torus.num_vertices // 2 + 1):
        bound = torus_isoperimetric_bound(torus.dims, t).value
        exact, _ = solver.min_perimeter(t)
        if exact < bound - 1e-9:
            return (t, exact, bound)
    return None
