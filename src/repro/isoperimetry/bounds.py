"""Edge-isoperimetric lower bounds for torus graphs.

Implements the two inequalities at the heart of the paper:

* :func:`bollobas_leader_bound` — Theorem 2.1, the Bollobás–Leader (1991)
  bound for *cubic* tori ``[n]^D``;
* :func:`torus_isoperimetric_bound` — Theorem 3.1, the paper's novel
  generalization to tori with **arbitrary dimension lengths**
  ``[a_1] × ... × [a_D]``.

Both return the bound value together with the minimizing exponent ``r``
(the number of dimensions an optimal cuboid covers completely).  The bound
of Theorem 3.1, for dimensions sorted descending ``a_1 >= ... >= a_D``, is

.. math::

    |E(S, \\bar S)| \\;\\ge\\; \\min_{r \\in \\{0..D-1\\}}
        2 (D-r) \\Big(\\prod_{i=0}^{r-1} a_{D-i}\\Big)^{1/(D-r)}
        \\; t^{(D-r-1)/(D-r)},

i.e. the product runs over the ``r`` *smallest* dimensions, which the
optimal cuboid covers fully.

Convention note
---------------
The inequalities are stated for tori where every dimension is a proper
cycle contributing 2 boundary edges per crossed line.  Dimensions of
length 2 contribute a *single* edge under the simple-graph convention of
:class:`repro.topology.torus.Torus` (and of Blue Gene/Q's E dimension);
Lemma 3.2 of the paper handles them by reduction — fully cover every
length-2 dimension and recurse on ``t' = t / 2^m``.  Use
:func:`reduced_torus_bound` when dimensions of length <= 2 are present.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from .._validation import check_dims, check_subset_size

__all__ = [
    "BoundResult",
    "bollobas_leader_bound",
    "torus_isoperimetric_bound",
    "reduced_torus_bound",
    "bound_is_attained",
]


class BoundResult:
    """Value of an isoperimetric bound together with its witness exponent.

    Attributes
    ----------
    value:
        The lower bound on the perimeter ``|E(S, S̄)|`` (a float; it is an
        integer exactly when the bound is attained by a cuboid).
    r:
        The minimizing number of fully-covered dimensions.
    per_r:
        The bound evaluated at every ``r`` (diagnostic; ``value`` is its
        minimum).
    """

    __slots__ = ("value", "r", "per_r")

    def __init__(self, value: float, r: int, per_r: tuple[float, ...]):
        self.value = value
        self.r = r
        self.per_r = per_r

    def __iter__(self):
        # Allow ``value, r = bound(...)`` unpacking.
        yield self.value
        yield self.r

    def __repr__(self) -> str:
        return f"BoundResult(value={self.value!r}, r={self.r})"


def bollobas_leader_bound(n: int, D: int, t: int) -> BoundResult:
    """Theorem 2.1: edge-isoperimetric bound for the cubic torus ``[n]^D``.

    Parameters
    ----------
    n:
        Side length of every dimension (``n >= 1``).
    D:
        Number of dimensions (``D >= 1``).
    t:
        Subset size with ``1 <= t <= n^D / 2``.

    Returns
    -------
    BoundResult
        ``min_r 2 (D - r) n^{r/(D-r)} t^{(D-r-1)/(D-r)}``.

    Examples
    --------
    The bisection of the 2-D torus ``[4]^2``:

    >>> bollobas_leader_bound(4, 2, 8).value
    8.0
    """
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    if D < 1:
        raise ValueError(f"D must be positive, got {D}")
    total = n**D
    t = check_subset_size(t, total)
    if 2 * t > total:
        raise ValueError(
            f"t must satisfy t <= |V|/2 = {total // 2}, got {t}"
        )
    return torus_isoperimetric_bound((n,) * D, t)


def torus_isoperimetric_bound(dims: Sequence[int], t: int) -> BoundResult:
    """Theorem 3.1: edge-isoperimetric bound for an arbitrary torus.

    Parameters
    ----------
    dims:
        Dimension lengths; any order (sorted internally to the paper's
        canonical descending form).
    t:
        Subset size with ``1 <= t <= |V| / 2``.

    Returns
    -------
    BoundResult
        The minimum over ``r`` of
        ``2 (D-r) (prod of r smallest dims)^{1/(D-r)} t^{(D-r-1)/(D-r)}``.

    Examples
    --------
    A ``6 x 4`` torus, bisection (``t = 12``): covering the smaller
    dimension fully (``r = 1``) gives perimeter ``2 * 4 = 8``:

    >>> res = torus_isoperimetric_bound((6, 4), 12)
    >>> res.value, res.r
    (8.0, 1)
    """
    dims = check_dims(dims, "dims")
    a = sorted(dims, reverse=True)
    D = len(a)
    total = math.prod(a)
    t = check_subset_size(t, total)
    if 2 * t > total:
        raise ValueError(
            f"t must satisfy t <= |V|/2 = {total // 2}, got {t}"
        )
    per_r: list[float] = []
    for r in range(D):
        m = D - r
        # Product of the r smallest dimensions a_D, a_{D-1}, ..., a_{D-r+1}.
        k = math.prod(a[D - r :]) if r > 0 else 1
        value = 2.0 * m * (k ** (1.0 / m)) * (t ** ((m - 1.0) / m))
        per_r.append(value)
    best_r = min(range(D), key=lambda r: per_r[r])
    return BoundResult(per_r[best_r], best_r, tuple(per_r))


def reduced_torus_bound(dims: Sequence[int], t: int) -> BoundResult:
    """Theorem 3.1 adapted to the simple-graph convention for 2-dims.

    Dimensions of length 1 are dropped (they contribute no edges).  For
    each dimension of length exactly 2, Lemma 3.2's reduction applies: an
    optimal cuboid covers it fully, halving the effective subset size,
    and every cut edge of the reduced torus corresponds to ``2^m`` parallel
    cut edges of the full graph (one per layer of the covered
    2-dimensions), so the reduced bound is scaled back by ``2^m``.  The
    remaining torus has all dimensions >= 3 and the plain bound applies.
    The result is a valid lower bound for cuboids that fully cover every
    length-2 dimension — which, per Lemma 3.2, the optimal cuboids do.

    Examples
    --------
    The Blue Gene/Q single-midplane network ``4x4x4x4x2``, bisection
    (matches the machine's published bisection of 256 links):

    >>> res = reduced_torus_bound((4, 4, 4, 4, 2), 256)
    >>> res.value
    256.0
    """
    dims = check_dims(dims, "dims")
    kept = [a for a in dims if a >= 3]
    twos = sum(1 for a in dims if a == 2)
    total = math.prod(dims)
    t = check_subset_size(t, total)
    if 2 * t > total:
        raise ValueError(
            f"t must satisfy t <= |V|/2 = {total // 2}, got {t}"
        )
    t_red = t
    for _ in range(twos):
        t_red = (t_red + 1) // 2
    if not kept:
        # Pure hypercube: fall back to the subcube bound 2^m (d - m)
        # evaluated continuously; Harper's machinery gives exact values.
        d = twos
        m = math.log2(t)
        value = t * (d - m)
        return BoundResult(max(value, 0.0), max(d - 1, 0), (max(value, 0.0),))
    scale = float(2**twos)
    inner = torus_isoperimetric_bound(
        tuple(kept), max(1, min(t_red, math.prod(kept) // 2))
    )
    return BoundResult(
        scale * inner.value,
        inner.r + twos,
        tuple(scale * v for v in inner.per_r),
    )


def bound_is_attained(dims: Sequence[int], t: int) -> bool:
    """Whether Theorem 3.1's bound is attained exactly by a cuboid ``S_r``.

    True when there exists ``r`` such that ``(t / k_r)^{1/(D-r)}`` is an
    integer not exceeding the remaining dimensions, where ``k_r`` is the
    product of the ``r`` smallest dimensions (the construction of
    Lemma 3.2).
    """
    dims = check_dims(dims, "dims")
    a = sorted(dims, reverse=True)
    D = len(a)
    total = math.prod(a)
    t = check_subset_size(t, total)
    for r in range(D):
        k = math.prod(a[D - r :]) if r > 0 else 1
        if t % k != 0:
            continue
        q = t // k
        m = D - r
        side = round(q ** (1.0 / m))
        for cand in (side - 1, side, side + 1):
            if cand >= 1 and cand**m == q:
                # The cuboid needs side <= every remaining dimension.
                if all(cand <= a[i] for i in range(D - r)):
                    return True
    return False
