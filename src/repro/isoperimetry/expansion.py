"""Small-set expansion and contention lower bounds.

The small-set expansion of a graph ``G`` at scale ``t`` is

.. math::

    h_t(G) = \\min_{|A| \\le t}
        \\frac{|E(A, \\bar A)|}{2 |E(A, A)| + |E(A, \\bar A)|},

i.e. the worst ratio of escaping capacity to total incident capacity over
all sets of at most ``t`` vertices.  For a ``k``-regular graph the
denominator is ``k |A|`` (Equation 1 of the paper), so minimizing the
perimeter at each size and dividing by ``k·size`` gives ``h_t`` — which
is how :func:`torus_small_set_expansion` exploits the cuboid machinery.

Ballard et al. (COMHPC 2016, reference [7] of the paper) use ``h_t`` to
derive *contention* lower bounds: if every processor must communicate
``W`` words, any schedule takes at least ``W / (k · h_t(G))`` time on a
``k``-regular network with unit link bandwidth — see
:func:`contention_lower_bound`.  The paper's observation that "the
small-set expansion is attained by the bisection for all networks and
partitions considered" is checked by
:func:`expansion_attained_at_bisection`.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from .._validation import check_dims, check_positive_float, check_subset_size
from ..topology.base import Topology
from .cuboids import best_cuboid, enumerate_cuboid_shapes
from .exact import ExactSolver

__all__ = [
    "small_set_expansion_exact",
    "torus_small_set_expansion",
    "expansion_attained_at_bisection",
    "contention_lower_bound",
]


def small_set_expansion_exact(topo: Topology, t: int) -> float:
    """Exact ``h_t`` by brute force (small graphs only)."""
    return ExactSolver(topo).small_set_expansion(t)


def torus_small_set_expansion(
    dims: Sequence[int], t: int | None = None
) -> float:
    """Cuboid-based small-set expansion of a torus.

    Minimizes ``perimeter / (k · size)`` over all cuboid sizes up to *t*
    (default: half the vertices).  Under the paper's conjecture (optimal
    cuboids are globally isoperimetric) this equals ``h_t`` exactly; it
    is always an upper bound on ``h_t``, and a lower bound on the
    bisection-only estimate.
    """
    dims = check_dims(dims, "dims")
    total = math.prod(dims)
    if t is None:
        t = total // 2
    t = check_subset_size(t, total)
    k = sum(2 if a >= 3 else 1 for a in dims if a > 1)
    if k == 0:
        raise ValueError(f"torus {tuple(dims)} has no edges")
    best = math.inf
    for size in range(1, t + 1):
        shapes = enumerate_cuboid_shapes(dims, size)
        has_shape = False
        for shape in shapes:
            has_shape = True
            break
        if not has_shape:
            continue
        _, per = best_cuboid(dims, size)
        best = min(best, per / (k * size))
    return best


def expansion_attained_at_bisection(dims: Sequence[int]) -> bool:
    """Whether the torus's small-set expansion is attained at ``t = |V|/2``.

    The paper notes this holds for every network and partition it
    considers, which justifies ranking partitions by bisection bandwidth
    alone.  Evaluated over cuboid sets (exact under the paper's
    conjecture).
    """
    dims = check_dims(dims, "dims")
    total = math.prod(dims)
    half = total // 2
    if half < 1:
        return True
    k = sum(2 if a >= 3 else 1 for a in dims if a > 1)
    if k == 0:
        return True
    overall = torus_small_set_expansion(dims)
    try:
        _, per_half = best_cuboid(dims, half)
    except ValueError:
        return False
    at_half = per_half / (k * half)
    return math.isclose(overall, at_half, rel_tol=1e-12)


def contention_lower_bound(
    dims: Sequence[int],
    words_per_processor: float,
    link_bandwidth: float = 1.0,
    t: int | None = None,
) -> float:
    """Contention time lower bound of Ballard et al. on a torus network.

    If a parallel algorithm requires every processor to send/receive at
    least *words_per_processor* words, then for any subset ``A`` the
    total traffic crossing ``E(A, Ā)`` is at least
    ``words_per_processor · |A|`` (each member's words must be assumed to
    potentially cross), so the time is at least

    ``max_A  words_per_processor · |A| / (bandwidth · |E(A, Ā)|)``

    which equals ``words_per_processor / (k · bandwidth · h_t)`` for
    ``k``-regular networks.  We evaluate the maximum over cuboid subsets.

    Returns the lower bound in the same time units as
    ``words / bandwidth``.
    """
    dims = check_dims(dims, "dims")
    w = check_positive_float(words_per_processor, "words_per_processor")
    b = check_positive_float(link_bandwidth, "link_bandwidth")
    total = math.prod(dims)
    if t is None:
        t = total // 2
    t = check_subset_size(t, total)
    best = 0.0
    for size in range(1, t + 1):
        try:
            _, per = best_cuboid(dims, size)
        except ValueError:
            continue
        if per == 0:
            continue
        best = max(best, w * size / (b * per))
    return best
