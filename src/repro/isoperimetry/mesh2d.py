"""Edge-isoperimetry on 2-D mesh grids (Ahlswede–Bezrukov 1995).

The paper cites Ahlswede & Bezrukov's "Edge isoperimetric theorems for
integer point arrays" for 2-dimensional mesh grids: optimal sets are
corner-anchored **quasi-squares** — an ``l × l`` square plus a partial
extra column/row — or, once a full strip is cheaper, a prefix of complete
rows/columns.  This module provides the optimal perimeter by minimizing
over that (provably sufficient) candidate family, plus constructors for
the witness sets, so mesh-based machines can be analyzed with the same
workflow as tori.

The grid is ``[m] × [n]`` with open boundaries (see
:class:`repro.topology.mesh.Mesh`); the perimeter counts edges to the
complement *within the grid* (outer walls are free), which is the
convention under which quasi-squares in a corner are optimal.
"""

from __future__ import annotations

import math
from collections.abc import Iterator

from .._validation import check_positive_int, check_subset_size

__all__ = [
    "quasi_square_set",
    "corner_candidates",
    "mesh2d_min_boundary",
    "mesh2d_optimal_set",
]


def _rect_plus_column(
    m: int, n: int, width: int, height: int, extra: int
) -> set[tuple[int, int]] | None:
    """A ``width × height`` corner rectangle plus a partial next column.

    Grid is ``[m] × [n]`` with coordinates ``(x, y)``, ``0 <= x < m``,
    ``0 <= y < n``.  The rectangle occupies columns ``0..width-1`` (each
    of height *height*); the partial column ``width`` has *extra* cells.
    Returns ``None`` when the shape does not fit.
    """
    if height > n or width > m:
        return None
    if extra > 0 and (width >= m or extra > n):
        return None
    out = {(x, y) for x in range(width) for y in range(height)}
    out |= {(width, y) for y in range(extra)}
    return out


def quasi_square_set(m: int, n: int, t: int) -> set[tuple[int, int]]:
    """A corner quasi-square of size *t* in the ``[m] × [n]`` grid.

    Takes the largest square ``l × l`` with ``l² <= t`` that fits, then
    lays the remaining cells into the next column (and, if the column
    fills, the next row).  Falls back to strip filling when the square
    would not fit.  The returned set always has exactly *t* cells.
    """
    m = check_positive_int(m, "m")
    n = check_positive_int(n, "n")
    t = check_subset_size(t, m * n)
    short, long_ = min(m, n), max(m, n)

    # Build in a canonical grid with X along the long side (columns) and
    # Y along the short side (column height), then map back.
    height = min(int(math.isqrt(t)), short)
    if height < 1:
        height = 1
    if t > height * long_:
        # Columns of the quasi-square height would overflow the grid
        # length; raise the height until the shape fits.
        height = -(-t // long_)  # ceil division
        height = min(height, short)
    full_cols = t // height
    extra = t - full_cols * height
    cells: set[tuple[int, int]] = set()
    for x in range(full_cols):
        for y in range(height):
            cells.add((x, y))
    for y in range(extra):
        cells.add((full_cols, y))
    if m >= n:
        out = cells  # X axis is the m (long) axis already
    else:
        out = {(y, x) for (x, y) in cells}
    assert len(out) == t
    return out


def corner_candidates(m: int, n: int, t: int) -> Iterator[set[tuple[int, int]]]:
    """All corner-anchored rectangle-plus-partial-column shapes of size *t*.

    For each column height ``h`` from 1 to *n*, form ``t // h`` complete
    columns plus a partial one; similarly row-wise.  Ahlswede–Bezrukov's
    optimal shapes are always in this family, so minimizing over it yields
    the exact optimum (verified against brute force in the test-suite).
    """
    m = check_positive_int(m, "m")
    n = check_positive_int(n, "n")
    t = check_subset_size(t, m * n)
    for h in range(1, n + 1):
        width = t // h
        extra = t - width * h
        shape = _rect_plus_column(m, n, width, h, extra)
        if shape is not None and len(shape) == t:
            yield shape
    for w in range(1, m + 1):
        height = t // w
        extra = t - height * w
        # Row-wise: transpose of the column-wise construction.
        shape = _rect_plus_column(n, m, height, w, extra)
        if shape is not None and len(shape) == t:
            yield {(y, x) for (x, y) in shape}


def _grid_boundary(m: int, n: int, cells: set[tuple[int, int]]) -> int:
    """Perimeter of *cells* in the ``[m] × [n]`` open grid."""
    boundary = 0
    for (x, y) in cells:
        for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            nx, ny = x + dx, y + dy
            if 0 <= nx < m and 0 <= ny < n and (nx, ny) not in cells:
                boundary += 1
    return boundary


def mesh2d_min_boundary(m: int, n: int, t: int) -> int:
    """Minimum perimeter of any size-*t* subset of the ``[m] × [n]`` grid.

    Minimizes over the Ahlswede–Bezrukov candidate family of corner
    shapes.

    Examples
    --------
    >>> mesh2d_min_boundary(4, 4, 4)    # a 2x2 corner square
    4
    >>> mesh2d_min_boundary(4, 4, 8)    # two full columns
    4
    """
    best = None
    for shape in corner_candidates(m, n, t):
        b = _grid_boundary(m, n, shape)
        if best is None or b < best:
            best = b
    assert best is not None
    return best


def mesh2d_optimal_set(m: int, n: int, t: int) -> set[tuple[int, int]]:
    """A minimum-perimeter size-*t* subset of the grid (witness set)."""
    best_shape: set[tuple[int, int]] | None = None
    best = None
    for shape in corner_candidates(m, n, t):
        b = _grid_boundary(m, n, shape)
        if best is None or b < best:
            best = b
            best_shape = shape
    assert best_shape is not None
    return best_shape
