"""Weighted edge-isoperimetric analysis.

Section 5 of the paper points out that several practically relevant
networks need a *weighted* formulation of the edge-isoperimetric problem:

* low-dimensional tori such as Titan's 3-D torus, where dimensions may be
  provisioned with different link capacities;
* Dragonfly groups ``K_16 × K_6`` whose ``K_6`` links carry 3× the
  capacity, with inter-group links at 4×.

This module provides the weighted generalization of the cuboid machinery
of :mod:`repro.isoperimetry.cuboids` (per-dimension link capacities on a
torus), and weighted clique-product segment evaluation for Dragonfly-like
groups.  The brute-force oracle in :mod:`repro.isoperimetry.exact`
already honours weights, and the test-suite checks these functions
against it.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from .._validation import check_dims, check_subset_size

__all__ = [
    "weighted_cuboid_perimeter",
    "best_weighted_cuboid",
    "weighted_torus_bisection",
    "dragonfly_group_cut",
]


def _per_line_cut(side: int, dim: int) -> int:
    if side > dim:
        raise ValueError(f"cuboid side {side} exceeds dimension {dim}")
    if side == dim or dim == 1:
        return 0
    if dim == 2:
        return 1
    return 2


def _check_weights(
    weights: Sequence[float] | None, ndim: int
) -> tuple[float, ...]:
    if weights is None:
        return (1.0,) * ndim
    ws = tuple(float(w) for w in weights)
    if len(ws) != ndim:
        raise ValueError(f"weights has {len(ws)} entries, expected {ndim}")
    if any(w <= 0 for w in ws):
        raise ValueError("all weights must be positive")
    return ws


def weighted_cuboid_perimeter(
    dims: Sequence[int],
    sides: Sequence[int],
    weights: Sequence[float] | None = None,
) -> float:
    """Weighted perimeter of an axis-aligned cuboid in a weighted torus.

    *weights[i]* is the capacity of every link of dimension *i*; the
    perimeter sums capacities of cut links.  With unit weights this
    coincides with :func:`repro.isoperimetry.cuboids.cuboid_perimeter`.

    Unlike the unweighted functions, *dims* are **not** sorted internally:
    weights are positional, so the caller's ordering is authoritative.
    """
    dims = check_dims(dims, "dims")
    sides = check_dims(sides, "sides")
    if len(sides) != len(dims):
        raise ValueError(
            f"sides has {len(sides)} entries but dims has {len(dims)}"
        )
    ws = _check_weights(weights, len(dims))
    t = math.prod(sides)
    total = 0.0
    for s, a, w in zip(sides, dims, ws):
        total += _per_line_cut(s, a) * (t // s) * w
    return total


def best_weighted_cuboid(
    dims: Sequence[int],
    t: int,
    weights: Sequence[float] | None = None,
) -> tuple[tuple[int, ...], float]:
    """Minimum weighted-perimeter cuboid of volume *t*: ``(sides, cut)``.

    Exhaustive over all side tuples (positional, unsorted — weights break
    the symmetry between equal dimensions).
    """
    dims = check_dims(dims, "dims")
    ws = _check_weights(weights, len(dims))
    t = check_subset_size(t, math.prod(dims))

    best: tuple[tuple[int, ...], float] | None = None

    def rec(i: int, remaining: int, prefix: tuple[int, ...]) -> None:
        nonlocal best
        if i == len(dims):
            if remaining == 1:
                cut = weighted_cuboid_perimeter(dims, prefix, ws)
                if best is None or cut < best[1]:
                    best = (prefix, cut)
            return
        rest = math.prod(dims[i + 1 :]) if i + 1 < len(dims) else 1
        for s in range(1, min(dims[i], remaining) + 1):
            if remaining % s != 0 or remaining // s > rest:
                continue
            rec(i + 1, remaining // s, prefix + (s,))

    rec(0, t, ())
    if best is None:
        raise ValueError(
            f"no cuboid of volume {t} fits inside torus {tuple(dims)}"
        )
    return best


def weighted_torus_bisection(
    dims: Sequence[int], weights: Sequence[float] | None = None
) -> float:
    """Weighted bisection of a torus with per-dimension link capacities.

    Scans perpendicular cuts of every even dimension; the familiar
    "cut the longest dimension" rule of the unweighted case no longer
    holds — a long dimension with wide links can be more expensive to cut
    than a short one with narrow links, which is exactly the effect the
    paper flags for Titan-class machines.
    """
    dims = check_dims(dims, "dims")
    ws = _check_weights(weights, len(dims))
    n = math.prod(dims)
    best = math.inf
    for k, (a, w) in enumerate(zip(dims, ws)):
        if a % 2 != 0 or a == 1:
            continue
        per_line = 2 if a >= 3 else 1
        best = min(best, per_line * (n // a) * w)
    if best is math.inf:
        raise ValueError(
            f"torus {tuple(dims)} has no even dimension; no perpendicular "
            "bisection exists"
        )
    return best


def dragonfly_group_cut(
    a: int = 16,
    h: int = 6,
    row_capacity: float = 1.0,
    col_capacity: float = 3.0,
    rows_taken: int = 8,
    cols_taken: int | None = None,
) -> float:
    """Weighted cut of an intra-group split of a Dragonfly group.

    A group is ``K_a × K_h`` with row links of capacity *row_capacity*
    and column links of capacity *col_capacity*.  Taking *rows_taken*
    rows (of the ``K_a`` clique) and optionally only *cols_taken* columns
    cuts:

    * row-clique edges between taken and untaken rows within each taken
      column, and
    * column-clique edges between taken and untaken columns within each
      taken row (if ``cols_taken`` is given).

    With the Aries capacities (1 and 3) this quantifies the paper's point
    that splitting across the ``K_6`` backplane is 3× as expensive per
    link as splitting the ``K_16`` rows.
    """
    if not 0 <= rows_taken <= a:
        raise ValueError(f"rows_taken must be in [0, {a}], got {rows_taken}")
    cols = h if cols_taken is None else cols_taken
    if not 0 <= cols <= h:
        raise ValueError(f"cols_taken must be in [0, {h}], got {cols_taken}")
    row_cut = rows_taken * (a - rows_taken) * cols * row_capacity
    col_cut = cols * (h - cols) * rows_taken * col_capacity
    return row_cut + col_cut
