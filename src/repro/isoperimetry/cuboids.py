"""Cuboid subsets of tori: exact perimeters, constructions, optimizers.

The paper's Lemma 3.2 constructs cuboids whose cut size matches the
Theorem 3.1 bound, and Lemma 3.3 shows those cuboids are isoperimetric
*among cuboids*.  This module provides:

* :func:`cuboid_perimeter` / :func:`cuboid_interior` — exact counting for
  an axis-aligned cuboid ``[s_1] × ... × [s_D]`` inside the torus
  ``[a_1] × ... × [a_D]`` under the simple-graph convention of
  :class:`repro.topology.torus.Torus`;
* :func:`lemma_3_2_cuboid` — the explicit construction ``S_r`` when
  ``(t / k_r)^{1/(D-r)}`` is an integer;
* :func:`enumerate_cuboid_shapes` / :func:`best_cuboid` — exhaustive
  optimization over all cuboid shapes of a given volume (the quantity the
  paper uses to rank partition geometries);
* :func:`cuboid_vertices` — materialize a cuboid as a vertex set for
  cross-checking against :meth:`Topology.cut_weight`.

All functions take torus dimensions in any order and sort internally when
the result is order-independent; shape tuples returned are aligned with
the *sorted descending* dimensions (the paper's canonical form).
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Iterator, Sequence

from .._validation import check_dims, check_subset_size
from ..caching import memoized

__all__ = [
    "cuboid_perimeter",
    "cuboid_interior",
    "cuboid_vertices",
    "lemma_3_2_cuboid",
    "enumerate_cuboid_shapes",
    "best_cuboid",
    "worst_cuboid",
    "cuboid_profile",
]


def _per_line_cut(side: int, dim: int) -> int:
    """Cut edges contributed per line by an interval of *side* in a ring
    of length *dim* (simple-graph convention)."""
    if side > dim:
        raise ValueError(f"cuboid side {side} exceeds dimension {dim}")
    if side == dim or dim == 1:
        return 0
    if dim == 2:
        return 1  # single edge between the two layers
    if side == 1 or side < dim:
        return 2
    return 0


def cuboid_perimeter(dims: Sequence[int], sides: Sequence[int]) -> int:
    """Exact perimeter ``|E(S, S̄)|`` of an axis-aligned cuboid.

    Parameters
    ----------
    dims:
        Torus dimensions ``(a_1, ..., a_D)``.
    sides:
        Cuboid side lengths ``(s_1, ..., s_D)`` with ``1 <= s_i <= a_i``,
        aligned positionally with *dims*.

    Notes
    -----
    Dimension ``i`` contributes ``c_i · t / s_i`` cut edges, where ``t``
    is the cuboid volume and ``c_i`` is 0 if the cuboid covers the
    dimension, 1 if ``a_i == 2`` (single edge), else 2 (both faces of a
    proper cycle).

    Examples
    --------
    >>> cuboid_perimeter((4, 4), (2, 2))   # a 2x2 square in the 4x4 torus
    8
    >>> cuboid_perimeter((4, 4), (4, 2))   # a full band
    8
    """
    dims = check_dims(dims, "dims")
    sides = check_dims(sides, "sides")
    if len(sides) != len(dims):
        raise ValueError(
            f"sides has {len(sides)} entries but dims has {len(dims)}"
        )
    t = math.prod(sides)
    total = 0
    for s, a in zip(sides, dims):
        total += _per_line_cut(s, a) * (t // s)
    return total


def cuboid_interior(dims: Sequence[int], sides: Sequence[int]) -> int:
    """Exact interior edge count ``|E(S, S)|`` of an axis-aligned cuboid.

    For each dimension, an interval of length ``s`` in a ring of length
    ``a`` induces ``s`` internal edges if it wraps (``s == a >= 3``),
    ``s - 1`` if it is a proper path, and 1 if ``s == a == 2``.
    """
    dims = check_dims(dims, "dims")
    sides = check_dims(sides, "sides")
    if len(sides) != len(dims):
        raise ValueError(
            f"sides has {len(sides)} entries but dims has {len(dims)}"
        )
    t = math.prod(sides)
    total = 0
    for s, a in zip(sides, dims):
        if a == 1:
            continue
        if s == a:
            per_line = s if a >= 3 else 1
        else:
            per_line = s - 1
        total += per_line * (t // s)
    return total


def cuboid_vertices(sides: Sequence[int]) -> Iterator[tuple[int, ...]]:
    """Vertices of the origin-anchored cuboid ``[s_1] × ... × [s_D]``."""
    sides = check_dims(sides, "sides")
    return itertools.product(*(range(s) for s in sides))


def lemma_3_2_cuboid(dims: Sequence[int], t: int) -> tuple[int, ...] | None:
    """The explicit optimal cuboid ``S_r`` of Lemma 3.2, when it exists.

    With dimensions sorted descending ``a_1 >= ... >= a_D``, tries every
    ``r``: the construction fully covers the ``r`` smallest dimensions
    (product ``k_r``) and is a cube of side ``(t / k_r)^{1/(D-r)}`` in the
    rest.  Returns the side tuple aligned with the sorted dimensions, or
    ``None`` if no ``r`` yields an integral side that fits.

    Examples
    --------
    >>> lemma_3_2_cuboid((6, 4, 2), 16)    # r = 2: side 2 x full 4 x full 2
    (2, 4, 2)
    """
    dims = check_dims(dims, "dims")
    a = sorted(dims, reverse=True)
    D = len(a)
    t = check_subset_size(t, math.prod(a))
    best: tuple[int, tuple[int, ...]] | None = None
    for r in range(D):
        k = math.prod(a[D - r :]) if r > 0 else 1
        if t % k != 0:
            continue
        q = t // k
        m = D - r
        side = round(q ** (1.0 / m))
        hit = None
        for cand in (side - 1, side, side + 1):
            if cand >= 1 and cand**m == q:
                hit = cand
                break
        if hit is None:
            continue
        if any(hit > a[i] for i in range(m)):
            continue
        shape = tuple([hit] * m + a[D - r :])
        per = cuboid_perimeter(tuple(a), shape)
        if best is None or per < best[0]:
            best = (per, shape)
    return best[1] if best else None


def enumerate_cuboid_shapes(
    dims: Sequence[int], t: int
) -> Iterator[tuple[int, ...]]:
    """All cuboid side tuples of volume *t* inside the torus *dims*.

    Dimensions are sorted descending internally; yielded tuples are
    aligned with the sorted dimensions.  Shapes that are identical up to
    the ordering of *equal* host dimensions are yielded once.
    """
    dims = check_dims(dims, "dims")
    a = sorted(dims, reverse=True)
    t = check_subset_size(t, math.prod(a))

    seen: set[tuple[int, ...]] = set()

    def rec(i: int, remaining: int, prefix: tuple[int, ...]) -> Iterator[tuple[int, ...]]:
        if i == len(a):
            if remaining == 1:
                key = prefix
                if key not in seen:
                    seen.add(key)
                    yield prefix
            return
        # Upper bound on the product of the remaining dimensions.
        rest = math.prod(a[i + 1 :]) if i + 1 < len(a) else 1
        for s in range(1, min(a[i], remaining) + 1):
            if remaining % s != 0:
                continue
            if remaining // s > rest:
                continue
            yield from rec(i + 1, remaining // s, prefix + (s,))

    yield from rec(0, t, ())


@memoized()
def _cuboid_extremes(
    a: tuple[int, ...], t: int
) -> tuple[tuple[tuple[int, ...], int], tuple[tuple[int, ...], int]] | None:
    """((best shape, min per), (worst shape, max per)) or ``None``.

    One exhaustive enumeration serves both bounds; memoized because the
    isoperimetric profile and the allocation rankings re-evaluate the
    same (sorted torus, volume) pairs across sweep grids.
    """
    best: tuple[tuple[int, ...], int] | None = None
    worst: tuple[tuple[int, ...], int] | None = None
    for shape in enumerate_cuboid_shapes(a, t):
        per = cuboid_perimeter(a, shape)
        if best is None or per < best[1]:
            best = (shape, per)
        if worst is None or per > worst[1]:
            worst = (shape, per)
    if best is None or worst is None:
        return None
    return best, worst


def best_cuboid(dims: Sequence[int], t: int) -> tuple[tuple[int, ...], int]:
    """Minimum-perimeter cuboid of volume *t*: ``(shape, perimeter)``.

    This realizes Lemma 3.3's optimum by exhaustive search over all
    cuboid shapes, so it is correct even when the Lemma 3.2 construction
    does not exist for the given *t*.  Memoized per (sorted dims, t).

    Raises :class:`ValueError` when no cuboid of volume *t* fits.
    """
    dims = check_dims(dims, "dims")
    a = tuple(sorted(dims, reverse=True))
    extremes = _cuboid_extremes(a, check_subset_size(t, math.prod(a)))
    if extremes is None:
        raise ValueError(
            f"no cuboid of volume {t} fits inside torus {tuple(dims)}"
        )
    return extremes[0]


def worst_cuboid(dims: Sequence[int], t: int) -> tuple[tuple[int, ...], int]:
    """Maximum-perimeter cuboid of volume *t*: ``(shape, perimeter)``.

    Useful for bounding how *bad* an allocation geometry can get.
    Memoized per (sorted dims, t), sharing one enumeration with
    :func:`best_cuboid`.
    """
    dims = check_dims(dims, "dims")
    a = tuple(sorted(dims, reverse=True))
    extremes = _cuboid_extremes(a, check_subset_size(t, math.prod(a)))
    if extremes is None:
        raise ValueError(
            f"no cuboid of volume {t} fits inside torus {tuple(dims)}"
        )
    return extremes[1]


def cuboid_profile(dims: Sequence[int]) -> dict[int, int]:
    """Minimum cuboid perimeter for every achievable volume ``t <= |V|/2``.

    Returns a mapping ``t -> min perimeter`` covering every ``t`` for
    which some cuboid of volume ``t`` exists.  This is the cuboid
    isoperimetric profile of the torus, the object Figures 1 and 2 of the
    paper plot (restricted to midplane-aligned volumes).
    """
    dims = check_dims(dims, "dims")
    a = tuple(sorted(dims, reverse=True))
    total = math.prod(a)
    out: dict[int, int] = {}
    half = total // 2

    def rec(i: int, vol: int, shape: list[int]) -> None:
        if i == len(a):
            per = cuboid_perimeter(a, tuple(shape))
            if vol not in out or per < out[vol]:
                out[vol] = per
            return
        for s in range(1, a[i] + 1):
            nv = vol * s
            if nv > half:
                break  # larger sides only grow the volume further
            shape.append(s)
            rec(i + 1, nv, shape)
            shape.pop()

    rec(0, 1, [])
    return out
