"""Harper's theorem: the edge-isoperimetric problem on hypercubes.

Harper (1964) solved the edge-isoperimetric problem for the hypercube
``Q_d``: initial segments of the *binary order* (vertices taken in
increasing order of their integer labels) minimize the edge boundary
among all sets of the same size.  For ``t = 2^m`` the optimal set is an
``m``-dimensional subcube with boundary ``2^m (d - m)``.

Section 5 of the paper notes that for hypercube-based machines such as
Pleiades "the edge-isoperimetric problem is long solved [Harper], and so
our method is directly usable" — this module is that direct usability:
:func:`harper_min_boundary` gives exact optimal perimeters for any subset
size, and :func:`hypercube_partition_bandwidth` ranks allocation choices
exactly as :mod:`repro.allocation` does for tori.
"""

from __future__ import annotations

from .._validation import check_nonnegative_int, check_subset_size

__all__ = [
    "harper_set",
    "harper_boundary_of_initial_segment",
    "harper_min_boundary",
    "subcube_boundary",
    "hypercube_partition_bandwidth",
]


def harper_set(d: int, t: int) -> list[int]:
    """The first *t* vertices of ``Q_d`` in Harper's binary order.

    These are simply the integers ``0 .. t-1``; Harper's theorem says this
    initial segment has minimum edge boundary among all size-*t* subsets.
    """
    d = check_nonnegative_int(d, "d")
    t = check_subset_size(t, 1 << d)
    return list(range(t))


def harper_boundary_of_initial_segment(d: int, t: int) -> int:
    """Edge boundary of the initial segment ``{0, ..., t-1}`` in ``Q_d``.

    Counted directly: for each ``x < t`` and each bit ``k``, the neighbor
    ``x ^ 2^k`` is outside iff it is ``>= t``.  O(t·d) time, which is fine
    for the dimensions arising in allocation analysis.
    """
    d = check_nonnegative_int(d, "d")
    t = check_subset_size(t, 1 << d)
    boundary = 0
    for x in range(t):
        for k in range(d):
            if x ^ (1 << k) >= t:
                boundary += 1
    return boundary


def harper_min_boundary(d: int, t: int) -> int:
    """Minimum edge boundary of any size-*t* subset of ``Q_d`` (Harper).

    Examples
    --------
    >>> harper_min_boundary(3, 4)    # a 2-subcube inside Q_3
    4
    >>> harper_min_boundary(4, 8)    # bisection of Q_4
    8
    """
    return harper_boundary_of_initial_segment(d, t)


def subcube_boundary(d: int, m: int) -> int:
    """Boundary of an ``m``-subcube in ``Q_d``: ``2^m (d - m)``.

    Agrees with :func:`harper_min_boundary` at ``t = 2^m`` (the initial
    segment of a power-of-two size *is* a subcube).
    """
    d = check_nonnegative_int(d, "d")
    m = check_nonnegative_int(m, "m")
    if m > d:
        raise ValueError(f"subcube dimension {m} exceeds cube dimension {d}")
    return (1 << m) * (d - m)


def hypercube_partition_bandwidth(d: int, partition_dim: int) -> int:
    """Internal bisection bandwidth of a ``partition_dim``-subcube
    allocation inside ``Q_d``.

    A subcube partition of ``Q_d`` is itself a hypercube
    ``Q_{partition_dim}``; its internal bisection cuts one dimension:
    ``2^{partition_dim - 1}`` links.  Unlike tori, *all* subcube
    allocations of equal size are isomorphic, so hypercube allocation
    policies cannot exhibit the geometry spread the paper finds on Blue
    Gene/Q — the interesting hypercube question is only whether
    non-subcube allocations are permitted (they lose bandwidth, by
    Harper's theorem).
    """
    d = check_nonnegative_int(d, "d")
    partition_dim = check_nonnegative_int(partition_dim, "partition_dim")
    if partition_dim > d:
        raise ValueError(
            f"partition dimension {partition_dim} exceeds machine "
            f"dimension {d}"
        )
    if partition_dim == 0:
        return 0
    return 1 << (partition_dim - 1)
