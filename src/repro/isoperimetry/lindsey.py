"""Lindsey's theorem: edge-isoperimetry on Cartesian products of cliques.

Lindsey (1964) solved the edge-isoperimetric problem for Cartesian
products of cliques ``K_{a_1} × ... × K_{a_D}`` — the graphs of regular
HyperX networks (Section 5 of the paper): initial segments of the
lexicographic order *with dimensions taken in descending size* are
isoperimetric.  Intuitively, one fills the largest clique first (a whole
``K_{a_1}`` line), then the next line, completing "rows" before starting
new ones.

The paper uses this to apply its allocation analysis to HyperX machines:
:func:`hyperx_bisection` reproduces Ahn et al.'s bisection rule (half the
vertices of one clique times everything else), and
:func:`lindsey_min_boundary` gives the exact optimal perimeter for any
subset size.
"""

from __future__ import annotations

import math
from collections.abc import Iterator, Sequence

from .._validation import check_dims, check_subset_size

__all__ = [
    "lindsey_order",
    "lindsey_set",
    "lindsey_boundary_of_initial_segment",
    "lindsey_min_boundary",
    "hyperx_bisection",
]


def lindsey_order(dims: Sequence[int]) -> Iterator[tuple[int, ...]]:
    """Vertices of ``K_{a_1} × ... × K_{a_D}`` in Lindsey's order.

    *dims* must be given (or is first sorted) in descending order; the
    yielded coordinate tuples are aligned with the sorted dimensions.
    The order is lexicographic with the **largest** dimension varying
    fastest — i.e. coordinate ``D`` (smallest clique) is the most
    significant digit.
    """
    dims = check_dims(dims, "dims")
    a = tuple(sorted(dims, reverse=True))
    # itertools.product varies the last range fastest, so feed the
    # dimensions most-significant-first = smallest-first, then reverse
    # each tuple back into descending-dims coordinate order.
    import itertools

    for rev in itertools.product(*(range(x) for x in reversed(a))):
        yield tuple(reversed(rev))


def lindsey_set(dims: Sequence[int], t: int) -> list[tuple[int, ...]]:
    """The first *t* vertices in Lindsey's order (an isoperimetric set)."""
    dims = check_dims(dims, "dims")
    t = check_subset_size(t, math.prod(dims))
    out: list[tuple[int, ...]] = []
    for v in lindsey_order(dims):
        out.append(v)
        if len(out) == t:
            break
    return out


def lindsey_boundary_of_initial_segment(dims: Sequence[int], t: int) -> int:
    """Edge boundary of the Lindsey initial segment of size *t*.

    Counted combinatorially, dimension by dimension, in O(D) arithmetic:
    write ``t`` in the mixed radix of the descending dimensions; the
    segment is a stack of full "slabs" plus a recursive prefix, and in a
    clique every inside/outside pair within a line contributes one edge.
    """
    dims = check_dims(dims, "dims")
    a = tuple(sorted(dims, reverse=True))
    t = check_subset_size(t, math.prod(a))
    total = math.prod(a)

    boundary = 0
    remaining = t
    volume = total
    # Process from the most significant digit (smallest dim, index D-1)
    # down to the least significant (largest dim, index 0).
    for i in range(len(a) - 1, -1, -1):
        volume //= a[i]  # volume of one layer along dimension i
        full_layers = remaining // volume
        rem = remaining % volume
        # Within each line of dimension i, the segment has `full_layers`
        # complete entries, plus possibly a partial layer.
        #
        # Cross edges in dimension i between the set and its complement:
        #  - lines through the `rem` partial region: full_layers + 1 inside
        #    entries (the partial layer counts for those lines), a[i] -
        #    full_layers - 1 outside.
        #  - remaining lines: full_layers inside, a[i] - full_layers outside.
        inside_full = full_layers
        lines = volume
        part = rem  # number of lines having one extra inside entry
        boundary += part * (inside_full + 1) * (a[i] - inside_full - 1)
        boundary += (lines - part) * inside_full * (a[i] - inside_full)
        remaining = rem
    return boundary


def lindsey_min_boundary(dims: Sequence[int], t: int) -> int:
    """Minimum edge boundary of any size-*t* subset of the clique product
    (Lindsey's theorem).

    Examples
    --------
    Half of ``K_4 × K_2`` (two full ``K_4`` lines... i.e. one layer of the
    ``K_2`` dimension): only the 4 ``K_2`` edges are cut:

    >>> lindsey_min_boundary((4, 2), 4)
    4
    """
    return lindsey_boundary_of_initial_segment(dims, t)


def hyperx_bisection(
    dims: Sequence[int], weights: Sequence[float] | None = None
) -> float:
    """Bisection bandwidth of a HyperX network (Ahn et al. 2009).

    The bisection is attained by taking half the vertices of one clique
    ``K_{a_i}`` and all vertices elsewhere; the cut consists of
    ``⌊a_i/2⌋ · ⌈a_i/2⌉`` clique edges per line, weighted by that
    dimension's link capacity.  Returns the minimum over dimensions.
    """
    dims = check_dims(dims, "dims")
    if weights is None:
        ws: tuple[float, ...] = (1.0,) * len(dims)
    else:
        ws = tuple(float(w) for w in weights)
        if len(ws) != len(dims):
            raise ValueError(
                f"weights has {len(ws)} entries but dims has {len(dims)}"
            )
    total = math.prod(dims)
    best = math.inf
    for a, w in zip(dims, ws):
        if a < 2:
            continue
        lines = total // a
        cut = (a // 2) * (a - a // 2) * lines * w
        best = min(best, cut)
    if best is math.inf:
        raise ValueError("network has no dimension of size >= 2")
    return best
