"""Spectral approximations of expansion (Cheeger-style bounds).

The paper's related-work section points to spectral methods (Lee, Oveis
Gharan & Trevisan 2014) for approximating small-set expansion on
*arbitrary* graphs — useful when no combinatorial solution like
Theorem 3.1, Harper, or Lindsey is available.  This module provides the
classical machinery:

* :func:`algebraic_connectivity` — the second-smallest Laplacian
  eigenvalue ``λ_2`` (normalized or unnormalized);
* :func:`cheeger_bounds` — the discrete Cheeger inequality
  ``λ̂_2 / 2 <= h(G) <= sqrt(2 λ̂_2)`` for the conductance ``h(G)``
  (normalized Laplacian);
* :func:`fiedler_cut` — the sweep cut of the Fiedler vector, a concrete
  set witnessing expansion close to the Cheeger upper bound;
* :func:`spectral_expansion_estimate` — a convenience wrapper combining
  the above into lower/upper estimates plus a witness.

Dense :func:`scipy.linalg.eigh` is used below a size threshold and
sparse Lanczos above it; both paths are deterministic.
"""

from __future__ import annotations

import numpy as np

from ..topology.base import Topology, Vertex

__all__ = [
    "laplacian_matrix",
    "algebraic_connectivity",
    "cheeger_bounds",
    "fiedler_cut",
    "spectral_expansion_estimate",
]

#: Above this vertex count, use sparse eigensolvers.
DENSE_LIMIT = 600


def laplacian_matrix(
    topo: Topology, normalized: bool = False
) -> tuple[np.ndarray, list[Vertex]]:
    """Weighted (optionally normalized) Laplacian and the vertex order.

    Returns ``(L, vertices)`` where row/column ``i`` of ``L`` corresponds
    to ``vertices[i]``.
    """
    verts = list(topo.vertices())
    index = {v: i for i, v in enumerate(verts)}
    n = len(verts)
    L = np.zeros((n, n), dtype=float)
    for v in verts:
        i = index[v]
        for u, w in topo.neighbors(v):
            j = index[u]
            L[i, j] -= w
            L[i, i] += w
    if normalized:
        deg = np.diag(L).copy()
        with np.errstate(divide="ignore"):
            inv_sqrt = np.where(deg > 0, 1.0 / np.sqrt(deg), 0.0)
        L = L * inv_sqrt[:, None] * inv_sqrt[None, :]
    return L, verts


def algebraic_connectivity(topo: Topology, normalized: bool = False) -> float:
    """Second-smallest eigenvalue of the (normalized) Laplacian.

    Zero iff the graph is disconnected.
    """
    L, _ = laplacian_matrix(topo, normalized=normalized)
    n = L.shape[0]
    if n <= 1:
        return 0.0
    if n <= DENSE_LIMIT:
        from scipy.linalg import eigh

        vals = eigh(L, eigvals_only=True, subset_by_index=(0, 1))
        return float(vals[1])
    from scipy.sparse import csr_matrix
    from scipy.sparse.linalg import eigsh

    vals = eigsh(
        csr_matrix(L), k=2, which="SM", return_eigenvectors=False, tol=1e-9
    )
    return float(sorted(vals)[1])


def cheeger_bounds(topo: Topology) -> tuple[float, float]:
    """Cheeger bounds ``(λ̂_2 / 2, sqrt(2 λ̂_2))`` on the conductance.

    The conductance here is ``min_S cut(S) / min(vol(S), vol(S̄))`` with
    volumes measured in weighted degree, matching the small-set expansion
    denominator of the paper at ``t = |V|/2``.
    """
    lam = algebraic_connectivity(topo, normalized=True)
    lam = max(lam, 0.0)
    return (lam / 2.0, float(np.sqrt(2.0 * lam)))


def fiedler_cut(topo: Topology) -> tuple[set[Vertex], float]:
    """Sweep cut of the Fiedler vector: ``(subset, conductance)``.

    Sorts vertices by the second eigenvector of the normalized Laplacian
    and returns the prefix with the best conductance — the constructive
    half of the Cheeger inequality.
    """
    L, verts = laplacian_matrix(topo, normalized=True)
    n = len(verts)
    if n < 2:
        raise ValueError("fiedler_cut requires at least 2 vertices")
    if n <= DENSE_LIMIT:
        from scipy.linalg import eigh

        _, vecs = eigh(L, subset_by_index=(0, 1))
        fiedler = vecs[:, 1]
    else:
        from scipy.sparse import csr_matrix
        from scipy.sparse.linalg import eigsh

        vals, vecs = eigsh(csr_matrix(L), k=2, which="SM", tol=1e-9)
        order = np.argsort(vals)
        fiedler = vecs[:, order[1]]
    order = np.argsort(fiedler, kind="stable")
    degrees = np.array([topo.weighted_degree(v) for v in verts])
    total_vol = degrees.sum()

    best_set: set[Vertex] = set()
    best_cond = np.inf
    current: set[Vertex] = set()
    vol = 0.0
    cut = 0.0
    for idx in order[:-1]:
        v = verts[idx]
        # Update the running cut: edges to inside vanish, to outside appear.
        for u, w in topo.neighbors(v):
            if u in current:
                cut -= w
            else:
                cut += w
        current.add(v)
        vol += degrees[idx]
        denom = min(vol, total_vol - vol)
        if denom > 0:
            cond = cut / denom
            if cond < best_cond:
                best_cond = cond
                best_set = set(current)
    return best_set, float(best_cond)


def spectral_expansion_estimate(topo: Topology) -> dict:
    """Lower/upper spectral estimates of conductance plus a witness cut.

    Returns a dict with keys ``lower`` (Cheeger lower bound), ``upper``
    (conductance of the Fiedler sweep cut — a certified upper bound
    because it is achieved by an explicit set), ``cheeger_upper``
    (``sqrt(2 λ̂_2)``) and ``witness`` (the sweep-cut set).
    """
    lower, cheeger_upper = cheeger_bounds(topo)
    witness, achieved = fiedler_cut(topo)
    return {
        "lower": lower,
        "upper": achieved,
        "cheeger_upper": cheeger_upper,
        "witness": witness,
    }
