"""Edge-isoperimetric analysis (S2/S3 in DESIGN.md) — the paper's theory.

* :mod:`~repro.isoperimetry.bounds` — Theorem 2.1 (Bollobás–Leader) and
  the paper's Theorem 3.1 for arbitrary tori;
* :mod:`~repro.isoperimetry.cuboids` — exact cuboid perimeters, the
  Lemma 3.2 construction, exhaustive cuboid optimizers;
* :mod:`~repro.isoperimetry.exact` — brute-force oracles and conjecture
  probing;
* :mod:`~repro.isoperimetry.harper` — hypercubes (Harper 1964);
* :mod:`~repro.isoperimetry.lindsey` — clique products / HyperX
  (Lindsey 1964);
* :mod:`~repro.isoperimetry.mesh2d` — 2-D grids (Ahlswede–Bezrukov 1995);
* :mod:`~repro.isoperimetry.weighted` — weighted tori and Dragonfly
  groups;
* :mod:`~repro.isoperimetry.expansion` — small-set expansion and the
  contention lower bounds of Ballard et al.;
* :mod:`~repro.isoperimetry.spectral` — Cheeger bounds and Fiedler sweep
  cuts for arbitrary graphs.
"""

from .bounds import (
    BoundResult,
    bollobas_leader_bound,
    bound_is_attained,
    reduced_torus_bound,
    torus_isoperimetric_bound,
)
from .cuboids import (
    best_cuboid,
    cuboid_interior,
    cuboid_perimeter,
    cuboid_profile,
    cuboid_vertices,
    enumerate_cuboid_shapes,
    lemma_3_2_cuboid,
    worst_cuboid,
)
from .exact import (
    ExactSolver,
    conjecture_counterexample,
    exact_isoperimetric_set,
    exact_min_perimeter,
    exact_profile,
)
from .expansion import (
    contention_lower_bound,
    expansion_attained_at_bisection,
    small_set_expansion_exact,
    torus_small_set_expansion,
)
from .harper import (
    harper_min_boundary,
    harper_set,
    hypercube_partition_bandwidth,
    subcube_boundary,
)
from .lindsey import (
    hyperx_bisection,
    lindsey_min_boundary,
    lindsey_order,
    lindsey_set,
)
from .mesh2d import (
    mesh2d_min_boundary,
    mesh2d_optimal_set,
    quasi_square_set,
)
from .spectral import (
    algebraic_connectivity,
    cheeger_bounds,
    fiedler_cut,
    spectral_expansion_estimate,
)
from .weighted import (
    best_weighted_cuboid,
    dragonfly_group_cut,
    weighted_cuboid_perimeter,
    weighted_torus_bisection,
)

__all__ = [
    "BoundResult",
    "bollobas_leader_bound",
    "torus_isoperimetric_bound",
    "reduced_torus_bound",
    "bound_is_attained",
    "cuboid_perimeter",
    "cuboid_interior",
    "cuboid_vertices",
    "lemma_3_2_cuboid",
    "enumerate_cuboid_shapes",
    "best_cuboid",
    "worst_cuboid",
    "cuboid_profile",
    "ExactSolver",
    "exact_min_perimeter",
    "exact_isoperimetric_set",
    "exact_profile",
    "conjecture_counterexample",
    "harper_set",
    "harper_min_boundary",
    "subcube_boundary",
    "hypercube_partition_bandwidth",
    "lindsey_order",
    "lindsey_set",
    "lindsey_min_boundary",
    "hyperx_bisection",
    "mesh2d_min_boundary",
    "mesh2d_optimal_set",
    "quasi_square_set",
    "weighted_cuboid_perimeter",
    "best_weighted_cuboid",
    "weighted_torus_bisection",
    "dragonfly_group_cut",
    "small_set_expansion_exact",
    "torus_small_set_expansion",
    "expansion_attained_at_bisection",
    "contention_lower_bound",
    "algebraic_connectivity",
    "cheeger_bounds",
    "fiedler_cut",
    "spectral_expansion_estimate",
]
