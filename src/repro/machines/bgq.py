"""IBM Blue Gene/Q machine model.

Blue Gene/Q systems (Chen et al. 2012) are 5-D tori where at least one
dimension has length exactly 2.  The building block is the **midplane**:
512 compute nodes arranged as a ``4 × 4 × 4 × 4 × 2`` torus; a rack holds
two midplanes.  Machines and their partitions are cuboids of midplanes,
so the paper represents everything as **4-D tori of midplanes**, always
written in sorted (descending) order — the canonical representation that
treats rotations of a geometry as one.

Key facts encoded here (all from Section 2 of the paper):

* node dimensions of a machine with midplane dimensions
  ``(M_1, M_2, M_3, M_4)`` are ``(4·M_1, 4·M_2, 4·M_3, 4·M_4, 2)``;
* the bisection bandwidth of a Blue Gene/Q network is ``2 · N / L · B``
  (``N`` nodes, ``L`` longest dimension, ``B`` link capacity), which for
  a partition of ``P`` midplanes with largest midplane dimension ``A_1``
  gives the *normalized* (``B = 1``) bandwidth ``256 · P / A_1``;
* partitions keep wrap-around links even when not covering a machine
  dimension, so a partition is itself a torus;
* one link moves 2 GB/s per direction.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from .._validation import check_dims
from ..caching import memoized
from ..topology.torus import Torus

__all__ = [
    "MIDPLANE_NODE_DIMS",
    "NODES_PER_MIDPLANE",
    "MIDPLANES_PER_RACK",
    "LINK_BANDWIDTH_GB_PER_S",
    "midplane_to_node_dims",
    "normalized_bisection_bandwidth",
    "bgq_bisection_formula",
    "BlueGeneQMachine",
]

#: Node-level torus dimensions of a single midplane.
MIDPLANE_NODE_DIMS: tuple[int, ...] = (4, 4, 4, 4, 2)

#: Compute nodes in one midplane (product of MIDPLANE_NODE_DIMS).
NODES_PER_MIDPLANE: int = 512

#: Midplanes per physical rack.
MIDPLANES_PER_RACK: int = 2

#: Capacity of one bidirectional link, GB/s per direction (Chen et al.).
LINK_BANDWIDTH_GB_PER_S: float = 2.0


def midplane_to_node_dims(midplane_dims: Sequence[int]) -> tuple[int, ...]:
    """Node-level 5-D torus dimensions of a midplane cuboid.

    Each of the four midplane dimensions spans 4 nodes; the fifth (E)
    dimension of length 2 is internal to every midplane.

    Examples
    --------
    >>> midplane_to_node_dims((4, 4, 3, 2))      # Mira
    (16, 16, 12, 8, 2)
    """
    dims = check_dims(midplane_dims, "midplane_dims")
    if len(dims) != 4:
        raise ValueError(
            f"midplane geometries are 4-dimensional, got {len(dims)} "
            "dimensions"
        )
    return tuple(4 * a for a in dims) + (2,)


def bgq_bisection_formula(num_nodes: int, longest_dim: int) -> int:
    """The Blue Gene/Q bisection bandwidth ``2 · N / L`` (normalized).

    *longest_dim* is the longest node-level dimension; valid whenever it
    is even and at least 4 (true for every whole-midplane cuboid).
    """
    if num_nodes <= 0:
        raise ValueError(f"num_nodes must be positive, got {num_nodes}")
    if longest_dim < 4 or longest_dim % 2 != 0:
        raise ValueError(
            "the 2N/L formula requires an even longest dimension >= 4, "
            f"got {longest_dim}"
        )
    if num_nodes % longest_dim != 0:
        raise ValueError(
            f"num_nodes={num_nodes} is not a multiple of "
            f"longest_dim={longest_dim}"
        )
    return 2 * num_nodes // longest_dim


@memoized()
def _bisection_of_node_dims(node_dims: tuple[int, ...]) -> int:
    return Torus(node_dims).bisection_width()


def normalized_bisection_bandwidth(midplane_dims: Sequence[int]) -> int:
    """Normalized internal bisection bandwidth of a midplane cuboid.

    Computed from the node-level torus via the perpendicular-cut rule
    (equivalently ``256 · P / A_1`` with ``P`` midplanes and largest
    midplane dimension ``A_1``); each link contributes 1 unit, matching
    the numbers in the paper's tables and figures.  Memoized: geometry
    enumeration asks for the same cuboid's bandwidth once per candidate
    per sort key, and the sweep drivers ask across whole grids.

    Examples
    --------
    >>> normalized_bisection_bandwidth((4, 1, 1, 1))
    256
    >>> normalized_bisection_bandwidth((2, 2, 1, 1))
    512
    """
    node_dims = midplane_to_node_dims(midplane_dims)
    return _bisection_of_node_dims(node_dims)


class BlueGeneQMachine:
    """A Blue Gene/Q system described by its midplane dimensions.

    Parameters
    ----------
    name:
        Human-readable machine name (e.g. ``"Mira"``).
    midplane_dims:
        4-tuple of midplane counts per dimension; stored sorted
        descending (the canonical representation).

    Examples
    --------
    >>> mira = BlueGeneQMachine("Mira", (4, 4, 3, 2))
    >>> mira.num_nodes
    49152
    >>> mira.node_dims
    (16, 16, 12, 8, 2)
    >>> mira.bisection_bandwidth()
    6144
    """

    def __init__(self, name: str, midplane_dims: Sequence[int]):
        if not name:
            raise ValueError("machine name must be non-empty")
        dims = check_dims(midplane_dims, "midplane_dims")
        if len(dims) != 4:
            raise ValueError(
                "Blue Gene/Q machines are 4-D tori of midplanes, got "
                f"{len(dims)} dimensions"
            )
        self._name = str(name)
        self._dims = tuple(sorted(dims, reverse=True))

    @property
    def name(self) -> str:
        """Machine name."""
        return self._name

    @property
    def midplane_dims(self) -> tuple[int, int, int, int]:
        """Midplane dimensions, sorted descending."""
        return self._dims  # type: ignore[return-value]

    @property
    def num_midplanes(self) -> int:
        """Total midplanes in the machine."""
        return math.prod(self._dims)

    @property
    def num_racks(self) -> int:
        """Physical racks (2 midplanes per rack)."""
        return -(-self.num_midplanes // MIDPLANES_PER_RACK)

    @property
    def num_nodes(self) -> int:
        """Total compute nodes (512 per midplane)."""
        return NODES_PER_MIDPLANE * self.num_midplanes

    @property
    def node_dims(self) -> tuple[int, ...]:
        """Node-level 5-D torus dimensions."""
        return midplane_to_node_dims(self._dims)

    def network(self) -> Torus:
        """The machine's full node-level torus network graph.

        Note: for the large production machines this torus has tens of
        thousands of vertices — fine for routing/bandwidth computations,
        but not for brute-force isoperimetry.
        """
        return Torus(self.node_dims)

    def midplane_network(self) -> Torus:
        """The machine's 4-D torus of midplanes."""
        return Torus(self._dims)

    def bisection_bandwidth(self, link_bandwidth: float | None = None) -> float:
        """Bisection bandwidth of the whole machine.

        With the default (no *link_bandwidth*) this is the normalized
        integer value used throughout the paper; pass
        :data:`LINK_BANDWIDTH_GB_PER_S` for GB/s.
        """
        # None sentinel, not a `link_bandwidth == 1.0` fast path: "no
        # scaling requested" is an argument-presence question, not a
        # float comparison (staticcheck float-eq), and the unscaled
        # value stays the paper's integer.
        norm = normalized_bisection_bandwidth(self._dims)
        if link_bandwidth is None:
            return norm
        return norm * link_bandwidth

    def fits(self, midplane_dims: Sequence[int]) -> bool:
        """Whether a midplane cuboid with the given dimensions fits.

        Sorted-componentwise comparison: each partition dimension must fit
        inside a distinct machine dimension.
        """
        dims = check_dims(midplane_dims, "midplane_dims")
        if len(dims) > 4:
            return False
        padded = tuple(sorted(dims, reverse=True)) + (1,) * (4 - len(dims))
        return all(g <= m for g, m in zip(padded, self._dims))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, BlueGeneQMachine)
            and self._name == other._name
            and self._dims == other._dims
        )

    def __hash__(self) -> int:
        return hash((self._name, self._dims))

    def __repr__(self) -> str:
        return f"BlueGeneQMachine({self._name!r}, {self._dims})"
