"""Catalog of the Blue Gene/Q machines analyzed in the paper.

Real systems:

* **Mira** (Argonne National Laboratory) — 49 152 nodes, network
  ``16 × 16 × 12 × 8 × 2``, i.e. ``4 × 4 × 3 × 2`` midplanes.  Mira's
  scheduler only allocates a *predefined list* of partition geometries
  (:data:`MIRA_PREDEFINED_PARTITIONS`, Table 6 of the paper).
* **JUQUEEN** (Jülich Supercomputing Centre) — 28 672 nodes, network
  ``28 × 8 × 8 × 8 × 2``, i.e. ``7 × 2 × 2 × 2`` midplanes.  Any cuboid
  of midplanes that fits is permissible; users may request a geometry or
  just a size (in which case the scheduler picks — possibly badly).
* **Sequoia** (Lawrence Livermore National Laboratory) — 98 304 nodes,
  network ``16 × 16 × 16 × 12 × 2``, i.e. ``4 × 4 × 4 × 3`` midplanes;
  scheduler appears to permit all geometries (like JUQUEEN).

Hypothetical machines of the paper's machine-design section:

* **JUQUEEN-48** — ``4 × 3 × 2 × 2`` (48 midplanes);
* **JUQUEEN-54** — ``3 × 3 × 3 × 2`` (54 midplanes).

Both are subgraphs of Mira's network, hence physically constructible, and
despite having fewer midplanes than JUQUEEN they match or beat its
partition bisection bandwidth at every common size (Table 5 / Figure 7).
"""

from __future__ import annotations

from .bgq import BlueGeneQMachine

__all__ = [
    "MIRA",
    "JUQUEEN",
    "SEQUOIA",
    "JUQUEEN_48",
    "JUQUEEN_54",
    "MACHINES",
    "MIRA_PREDEFINED_PARTITIONS",
    "get_machine",
]

MIRA = BlueGeneQMachine("Mira", (4, 4, 3, 2))
JUQUEEN = BlueGeneQMachine("JUQUEEN", (7, 2, 2, 2))
SEQUOIA = BlueGeneQMachine("Sequoia", (4, 4, 4, 3))
JUQUEEN_48 = BlueGeneQMachine("JUQUEEN-48", (4, 3, 2, 2))
JUQUEEN_54 = BlueGeneQMachine("JUQUEEN-54", (3, 3, 3, 2))

#: All machines by lower-case name.
MACHINES: dict[str, BlueGeneQMachine] = {
    m.name.lower(): m
    for m in (MIRA, JUQUEEN, SEQUOIA, JUQUEEN_48, JUQUEEN_54)
}

#: Mira's predefined partition list: midplane count -> current geometry
#: (Table 6 of the paper, "Current Geometry" column).
MIRA_PREDEFINED_PARTITIONS: dict[int, tuple[int, int, int, int]] = {
    1: (1, 1, 1, 1),
    2: (2, 1, 1, 1),
    4: (4, 1, 1, 1),
    8: (4, 2, 1, 1),
    16: (4, 4, 1, 1),
    24: (4, 3, 2, 1),
    32: (4, 4, 2, 1),
    48: (4, 4, 3, 1),
    64: (4, 4, 2, 2),
    96: (4, 4, 3, 2),
}


def get_machine(name: str) -> BlueGeneQMachine:
    """Look up a machine by (case-insensitive) name.

    Raises :class:`KeyError` with the list of known machines when the
    name is unknown.
    """
    key = name.strip().lower()
    if key not in MACHINES:
        raise KeyError(
            f"unknown machine {name!r}; known machines: "
            f"{sorted(MACHINES)}"
        )
    return MACHINES[key]
