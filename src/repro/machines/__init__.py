"""Blue Gene/Q machine models and catalog (S4 in DESIGN.md)."""

from .bgq import (
    LINK_BANDWIDTH_GB_PER_S,
    MIDPLANE_NODE_DIMS,
    MIDPLANES_PER_RACK,
    NODES_PER_MIDPLANE,
    BlueGeneQMachine,
    bgq_bisection_formula,
    midplane_to_node_dims,
    normalized_bisection_bandwidth,
)
from .catalog import (
    JUQUEEN,
    JUQUEEN_48,
    JUQUEEN_54,
    MACHINES,
    MIRA,
    MIRA_PREDEFINED_PARTITIONS,
    SEQUOIA,
    get_machine,
)

__all__ = [
    "MIDPLANE_NODE_DIMS",
    "NODES_PER_MIDPLANE",
    "MIDPLANES_PER_RACK",
    "LINK_BANDWIDTH_GB_PER_S",
    "BlueGeneQMachine",
    "midplane_to_node_dims",
    "normalized_bisection_bandwidth",
    "bgq_bisection_formula",
    "MIRA",
    "JUQUEEN",
    "SEQUOIA",
    "JUQUEEN_48",
    "JUQUEEN_54",
    "MACHINES",
    "MIRA_PREDEFINED_PARTITIONS",
    "get_machine",
]
