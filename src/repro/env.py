"""Central registry of every ``REPRO_*`` environment knob.

Every environment variable the package reads is declared here — name,
kind, default, and a one-line docstring — and every read goes through
this module's accessors.  The :mod:`repro.staticcheck` ``env-knob``
rule enforces the flow-through statically (``os.environ`` anywhere
else in ``src/`` is a lint finding), and the ``repro lint`` drift
check enforces that each registered knob is documented in
``docs/performance.md`` or ``docs/observability.md`` and vice versa.

Why a registry instead of seven ad-hoc ``os.environ.get`` calls:

* one place to discover every knob (``repro.env.knobs()``),
* uniform truthiness semantics for flag knobs (``0``/``false``/``no``/
  ``off`` disable, case-insensitively — previously three modules each
  had their own copy of that set),
* a lintable contract: an undeclared knob cannot be read by accident,
  and a declared knob cannot silently go undocumented.

Accessors never raise on malformed values: a knob that cannot be
parsed falls back to its default (callers that want to *warn* first,
like :func:`repro.parallel.resolve_jobs`, read the raw string via
:func:`get_raw` and keep their own recovery semantics).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = [
    "Knob",
    "register",
    "knobs",
    "knob",
    "get_raw",
    "get_flag",
    "get_int",
    "is_falsey",
    "is_truthy",
    "check_enabled",
    "FALSEY",
    "TRUTHY",
]

#: Shared truthiness vocabulary for flag-shaped knobs.  A flag knob is
#: *disabled* by any of these (case-insensitive, surrounding whitespace
#: ignored) and enabled by anything else.
FALSEY = frozenset({"", "0", "false", "no", "off"})
TRUTHY = frozenset({"1", "true", "yes", "on"})


def is_falsey(raw: str) -> bool:
    """Whether *raw* spells "off" in the shared flag vocabulary."""
    return raw.strip().lower() in FALSEY


def is_truthy(raw: str) -> bool:
    """Whether *raw* spells "on" (exactly; a path is neither)."""
    return raw.strip().lower() in TRUTHY


@dataclass(frozen=True)
class Knob:
    """Declaration of one environment knob.

    Attributes
    ----------
    name:
        The environment variable, always ``REPRO_*``.
    kind:
        ``"flag"`` (on/off via the shared truthiness vocabulary),
        ``"int"`` (positive integer), ``"str"`` (free-form, e.g. a
        path or a task index), or ``"flag-or-path"`` (the
        ``REPRO_TRACE`` shape: falsey = off, truthy = on, anything
        else = on *and* names a file path).
    default:
        Value the accessors return when the variable is unset or
        unparseable.
    doc:
        One-line description; surfaced by the docs drift check.
    """

    name: str
    kind: str
    default: object
    doc: str

    def __post_init__(self) -> None:
        if not self.name.startswith("REPRO_"):
            raise ValueError(
                f"knob {self.name!r} must be namespaced REPRO_*"
            )
        if self.kind not in ("flag", "int", "str", "flag-or-path"):
            raise ValueError(f"unknown knob kind {self.kind!r}")


_REGISTRY: dict[str, Knob] = {}


def register(name: str, kind: str, default: object, doc: str) -> Knob:
    """Declare a knob; re-registration with identical fields is a no-op.

    Conflicting re-registration raises — two modules silently
    disagreeing about a knob's default is exactly the drift this
    module exists to prevent.
    """
    k = Knob(name, kind, default, doc)
    existing = _REGISTRY.get(name)
    if existing is not None:
        if existing != k:
            raise ValueError(
                f"conflicting registration for {name}: {existing} vs {k}"
            )
        return existing
    _REGISTRY[name] = k
    return k


def knobs() -> tuple[Knob, ...]:
    """Every registered knob, sorted by name."""
    return tuple(_REGISTRY[n] for n in sorted(_REGISTRY))


def knob(name: str) -> Knob:
    """The declaration for *name*; raises ``KeyError`` if undeclared."""
    return _REGISTRY[name]


def get_raw(name: str) -> str | None:
    """The raw environment string for a *registered* knob (or None).

    Reading an unregistered name raises ``KeyError`` — new knobs must
    be declared below before use, which is what keeps the registry,
    the lint rule, and the docs in sync.
    """
    if name not in _REGISTRY:
        raise KeyError(
            f"environment knob {name!r} is not registered in repro.env"
        )
    return os.environ.get(name)


def get_flag(name: str) -> bool:
    """A flag knob's value: default when unset, else shared truthiness.

    An empty (or all-whitespace) value counts as *unset*, not as
    "off" — ``REPRO_VECTOR= python ...`` has always meant "default".
    """
    raw = get_raw(name)
    if raw is None or not raw.strip():
        return bool(_REGISTRY[name].default)
    return not is_falsey(raw)


def get_int(name: str) -> int:
    """An int knob's value; unset/unparseable/non-positive → default."""
    raw = get_raw(name)
    if raw is None:
        return int(_REGISTRY[name].default)  # type: ignore[arg-type]
    try:
        val = int(raw)
    except ValueError:
        return int(_REGISTRY[name].default)  # type: ignore[arg-type]
    return val if val > 0 else int(_REGISTRY[name].default)  # type: ignore[arg-type]


# --------------------------------------------------------------------- #
# The knobs.  One declaration each; the reading module is noted inline.


register(
    "REPRO_JOBS", "int", 0,
    "Default worker count when a sweep is called with jobs=0/None "
    "(repro.parallel.resolve_jobs); 0 means auto-detect CPU count.",
)
register(
    "REPRO_CACHE_SIZE", "int", 4096,
    "Default per-function memo capacity for repro.caching.memoized.",
)
register(
    "REPRO_TRACE", "flag-or-path", False,
    "Observability collection: falsey = off, truthy = collect "
    "in-memory, any other value = collect and export JSONL to that "
    "path (repro.observability).",
)
register(
    "REPRO_VECTOR", "flag", True,
    "Vectorized batch routing; REPRO_VECTOR=0 restores the scalar "
    "oracle router end-to-end (repro.netsim.batchroute).",
)
register(
    "REPRO_SHM", "flag", True,
    "Zero-copy shared-memory sweep transport; REPRO_SHM=0 forces the "
    "classic pickle pipe (repro.sharedmem).",
)
register(
    "REPRO_CHECK", "flag", False,
    "Runtime contract sanitizer: REPRO_CHECK=1 turns on NaN/inf, "
    "shape, dtype, and contiguity checks at PathMatrix/"
    "StackedPathMatrix construction and solver entry "
    "(repro.contracts).",
)
register(
    "REPRO_LEDGER_COMPACT", "int", 65536,
    "Minimum retired path entries before the simmpi FlowLedger "
    "compacts its append-only CSR arena (repro.simmpi.ledger); "
    "retired entries must also outnumber live ones.",
)
register(
    "REPRO_RESILIENCE_TEST_KILL", "str", "",
    "Chaos-test hook: task index at which the resilient sweep "
    "executor calls os._exit(43), simulating a worker SIGKILL "
    "(repro.resilience).",
)
register(
    "REPRO_RESILIENCE_TEST_KILL_MARKER", "str", "",
    "Arms REPRO_RESILIENCE_TEST_KILL only while this marker file "
    "does not exist, so a resumed run proceeds (repro.resilience).",
)


def check_enabled() -> bool:
    """Whether the ``REPRO_CHECK`` runtime sanitizer is on.

    Read at call time (one dict lookup) so tests can flip the
    environment mid-process; the disabled path costs one branch.
    """
    return get_flag("REPRO_CHECK")
