"""Flow-level network contention simulator (S6 in DESIGN.md).

The experimental substrate replacing the Blue Gene/Q hardware:
capacitated directed links (:mod:`~repro.netsim.network`), deterministic
dimension-ordered torus routing (:mod:`~repro.netsim.routing`, with a
vectorized batch router and CSR path container in
:mod:`~repro.netsim.batchroute`), max-min fair rate allocation
(:mod:`~repro.netsim.fairness`), a fluid completion-time engine
(:mod:`~repro.netsim.fluid`), traffic patterns
(:mod:`~repro.netsim.traffic`), and rank-to-node embeddings
(:mod:`~repro.netsim.embedding`).
"""

from .batchroute import (
    PathMatrix,
    TorusLinkLayout,
    batch_dimension_ordered_routes,
    batch_fault_aware_routes,
    fault_capacity_plane,
    fault_link_mask,
    link_layout,
    masked_bfs_links,
    vector_enabled,
    vertex_indices,
)
from .collectives import (
    pairwise_alltoall,
    recursive_doubling_allreduce,
    ring_allgather,
    ring_pass,
)
from .embedding import RankEmbedding, block_embedding, node_enumeration
from .fairness import max_min_fair_rates, stacked_max_min_fair_rates
from .fluid import (
    FlowResult,
    FluidSimulation,
    StackedFluidSimulation,
    simulate_flows,
)
from .network import LinkNetwork
from .routing import (
    PartitionDisconnectedError,
    bfs_route,
    check_tie,
    dimension_ordered_route,
    fault_aware_route,
    route,
)
from .schedule import RouteCache, TransferRound, simulate_rounds
from .stacked import StackedPathMatrix, segment_min
from .traffic import (
    all_pairs_uniform,
    bisection_pairing,
    dimension_shift,
    random_permutation,
    tornado,
)

__all__ = [
    "LinkNetwork",
    "PathMatrix",
    "TorusLinkLayout",
    "batch_dimension_ordered_routes",
    "batch_fault_aware_routes",
    "fault_capacity_plane",
    "fault_link_mask",
    "link_layout",
    "masked_bfs_links",
    "vector_enabled",
    "vertex_indices",
    "StackedPathMatrix",
    "segment_min",
    "dimension_ordered_route",
    "bfs_route",
    "route",
    "fault_aware_route",
    "check_tie",
    "PartitionDisconnectedError",
    "max_min_fair_rates",
    "stacked_max_min_fair_rates",
    "FluidSimulation",
    "StackedFluidSimulation",
    "FlowResult",
    "simulate_flows",
    "bisection_pairing",
    "dimension_shift",
    "random_permutation",
    "all_pairs_uniform",
    "tornado",
    "RankEmbedding",
    "block_embedding",
    "node_enumeration",
    "RouteCache",
    "TransferRound",
    "simulate_rounds",
    "ring_allgather",
    "recursive_doubling_allreduce",
    "pairwise_alltoall",
    "ring_pass",
]
