"""Round-based communication schedules over a simulated network.

Many parallel communication patterns — collectives, the CAPS BFS
exchanges, FFT transposes — execute as a sequence of globally
synchronized *rounds*, each round a set of point-to-point transfers.
This module provides the common machinery:

* :class:`RouteCache` — memoized dimension-ordered routing from dense
  node indices to link-id arrays;
* :class:`TransferRound` — one round: parallel ``(src, dst, volume)``
  transfers between node indices;
* :func:`simulate_rounds` — total time under the static bottleneck
  model (each round completes when its most loaded link drains), the
  same model the experiment harnesses use.

Volumes are in the same units as link capacity × time (the experiments
use GB and GB/s).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from ..topology.torus import Torus
from .network import LinkNetwork
from .routing import dimension_ordered_route

__all__ = ["RouteCache", "TransferRound", "simulate_rounds"]


class RouteCache:
    """Memoized routing between dense node indices of a torus network."""

    def __init__(self, network: LinkNetwork, torus: Torus, tie: str = "parity"):
        if network.topology is not torus and network.topology != torus:
            raise ValueError(
                "network was built over a different topology than the "
                "provided torus"
            )
        self._net = network
        self._torus = torus
        self._verts = list(torus.vertices())
        self._tie = tie
        self._cache: dict[tuple[int, int], np.ndarray] = {}

    @property
    def network(self) -> LinkNetwork:
        return self._net

    @property
    def num_nodes(self) -> int:
        return len(self._verts)

    def links(self, src: int, dst: int) -> np.ndarray:
        """Directed link ids of the route from node index *src* to *dst*."""
        key = (src, dst)
        path = self._cache.get(key)
        if path is None:
            path = self._net.path_to_links(
                dimension_ordered_route(
                    self._torus, self._verts[src], self._verts[dst],
                    tie=self._tie,
                )
            )
            self._cache[key] = path
        return path


@dataclass(frozen=True)
class TransferRound:
    """One synchronized round of point-to-point transfers.

    Attributes
    ----------
    sources, destinations:
        Dense node indices, same length.
    volumes:
        Per-transfer volume; a scalar applies to every transfer.
    label:
        Optional description (shown by reporting helpers).
    """

    sources: tuple[int, ...]
    destinations: tuple[int, ...]
    volumes: tuple[float, ...] | float
    label: str = ""

    def __post_init__(self) -> None:
        if len(self.sources) != len(self.destinations):
            raise ValueError(
                f"{len(self.sources)} sources but "
                f"{len(self.destinations)} destinations"
            )
        if not isinstance(self.volumes, (int, float)):
            if len(self.volumes) != len(self.sources):
                raise ValueError(
                    f"{len(self.volumes)} volumes for "
                    f"{len(self.sources)} transfers"
                )

    def volume_of(self, i: int) -> float:
        if isinstance(self.volumes, (int, float)):
            return float(self.volumes)
        return float(self.volumes[i])

    @property
    def total_volume(self) -> float:
        if isinstance(self.volumes, (int, float)):
            return float(self.volumes) * len(self.sources)
        return float(sum(self.volumes))


def simulate_rounds(
    cache: RouteCache, rounds: Iterable[TransferRound]
) -> tuple[float, list[float]]:
    """Bottleneck-model time of a round sequence: ``(total, per-round)``.

    Each round's time is its most loaded link's volume divided by that
    link's capacity; rounds are globally synchronized so times add.
    Intra-node transfers (src == dst) are free.
    """
    net = cache.network
    per_round: list[float] = []
    for rnd in rounds:
        load = np.zeros(net.num_links, dtype=float)
        for i, (s, d) in enumerate(zip(rnd.sources, rnd.destinations)):
            if s == d:
                continue
            path = cache.links(s, d)
            if len(path):
                load[path] += rnd.volume_of(i)
        if load.any():
            per_round.append(float((load / net.capacities).max()))
        else:
            per_round.append(0.0)
    return sum(per_round), per_round
