"""Rank-to-node embeddings.

The matrix-multiplication experiments run ``R`` MPI ranks on ``N``
compute nodes with up to ``c`` active cores per node (Table 3 of the
paper: e.g. 31 213 ranks on 2 048 nodes with 16 cores each).  An
*embedding* maps rank ids to node coordinates; communication between
ranks on the same node is free (shared memory), and inter-node traffic
aggregates over the rank pairs mapped to each node pair.

The default is the **block (contiguous) embedding** used by Blue Gene/Q
job launchers in ABCDET order: ranks fill node 0's cores, then node 1's,
with nodes enumerated lexicographically by torus coordinates.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .._validation import check_positive_int
from ..topology.torus import Torus

__all__ = ["RankEmbedding", "block_embedding", "node_enumeration"]


class RankEmbedding:
    """A mapping from rank ids to torus node coordinates.

    Parameters
    ----------
    torus:
        The partition's node-level torus.
    node_of_rank:
        For each rank, the index of its node in ``list(torus.vertices())``
        order.

    Notes
    -----
    The class stores node *indices* internally; :meth:`node_of` returns
    coordinates.  Aggregation helpers work on indices for speed.
    """

    def __init__(self, torus: Torus, node_of_rank: Sequence[int]):
        self._torus = torus
        arr = np.asarray(list(node_of_rank), dtype=np.int64)
        n = torus.num_vertices
        if len(arr) == 0:
            raise ValueError("embedding must place at least one rank")
        if arr.min() < 0 or arr.max() >= n:
            raise ValueError(
                f"node indices must be in [0, {n - 1}]"
            )
        self._node_of_rank = arr
        self._verts = list(torus.vertices())

    @property
    def torus(self) -> Torus:
        """The partition's node-level torus."""
        return self._torus

    @property
    def num_ranks(self) -> int:
        """Number of MPI ranks."""
        return len(self._node_of_rank)

    @property
    def node_indices(self) -> np.ndarray:
        """Per-rank node indices as a read-only array (vectorized access)."""
        view = self._node_of_rank.view()
        view.flags.writeable = False
        return view

    def node_index_of(self, rank: int) -> int:
        """Dense node index hosting *rank*."""
        return int(self._node_of_rank[rank])

    def node_of(self, rank: int) -> tuple[int, ...]:
        """Torus coordinates of the node hosting *rank*."""
        return self._verts[self.node_index_of(rank)]

    def ranks_per_node(self) -> np.ndarray:
        """Histogram: number of ranks on each node index."""
        return np.bincount(
            self._node_of_rank, minlength=self._torus.num_vertices
        )

    def max_ranks_per_node(self) -> int:
        """Maximum rank count on any node (must not exceed cores)."""
        return int(self.ranks_per_node().max())

    def aggregate_traffic(
        self,
        rank_pairs: Sequence[tuple[int, int]],
        volumes: Sequence[float] | None = None,
    ) -> dict[tuple[int, int], float]:
        """Aggregate rank-to-rank traffic into node-to-node volumes.

        Pairs whose endpoints share a node are dropped (intra-node
        communication uses shared memory, not network links).  Returns a
        mapping ``(src_node_index, dst_node_index) -> total volume``.
        """
        out: dict[tuple[int, int], float] = {}
        if volumes is None:
            vols: Sequence[float] = [1.0] * len(rank_pairs)
        else:
            vols = volumes
            if len(vols) != len(rank_pairs):
                raise ValueError(
                    f"{len(vols)} volumes for {len(rank_pairs)} pairs"
                )
        nor = self._node_of_rank
        for (r1, r2), v in zip(rank_pairs, vols):
            n1 = int(nor[r1])
            n2 = int(nor[r2])
            if n1 == n2:
                continue
            key = (n1, n2)
            out[key] = out.get(key, 0.0) + float(v)
        return out

    def node_coords(self, node_index: int) -> tuple[int, ...]:
        """Coordinates of a dense node index."""
        return self._verts[node_index]


def node_enumeration(torus: Torus, node_order: str = "abcdet") -> np.ndarray:
    """Dense node indices in the requested walk order.

    ``"abcdet"`` (the Blue Gene/Q launcher default) walks nodes in
    lexicographic coordinate order — the last (shortest) dimension varies
    fastest, so consecutive nodes are E/D-neighbors.  ``"tedcba"`` is the
    reversed significance — the first (longest) dimension varies fastest,
    so consecutive nodes stride along the long axis.  Returns an array
    ``order`` such that ``order[i]`` is the lexicographic index of the
    ``i``-th node in the walk.
    """
    if node_order not in ("abcdet", "tedcba"):
        raise ValueError(
            f"node_order must be 'abcdet' or 'tedcba', got {node_order!r}"
        )
    n = torus.num_vertices
    if node_order == "abcdet":
        return np.arange(n, dtype=np.int64)
    verts = list(torus.vertices())
    perm = sorted(range(n), key=lambda i: tuple(reversed(verts[i])))
    return np.asarray(perm, dtype=np.int64)


def block_embedding(
    torus: Torus,
    num_ranks: int,
    max_ranks_per_node: int | None = None,
    node_order: str = "abcdet",
) -> RankEmbedding:
    """Contiguous block embedding of *num_ranks* ranks onto the torus.

    Ranks are distributed as evenly as possible over nodes walked in
    *node_order* (see :func:`node_enumeration`): each node receives
    either ``floor(R/N)`` or ``ceil(R/N)`` consecutive ranks (the first
    ``R mod N`` nodes get the extra one) — mirroring how the paper's
    runs spread ranks when the count does not divide the node count
    ("tried to minimize the imbalance").

    Raises :class:`ValueError` if the per-node count would exceed
    *max_ranks_per_node* (the partition's active-core limit).
    """
    num_ranks = check_positive_int(num_ranks, "num_ranks")
    n = torus.num_vertices
    base = num_ranks // n
    extra = num_ranks % n
    per_node = base + (1 if extra else 0)
    if per_node == 0:
        per_node = 1
    if max_ranks_per_node is not None:
        check_positive_int(max_ranks_per_node, "max_ranks_per_node")
        if per_node > max_ranks_per_node:
            raise ValueError(
                f"{num_ranks} ranks on {n} nodes needs {per_node} "
                f"ranks/node, exceeding the limit of {max_ranks_per_node}"
            )
    walk = node_enumeration(torus, node_order)
    node_of_rank = np.empty(num_ranks, dtype=np.int64)
    rank = 0
    for pos in range(n):
        count = base + (1 if pos < extra else 0)
        node_of_rank[rank : rank + count] = walk[pos]
        rank += count
        if rank >= num_ranks:
            break
    return RankEmbedding(torus, node_of_rank)
