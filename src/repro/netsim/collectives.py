"""MPI-style collective operations as transfer-round schedules.

The paper's future work argues that common kernels (FFT, classical
matmul, N-body) stress the network through their collectives, making
them *more* bisection-sensitive than fast matmul.  This module builds
the classical collective algorithms as :class:`TransferRound` sequences
over a partition's nodes (one rank per node), ready for
:func:`repro.netsim.schedule.simulate_rounds`:

* :func:`ring_allgather` — P−1 shift rounds, each moving every rank's
  block one step around the (rank-order) ring;
* :func:`recursive_doubling_allreduce` — log₂P rounds of pairwise
  exchanges at doubling strides, volume constant per round;
* :func:`pairwise_alltoall` — P−1 rounds; in round j every rank sends
  its j-th block to the rank j positions away (the classical pairwise
  exchange algorithm, and the communication core of a distributed FFT
  transpose);
* :func:`ring_pass` — the N-body ring pipeline (same pattern as
  allgather but with the full body block each round).

All functions take node counts and per-block volumes and return plain
round lists; mapping rank order to node indices is the caller's choice
(identity = the launcher's walk order).
"""

from __future__ import annotations

from .._validation import check_positive_float, check_positive_int
from .schedule import TransferRound

__all__ = [
    "ring_allgather",
    "recursive_doubling_allreduce",
    "pairwise_alltoall",
    "ring_pass",
]


def ring_allgather(num_nodes: int, block_volume: float) -> list[TransferRound]:
    """Ring allgather: P−1 rounds, each node forwards one block.

    After round ``j`` every node holds ``j+1`` blocks; each round moves
    exactly one *block_volume* from node ``i`` to node ``i+1``.
    """
    p = check_positive_int(num_nodes, "num_nodes")
    check_positive_float(block_volume, "block_volume")
    if p < 2:
        return []
    nodes = tuple(range(p))
    succ = tuple((i + 1) % p for i in range(p))
    return [
        TransferRound(nodes, succ, block_volume,
                      label=f"allgather round {j}")
        for j in range(p - 1)
    ]


def recursive_doubling_allreduce(
    num_nodes: int, volume: float
) -> list[TransferRound]:
    """Recursive-doubling allreduce: log₂P pairwise-exchange rounds.

    Requires a power-of-two node count.  Every round, node ``i``
    exchanges the full *volume* with ``i XOR 2^j`` (both directions are
    generated — the exchange is symmetric).
    """
    p = check_positive_int(num_nodes, "num_nodes")
    check_positive_float(volume, "volume")
    if p & (p - 1):
        raise ValueError(
            f"recursive doubling needs a power-of-two node count, got {p}"
        )
    rounds: list[TransferRound] = []
    j = 1
    level = 0
    while j < p:
        srcs = tuple(range(p))
        dsts = tuple(i ^ j for i in range(p))
        rounds.append(
            TransferRound(srcs, dsts, volume,
                          label=f"allreduce level {level}")
        )
        j <<= 1
        level += 1
    return rounds


def pairwise_alltoall(
    num_nodes: int, block_volume: float
) -> list[TransferRound]:
    """Pairwise-exchange all-to-all: P−1 shift-permutation rounds.

    Round ``j`` sends each node's ``j``-th block to the node ``j``
    positions ahead (cyclically).  Total per-node volume:
    ``(P−1) · block_volume`` — the transpose step of a distributed FFT
    with ``block_volume = local_data / P``.
    """
    p = check_positive_int(num_nodes, "num_nodes")
    check_positive_float(block_volume, "block_volume")
    rounds: list[TransferRound] = []
    nodes = tuple(range(p))
    for j in range(1, p):
        dsts = tuple((i + j) % p for i in range(p))
        rounds.append(
            TransferRound(nodes, dsts, block_volume,
                          label=f"alltoall shift {j}")
        )
    return rounds


def ring_pass(num_nodes: int, block_volume: float) -> list[TransferRound]:
    """N-body ring pipeline: P−1 rounds forwarding the visiting block.

    Identical round structure to :func:`ring_allgather`; kept separate
    because the N-body volume per round is the full local body block,
    whereas allgather semantics accumulate received data.
    """
    return [
        TransferRound(r.sources, r.destinations, block_volume,
                      label=f"ring pass {j}")
        for j, r in enumerate(ring_allgather(num_nodes, block_volume))
    ]
