"""Fluid (progressive max-min) completion-time simulation.

Given flows with paths and *volumes*, the fluid model repeatedly:

1. computes the max-min fair rates of the unfinished flows;
2. advances time to the earliest flow completion at those rates;
3. removes finished flows (freeing their share of every link) and
   re-solves.

This is the standard flow-level network simulation — deterministic,
byte-accurate in aggregate, and exactly the contention mechanism the
paper's predictions reason about (bandwidth shares of shared links).
Packet-level effects (latency, protocol overheads) are out of scope; the
experiments transfer hundreds of megabytes per flow, so bandwidth
dominates.

Flows live in a CSR :class:`~repro.netsim.batchroute.PathMatrix`
(``Sequence[np.ndarray]`` inputs are adapted on construction), each
re-solve passes an ``active`` index set instead of re-slicing paths,
and every flow whose time-to-completion lands within ``_EPS`` of the
round's earliest finish retires in that same round — symmetric patterns
where all flows tie (the bisection pairing) complete in one solve
instead of one re-solve per flow.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from .. import contracts, observability
from .batchroute import PathMatrix
from .fairness import max_min_fair_rates, stacked_max_min_fair_rates
from .network import LinkNetwork
from .stacked import StackedPathMatrix, segment_min

__all__ = [
    "FlowResult",
    "FluidSimulation",
    "StackedFluidSimulation",
    "simulate_flows",
]

_EPS = 1e-12


@dataclass(frozen=True)
class FlowResult:
    """Outcome of one simulated flow.

    Attributes
    ----------
    completion_time:
        Time at which the last byte of the flow was delivered.
    initial_rate:
        The flow's max-min rate at t=0 (useful for steady-state checks).
    """

    completion_time: float
    initial_rate: float


class FluidSimulation:
    """Progressive max-min fluid simulation of a set of flows.

    Parameters
    ----------
    network:
        The capacitated link network.
    paths:
        A :class:`PathMatrix`, or per-flow arrays of directed link ids.
    volumes:
        Per-flow data volumes (same units as capacity × time).
    demands:
        Optional per-flow injection-rate caps.
    record_segments:
        When true, :attr:`segments` collects one ``(dt, flow_indices,
        rates)`` triple per round — the piecewise-constant rate
        schedule, used by tests to check volume conservation
        (``sum of rate × dt`` per flow equals its volume).

    After :meth:`run`, :attr:`rounds_used` holds the number of fairness
    re-solves the run needed (1 for fully symmetric patterns).
    """

    def __init__(
        self,
        network: LinkNetwork,
        paths: PathMatrix | Sequence[np.ndarray],
        volumes: Sequence[float],
        demands: Sequence[float] | None = None,
        *,
        record_segments: bool = False,
    ):
        pm = (
            paths
            if isinstance(paths, PathMatrix)
            else PathMatrix.from_paths(paths)
        )
        if len(pm) != len(volumes):
            raise ValueError(
                f"{len(pm)} paths but {len(volumes)} volumes"
            )
        vol = np.asarray(list(volumes), dtype=float)
        if np.any(vol <= 0):
            raise ValueError("all flow volumes must be positive")
        self._net = network
        self._pm = pm
        self._volumes = vol
        self._demands = (
            None if demands is None else np.asarray(list(demands), dtype=float)
        )
        if contracts.enabled():
            contracts.check_solver_inputs(
                "FluidSimulation", np.asarray(network.capacities, dtype=float),
                demands=self._demands, volumes=vol,
            )
        self._record_segments = record_segments
        self.segments: list[tuple[float, np.ndarray, np.ndarray]] = []
        self.rounds_used: int | None = None

    @property
    def path_matrix(self) -> PathMatrix:
        """The flows' paths in CSR form."""
        return self._pm

    def run(self, max_rounds: int | None = None) -> tuple[float, list[FlowResult]]:
        """Run to completion: returns ``(makespan, per-flow results)``.

        *max_rounds* guards against pathological inputs; it defaults to
        the number of flows (each round finishes at least one flow, and
        grouped retirement usually finishes many).
        """
        makespan, completion, initial = self.solve(max_rounds)
        results = [
            FlowResult(completion_time=float(completion[i]),
                       initial_rate=float(initial[i]))
            for i in range(len(self._pm))
        ]
        return makespan, results

    def solve(
        self, max_rounds: int | None = None
    ) -> tuple[float, np.ndarray, np.ndarray]:
        """Array-shaped :meth:`run`: ``(makespan, completions, rates)``.

        Returns the per-flow completion times and t=0 max-min rates as
        arrays, skipping the :class:`FlowResult` object construction —
        the form the experiment drivers consume for large flow counts.
        """
        if observability.OBS.enabled:
            with observability.span(
                "netsim.fluid.run", flows=len(self._pm)
            ):
                return self._run(max_rounds)
        return self._run(max_rounds)

    def _run(
        self, max_rounds: int | None = None
    ) -> tuple[float, np.ndarray, np.ndarray]:
        n = len(self._pm)
        if n == 0:
            self.rounds_used = 0
            empty = np.empty(0, dtype=float)
            return 0.0, empty, empty
        remaining = self._volumes.copy()
        active = np.ones(n, dtype=bool)
        completion = np.zeros(n, dtype=float)
        initial_rates = np.zeros(n, dtype=float)
        now = 0.0
        rounds_done = 0
        rounds = max_rounds if max_rounds is not None else n + 1
        for round_no in range(rounds):
            idx = np.flatnonzero(active)
            if len(idx) == 0:
                break
            rounds_done += 1
            rates = max_min_fair_rates(
                self._pm, self._net.capacities, self._demands, active=idx
            )
            if round_no == 0:
                initial_rates[idx] = rates
            if np.any(rates <= 0):  # pragma: no cover - defensive
                raise RuntimeError("fluid simulation produced a zero rate")
            # Empty-path flows have rate inf: ttc 0, retired immediately
            # below (rate × dt would be inf·0 = nan, hence the errstate).
            with np.errstate(invalid="ignore"):
                ttc = remaining[idx] / rates
                dt = float(ttc.min())
                now += dt
                if self._record_segments:
                    self.segments.append((dt, idx.copy(), rates.copy()))
                new_rem = remaining[idx] - rates * dt
            # Grouped retirement: every flow finishing within _EPS of the
            # round's earliest completion retires now, not one-per-solve.
            done = (ttc <= dt * (1.0 + _EPS)) | (
                new_rem <= _EPS * self._volumes[idx]
            )
            keep = idx[~done]
            remaining[keep] = new_rem[~done]
            finished = idx[done]
            remaining[finished] = 0.0
            active[finished] = False
            completion[finished] = now
        if active.any():
            raise RuntimeError(
                "fluid simulation did not converge within "
                f"{rounds} rounds ({int(active.sum())} flows unfinished)"
            )
        self.rounds_used = rounds_done
        if observability.OBS.enabled:
            observability.counter_add("netsim.fluid.runs")
            observability.counter_add("netsim.fluid.rounds", rounds_done)
            observability.counter_add("netsim.fluid.flows", n)
            observability.counter_add(
                "netsim.fluid.gb_delivered", float(self._volumes.sum())
            )
        return now, completion, initial_rates


class StackedFluidSimulation:
    """Fluid simulation of many scenarios advanced by one numpy loop.

    The stacked counterpart of :class:`FluidSimulation`: volumes,
    completion times, and rates live in flat flow-aligned arrays over a
    :class:`~repro.netsim.stacked.StackedPathMatrix`, each round solves
    one :func:`~repro.netsim.fairness.stacked_max_min_fair_rates` pass,
    and every scenario advances by *its own* earliest completion time —
    scenarios retire flows independently, exactly as if each ran its
    own :class:`FluidSimulation`.  Because all per-flow updates are
    elementwise and all per-scenario reductions are exact minima, the
    completion times, makespans, and initial rates are **bit-for-bit**
    those of the per-scenario engine (differential-tested).

    Flows inactive in the stack (e.g. disconnected by faults) are
    never simulated: their completion time and initial rate stay 0.

    Parameters
    ----------
    stack:
        The stacked scenario paths/capacities.
    volumes:
        Flat per-flow data volumes (all stacked flows, including
        inactive ones; those values are ignored but must be positive).
    demands:
        Optional flat per-flow injection caps.
    """

    def __init__(
        self,
        stack: StackedPathMatrix,
        volumes: np.ndarray,
        demands: np.ndarray | None = None,
    ):
        if not isinstance(stack, StackedPathMatrix):
            raise TypeError(
                f"expected a StackedPathMatrix, got "
                f"{type(stack).__name__}"
            )
        vol = np.asarray(volumes, dtype=float).ravel()
        if len(vol) != stack.num_flows:
            raise ValueError(
                f"{stack.num_flows} stacked flows but {len(vol)} volumes"
            )
        if np.any(vol <= 0):
            raise ValueError("all flow volumes must be positive")
        self._stack = stack
        self._volumes = vol
        self._demands = (
            None
            if demands is None
            else np.asarray(demands, dtype=float).ravel()
        )
        if contracts.enabled():
            contracts.check_solver_inputs(
                "StackedFluidSimulation", stack.capacities,
                demands=self._demands, volumes=vol,
            )
        self.rounds_used: int | None = None

    @property
    def stack(self) -> StackedPathMatrix:
        return self._stack

    def solve(
        self, max_rounds: int | None = None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Run all scenarios: ``(makespans, completions, initial_rates)``.

        *makespans* has one entry per scenario; *completions* and
        *initial_rates* are flow-aligned flat arrays.  Scenario ``s``'s
        slice of each equals what ``FluidSimulation.solve`` returns for
        that scenario alone.
        """
        if observability.OBS.enabled:
            with observability.span(
                "netsim.fluid.stacked_run",
                scenarios=self._stack.num_scenarios,
                flows=self._stack.num_flows,
            ):
                return self._run(max_rounds)
        return self._run(max_rounds)

    def _run(
        self, max_rounds: int | None = None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        stack = self._stack
        n = stack.num_flows
        n_scen = stack.num_scenarios
        flow_scn = stack.flow_scenarios
        remaining = self._volumes.copy()
        active = stack.active.copy()
        completion = np.zeros(n, dtype=float)
        initial_rates = np.zeros(n, dtype=float)
        now = np.zeros(n_scen, dtype=float)
        rounds_done = 0
        # The scalar guard is per scenario (flows + 1 rounds); the
        # stacked loop runs until the *deepest* scenario converges.
        per_scen_flows = np.diff(stack.flow_base)
        rounds = (
            max_rounds
            if max_rounds is not None
            else int(per_scen_flows.max(initial=0)) + 1
        )
        ttc = np.empty(n, dtype=float)
        for round_no in range(rounds):
            if not active.any():
                break
            rounds_done += 1
            rates = stacked_max_min_fair_rates(
                stack, self._demands, active=active
            )
            if round_no == 0:
                initial_rates[active] = rates[active]
            if np.any(rates[active] <= 0):  # pragma: no cover - defensive
                raise RuntimeError(
                    "stacked fluid simulation produced a zero rate"
                )
            # Empty-path flows have rate inf: ttc 0, retired this round
            # (rate × dt would be inf·0 = nan, hence the errstate) —
            # identical to the scalar engine's handling.
            with np.errstate(invalid="ignore"):
                ttc.fill(np.inf)
                np.divide(remaining, rates, out=ttc, where=active)
                dt = segment_min(ttc, stack.flow_base)
                # A scenario with no live flows left sees only +inf:
                # its clock must not advance.
                dt[~np.isfinite(dt)] = 0.0
                now += dt
                dt_b = dt[flow_scn]
                new_rem = remaining - rates * dt_b
            done = active & (
                (ttc <= dt_b * (1.0 + _EPS))
                | (new_rem <= _EPS * self._volumes)
            )
            keep = active & ~done
            remaining[keep] = new_rem[keep]
            remaining[done] = 0.0
            active &= ~done
            completion[done] = now[flow_scn][done]
        if active.any():
            bad = np.unique(flow_scn[active]).tolist()
            raise RuntimeError(
                "stacked fluid simulation did not converge within "
                f"{rounds} rounds (scenario(s) {bad} unfinished)"
            )
        self.rounds_used = rounds_done
        if observability.OBS.enabled:
            observability.counter_add("netsim.fluid.stacked_runs")
            observability.counter_add(
                "netsim.fluid.stacked_scenarios", n_scen
            )
            observability.counter_add(
                "netsim.fluid.rounds", rounds_done
            )
            observability.counter_add(
                "netsim.fluid.flows", int(stack.active.sum())
            )
            observability.counter_add(
                "netsim.fluid.gb_delivered",
                float(self._volumes[stack.active].sum()),
            )
        return now, completion, initial_rates


def simulate_flows(
    network: LinkNetwork,
    paths: PathMatrix | Sequence[np.ndarray],
    volumes: Sequence[float],
    demands: Sequence[float] | None = None,
) -> float:
    """Convenience wrapper: makespan of the fluid simulation."""
    sim = FluidSimulation(network, paths, volumes, demands)
    makespan, _ = sim.run()
    return makespan
