"""Fluid (progressive max-min) completion-time simulation.

Given flows with paths and *volumes*, the fluid model repeatedly:

1. computes the max-min fair rates of the unfinished flows;
2. advances time to the earliest flow completion at those rates;
3. removes finished flows (freeing their share of every link) and
   re-solves.

This is the standard flow-level network simulation — deterministic,
byte-accurate in aggregate, and exactly the contention mechanism the
paper's predictions reason about (bandwidth shares of shared links).
Packet-level effects (latency, protocol overheads) are out of scope; the
experiments transfer hundreds of megabytes per flow, so bandwidth
dominates.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from .. import observability
from .fairness import max_min_fair_rates
from .network import LinkNetwork

__all__ = ["FlowResult", "FluidSimulation", "simulate_flows"]

_EPS = 1e-12


@dataclass(frozen=True)
class FlowResult:
    """Outcome of one simulated flow.

    Attributes
    ----------
    completion_time:
        Time at which the last byte of the flow was delivered.
    initial_rate:
        The flow's max-min rate at t=0 (useful for steady-state checks).
    """

    completion_time: float
    initial_rate: float


class FluidSimulation:
    """Progressive max-min fluid simulation of a set of flows.

    Parameters
    ----------
    network:
        The capacitated link network.
    paths:
        Per-flow arrays of directed link ids.
    volumes:
        Per-flow data volumes (same units as capacity × time).
    demands:
        Optional per-flow injection-rate caps.
    """

    def __init__(
        self,
        network: LinkNetwork,
        paths: Sequence[np.ndarray],
        volumes: Sequence[float],
        demands: Sequence[float] | None = None,
    ):
        if len(paths) != len(volumes):
            raise ValueError(
                f"{len(paths)} paths but {len(volumes)} volumes"
            )
        vol = np.asarray(list(volumes), dtype=float)
        if np.any(vol <= 0):
            raise ValueError("all flow volumes must be positive")
        self._net = network
        self._paths = list(paths)
        self._volumes = vol
        self._demands = (
            None if demands is None else np.asarray(list(demands), dtype=float)
        )

    def run(self, max_rounds: int | None = None) -> tuple[float, list[FlowResult]]:
        """Run to completion: returns ``(makespan, per-flow results)``.

        *max_rounds* guards against pathological inputs; it defaults to
        the number of flows (each round finishes at least one flow).
        """
        if observability.OBS.enabled:
            with observability.span(
                "netsim.fluid.run", flows=len(self._paths)
            ):
                return self._run(max_rounds)
        return self._run(max_rounds)

    def _run(
        self, max_rounds: int | None = None
    ) -> tuple[float, list[FlowResult]]:
        n = len(self._paths)
        if n == 0:
            return 0.0, []
        remaining = self._volumes.copy()
        active = np.ones(n, dtype=bool)
        completion = np.zeros(n, dtype=float)
        initial_rates = np.zeros(n, dtype=float)
        now = 0.0
        rounds_done = 0
        rounds = max_rounds if max_rounds is not None else n + 1
        for round_no in range(rounds):
            idx = np.flatnonzero(active)
            if len(idx) == 0:
                break
            rounds_done += 1
            sub_paths = [self._paths[i] for i in idx]
            sub_demands = (
                None if self._demands is None else self._demands[idx]
            )
            rates = max_min_fair_rates(
                sub_paths, self._net.capacities, sub_demands
            )
            if round_no == 0:
                initial_rates[idx] = rates
            if np.any(rates <= 0):  # pragma: no cover - defensive
                raise RuntimeError("fluid simulation produced a zero rate")
            ttc = remaining[idx] / rates
            dt = float(ttc.min())
            now += dt
            remaining[idx] = remaining[idx] - rates * dt
            done = idx[remaining[idx] <= _EPS * self._volumes[idx]]
            for i in done:
                active[i] = False
                completion[i] = now
        if active.any():
            raise RuntimeError(
                "fluid simulation did not converge within "
                f"{rounds} rounds ({int(active.sum())} flows unfinished)"
            )
        if observability.OBS.enabled:
            observability.counter_add("netsim.fluid.runs")
            observability.counter_add("netsim.fluid.rounds", rounds_done)
            observability.counter_add("netsim.fluid.flows", n)
            observability.counter_add(
                "netsim.fluid.gb_delivered", float(self._volumes.sum())
            )
        results = [
            FlowResult(completion_time=float(completion[i]),
                       initial_rate=float(initial_rates[i]))
            for i in range(n)
        ]
        return now, results


def simulate_flows(
    network: LinkNetwork,
    paths: Sequence[np.ndarray],
    volumes: Sequence[float],
    demands: Sequence[float] | None = None,
) -> float:
    """Convenience wrapper: makespan of the fluid simulation."""
    sim = FluidSimulation(network, paths, volumes, demands)
    makespan, _ = sim.run()
    return makespan
