"""Deterministic routing over the simulated networks.

Blue Gene/Q uses (by default) deterministic dimension-ordered routing on
its torus: a packet corrects one coordinate at a time, in a fixed
dimension order, taking the shorter way around each ring.  This module
implements that scheme plus a generic BFS shortest-path router for
non-torus topologies.

Tie-breaking matters: on a ring of even length ``a``, the antipodal
distance ``a/2`` is reached equally fast both ways.  Routing *all* tied
traffic the same way would leave half of each ring's links idle, which
real adaptive/balanced torus routing does not do.  The default
``tie="parity"`` sends ties in the + direction from even source
coordinates and the − direction from odd ones, using both directions
evenly (deterministically); ``tie="positive"`` always goes up, which
models a strictly deterministic router.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..faults import FaultSet, PartitionDisconnectedError, surviving_topology
from ..topology.base import Topology, Vertex
from ..topology.torus import Torus

__all__ = [
    "dimension_ordered_route",
    "bfs_route",
    "route",
    "fault_aware_route",
    "check_tie",
    "PartitionDisconnectedError",
]

_TIES = ("parity", "positive")


def check_tie(tie: str) -> str:
    """Validate a routing tie-break name, returning it unchanged.

    Exposed so that layers above routing (e.g. the simmpi engine) can
    reject a bad *tie* eagerly at construction instead of on the first
    routed message.
    """
    if tie not in _TIES:
        raise ValueError(f"tie must be one of {_TIES}, got {tie!r}")
    return tie


def dimension_ordered_route(
    torus: Torus,
    src: Sequence[int],
    dst: Sequence[int],
    dim_order: Sequence[int] | None = None,
    tie: str = "parity",
) -> list[tuple[int, ...]]:
    """Dimension-ordered route on a torus, as a vertex list.

    Parameters
    ----------
    torus:
        The torus network.
    src, dst:
        Endpoint coordinate tuples.
    dim_order:
        Order in which dimensions are corrected; defaults to
        ``0, 1, ..., D-1``.
    tie:
        Direction for exact-half distances: ``"parity"`` (default,
        alternates by source coordinate parity) or ``"positive"``.

    Returns
    -------
    list of vertices from *src* to *dst* inclusive.
    """
    check_tie(tie)
    s = tuple(src)
    d = tuple(dst)
    if not torus.contains(s):
        raise ValueError(f"{s!r} is not a vertex of {torus.name}")
    if not torus.contains(d):
        raise ValueError(f"{d!r} is not a vertex of {torus.name}")
    dims = torus.dims
    if dim_order is None:
        order: Sequence[int] = range(len(dims))
    else:
        order = dim_order
        if sorted(order) != list(range(len(dims))):
            raise ValueError(
                f"dim_order must be a permutation of 0..{len(dims)-1}, "
                f"got {tuple(dim_order)}"
            )
    path = [s]
    cur = list(s)
    for k in order:
        a = dims[k]
        if a == 1 or cur[k] == d[k]:
            continue
        up = (d[k] - cur[k]) % a
        down = (cur[k] - d[k]) % a
        if up < down:
            step = 1
        elif down < up:
            step = -1
        else:  # exact half: tie-break
            if tie == "positive":
                step = 1
            else:
                step = 1 if cur[k] % 2 == 0 else -1
        while cur[k] != d[k]:
            cur[k] = (cur[k] + step) % a
            path.append(tuple(cur))
    return path


def bfs_route(topo: Topology, src: Vertex, dst: Vertex) -> list[Vertex]:
    """Deterministic BFS shortest path for arbitrary topologies.

    Neighbor iteration order breaks ties, so repeated calls give the same
    path.  Raises :class:`ValueError` when *dst* is unreachable.
    """
    if src == dst:
        return [src]
    prev: dict[Vertex, Vertex] = {src: src}
    frontier = [src]
    while frontier:
        nxt: list[Vertex] = []
        for u in frontier:
            for v, _ in topo.neighbors(u):
                if v not in prev:
                    prev[v] = u
                    if v == dst:
                        out = [dst]
                        while out[-1] != src:
                            out.append(prev[out[-1]])
                        out.reverse()
                        return out
                    nxt.append(v)
        frontier = nxt
    raise ValueError(f"{dst!r} is unreachable from {src!r} in {topo.name}")


def route(
    topo: Topology, src: Vertex, dst: Vertex, tie: str = "parity"
) -> list[Vertex]:
    """Route using the topology's natural scheme.

    Dimension-ordered on tori, BFS shortest path elsewhere.
    """
    if isinstance(topo, Torus):
        return dimension_ordered_route(topo, src, dst, tie=tie)  # type: ignore[arg-type]
    return bfs_route(topo, src, dst)


def fault_aware_route(
    topo: Topology,
    src: Vertex,
    dst: Vertex,
    faults: FaultSet | None = None,
    tie: str = "parity",
) -> list[Vertex]:
    """Route from *src* to *dst* avoiding the failed links/nodes of *faults*.

    The healthy-machine fast path is the topology's natural scheme
    (dimension-ordered on tori): when no fault lies on that path it is
    returned unchanged, so fault-free routing stays bit-identical to
    :func:`route`.  When the natural path crosses a failure, the router
    falls back to a deterministic BFS shortest path over the surviving
    directed subgraph — modelling BG/Q's static fault-avoiding route
    recomputation at partition boot.

    Raises
    ------
    PartitionDisconnectedError
        When *faults* severed every path from *src* to *dst* (or either
        endpoint is itself down).  This is distinct from
        :class:`repro.simmpi.DeadlockError`: the program is fine, the
        machine is not.
    """
    check_tie(tie)
    if faults is None or faults.is_empty():
        return route(topo, src, dst, tie=tie)
    if faults.is_failed_node(src) or faults.is_failed_node(dst):
        raise PartitionDisconnectedError(src, dst, faults)
    natural = route(topo, src, dst, tie=tie)
    if all(not faults.blocks(a, b) for a, b in zip(natural, natural[1:])):
        return natural
    try:
        return bfs_route(surviving_topology(topo, faults), src, dst)
    except ValueError:
        raise PartitionDisconnectedError(src, dst, faults) from None
