"""Vectorized batch routing and the CSR path container.

The scalar router (:func:`repro.netsim.routing.dimension_ordered_route`)
walks one (src, dst) pair at a time through a Python loop, building a
``list[tuple[int, ...]]`` of intermediate vertices that the caller then
re-hashes into directed link ids via ``LinkNetwork.path_to_links``.
Every headline experiment routes *thousands* of pairs over the same
torus, so this module batches the whole computation:

* :func:`batch_dimension_ordered_routes` takes arrays of source and
  destination **node indices** (row-major order, matching
  ``Torus.vertices()``) and computes every dimension-ordered route at
  once — signed per-dimension deltas with wraparound and the
  parity/positive tie-breaks done as array arithmetic — emitting
  directed link ids directly, with no intermediate vertex tuples;
* :class:`PathMatrix` holds the result in CSR form: one flat
  ``link_ids`` array plus ``offsets``, with per-flow views,
  ``bincount``-ready flattening (:meth:`PathMatrix.flow_ids`), and a
  ``Sequence[np.ndarray]``-shaped iteration protocol so existing código
  that loops over per-flow arrays keeps working.

Link ids come from an analytic layout (:func:`link_layout`) that mirrors
``LinkNetwork``'s construction order exactly — ``LinkNetwork`` walks
``Torus.vertices()`` (row-major) and, per vertex, ``Torus.neighbors``
(dimensions ascending, + before −, one merged slot for length-2
dimensions) — so batch-routed ids are **bit-identical** to
``net.path_to_links(dimension_ordered_route(...))``.  Property tests
(``tests/properties/test_property_batchroute.py``) enforce this
link-for-link against the scalar oracle.

The scalar path remains available everywhere as an escape hatch: set
``REPRO_VECTOR=0`` in the environment and the experiment drivers fall
back to the oracle router.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from .. import contracts, env
from ..caching import memoized
from ..topology.torus import Torus
from .routing import check_tie

__all__ = [
    "PathMatrix",
    "TorusLinkLayout",
    "link_layout",
    "batch_dimension_ordered_routes",
    "batch_fault_aware_routes",
    "fault_link_mask",
    "fault_capacity_plane",
    "masked_bfs_links",
    "vertex_indices",
    "vector_enabled",
]

#: Environment knob: ``REPRO_VECTOR=0`` disables the vectorized batch
#: path in the experiment drivers, restoring the scalar oracle router.
_VECTOR_ENV = "REPRO_VECTOR"


def vector_enabled() -> bool:
    """Whether the vectorized batch-routing path is enabled.

    Reads ``REPRO_VECTOR`` at call time; any of ``0``, ``false``,
    ``no``, ``off`` (case-insensitive) disables it.  The knob exists so
    the scalar router — kept as the property-test oracle — can be forced
    end-to-end when debugging a suspected vectorization issue.
    """
    return env.get_flag(_VECTOR_ENV)


class PathMatrix:
    """CSR-style container of per-flow directed-link paths.

    Parameters
    ----------
    link_ids:
        Flat int64 array: the concatenation of every flow's link ids.
    offsets:
        Int64 array of length ``num_flows + 1``; flow ``i``'s links are
        ``link_ids[offsets[i]:offsets[i+1]]``.

    The arrays are made read-only: flows share one backing buffer, and
    per-flow views are handed out freely (route caches, fairness
    solves), so in-place mutation would corrupt every consumer.

    Examples
    --------
    >>> pm = PathMatrix.from_paths([[0, 1], [], [2]])
    >>> len(pm), pm.total_links
    (3, 3)
    >>> pm[0].tolist(), pm[1].tolist()
    ([0, 1], [])
    """

    __slots__ = ("_link_ids", "_offsets", "_flow_ids")

    def __init__(self, link_ids: np.ndarray, offsets: np.ndarray):
        link_ids = np.ascontiguousarray(link_ids, dtype=np.int64)
        offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        if offsets.ndim != 1 or len(offsets) < 1:
            raise ValueError("offsets must be a 1-D array of length >= 1")
        if link_ids.ndim != 1:
            raise ValueError("link_ids must be a 1-D array")
        if offsets[0] != 0 or offsets[-1] != len(link_ids):
            raise ValueError(
                f"offsets must run from 0 to len(link_ids)="
                f"{len(link_ids)}, got [{offsets[0]}, {offsets[-1]}]"
            )
        if np.any(np.diff(offsets) < 0):
            raise ValueError("offsets must be non-decreasing")
        link_ids.flags.writeable = False
        offsets.flags.writeable = False
        self._link_ids = link_ids
        self._offsets = offsets
        self._flow_ids: np.ndarray | None = None
        if contracts.enabled():
            contracts.check_path_matrix(self)

    # ------------------------------------------------------------------ #
    # Construction                                                         #
    # ------------------------------------------------------------------ #

    @classmethod
    def from_paths(
        cls, paths: Sequence[np.ndarray] | Iterable[Sequence[int]]
    ) -> "PathMatrix":
        """Build from a sequence of per-flow link-id arrays.

        The thin adapter between the historical ``Sequence[np.ndarray]``
        API and the CSR layout; round-trips exactly
        (``[pm[i] for i in range(len(pm))]`` equals the input).
        """
        if isinstance(paths, PathMatrix):
            return paths
        arrays = [np.asarray(p, dtype=np.int64).ravel() for p in paths]
        lengths = np.fromiter(
            (len(a) for a in arrays), dtype=np.int64, count=len(arrays)
        )
        offsets = np.zeros(len(arrays) + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        flat = (
            np.concatenate(arrays)
            if arrays
            else np.empty(0, dtype=np.int64)
        )
        return cls(flat, offsets)

    @classmethod
    def unchecked(
        cls, link_ids: np.ndarray, offsets: np.ndarray
    ) -> "PathMatrix":
        """Wrap already-valid CSR planes without the O(n) validation.

        For trusted internal producers whose invariants hold by
        construction — the simmpi :class:`~repro.simmpi.ledger.FlowLedger`
        re-derives a live view of its arena after every flow add, so the
        monotonicity/bounds re-checks of ``__init__`` would be paid per
        event.  The arrays must be contiguous int64 with
        ``offsets[0] == 0`` and ``offsets[-1] == len(link_ids)``; only
        read-only *views* are taken, so a writable backing arena stays
        writable for its owner.  Under ``REPRO_CHECK`` the construction
        contract still runs.
        """
        link_view = link_ids.view()
        link_view.flags.writeable = False
        offset_view = offsets.view()
        offset_view.flags.writeable = False
        pm = cls.__new__(cls)
        pm._link_ids = link_view
        pm._offsets = offset_view
        pm._flow_ids = None
        if contracts.enabled():
            contracts.check_path_matrix(pm)
        return pm

    # ------------------------------------------------------------------ #
    # Shared-memory codec                                                  #
    # ------------------------------------------------------------------ #

    def to_shared(self, pool) -> dict:
        """Descriptor handles for zero-copy transport.

        Places the CSR planes into *pool* (a
        :class:`repro.sharedmem.SharedArrayPool`) and returns the
        small ``{slot: ArrayDescriptor}`` mapping that crosses the
        worker pipe instead of the arrays themselves.
        """
        return {
            "link_ids": pool.put_array(self._link_ids),
            "offsets": pool.put_array(self._offsets),
        }

    @classmethod
    def from_shared(cls, handles: dict) -> "PathMatrix":
        """Rebuild from :meth:`to_shared` handles as read-only views.

        Zero-copy: the arrays are attached straight out of the shared
        segments, and the constructor's validation is skipped — the
        handles came from an already-validated instance.  The views
        are only valid while the producing pool's segments live (the
        sweep dispatch that created them).
        """
        from ..sharedmem import attach_array

        pm = cls.__new__(cls)
        pm._link_ids = attach_array(handles["link_ids"])
        pm._offsets = attach_array(handles["offsets"])
        pm._flow_ids = None
        return pm

    # ------------------------------------------------------------------ #
    # Structure                                                            #
    # ------------------------------------------------------------------ #

    @property
    def link_ids(self) -> np.ndarray:
        """Flat link-id array (read-only) — ``bincount``-ready."""
        return self._link_ids

    @property
    def offsets(self) -> np.ndarray:
        """CSR offsets array of length ``len(self) + 1`` (read-only)."""
        return self._offsets

    @property
    def lengths(self) -> np.ndarray:
        """Per-flow path lengths (hop counts)."""
        return np.diff(self._offsets)

    @property
    def total_links(self) -> int:
        """Total link traversals across all flows (``len(link_ids)``)."""
        return len(self._link_ids)

    def flow_ids(self) -> np.ndarray:
        """Flow index of every entry of :attr:`link_ids` (read-only).

        The companion array for grouped reductions: per-flow "any link
        saturated" or per-flow load sums become single ``np.bincount``
        calls over ``(flow_ids, link_ids)``.  Computed lazily once.
        """
        if self._flow_ids is None:
            ids = np.repeat(
                np.arange(len(self), dtype=np.int64), self.lengths
            )
            ids.flags.writeable = False
            self._flow_ids = ids
        return self._flow_ids

    # ------------------------------------------------------------------ #
    # Sequence protocol                                                    #
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._offsets) - 1

    def __getitem__(self, i: int) -> np.ndarray:
        """Flow *i*'s link ids as a zero-copy (read-only) view."""
        if not -len(self) <= i < len(self):
            raise IndexError(f"flow index {i} out of range for {self!r}")
        if i < 0:
            i += len(self)
        return self._link_ids[self._offsets[i] : self._offsets[i + 1]]

    def __iter__(self):
        for i in range(len(self)):
            yield self[i]

    def __repr__(self) -> str:
        return (
            f"PathMatrix(flows={len(self)}, links={self.total_links})"
        )


# Shared-memory sweeps reduce PathMatrix to its descriptor handles
# instead of pickling the CSR bytes (see repro.sharedmem).
from ..sharedmem import register_shared_codec  # noqa: E402

register_shared_codec(PathMatrix)


@dataclass(frozen=True)
class TorusLinkLayout:
    """Analytic dense-link-id layout of a torus ``LinkNetwork``.

    ``LinkNetwork`` assigns ids first-seen while walking row-major
    vertices and per-vertex neighbors; on a torus that walk is fully
    regular, so ids factor as ``vertex_rank * degree + slot``:

    Attributes
    ----------
    dims:
        Torus dimension lengths.
    strides:
        Row-major vertex strides (``C`` order, as ``Torus.vertices()``).
    degree:
        Directed links per vertex (length-2 dimensions contribute one
        merged slot, length >= 3 two, length 1 none).
    slot_up, slot_down:
        Per-dimension slot offset of the +/− directed link out of a
        vertex (equal for length-2 dimensions; −1 for length-1).
    slot_dims:
        Dimension index of each of the ``degree`` slots — tiled over
        vertices this is the per-link "link class" table.
    """

    dims: tuple[int, ...]
    strides: np.ndarray
    degree: int
    slot_up: np.ndarray
    slot_down: np.ndarray
    slot_dims: np.ndarray

    def link_id(self, vertex_rank: int, dim: int, step: int) -> int:
        """Dense id of the link leaving *vertex_rank* along *dim*.

        *step* is +1 or −1; for length-2 dimensions both map to the
        single merged slot.  The scalar mirror of the batch arithmetic,
        exposed for tests.
        """
        slot = self.slot_up[dim] if step > 0 else self.slot_down[dim]
        if slot < 0:
            raise ValueError(f"dimension {dim} of {self.dims} has no links")
        return int(vertex_rank) * self.degree + int(slot)


@memoized(maxsize=256, key=lambda torus: torus)
def link_layout(torus: Torus) -> TorusLinkLayout:
    """The (memoized) analytic link layout of *torus*.

    One layout per distinct torus is computed ever; repeated batch
    routes, engines, and sweeps share it through :mod:`repro.caching`.
    """
    dims = torus.dims
    ndim = len(dims)
    strides = np.empty(ndim, dtype=np.int64)
    acc = 1
    for k in range(ndim - 1, -1, -1):
        strides[k] = acc
        acc *= dims[k]
    slot_up = np.full(ndim, -1, dtype=np.int64)
    slot_down = np.full(ndim, -1, dtype=np.int64)
    slots: list[int] = []
    cursor = 0
    for k, a in enumerate(dims):
        if a == 1:
            continue
        if a == 2:
            slot_up[k] = slot_down[k] = cursor
            slots.append(k)
            cursor += 1
        else:
            slot_up[k] = cursor
            slot_down[k] = cursor + 1
            slots.extend((k, k))
            cursor += 2
    slot_dims = np.asarray(slots, dtype=np.int64)
    for arr in (strides, slot_up, slot_down, slot_dims):
        arr.flags.writeable = False
    return TorusLinkLayout(
        dims=dims,
        strides=strides,
        degree=cursor,
        slot_up=slot_up,
        slot_down=slot_down,
        slot_dims=slot_dims,
    )


def vertex_indices(
    torus: Torus, vertices: Sequence[Sequence[int]]
) -> np.ndarray:
    """Row-major node indices of *vertices* (the ``Torus.vertices()`` rank).

    The bridge from vertex-tuple traffic patterns
    (:mod:`repro.netsim.traffic`) to the node-index arrays the batch
    router consumes.
    """
    coords = np.asarray(list(vertices), dtype=np.int64)
    if coords.size == 0:
        return np.empty(0, dtype=np.int64)
    if coords.ndim != 2 or coords.shape[1] != torus.ndim:
        raise ValueError(
            f"expected {torus.ndim}-coordinate vertices for {torus.name}"
        )
    return np.ravel_multi_index(tuple(coords.T), torus.dims).astype(
        np.int64
    )


def batch_dimension_ordered_routes(
    torus: Torus,
    src: np.ndarray,
    dst: np.ndarray,
    dim_order: Sequence[int] | None = None,
    tie: str = "parity",
) -> PathMatrix:
    """Dimension-ordered routes for *all* (src, dst) pairs at once.

    Parameters
    ----------
    torus:
        The torus network (healthy topology; for faulted networks use
        the scalar :func:`repro.netsim.routing.fault_aware_route`).
        Degraded — reduced but non-zero — link capacities do not change
        dimension-ordered routes, so batch routing remains valid there.
    src, dst:
        Equal-length integer arrays of node indices in row-major
        (``Torus.vertices()``) order; see :func:`vertex_indices`.
    dim_order:
        Dimension-correction order (default ``0..D-1``), as in the
        scalar router.
    tie:
        ``"parity"`` or ``"positive"`` — identical semantics to
        :func:`~repro.netsim.routing.dimension_ordered_route`,
        including the per-source-coordinate parity split of exact-half
        ring distances.

    Returns
    -------
    PathMatrix
        Flow ``i``'s links equal
        ``net.path_to_links(dimension_ordered_route(torus, src_i,
        dst_i, dim_order, tie))`` for a ``LinkNetwork`` over *torus*,
        link id for link id.
    """
    check_tie(tie)
    layout = link_layout(torus)
    dims_arr = np.asarray(torus.dims, dtype=np.int64)
    ndim = torus.ndim
    n_nodes = torus.num_vertices

    src = np.ascontiguousarray(src, dtype=np.int64).ravel()
    dst = np.ascontiguousarray(dst, dtype=np.int64).ravel()
    if len(src) != len(dst):
        raise ValueError(
            f"{len(src)} sources but {len(dst)} destinations"
        )
    for name, arr in (("src", src), ("dst", dst)):
        if arr.size and (arr.min() < 0 or arr.max() >= n_nodes):
            raise ValueError(
                f"{name} node indices must be in [0, {n_nodes - 1}] "
                f"for {torus.name}"
            )
    if dim_order is None:
        order = np.arange(ndim, dtype=np.int64)
    else:
        order = np.asarray(list(dim_order), dtype=np.int64)
        if sorted(order.tolist()) != list(range(ndim)):
            raise ValueError(
                f"dim_order must be a permutation of 0..{ndim - 1}, "
                f"got {tuple(dim_order)}"
            )
    n_flows = len(src)
    if n_flows == 0:
        return PathMatrix(
            np.empty(0, dtype=np.int64), np.zeros(1, dtype=np.int64)
        )

    # Coordinates, per-dimension hop counts, and step directions — all
    # (n_flows, ndim) arrays.
    src_c = np.stack(np.unravel_index(src, torus.dims), axis=1).astype(
        np.int64
    )
    dst_c = np.stack(np.unravel_index(dst, torus.dims), axis=1).astype(
        np.int64
    )
    a = dims_arr[None, :]
    up = (dst_c - src_c) % a
    down = (src_c - dst_c) % a
    hops = np.minimum(up, down)
    step = np.where(up < down, 1, -1).astype(np.int64)
    tied = up == down  # includes hops == 0; step unused there
    if tie == "positive":
        step[tied] = 1
    else:  # parity: + from even source coordinates, − from odd
        step[tied] = np.where(src_c[tied] % 2 == 0, 1, -1)

    # Permute into emission (dimension-correction) order.
    src_o = src_c[:, order]
    hops_o = hops[:, order]
    step_o = step[:, order]
    a_o = np.broadcast_to(dims_arr[order], (n_flows, ndim))
    strides_o = np.broadcast_to(
        layout.strides[order], (n_flows, ndim)
    )

    # Linear-index contribution of every *other* dimension while dim k
    # is being corrected: earlier dimensions (in order) sit at their
    # destination coordinate, later ones at their source.
    contrib_src = src_o * strides_o
    contrib_dst = dst_c[:, order] * strides_o
    prefix_dst = np.zeros((n_flows, ndim), dtype=np.int64)
    np.cumsum(contrib_dst[:, :-1], axis=1, out=prefix_dst[:, 1:])
    suffix_src = np.zeros((n_flows, ndim), dtype=np.int64)
    if ndim > 1:
        suffix_src[:, :-1] = np.cumsum(
            contrib_src[:, :0:-1], axis=1
        )[:, ::-1]
    base_o = prefix_dst + suffix_src

    # Expand the (flow, dimension) segments to one flat element per hop.
    seg_len = hops_o.ravel()
    total = int(seg_len.sum())
    offsets = np.zeros(n_flows + 1, dtype=np.int64)
    np.cumsum(hops_o.sum(axis=1), out=offsets[1:])
    if total == 0:
        return PathMatrix(np.empty(0, dtype=np.int64), offsets)
    seg_starts = np.concatenate(
        ([0], np.cumsum(seg_len)[:-1])
    )
    hop_idx = np.arange(total, dtype=np.int64) - np.repeat(
        seg_starts, seg_len
    )

    def expand(grid: np.ndarray) -> np.ndarray:
        return np.repeat(grid.ravel(), seg_len)

    c0 = expand(src_o)
    s = expand(step_o)
    aa = expand(a_o)
    strd = expand(strides_o)
    base = expand(base_o)
    # Slot of the emitted link: +/− by step; merged for length-2 dims
    # (slot_up == slot_down there, so the tie direction is irrelevant,
    # exactly as ``LinkNetwork`` stores one directed link per pair).
    slot_o = np.where(
        step_o > 0, layout.slot_up[order], layout.slot_down[order]
    )
    slot = expand(slot_o)

    coord = (c0 + s * hop_idx) % aa
    link_ids = (base + coord * strd) * layout.degree + slot
    return PathMatrix(link_ids, offsets)


def fault_link_mask(torus: Torus, faults) -> np.ndarray:
    """Boolean unusable-link mask over the dense link-id space.

    Entry ``mask[link_id]`` is true when the directed link is failed
    outright or either endpoint node is down — the same links for which
    :meth:`repro.faults.FaultSet.blocks` is true.  Degraded (reduced
    but non-zero capacity) links stay false: they still carry traffic
    and do not change dimension-ordered routes.

    Fault entries that are not edges/vertices of *torus* are ignored —
    a link that does not exist cannot be crossed — matching
    ``LinkNetwork.with_faults``, which also only consults the fault set
    for links the network actually has.

    Fault sets are small (a handful of failures against thousands of
    links), so this is a Python loop over the faults, not over the
    links.
    """
    layout = link_layout(torus)
    mask = np.zeros(torus.num_vertices * layout.degree, dtype=bool)
    if faults is None or faults.is_empty():
        return mask
    dims = torus.dims
    ndim = torus.ndim
    strides = layout.strides

    def in_torus(v) -> bool:
        return len(v) == ndim and all(
            0 <= v[k] < dims[k] for k in range(ndim)
        )

    def rank_of(v) -> int:
        return int(
            sum(int(v[k]) * int(strides[k]) for k in range(ndim))
        )

    def slot_of(u, v) -> int | None:
        diff = [k for k in range(ndim) if u[k] != v[k]]
        if len(diff) != 1:
            return None
        k = diff[0]
        a = dims[k]
        if (u[k] + 1) % a == v[k]:
            slot = layout.slot_up[k]
        elif (v[k] + 1) % a == u[k]:
            slot = layout.slot_down[k]
        else:
            return None
        return int(slot) if slot >= 0 else None

    for u, v in faults.failed_links:
        if not (in_torus(u) and in_torus(v)):
            continue
        slot = slot_of(u, v)
        if slot is not None:
            mask[rank_of(u) * layout.degree + slot] = True
    for n in faults.failed_nodes:
        if not in_torus(n):
            continue
        r = rank_of(n)
        mask[r * layout.degree : (r + 1) * layout.degree] = True
        for v, _w in torus.neighbors(n):
            slot = slot_of(v, n)
            if slot is not None:
                mask[rank_of(v) * layout.degree + slot] = True
    return mask


def _directed_link_id(torus: Torus, u, v) -> int | None:
    """Dense id of the directed link ``u -> v``, or ``None`` if absent.

    Accepts arbitrary vertex tuples: entries that are not vertices of
    *torus* or not torus edges yield ``None`` (a fault naming a
    non-existent link cannot affect any real link).
    """
    layout = link_layout(torus)
    dims = torus.dims
    ndim = torus.ndim
    if len(u) != ndim or len(v) != ndim:
        return None
    if any(not 0 <= u[k] < dims[k] for k in range(ndim)):
        return None
    if any(not 0 <= v[k] < dims[k] for k in range(ndim)):
        return None
    diff = [k for k in range(ndim) if u[k] != v[k]]
    if len(diff) != 1:
        return None
    k = diff[0]
    a = dims[k]
    if (u[k] + 1) % a == v[k]:
        slot = layout.slot_up[k]
    elif (v[k] + 1) % a == u[k]:
        slot = layout.slot_down[k]
    else:
        return None
    if slot < 0:
        return None
    rank = int(
        sum(int(u[i]) * int(layout.strides[i]) for i in range(ndim))
    )
    return rank * layout.degree + int(slot)


def fault_capacity_plane(
    torus: Torus, capacities: np.ndarray, faults
) -> np.ndarray:
    """Per-link capacities of *torus* with *faults* applied.

    The vectorized equivalent of
    ``LinkNetwork.with_faults(faults).capacities`` for a network built
    over *torus* with base *capacities*: degraded links are multiplied
    by their factor exactly as ``with_faults`` does (same float op, so
    the result is bit-identical), blocked links — failed outright or
    with a down endpoint — go to ``0.0``.  Fault sets are small, so the
    degraded/blocked bookkeeping loops over the faults, never over the
    links.
    """
    caps = np.array(capacities, dtype=float, copy=True)
    if faults is None or faults.is_empty():
        return caps
    expected = torus.num_vertices * link_layout(torus).degree
    if len(caps) != expected:
        raise ValueError(
            f"capacity plane has {len(caps)} slots but the analytic "
            f"layout of {torus.name} expects {expected}"
        )
    mask = fault_link_mask(torus, faults)
    for (u, v), factor in faults.degraded_links.items():
        lid = _directed_link_id(torus, u, v)
        # A degraded link that is also blocked ends at zero either way
        # (``capacity_factor`` lets the block win); skip the multiply so
        # the arithmetic below matches ``with_faults`` exactly.
        if lid is None or mask[lid]:
            continue
        caps[lid] *= factor
    caps[mask] = 0.0
    return caps


@memoized(maxsize=256, key=lambda torus: torus)
def _neighbor_table(torus: Torus) -> np.ndarray:
    """``(num_vertices, degree)`` neighbor ranks in slot order (memoized).

    Row ``u``, column ``s`` is the rank of the vertex reached through
    vertex ``u``'s slot ``s`` — the same neighbor enumeration order as
    ``Torus.neighbors`` (dimensions ascending, + before −, one merged
    slot for length-2 dimensions), which is what makes the vectorized
    BFS tie-breaks below identical to the scalar
    :func:`repro.netsim.routing.bfs_route`.
    """
    layout = link_layout(torus)
    n = torus.num_vertices
    ranks = np.arange(n, dtype=np.int64)
    coords = np.stack(np.unravel_index(ranks, torus.dims), axis=1)
    out = np.empty((n, layout.degree), dtype=np.int64)
    for s in range(layout.degree):
        k = int(layout.slot_dims[s])
        step = 1 if s == int(layout.slot_up[k]) else -1
        c = coords.copy()
        c[:, k] = (c[:, k] + step) % torus.dims[k]
        out[:, s] = np.ravel_multi_index(tuple(c.T), torus.dims)
    out.flags.writeable = False
    return out


def masked_bfs_links(
    torus: Torus, src_rank: int, dst_rank: int, mask: np.ndarray
) -> np.ndarray | None:
    """Vectorized masked BFS: directed link ids of the fallback route.

    Explores the torus level by level with all frontier expansions done
    as array operations, skipping links where ``mask`` is true (the
    :func:`fault_link_mask` of the fault set).  Discovery order — and
    therefore every tie-break — matches the scalar
    :func:`repro.netsim.routing.bfs_route` over
    :func:`repro.faults.surviving_topology` exactly: candidates are
    enumerated in (frontier position × slot) order and
    ``np.unique(..., return_index=True)`` keeps the *first* occurrence
    per vertex, which is precisely the scalar loop's ``v not in prev``
    rule.  Returns the link ids of the BFS path (empty for
    ``src == dst``), or ``None`` when *dst* is unreachable.

    The caller is responsible for endpoint liveness (a down endpoint
    disconnects the flow before routing is attempted).
    """
    if src_rank == dst_rank:
        return np.empty(0, dtype=np.int64)
    layout = link_layout(torus)
    degree = layout.degree
    if degree == 0:
        return None
    nbr = _neighbor_table(torus)
    visited = np.zeros(torus.num_vertices, dtype=bool)
    visited[src_rank] = True
    via_link = np.full(torus.num_vertices, -1, dtype=np.int64)
    frontier = np.asarray([src_rank], dtype=np.int64)
    slots = np.arange(degree, dtype=np.int64)
    # Reused scatter buffer for the per-level first-occurrence dedup.
    order = np.full(torus.num_vertices, -1, dtype=np.int64)
    while frontier.size:
        links = (frontier[:, None] * degree + slots[None, :]).ravel()
        v = nbr[frontier].ravel()
        ok = ~(mask[links] | visited[v])
        v_ok = v[ok]
        if not v_ok.size:
            return None
        link_ok = links[ok]
        # First occurrence per vertex in enumeration order — what
        # ``np.unique(v_ok, return_index=True)`` computes, but via a
        # linear reverse scatter (last write wins → smallest index
        # survives) instead of a sort.
        order[v_ok[::-1]] = np.arange(
            v_ok.size - 1, -1, -1, dtype=np.int64
        )
        uniq = np.flatnonzero(order >= 0)
        first = order[uniq]
        order[uniq] = -1  # reset only the touched slots
        visited[uniq] = True
        via_link[uniq] = link_ok[first]
        if visited[dst_rank]:
            out: list[int] = []
            cur = dst_rank
            while cur != src_rank:
                lk = int(via_link[cur])
                out.append(lk)
                cur = lk // degree
            out.reverse()
            return np.asarray(out, dtype=np.int64)
        frontier = v_ok[np.sort(first)]
    return None  # pragma: no cover - loop exits via v_ok.size above


def _route_links(
    layout: TorusLinkLayout, torus: Torus, route: Sequence[tuple[int, ...]]
) -> np.ndarray:
    """Directed link ids of a vertex-list route, via the analytic layout.

    Bit-identical to ``LinkNetwork.path_to_links(route)`` (the layout
    mirrors the network's id assignment; property-tested).
    """
    m = len(route) - 1
    if m <= 0:
        return np.empty(0, dtype=np.int64)
    ndim = torus.ndim
    dims = torus.dims
    strides = layout.strides
    out = np.empty(m, dtype=np.int64)
    for j in range(m):
        u, v = route[j], route[j + 1]
        k = next(i for i in range(ndim) if u[i] != v[i])
        step = 1 if (u[k] + 1) % dims[k] == v[k] else -1
        rank = sum(int(u[i]) * int(strides[i]) for i in range(ndim))
        out[j] = layout.link_id(rank, k, step)
    return out


def batch_fault_aware_routes(
    torus: Torus,
    src: np.ndarray,
    dst: np.ndarray,
    faults=None,
    tie: str = "parity",
    healthy: PathMatrix | None = None,
) -> tuple[PathMatrix, np.ndarray]:
    """Fault-masked batch routing: vectorized where healthy, degraded
    per-flow where not.

    All flows are first routed by the vectorized
    :func:`batch_dimension_ordered_routes`; only flows whose natural
    path crosses a blocked link (or whose endpoint node is down) fall
    back to a BFS reroute on the surviving links — the vectorized
    :func:`masked_bfs_links` normally, or the scalar
    :func:`~repro.netsim.routing.fault_aware_route` oracle under
    ``REPRO_VECTOR=0`` (both produce identical links; property-tested).
    A flow with *no* surviving route does not raise — it gets an empty
    path and its index is reported, so one severed pair degrades that
    flow, not the whole batch (per-scenario degradation, the sweep
    callers turn these into :class:`repro.faults.DegradedResult` rows).

    Parameters
    ----------
    healthy:
        Optional pre-computed healthy route matrix — exactly
        ``batch_dimension_ordered_routes(torus, src, dst, tie=tie)`` —
        so sweep callers evaluating many fault sets over one traffic
        pattern route the healthy pattern once.

    Returns
    -------
    (PathMatrix, np.ndarray)
        The path matrix (connected flow ``i`` matches
        ``net.path_to_links(fault_aware_route(...))`` link for link;
        disconnected flows have empty paths) and the sorted int64 array
        of disconnected flow indices.
    """
    src = np.ascontiguousarray(src, dtype=np.int64).ravel()
    dst = np.ascontiguousarray(dst, dtype=np.int64).ravel()
    if healthy is not None:
        if len(healthy) != len(src):
            raise ValueError(
                f"healthy PathMatrix has {len(healthy)} flows for "
                f"{len(src)} (src, dst) pairs"
            )
        pm = healthy
    else:
        pm = batch_dimension_ordered_routes(torus, src, dst, tie=tie)
    none_disconnected = np.empty(0, dtype=np.int64)
    if faults is None or faults.is_empty():
        return pm, none_disconnected
    mask = fault_link_mask(torus, faults)

    hit = np.zeros(len(pm), dtype=bool)
    hit_entries = mask[pm.link_ids]
    if hit_entries.any():
        hit[np.unique(pm.flow_ids()[hit_entries])] = True
    # A down endpoint disconnects a flow regardless of its path —
    # including zero-hop src == dst flows, which have no links to hit.
    node_down = np.zeros(torus.num_vertices, dtype=bool)
    dead = [n for n in faults.failed_nodes if torus.contains(n)]
    if dead:
        node_down[vertex_indices(torus, dead)] = True
    need = np.flatnonzero(hit | node_down[src] | node_down[dst])
    if need.size == 0:
        return pm, none_disconnected

    empty = np.empty(0, dtype=np.int64)
    replacements: dict[int, np.ndarray] = {}
    disconnected: list[int] = []
    if vector_enabled():
        for i in need.tolist():
            if node_down[src[i]] or node_down[dst[i]]:
                disconnected.append(i)
                replacements[i] = empty
                continue
            links = masked_bfs_links(
                torus, int(src[i]), int(dst[i]), mask
            )
            if links is None:
                disconnected.append(i)
                replacements[i] = empty
            else:
                replacements[i] = links
    else:
        from ..faults import PartitionDisconnectedError
        from .routing import fault_aware_route

        layout = link_layout(torus)
        verts = list(torus.vertices())
        for i in need.tolist():
            try:
                route = fault_aware_route(
                    torus, verts[src[i]], verts[dst[i]], faults, tie=tie
                )
            except PartitionDisconnectedError:
                disconnected.append(i)
                replacements[i] = empty
                continue
            replacements[i] = _route_links(layout, torus, route)
    return (
        _splice_paths(pm, replacements),
        np.asarray(disconnected, dtype=np.int64),
    )


def _splice_paths(
    pm: PathMatrix, replacements: dict[int, np.ndarray]
) -> PathMatrix:
    """A new :class:`PathMatrix` with some flows' paths replaced.

    Fault sweeps reroute a handful of flows per scenario; rebuilding
    the whole matrix from per-flow arrays costs O(flows) Python work
    per scenario.  Splicing copies the untouched flows' CSR entries in
    one vectorized scatter and writes only the replaced segments
    individually — identical content to ``PathMatrix.from_paths`` over
    the patched path list.
    """
    n = len(pm)
    old_offsets = pm.offsets
    new_lengths = np.diff(old_offsets)
    for i, links in replacements.items():
        new_lengths[i] = len(links)
    new_offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(new_lengths, out=new_offsets[1:])
    out = np.empty(new_offsets[-1], dtype=np.int64)
    changed = np.zeros(n, dtype=bool)
    changed[list(replacements)] = True
    fid = pm.flow_ids()
    keep = ~changed[fid]
    dest = new_offsets[:-1][fid] + (
        np.arange(pm.total_links, dtype=np.int64) - old_offsets[:-1][fid]
    )
    out[dest[keep]] = pm.link_ids[keep]
    for i, links in replacements.items():
        out[new_offsets[i] : new_offsets[i] + len(links)] = links
    return PathMatrix(out, new_offsets)


def _check_layout_consistency(torus: Torus, num_links: int) -> None:
    """Assert a ``LinkNetwork`` link count matches the analytic layout.

    Cheap O(1) guard used by callers that pair a batch-routed
    :class:`PathMatrix` with an independently built ``LinkNetwork``.
    """
    expected = torus.num_vertices * link_layout(torus).degree
    if num_links != expected:
        raise ValueError(
            f"LinkNetwork has {num_links} links but the analytic layout "
            f"of {torus.name} expects {expected}"
        )


def total_route_hops(torus: Torus) -> int:
    """Total hop count of the full bisection pairing on *torus*.

    Convenience for sizing benchmarks: every vertex to its antipode is
    ``sum(a_k // 2)`` hops, times ``|V|`` flows.
    """
    return torus.num_vertices * sum(a // 2 for a in torus.dims)


def _selftest_small() -> None:  # pragma: no cover - debugging helper
    """Exhaustive check against the scalar oracle on a tiny torus."""
    from .network import LinkNetwork
    from .routing import dimension_ordered_route

    torus = Torus((4, 3, 2))
    net = LinkNetwork(torus)
    verts = list(torus.vertices())
    pairs = [(i, j) for i in range(len(verts)) for j in range(len(verts))]
    src = np.asarray([i for i, _ in pairs])
    dst = np.asarray([j for _, j in pairs])
    for tie in ("parity", "positive"):
        pm = batch_dimension_ordered_routes(torus, src, dst, tie=tie)
        for f, (i, j) in enumerate(pairs):
            want = net.path_to_links(
                dimension_ordered_route(torus, verts[i], verts[j], tie=tie)
            )
            assert pm[f].tolist() == want.tolist(), (verts[i], verts[j])
    assert math.prod(torus.dims) == torus.num_vertices
