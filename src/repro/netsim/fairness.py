"""Max-min fair rate allocation (progressive filling / water-filling).

Given flows with fixed paths over capacitated links, the max-min fair
allocation raises all flow rates together until some link saturates,
freezes the flows through it, and repeats.  It is the classical fluid
model of TCP-fair / hardware-arbitrated link sharing and is what the
bisection-pairing experiment's "every pair shares the cut" argument
computes implicitly.

The implementation is fully vectorized: paths are integer arrays over
dense link ids (see :class:`repro.netsim.network.LinkNetwork`), the
per-link active-flow counts are maintained with ``np.bincount``, and each
round of filling is O(total path length).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .. import observability

__all__ = ["max_min_fair_rates"]

_EPS = 1e-12


def max_min_fair_rates(
    paths: Sequence[np.ndarray],
    capacities: np.ndarray,
    demands: Sequence[float] | None = None,
) -> np.ndarray:
    """Max-min fair rates for flows with the given link paths.

    Parameters
    ----------
    paths:
        One integer array of directed-link indices per flow.  A flow with
        an empty path (source == destination) gets rate ``inf``.
    capacities:
        Per-link capacity array.
    demands:
        Optional per-flow rate caps (e.g. injection bandwidth limits); a
        flow freezes at its demand if the network would allow more.

    Returns
    -------
    numpy.ndarray
        Per-flow rates.  Water-filling terminates in at most
        ``len(paths)`` rounds; typical symmetric patterns take one.
    """
    capacities = np.asarray(capacities, dtype=float)
    if np.any(capacities < 0):
        raise ValueError("link capacities must be non-negative")
    if np.any(capacities == 0):
        # Zero capacity models a *failed* link (see repro.faults); flows
        # must be routed around failures before rates are solved.
        dead = np.flatnonzero(capacities == 0)
        dead_set = set(dead.tolist())
        for i, p in enumerate(paths):
            if any(int(l) in dead_set for l in p):
                raise ValueError(
                    f"flow {i} crosses failed (zero-capacity) link(s) "
                    f"{sorted(dead_set.intersection(int(l) for l in p))}; "
                    "reroute around faults before solving rates"
                )
    n_flows = len(paths)
    n_links = len(capacities)
    rates = np.zeros(n_flows, dtype=float)
    if n_flows == 0:
        return rates

    caps = demands is not None
    if caps:
        demand_arr = np.asarray(list(demands), dtype=float)  # type: ignore[arg-type]
        if len(demand_arr) != n_flows:
            raise ValueError(
                f"demands has {len(demand_arr)} entries for {n_flows} flows"
            )
        if np.any(demand_arr <= 0):
            raise ValueError("all demands must be positive")

    # Flows that traverse no link are unconstrained.
    unfrozen = np.ones(n_flows, dtype=bool)
    for i, p in enumerate(paths):
        if len(p) == 0:
            unfrozen[i] = False
            rates[i] = np.inf if not caps else demand_arr[i]

    cap_rem = capacities.astype(float).copy()
    fill = 0.0
    rounds_done = 0
    # Guard: each round freezes at least one flow.
    for _round in range(n_flows + 1):
        active_idx = np.flatnonzero(unfrozen)
        if len(active_idx) == 0:
            break
        rounds_done += 1
        concat = (
            np.concatenate([paths[i] for i in active_idx])
            if len(active_idx)
            else np.empty(0, dtype=np.int64)
        )
        counts = np.bincount(concat, minlength=n_links)
        used = counts > 0
        if not used.any():
            break
        inc = float((cap_rem[used] / counts[used]).min())
        if caps:
            head = demand_arr[active_idx] - fill
            inc = min(inc, float(head.min()))
        fill += inc
        cap_rem = cap_rem - counts * inc
        # Freeze flows crossing a saturated link (or hitting their demand).
        saturated = used & (cap_rem <= _EPS * capacities)
        for i in active_idx:
            p = paths[i]
            hit_link = len(p) > 0 and bool(saturated[p].any())
            hit_demand = caps and fill >= demand_arr[i] - _EPS
            if hit_link or hit_demand:
                unfrozen[i] = False
                rates[i] = fill
    if unfrozen.any():  # pragma: no cover - defensive
        rates[unfrozen] = fill
    if observability.OBS.enabled:
        observability.counter_add("netsim.fairness.calls")
        observability.counter_add("netsim.fairness.rounds", rounds_done)
        observability.counter_add("netsim.fairness.flows", n_flows)
    return rates
