"""Max-min fair rate allocation (progressive filling / water-filling).

Given flows with fixed paths over capacitated links, the max-min fair
allocation raises all flow rates together until some link saturates,
freezes the flows through it, and repeats.  It is the classical fluid
model of TCP-fair / hardware-arbitrated link sharing and is what the
bisection-pairing experiment's "every pair shares the cut" argument
computes implicitly.

The implementation is fully vectorized and operates natively on the
CSR :class:`~repro.netsim.batchroute.PathMatrix`: per-link active-flow
counts are ``np.bincount`` over the flat link-id array, and the
per-round freeze test is a second bincount over the flow-id companion
array — no per-flow Python loop anywhere.  The historical
``Sequence[np.ndarray]`` input shape is accepted through a thin
:meth:`PathMatrix.from_paths` adapter, and produces identical floats:
the round structure (counts, increments, fill levels) is unchanged, so
results are bit-for-bit those of the pre-CSR implementation.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .. import observability
from .batchroute import PathMatrix

__all__ = ["max_min_fair_rates"]

_EPS = 1e-12


def max_min_fair_rates(
    paths: PathMatrix | Sequence[np.ndarray],
    capacities: np.ndarray,
    demands: Sequence[float] | None = None,
    *,
    active: np.ndarray | None = None,
) -> np.ndarray:
    """Max-min fair rates for flows with the given link paths.

    Parameters
    ----------
    paths:
        A :class:`~repro.netsim.batchroute.PathMatrix`, or one integer
        array of directed-link indices per flow (adapted via
        :meth:`PathMatrix.from_paths`).  A flow with an empty path
        (source == destination) gets rate ``inf``.
    capacities:
        Per-link capacity array.
    demands:
        Optional per-flow rate caps (e.g. injection bandwidth limits); a
        flow freezes at its demand if the network would allow more.
        Indexed over *all* flows of *paths*, even when *active* selects
        a subset.
    active:
        Optional array of flow indices to solve for; other flows are
        treated as absent (no link usage).  The fluid engine uses this
        to re-solve shrinking flow sets without re-slicing the
        :class:`PathMatrix`.  Default: all flows.

    Returns
    -------
    numpy.ndarray
        Per-flow rates, aligned with *active* when given (else with
        *paths*).  Water-filling terminates in at most ``len(active)``
        rounds; typical symmetric patterns take one.
    """
    pm = paths if isinstance(paths, PathMatrix) else PathMatrix.from_paths(paths)
    capacities = np.asarray(capacities, dtype=float)
    if np.any(capacities < 0):
        raise ValueError("link capacities must be non-negative")
    n_total = len(pm)
    n_links = len(capacities)

    if active is None:
        act = np.arange(n_total, dtype=np.int64)
    else:
        act = np.ascontiguousarray(active, dtype=np.int64).ravel()
        if act.size and (act.min() < 0 or act.max() >= n_total):
            raise ValueError(
                f"active flow indices must be in [0, {n_total - 1}]"
            )
    n_act = len(act)
    rates = np.zeros(n_act, dtype=float)
    if n_act == 0:
        return rates

    # CSR compaction: gather the active flows' link entries once.
    lengths = pm.lengths[act]
    total = int(lengths.sum())
    if total:
        seg_starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
        flat = (
            np.arange(total, dtype=np.int64)
            - np.repeat(seg_starts, lengths)
            + np.repeat(pm.offsets[act], lengths)
        )
        sub_links = pm.link_ids[flat]
    else:
        sub_links = np.empty(0, dtype=np.int64)
    sub_fids = np.repeat(np.arange(n_act, dtype=np.int64), lengths)

    if np.any(capacities == 0):
        # Zero capacity models a *failed* link (see repro.faults); flows
        # must be routed around failures before rates are solved.
        entry_dead = capacities[sub_links] == 0
        if entry_dead.any():
            pos = int(sub_fids[entry_dead].min())
            flow_id = int(act[pos])
            dead_links = sorted(
                set(sub_links[entry_dead & (sub_fids == pos)].tolist())
            )
            raise ValueError(
                f"flow {flow_id} crosses failed (zero-capacity) link(s) "
                f"{dead_links}; "
                "reroute around faults before solving rates"
            )

    caps = demands is not None
    if caps:
        demand_arr = np.asarray(list(demands), dtype=float)  # type: ignore[arg-type]
        if len(demand_arr) != n_total:
            raise ValueError(
                f"demands has {len(demand_arr)} entries for {n_total} flows"
            )
        if np.any(demand_arr <= 0):
            raise ValueError("all demands must be positive")
        demand_act = demand_arr[act]

    # Flows that traverse no link are unconstrained.
    empty = lengths == 0
    unfrozen = ~empty
    rates[empty] = np.inf if not caps else demand_act[empty]

    cap_rem = capacities.astype(float).copy()
    fill = 0.0
    rounds_done = 0
    # Guard: each round freezes at least one flow.
    for _round in range(n_act + 1):
        if not unfrozen.any():
            break
        rounds_done += 1
        entry_live = unfrozen[sub_fids]
        counts = np.bincount(sub_links[entry_live], minlength=n_links)
        used = counts > 0
        if not used.any():
            break
        inc = float((cap_rem[used] / counts[used]).min())
        if caps:
            head = demand_act[unfrozen] - fill
            inc = min(inc, float(head.min()))
        fill += inc
        cap_rem = cap_rem - counts * inc
        # Freeze flows crossing a saturated link (or hitting their demand).
        saturated = used & (cap_rem <= _EPS * capacities)
        hit_entries = entry_live & saturated[sub_links]
        hit = np.bincount(sub_fids[hit_entries], minlength=n_act) > 0
        if caps:
            hit |= unfrozen & (fill >= demand_act - _EPS)
        hit &= unfrozen
        rates[hit] = fill
        unfrozen &= ~hit
    if unfrozen.any():  # pragma: no cover - defensive
        rates[unfrozen] = fill
    if observability.OBS.enabled:
        observability.counter_add("netsim.fairness.calls")
        observability.counter_add("netsim.fairness.rounds", rounds_done)
        observability.counter_add("netsim.fairness.flows", n_act)
    return rates
