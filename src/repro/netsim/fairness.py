"""Max-min fair rate allocation (progressive filling / water-filling).

Given flows with fixed paths over capacitated links, the max-min fair
allocation raises all flow rates together until some link saturates,
freezes the flows through it, and repeats.  It is the classical fluid
model of TCP-fair / hardware-arbitrated link sharing and is what the
bisection-pairing experiment's "every pair shares the cut" argument
computes implicitly.

The implementation is fully vectorized and operates natively on the
CSR :class:`~repro.netsim.batchroute.PathMatrix`: per-link active-flow
counts are ``np.bincount`` over the flat link-id array, and the
per-round freeze test is a second bincount over the flow-id companion
array — no per-flow Python loop anywhere.  The historical
``Sequence[np.ndarray]`` input shape is accepted through a thin
:meth:`PathMatrix.from_paths` adapter, and produces identical floats:
the round structure (counts, increments, fill levels) is unchanged, so
results are bit-for-bit those of the pre-CSR implementation.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .. import contracts, observability
from .batchroute import PathMatrix
from .stacked import StackedPathMatrix, gather_subset_entries, segment_min

__all__ = ["max_min_fair_rates", "stacked_max_min_fair_rates"]

_EPS = 1e-12


def max_min_fair_rates(
    paths: PathMatrix | Sequence[np.ndarray],
    capacities: np.ndarray,
    demands: Sequence[float] | None = None,
    *,
    active: np.ndarray | None = None,
    return_bottlenecks: bool = False,
    validate: bool = True,
) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
    """Max-min fair rates for flows with the given link paths.

    Parameters
    ----------
    paths:
        A :class:`~repro.netsim.batchroute.PathMatrix`, or one integer
        array of directed-link indices per flow (adapted via
        :meth:`PathMatrix.from_paths`).  A flow with an empty path
        (source == destination) gets rate ``inf``.
    capacities:
        Per-link capacity array.
    validate:
        When false, skip the O(links) capacity sign scan and the
        crossed-failed-link check.  For per-event callers (the simmpi
        vector engine) that re-solve over an unchanged, known-good
        capacity plane and guarantee by construction that no active
        flow crosses a zero-capacity link; the checks never alter the
        rates, so results are unchanged.
    demands:
        Optional per-flow rate caps (e.g. injection bandwidth limits); a
        flow freezes at its demand if the network would allow more.
        Indexed over *all* flows of *paths*, even when *active* selects
        a subset.
    active:
        Optional array of flow indices to solve for; other flows are
        treated as absent (no link usage).  The fluid engine uses this
        to re-solve shrinking flow sets without re-slicing the
        :class:`PathMatrix`.  Default: all flows.
    return_bottlenecks:
        When true, additionally return the sorted int64 ids of the
        *bottleneck links* — links that saturated while still carrying
        an unfrozen flow during the water-fill.  Used by the
        stacked≡scalar differential suite.

    Returns
    -------
    numpy.ndarray
        Per-flow rates, aligned with *active* when given (else with
        *paths*).  Water-filling terminates in at most ``len(active)``
        rounds; typical symmetric patterns take one.  With
        *return_bottlenecks* the return is ``(rates, bottleneck_ids)``.
    """
    pm = paths if isinstance(paths, PathMatrix) else PathMatrix.from_paths(paths)
    capacities = np.asarray(capacities, dtype=float)
    if validate and np.any(capacities < 0):
        raise ValueError("link capacities must be non-negative")
    if contracts.enabled():
        contracts.check_solver_inputs("max_min_fair_rates", capacities)
    n_total = len(pm)
    n_links = len(capacities)

    if active is None:
        act = np.arange(n_total, dtype=np.int64)
    else:
        act = np.ascontiguousarray(active, dtype=np.int64).ravel()
        if act.size and (act.min() < 0 or act.max() >= n_total):
            raise ValueError(
                f"active flow indices must be in [0, {n_total - 1}]"
            )
    n_act = len(act)
    rates = np.zeros(n_act, dtype=float)
    bottle = np.zeros(n_links, dtype=bool)
    if n_act == 0:
        if return_bottlenecks:
            return rates, np.flatnonzero(bottle)
        return rates

    # CSR compaction: gather the active flows' link entries once.
    sub_links, sub_fids, lengths = gather_subset_entries(
        pm.link_ids, pm.offsets, act
    )

    if validate and np.any(capacities == 0):
        # Zero capacity models a *failed* link (see repro.faults); flows
        # must be routed around failures before rates are solved.
        entry_dead = capacities[sub_links] == 0
        if entry_dead.any():
            pos = int(sub_fids[entry_dead].min())
            flow_id = int(act[pos])
            dead_links = sorted(
                set(sub_links[entry_dead & (sub_fids == pos)].tolist())
            )
            raise ValueError(
                f"flow {flow_id} crosses failed (zero-capacity) link(s) "
                f"{dead_links}; "
                "reroute around faults before solving rates"
            )

    caps = demands is not None
    if caps:
        demand_arr = np.asarray(list(demands), dtype=float)  # type: ignore[arg-type]
        if len(demand_arr) != n_total:
            raise ValueError(
                f"demands has {len(demand_arr)} entries for {n_total} flows"
            )
        if np.any(demand_arr <= 0):
            raise ValueError("all demands must be positive")
        demand_act = demand_arr[act]

    # Flows that traverse no link are unconstrained.
    empty = lengths == 0
    unfrozen = ~empty
    rates[empty] = np.inf if not caps else demand_act[empty]

    cap_rem = capacities.astype(float).copy()
    fill = 0.0
    rounds_done = 0
    # Guard: each round freezes at least one flow.
    for _round in range(n_act + 1):
        if not unfrozen.any():
            break
        rounds_done += 1
        entry_live = unfrozen[sub_fids]
        counts = np.bincount(sub_links[entry_live], minlength=n_links)
        used = counts > 0
        if not used.any():
            break
        inc = float((cap_rem[used] / counts[used]).min())
        if caps:
            head = demand_act[unfrozen] - fill
            inc = min(inc, float(head.min()))
        fill += inc
        cap_rem = cap_rem - counts * inc
        # Freeze flows crossing a saturated link (or hitting their demand).
        saturated = used & (cap_rem <= _EPS * capacities)
        bottle |= saturated
        hit_entries = entry_live & saturated[sub_links]
        hit = np.bincount(sub_fids[hit_entries], minlength=n_act) > 0
        if caps:
            hit |= unfrozen & (fill >= demand_act - _EPS)
        hit &= unfrozen
        rates[hit] = fill
        unfrozen &= ~hit
    if unfrozen.any():  # pragma: no cover - defensive
        rates[unfrozen] = fill
    if observability.OBS.enabled:
        observability.counter_add("netsim.fairness.calls")
        observability.counter_add("netsim.fairness.rounds", rounds_done)
        observability.counter_add("netsim.fairness.flows", n_act)
    if return_bottlenecks:
        return rates, np.flatnonzero(bottle)
    return rates


def stacked_max_min_fair_rates(
    stack: StackedPathMatrix,
    demands: np.ndarray | None = None,
    *,
    active: np.ndarray | None = None,
    return_bottlenecks: bool = False,
) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
    """Water-fill every scenario of *stack* in one numpy pass.

    The stacked generalization of :func:`max_min_fair_rates`: because
    scenarios occupy disjoint regions of the flat link space, the
    per-round bincount/saturation/freeze updates of all scenarios are
    computed by the same elementwise operations the scalar solver uses,
    and per-scenario increments come from exact segment minima
    (:func:`~repro.netsim.stacked.segment_min`).  Scenarios at
    different water-fill depths coexist: a finished scenario's
    increment is zero, a bit-preserving no-op on its fill and
    capacities.  The result is **bit-for-bit** what solving every
    scenario separately produces (the contract of
    ``tests/properties/test_stacked_equivalence.py``).

    Parameters
    ----------
    stack:
        The stacked scenarios (paths + capacity planes + active mask).
    demands:
        Optional per-flow rate caps over *all* stacked flows.
    active:
        Optional boolean mask over all flows further restricting
        ``stack.active`` (the stacked fluid engine's shrinking set).
    return_bottlenecks:
        When true, additionally return the sorted *global* link ids
        that saturated under an unfrozen flow (subtract ``link_base[s]``
        for scenario-local ids).

    Returns
    -------
    numpy.ndarray
        Per-flow rates aligned with the stacked flow rows; inactive
        flows get ``0.0``.  Slicing scenario ``s``'s rows and selecting
        its active flows reproduces the scalar solver's output array
        exactly.
    """
    if not isinstance(stack, StackedPathMatrix):
        raise TypeError(
            f"expected a StackedPathMatrix, got {type(stack).__name__}"
        )
    n_flows = stack.num_flows
    n_links = stack.num_links
    capacities = stack.capacities
    if np.any(capacities < 0):
        raise ValueError("link capacities must be non-negative")
    if contracts.enabled():
        contracts.check_solver_inputs(
            "stacked_max_min_fair_rates", capacities
        )

    act = stack.active
    if active is not None:
        extra = np.ascontiguousarray(active, dtype=bool)
        if extra.shape != (n_flows,):
            raise ValueError(
                f"active mask has shape {extra.shape}, expected "
                f"({n_flows},)"
            )
        act = act & extra

    rates = np.zeros(n_flows, dtype=float)
    bottle = np.zeros(n_links, dtype=bool)
    flow_scn = stack.flow_scenarios
    n_scen = stack.num_scenarios

    lengths = stack.lengths
    entry_fid = np.repeat(np.arange(n_flows, dtype=np.int64), lengths)
    entry_links = stack.link_ids

    # Scalar parity: a flow crossing a zero-capacity (failed) link must
    # have been rerouted before rates are solved.
    if np.any(capacities == 0):
        entry_dead = (capacities[entry_links] == 0) & act[entry_fid]
        if entry_dead.any():
            fid = int(entry_fid[entry_dead].min())
            scen = int(flow_scn[fid])
            local = fid - int(stack.flow_base[scen])
            dead_links = sorted(
                (
                    entry_links[entry_dead & (entry_fid == fid)]
                    - stack.link_base[scen]
                ).tolist()
            )
            raise ValueError(
                f"flow {local} of scenario {scen} crosses failed "
                f"(zero-capacity) link(s) {dead_links}; "
                "reroute around faults before solving rates"
            )

    caps = demands is not None
    if caps:
        demand_arr = np.asarray(demands, dtype=float).ravel()
        if len(demand_arr) != n_flows:
            raise ValueError(
                f"demands has {len(demand_arr)} entries for "
                f"{n_flows} flows"
            )
        if np.any(demand_arr <= 0):
            raise ValueError("all demands must be positive")

    # Flows that traverse no link are unconstrained (or demand-capped).
    empty = lengths == 0
    unfrozen = act & ~empty
    free = act & empty
    rates[free] = np.inf if not caps else demand_arr[free]

    cap_rem = capacities.copy()
    fill = np.zeros(n_scen, dtype=float)
    rounds_done = 0
    ratio = np.empty(n_links, dtype=float)
    link_scn = np.repeat(
        np.arange(n_scen, dtype=np.int64), np.diff(stack.link_base)
    )
    # Guard: each round freezes at least one flow per live scenario.
    for _round in range(n_flows + 1):
        if not unfrozen.any():
            break
        rounds_done += 1
        entry_live = unfrozen[entry_fid]
        counts = np.bincount(entry_links[entry_live], minlength=n_links)
        used = counts > 0
        # Per-link headroom ratio; unused links are +inf so the segment
        # minimum sees exactly the scalar solver's cap_rem/counts set.
        ratio.fill(np.inf)
        np.divide(cap_rem, counts, out=ratio, where=used)
        inc = segment_min(ratio, stack.link_base)
        if caps:
            head = np.where(unfrozen, demand_arr - fill[flow_scn], np.inf)
            inc = np.minimum(inc, segment_min(head, stack.flow_base))
        # Scenarios with no unfrozen flows see only +inf: their
        # increment is zero, so fill += 0.0 and cap_rem - 0 are exact
        # no-ops and the scenario stays bit-frozen.
        inc[~np.isfinite(inc)] = 0.0
        fill += inc
        cap_rem = cap_rem - counts * inc[link_scn]
        saturated = used & (cap_rem <= _EPS * capacities)
        bottle |= saturated
        hit_entries = entry_live & saturated[entry_links]
        hit = np.bincount(entry_fid[hit_entries], minlength=n_flows) > 0
        if caps:
            hit |= unfrozen & (
                fill[flow_scn] >= demand_arr - _EPS
            )
        hit &= unfrozen
        rates[hit] = fill[flow_scn][hit]
        unfrozen &= ~hit
    if unfrozen.any():  # pragma: no cover - defensive
        rates[unfrozen] = fill[flow_scn][unfrozen]
    if observability.OBS.enabled:
        observability.counter_add("netsim.fairness.stacked_calls")
        observability.counter_add(
            "netsim.fairness.stacked_scenarios", n_scen
        )
        observability.counter_add(
            "netsim.fairness.rounds", rounds_done
        )
        observability.counter_add(
            "netsim.fairness.flows", int(act.sum())
        )
    if return_bottlenecks:
        return rates, np.flatnonzero(bottle)
    return rates
