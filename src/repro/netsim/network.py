"""Flow-level network model: directed links with capacities.

The simulator works on a *directed* link graph: every undirected edge of
a :class:`~repro.topology.base.Topology` becomes two directed links, one
per direction, each with the edge's full capacity — matching Blue Gene/Q
links, which move 2 GB/s *per direction* simultaneously.

Links are indexed densely (``0 .. L-1``) so that flow paths become small
integer arrays and the fairness/load computations vectorize with NumPy.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import TYPE_CHECKING

import numpy as np

from .._validation import check_positive_float
from ..topology.base import Topology, Vertex

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..faults import FaultSet

__all__ = ["LinkNetwork"]


class LinkNetwork:
    """Directed-link view of a topology, with dense link indexing.

    Parameters
    ----------
    topo:
        The underlying topology.  Edge weights are interpreted as
        *relative* capacities and multiplied by *link_bandwidth*.
    link_bandwidth:
        Capacity of a unit-weight link, in bandwidth units of your choice
        (the experiments use GB/s).

    Examples
    --------
    >>> from repro.topology import Torus
    >>> net = LinkNetwork(Torus((4, 4)), link_bandwidth=2.0)
    >>> net.num_links        # 32 undirected edges, two directions each
    64
    """

    def __init__(self, topo: Topology, link_bandwidth: float = 1.0):
        bw = check_positive_float(link_bandwidth, "link_bandwidth")
        self._topo = topo
        self._bandwidth = bw
        self._faults: "FaultSet | None" = None
        # The vertex-tuple index is only needed by vertex-level APIs
        # (link_id / link_endpoints / path_to_links / with_faults); on a
        # torus the capacities follow analytically from the dense link
        # layout, so the O(V·deg) dict build is deferred until a
        # vertex-level call actually happens.  Batch-routed experiments
        # never pay for it.
        self._index: dict[tuple[Vertex, Vertex], int] | None = None
        self._endpoints: list[tuple[Vertex, Vertex]] | None = None
        caps = self._analytic_capacities()
        if caps is None:
            self._build_index()
        else:
            self._capacity = caps

    def _analytic_capacities(self) -> np.ndarray | None:
        """Per-link capacities without enumerating links, if possible.

        The dense id layout on a torus is ``vertex_rank * degree +
        slot`` (see :func:`repro.netsim.batchroute.link_layout`), so the
        capacity array is the per-slot dimension weights tiled over
        vertices — identical, entry for entry, to what the enumeration
        loop builds.
        """
        from ..topology.torus import Torus

        if type(self._topo) is not Torus:
            return None
        from .batchroute import link_layout

        layout = link_layout(self._topo)
        weights = np.asarray(self._topo.dim_weights, dtype=float)
        per_slot = weights[np.asarray(layout.slot_dims)] * self._bandwidth
        return np.tile(per_slot, self._topo.num_vertices)

    def _build_index(self) -> None:
        """Enumerate links first-seen, building the vertex-tuple index."""
        index: dict[tuple[Vertex, Vertex], int] = {}
        caps: list[float] = []
        ends: list[tuple[Vertex, Vertex]] = []
        for u in self._topo.vertices():
            for v, w in self._topo.neighbors(u):
                key = (u, v)
                if key not in index:
                    index[key] = len(caps)
                    caps.append(w * self._bandwidth)
                    ends.append(key)
        if not hasattr(self, "_capacity"):
            self._capacity = np.asarray(caps, dtype=float)
        elif len(caps) != len(self._capacity):  # pragma: no cover - defensive
            raise AssertionError(
                f"analytic layout produced {len(self._capacity)} links "
                f"but enumeration found {len(caps)}"
            )
        self._index = index
        self._endpoints = ends

    def _ensure_index(self) -> None:
        if self._index is None:
            self._build_index()

    @property
    def topology(self) -> Topology:
        """The underlying topology."""
        return self._topo

    @property
    def num_links(self) -> int:
        """Number of directed links."""
        return len(self._capacity)

    @property
    def link_bandwidth(self) -> float:
        """Capacity multiplier applied to unit-weight links."""
        return self._bandwidth

    @property
    def capacities(self) -> np.ndarray:
        """Per-link capacity array (read-only view)."""
        view = self._capacity.view()
        view.flags.writeable = False
        return view

    @property
    def faults(self) -> "FaultSet | None":
        """The fault set applied via :meth:`with_faults`, if any."""
        return self._faults

    def with_faults(self, faults: "FaultSet") -> "LinkNetwork":
        """A copy of this network with *faults* applied to capacities.

        Failed links (and links incident to failed nodes) get capacity
        0; degraded links get their capacity scaled by the fault set's
        factor.  Link indices are unchanged, so paths computed on the
        healthy network remain index-compatible — but routing must
        avoid zero-capacity links (see
        :func:`repro.netsim.routing.fault_aware_route`); the fairness
        solver rejects flows crossing them.
        """
        self._ensure_index()
        clone = object.__new__(LinkNetwork)
        clone._topo = self._topo
        clone._index = self._index
        clone._endpoints = self._endpoints
        clone._bandwidth = self._bandwidth
        caps = self._capacity.copy()
        for i, (u, v) in enumerate(self._endpoints):
            # Unconditional: multiplying by a factor of exactly 1.0 is
            # IEEE-exact, so healthy links keep bit-identical capacity.
            caps[i] *= faults.capacity_factor(u, v)
        clone._capacity = caps
        clone._faults = faults
        return clone

    def failed_link_ids(self) -> np.ndarray:
        """Dense indices of links with zero capacity (failed)."""
        return np.flatnonzero(self._capacity == 0.0)  # repro: allow-float-eq failed links carry an exact 0.0 sentinel (capacity_factor returns exact 0.0)

    def link_id(self, u: Vertex, v: Vertex) -> int:
        """Dense index of the directed link ``u -> v``.

        Raises :class:`KeyError` when ``u`` and ``v`` are not adjacent.
        """
        self._ensure_index()
        try:
            return self._index[(u, v)]
        except KeyError:
            raise KeyError(f"no directed link {u!r} -> {v!r}") from None

    def link_endpoints(self, link: int) -> tuple[Vertex, Vertex]:
        """Endpoints ``(u, v)`` of directed link index *link*."""
        self._ensure_index()
        return self._endpoints[link]

    def path_to_links(self, path: Iterable[Vertex]) -> np.ndarray:
        """Convert a vertex path to an array of directed link indices."""
        verts = list(path)
        if len(verts) < 2:
            return np.empty(0, dtype=np.int64)
        return np.asarray(
            [self.link_id(a, b) for a, b in zip(verts, verts[1:])],
            dtype=np.int64,
        )

    def load_of_flows(
        self,
        paths: Iterable[np.ndarray],
        volumes: Iterable[float] | None = None,
    ) -> np.ndarray:
        """Total volume crossing each link given flow *paths*.

        *volumes* defaults to 1 per flow.  Returns an array of length
        :attr:`num_links`.
        """
        load = np.zeros(self.num_links, dtype=float)
        if volumes is None:
            from .batchroute import PathMatrix

            if isinstance(paths, PathMatrix):
                # Unweighted loads are pure counts: one bincount over the
                # flat CSR link-id array (exact — integer accumulation).
                counts = np.bincount(
                    paths.link_ids, minlength=self.num_links
                )
                return counts.astype(float)
            for p in paths:
                if len(p):
                    np.add.at(load, p, 1.0)
        else:
            for p, v in zip(paths, volumes):
                if len(p):
                    np.add.at(load, p, float(v))
        return load

    def bottleneck_time(
        self,
        paths: Iterable[np.ndarray],
        volumes: Iterable[float],
    ) -> float:
        """Lower-bound completion time: max over links of load/capacity.

        This is the static link-load contention model: with perfect
        scheduling, all traffic finishes no earlier than the most loaded
        link allows.  For symmetric patterns (the bisection pairing
        benchmark) it coincides with the max-min fluid completion time.
        """
        load = self.load_of_flows(paths, volumes)
        with np.errstate(divide="ignore", invalid="ignore"):
            times = np.where(load > 0, load / self._capacity, 0.0)
        return float(times.max()) if len(times) else 0.0

    def __repr__(self) -> str:
        return (
            f"LinkNetwork({self._topo.name}, links={self.num_links}, "
            f"bandwidth={self._bandwidth})"
        )
