"""Traffic-pattern generators.

Produces the communication patterns of the paper's experiments as lists
of ``(source, destination)`` vertex pairs (optionally with volumes):

* :func:`bisection_pairing` — the furthest-node scheme of Chen et al.
  used in Experiment A: every node exchanges with the node at maximal
  hop distance (coordinate offset ``a_k / 2`` in every dimension);
* :func:`dimension_shift` — nearest-neighbor shifts (halo exchanges);
* :func:`random_permutation` — seeded random permutation traffic;
* :func:`all_pairs_uniform` — uniform all-to-all (for small networks);
* :func:`tornado` — the classical adversarial tornado pattern
  (``a_k / 2 - 1`` offset along one dimension).
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from .._validation import check_nonnegative_int
from ..topology.torus import Torus

__all__ = [
    "bisection_pairing",
    "dimension_shift",
    "random_permutation",
    "all_pairs_uniform",
    "tornado",
]

Pair = tuple[tuple[int, ...], tuple[int, ...]]


def bisection_pairing(torus: Torus) -> list[Pair]:
    """Furthest-node pairing: each node sends to its antipode.

    Every vertex appears exactly once as a source; when all dimensions
    are even the antipode map is an involution and the pattern is the
    union of ``N/2`` bidirectional exchanges, exactly as in the paper's
    bisection pairing benchmark.
    """
    return [(v, torus.antipode(v)) for v in torus.vertices()]


def dimension_shift(torus: Torus, dim: int, offset: int = 1) -> list[Pair]:
    """Shift-by-*offset* along dimension *dim* (halo-exchange style)."""
    if not 0 <= dim < torus.ndim:
        raise ValueError(
            f"dim must be in [0, {torus.ndim - 1}], got {dim}"
        )
    a = torus.dims[dim]
    off = offset % a
    if off == 0:
        raise ValueError(
            f"offset {offset} is a multiple of dimension length {a}; "
            "every node would send to itself"
        )
    out: list[Pair] = []
    for v in torus.vertices():
        dst = v[:dim] + ((v[dim] + off) % a,) + v[dim + 1 :]
        out.append((v, dst))
    return out


def random_permutation(torus: Torus, seed: int = 0) -> list[Pair]:
    """A seeded random permutation with no fixed points (derangement-ish).

    Fixed points are removed by swapping with a neighbor in the
    permutation order, so every node sends to some *other* node; the
    result is deterministic for a given seed.
    """
    check_nonnegative_int(seed, "seed")
    verts = list(torus.vertices())
    n = len(verts)
    if n < 2:
        raise ValueError("random_permutation requires at least 2 vertices")
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n)
    # Remove fixed points deterministically.
    for i in range(n):
        if perm[i] == i:
            j = (i + 1) % n
            perm[i], perm[j] = perm[j], perm[i]
    return [(verts[i], verts[int(perm[i])]) for i in range(n)]


def all_pairs_uniform(torus: Torus) -> Iterator[Pair]:
    """All ordered pairs of distinct vertices (uniform all-to-all).

    A generator — the pattern has ``N (N-1)`` pairs, so materialize it
    only for small networks.
    """
    for u in torus.vertices():
        for v in torus.vertices():
            if u != v:
                yield (u, v)


def tornado(torus: Torus, dim: int = 0) -> list[Pair]:
    """Tornado pattern: offset ``a/2 - 1`` along one dimension.

    The classical adversarial pattern for minimal-path routing on rings:
    traffic travels almost half way around, loading one direction.
    Requires the dimension length to be at least 3.
    """
    if not 0 <= dim < torus.ndim:
        raise ValueError(
            f"dim must be in [0, {torus.ndim - 1}], got {dim}"
        )
    a = torus.dims[dim]
    if a < 3:
        raise ValueError(
            f"tornado needs dimension length >= 3, got {a}"
        )
    off = a // 2 - 1
    if off == 0:
        off = 1
    return dimension_shift(torus, dim, off)
