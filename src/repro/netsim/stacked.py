"""Scenario-stacked CSR paths: many simulations in one numpy pass.

:class:`~repro.netsim.batchroute.PathMatrix` batches all *flows* of one
scenario; a sweep still solves one (pattern, geometry, fault-set)
scenario at a time, paying the fixed numpy-call overhead of the
water-filling loop hundreds of times over.  :class:`StackedPathMatrix`
removes that axis too: it concatenates the flows of ``S`` scenarios and
shifts every scenario's link ids into a *disjoint* region of one flat
link space, so one ``np.bincount`` counts the link loads of every
scenario simultaneously and one elementwise update advances every
scenario's water level.

Layout
------

* flows of scenario ``s`` occupy rows ``flow_base[s]:flow_base[s+1]``
  of the ordinary flow CSR (``link_ids``/``offsets``);
* scenario ``s``'s links occupy ``link_base[s]:link_base[s+1]`` of the
  flat ``capacities`` plane, and its entries in ``link_ids`` are the
  scenario-local ids **plus** ``link_base[s]`` — scenarios can never
  alias each other's links;
* ``active`` marks the flows that participate at all (the fault sweep
  excludes disconnected flows per scenario).

Because scenarios occupy disjoint link regions, every per-link and
per-flow quantity of the stacked solvers factors exactly into the
per-scenario quantities of the scalar solvers — the foundation of the
bit-for-bit equivalence contract enforced by
``tests/properties/test_stacked_equivalence.py``.

Per-scenario reductions use ``np.minimum.reduceat`` over the
``link_base``/``flow_base`` segment starts; empty segments (a scenario
with no flows, or — impossible by construction but guarded anyway — no
links) are masked out first, because ``reduceat`` on an empty segment
would leak the neighbouring segment's first element.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .. import contracts
from .batchroute import PathMatrix

__all__ = ["StackedPathMatrix", "gather_subset_entries", "segment_min"]


def segment_min(
    values: np.ndarray, base: np.ndarray, fill: float = np.inf
) -> np.ndarray:
    """Per-segment minimum of *values* under ``base`` boundaries.

    ``base`` is an ``(S + 1,)`` offsets array (``base[s]:base[s+1]`` is
    segment ``s``); empty segments yield *fill*.  Exact regardless of
    evaluation order (min is associative and commutative over floats
    without NaNs), which is what lets the stacked solvers reproduce the
    scalar solvers' reductions bit for bit.
    """
    n_seg = len(base) - 1
    out = np.full(n_seg, fill, dtype=float)
    if len(values) == 0 or n_seg == 0:
        return out
    nonempty = base[1:] > base[:-1]
    if nonempty.any():
        starts = base[:-1][nonempty]
        out[nonempty] = np.minimum.reduceat(values, starts)
    return out


def gather_subset_entries(
    link_ids: np.ndarray, offsets: np.ndarray, subset: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Compact the CSR entries of the *subset* rows, in subset order.

    ``(link_ids, offsets)`` is an ordinary flow CSR; *subset* selects
    row indices (any order, repeats allowed).  Returns
    ``(entry_links, entry_rows, lengths)`` where ``entry_links`` is the
    concatenation of the selected rows' link entries, ``entry_rows``
    maps each entry back to its *local* position in *subset* (the
    bincount companion), and ``lengths`` is the per-subset-row entry
    count.  This is the shared gather under the active-subset water
    fill (:func:`~repro.netsim.fairness.max_min_fair_rates`) and the
    simmpi :class:`~repro.simmpi.ledger.FlowLedger`'s degraded/severed
    masks; the arithmetic is kept byte-stable because downstream
    bit-identity contracts depend on the gathered entry order.
    """
    subset = np.ascontiguousarray(subset, dtype=np.int64).ravel()
    n_rows = len(subset)
    lengths = offsets[subset + 1] - offsets[subset]
    total = int(lengths.sum())
    if total:
        seg_starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
        flat = (
            np.arange(total, dtype=np.int64)
            - np.repeat(seg_starts, lengths)
            + np.repeat(offsets[subset], lengths)
        )
        entry_links = link_ids[flat]
    else:
        entry_links = np.empty(0, dtype=np.int64)
    entry_rows = np.repeat(np.arange(n_rows, dtype=np.int64), lengths)
    return entry_links, entry_rows, lengths


class StackedPathMatrix:
    """CSR paths of ``S`` scenarios over one disjoint flat link space.

    Parameters
    ----------
    link_ids, offsets:
        Ordinary flow CSR over the concatenated flows of all scenarios.
        Entries are *global* link ids — the scenario-local id plus that
        scenario's ``link_base`` offset.
    flow_base:
        ``(S + 1,)`` int64: flows of scenario ``s`` are rows
        ``flow_base[s]:flow_base[s+1]``.
    link_base:
        ``(S + 1,)`` int64: links of scenario ``s`` are the capacity
        slots ``link_base[s]:link_base[s+1]``.
    capacities:
        Flat float capacity plane of length ``link_base[-1]`` — the
        concatenation of every scenario's (possibly fault-degraded)
        per-link capacities.
    active:
        Optional boolean mask over all flows; inactive flows (e.g.
        disconnected by faults) are absent from every solve.  Default:
        all flows active.

    Prefer :meth:`from_scenarios` over the raw constructor.
    """

    __slots__ = (
        "_link_ids",
        "_offsets",
        "_flow_base",
        "_link_base",
        "_capacities",
        "_active",
        "_flow_scenarios",
    )

    def __init__(
        self,
        link_ids: np.ndarray,
        offsets: np.ndarray,
        flow_base: np.ndarray,
        link_base: np.ndarray,
        capacities: np.ndarray,
        active: np.ndarray | None = None,
    ):
        link_ids = np.ascontiguousarray(link_ids, dtype=np.int64)
        offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        flow_base = np.ascontiguousarray(flow_base, dtype=np.int64)
        link_base = np.ascontiguousarray(link_base, dtype=np.int64)
        capacities = np.ascontiguousarray(capacities, dtype=float)
        if flow_base.ndim != 1 or len(flow_base) < 1:
            raise ValueError("flow_base must be a 1-D array of length >= 1")
        if link_base.shape != flow_base.shape:
            raise ValueError(
                f"flow_base has {len(flow_base)} entries but link_base "
                f"has {len(link_base)}; both must be num_scenarios + 1"
            )
        n_flows = len(offsets) - 1
        if flow_base[0] != 0 or flow_base[-1] != n_flows:
            raise ValueError(
                f"flow_base must run from 0 to num_flows={n_flows}, got "
                f"[{flow_base[0]}, {flow_base[-1]}]"
            )
        if link_base[0] != 0 or link_base[-1] != len(capacities):
            raise ValueError(
                f"link_base must run from 0 to num_links="
                f"{len(capacities)}, got [{link_base[0]}, {link_base[-1]}]"
            )
        for name, base in (("flow_base", flow_base), ("link_base", link_base)):
            if np.any(np.diff(base) < 0):
                raise ValueError(f"{name} must be non-decreasing")
        if offsets[0] != 0 or offsets[-1] != len(link_ids):
            raise ValueError(
                f"offsets must run from 0 to len(link_ids)="
                f"{len(link_ids)}, got [{offsets[0]}, {offsets[-1]}]"
            )
        if np.any(np.diff(offsets) < 0):
            raise ValueError("offsets must be non-decreasing")
        if active is None:
            act = np.ones(n_flows, dtype=bool)
        else:
            act = np.ascontiguousarray(active, dtype=bool)
            if act.shape != (n_flows,):
                raise ValueError(
                    f"active mask has shape {act.shape}, expected "
                    f"({n_flows},)"
                )
            act = act.copy()
        # Scenario id of every flow — the broadcast companion that maps
        # per-scenario quantities (fill level, dt) onto flow rows.
        scen = np.repeat(
            np.arange(len(flow_base) - 1, dtype=np.int64),
            np.diff(flow_base),
        )
        # Every entry must stay inside its scenario's link region.
        if len(link_ids):
            entry_scen = scen[
                np.repeat(np.arange(n_flows, dtype=np.int64),
                          np.diff(offsets))
            ]
            lo = link_base[entry_scen]
            hi = link_base[entry_scen + 1]
            if np.any((link_ids < lo) | (link_ids >= hi)):
                raise ValueError(
                    "link_ids stray outside their scenario's "
                    "[link_base[s], link_base[s+1]) region"
                )
        for arr in (link_ids, offsets, flow_base, link_base, capacities,
                    act, scen):
            arr.flags.writeable = False
        self._link_ids = link_ids
        self._offsets = offsets
        self._flow_base = flow_base
        self._link_base = link_base
        self._capacities = capacities
        self._active = act
        self._flow_scenarios = scen
        if contracts.enabled():
            contracts.check_stacked_matrix(self)

    # ------------------------------------------------------------------ #
    # Construction                                                         #
    # ------------------------------------------------------------------ #

    @classmethod
    def from_scenarios(
        cls,
        scenarios: Sequence[
            tuple[PathMatrix, np.ndarray, np.ndarray | None]
        ],
    ) -> "StackedPathMatrix":
        """Stack per-scenario ``(paths, capacities, active)`` triples.

        *paths* is the scenario's :class:`PathMatrix` over its own
        (dense, zero-based) link-id space, *capacities* that space's
        per-link capacity array (faults already applied), and *active*
        an optional int64 array of participating flow indices (``None``
        = all).  Scenario link ids are shifted by the running capacity
        length so scenarios never share a capacity slot.
        """
        if not scenarios:
            raise ValueError("cannot stack zero scenarios")
        pms = []
        caps = []
        actives = []
        for pm, capacities, active in scenarios:
            if not isinstance(pm, PathMatrix):
                pm = PathMatrix.from_paths(pm)
            capacities = np.asarray(capacities, dtype=float)
            if capacities.ndim != 1:
                raise ValueError("scenario capacities must be 1-D")
            if len(pm.link_ids) and (
                pm.link_ids.min() < 0
                or pm.link_ids.max() >= len(capacities)
            ):
                raise ValueError(
                    f"scenario link ids exceed its {len(capacities)} "
                    f"capacity slots"
                )
            pms.append(pm)
            caps.append(capacities)
            actives.append(active)

        flow_counts = np.asarray([len(pm) for pm in pms], dtype=np.int64)
        link_counts = np.asarray([len(c) for c in caps], dtype=np.int64)
        flow_base = np.zeros(len(pms) + 1, dtype=np.int64)
        np.cumsum(flow_counts, out=flow_base[1:])
        link_base = np.zeros(len(pms) + 1, dtype=np.int64)
        np.cumsum(link_counts, out=link_base[1:])

        link_ids = np.concatenate(
            [pm.link_ids + link_base[s] for s, pm in enumerate(pms)]
        ) if flow_base[-1] else np.empty(0, dtype=np.int64)
        offsets = np.zeros(flow_base[-1] + 1, dtype=np.int64)
        np.cumsum(
            np.concatenate([pm.lengths for pm in pms])
            if pms else np.empty(0, dtype=np.int64),
            out=offsets[1:],
        )
        capacities = np.concatenate(caps)

        act = np.ones(int(flow_base[-1]), dtype=bool)
        for s, active in enumerate(actives):
            if active is None:
                continue
            idx = np.ascontiguousarray(active, dtype=np.int64).ravel()
            if idx.size and (
                idx.min() < 0 or idx.max() >= flow_counts[s]
            ):
                raise ValueError(
                    f"scenario {s} active indices must be in "
                    f"[0, {int(flow_counts[s]) - 1}]"
                )
            scen_mask = np.zeros(int(flow_counts[s]), dtype=bool)
            scen_mask[idx] = True
            act[flow_base[s] : flow_base[s + 1]] = scen_mask
        return cls(link_ids, offsets, flow_base, link_base, capacities,
                   active=act)

    # ------------------------------------------------------------------ #
    # Shared-memory codec                                                  #
    # ------------------------------------------------------------------ #

    def to_shared(self, pool) -> dict:
        """Descriptor handles for zero-copy transport.

        Every plane — CSR, scenario bases, capacity/fault planes, the
        active mask, and the derived flow→scenario map — goes into
        *pool* (a :class:`repro.sharedmem.SharedArrayPool`); what
        crosses the worker pipe is this small descriptor mapping.
        """
        return {
            "link_ids": pool.put_array(self._link_ids),
            "offsets": pool.put_array(self._offsets),
            "flow_base": pool.put_array(self._flow_base),
            "link_base": pool.put_array(self._link_base),
            "capacities": pool.put_array(self._capacities),
            "active": pool.put_array(self._active),
            "flow_scenarios": pool.put_array(self._flow_scenarios),
        }

    @classmethod
    def from_shared(cls, handles: dict) -> "StackedPathMatrix":
        """Rebuild from :meth:`to_shared` handles as read-only views.

        Zero-copy and validation-free: the O(entries) link-region check
        of ``__init__`` already ran on the producing side, and the
        attached views are immutable, so re-checking per worker would
        only re-buy the copy cost the transport exists to avoid.  Views
        are valid while the producing pool's segments live.
        """
        from ..sharedmem import attach_array

        spm = cls.__new__(cls)
        for slot in (
            "link_ids",
            "offsets",
            "flow_base",
            "link_base",
            "capacities",
            "active",
            "flow_scenarios",
        ):
            setattr(spm, f"_{slot}", attach_array(handles[slot]))
        return spm

    # ------------------------------------------------------------------ #
    # Structure                                                            #
    # ------------------------------------------------------------------ #

    @property
    def link_ids(self) -> np.ndarray:
        """Flat global link ids (read-only), ``bincount``-ready."""
        return self._link_ids

    @property
    def offsets(self) -> np.ndarray:
        """Flow CSR offsets of length ``num_flows + 1`` (read-only)."""
        return self._offsets

    @property
    def flow_base(self) -> np.ndarray:
        """``(S + 1,)`` flow segment boundaries (read-only)."""
        return self._flow_base

    @property
    def link_base(self) -> np.ndarray:
        """``(S + 1,)`` link segment boundaries (read-only)."""
        return self._link_base

    @property
    def capacities(self) -> np.ndarray:
        """Flat per-scenario capacity plane (read-only)."""
        return self._capacities

    @property
    def active(self) -> np.ndarray:
        """Boolean participating-flow mask over all flows (read-only)."""
        return self._active

    @property
    def flow_scenarios(self) -> np.ndarray:
        """Scenario id of every flow (read-only broadcast companion)."""
        return self._flow_scenarios

    @property
    def num_scenarios(self) -> int:
        return len(self._flow_base) - 1

    @property
    def num_flows(self) -> int:
        return len(self._offsets) - 1

    @property
    def num_links(self) -> int:
        return len(self._capacities)

    @property
    def lengths(self) -> np.ndarray:
        """Per-flow hop counts."""
        return np.diff(self._offsets)

    def flow_slice(self, s: int) -> slice:
        """Row slice of scenario *s*'s flows."""
        if not 0 <= s < self.num_scenarios:
            raise IndexError(
                f"scenario index {s} out of range for {self!r}"
            )
        return slice(int(self._flow_base[s]), int(self._flow_base[s + 1]))

    def link_slice(self, s: int) -> slice:
        """Capacity-plane slice of scenario *s*'s links."""
        if not 0 <= s < self.num_scenarios:
            raise IndexError(
                f"scenario index {s} out of range for {self!r}"
            )
        return slice(int(self._link_base[s]), int(self._link_base[s + 1]))

    def split(self, per_flow: np.ndarray) -> list[np.ndarray]:
        """Per-scenario views of a flow-aligned array.

        Views, not copies: slicing preserves element order, so summing
        a scenario's slice reproduces the scalar solver's pairwise sum
        over that scenario's array bit for bit.
        """
        per_flow = np.asarray(per_flow)
        if per_flow.shape[:1] != (self.num_flows,):
            raise ValueError(
                f"expected a flow-aligned array of length "
                f"{self.num_flows}, got shape {per_flow.shape}"
            )
        return [
            per_flow[self._flow_base[s] : self._flow_base[s + 1]]
            for s in range(self.num_scenarios)
        ]

    def __len__(self) -> int:
        return self.num_scenarios

    def __repr__(self) -> str:
        return (
            f"StackedPathMatrix(scenarios={self.num_scenarios}, "
            f"flows={self.num_flows}, links={self.num_links})"
        )


# Shared-memory sweeps reduce StackedPathMatrix to its descriptor
# handles instead of pickling the stacked planes (see repro.sharedmem).
from ..sharedmem import register_shared_codec  # noqa: E402

register_shared_codec(StackedPathMatrix)
