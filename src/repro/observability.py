"""Lightweight tracing, metrics, and profiling hooks — zero dependencies.

The paper's arguments are about *where time goes*: link contention vs.
compute vs. scheduling.  This module gives every layer of the simulator
a way to say so — nested spans with monotonic timings, named counters
and gauges (bytes moved per link class, route-cache hits, fairness
solver iterations, fault reroutes), and a JSONL exporter — while costing
essentially nothing when disabled.

Design rules
------------
* **One attribute check when off.**  Hot paths guard with
  ``if OBS.enabled:`` (or call a function that does); nothing else runs
  in disabled mode.  :func:`profiled` wraps a function the same way, so
  decorating a hot function adds a single boolean test per call.
* **Collection never changes results.**  Spans and counters observe;
  they do not participate.  A traced run is bit-identical to an
  untraced one (property-tested in
  ``tests/properties/test_property_parallel.py``).
* **Worker metrics merge into the parent.**  Worker processes spawned
  by :func:`repro.parallel.sweep_map` accumulate their own counters,
  span totals, and memo hit/miss counts; each task result carries a
  cumulative :class:`TraceSnapshot` and the parent folds the final
  snapshot of every worker back in — so :func:`repro.caching.\
    cache_stats` finally reflects ``jobs > 1`` runs.
* **Bounded memory.**  Individual span *events* are capped at
  :data:`MAX_EVENTS`; aggregate per-name totals keep counting past the
  cap, so summaries stay exact on arbitrarily long runs.

Naming conventions (see ``docs/observability.md`` for the full list):
dot-separated, ``<layer>.<thing>[.<detail>]`` — e.g. ``simmpi.run``,
``simmpi.route_cache.hits``, ``netsim.fairness.rounds``,
``parallel.sweep``, ``experiment.pairing.run``.

Enabling
--------
* programmatically: :func:`enable` / :func:`disable`;
* environment: ``REPRO_TRACE=1`` (collect in memory) or
  ``REPRO_TRACE=/path/trace.jsonl`` (collect *and* name a default
  export path, honoured by the CLI and the test-session hook);
* CLI: ``--trace PATH`` on the sweep-shaped subcommands, and
  ``repro trace summarize PATH`` to render a recorded trace.
"""

from __future__ import annotations

import itertools
import json
import os
import time
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass
from functools import wraps
from typing import Any

from . import env as _envmod

__all__ = [
    "OBS",
    "MAX_EVENTS",
    "TraceSnapshot",
    "enabled",
    "enable",
    "disable",
    "reset",
    "configure_from_env",
    "env_trace_path",
    "span",
    "profiled",
    "counter_add",
    "counter_add_many",
    "gauge_set",
    "worker_snapshot",
    "merge_snapshot",
    "reset_worker",
    "export_jsonl",
    "summarize_jsonl",
]

#: Environment knob.  Falsey values leave tracing off; ``1``/``true``/
#: ``yes``/``on`` enable in-memory collection; anything else enables
#: collection *and* is taken as the default JSONL export path.
_ENV = "REPRO_TRACE"

#: Cap on retained span events (aggregate totals keep counting past it).
MAX_EVENTS = 100_000


class _State:
    """Process-wide trace collector.

    ``enabled`` is *the* hot-path gate: every instrumentation site reads
    this one attribute and does nothing else when it is False.  The rest
    of the state is only touched while tracing is on.
    """

    __slots__ = (
        "enabled",
        "events",
        "dropped_events",
        "stack",
        "span_totals",
        "counters",
        "gauges",
        "origin",
    )

    def __init__(self) -> None:
        self.enabled = False
        self.origin = "parent"
        self.reset()

    def reset(self) -> None:
        """Drop collected metrics; the enabled flag is left alone."""
        self.events: list[tuple] = []
        self.dropped_events = 0
        self.stack: list[str] = []
        self.span_totals: dict[str, list] = {}  # name -> [count, total_s]
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}


#: The process-wide collector.  Hot paths read ``OBS.enabled`` directly.
OBS = _State()

#: Monotone stamp for worker snapshots: within one process, a later
#: snapshot always carries a larger seq, so the parent can keep the
#: final (cumulative) snapshot per worker pid.
_seq = itertools.count(1)


# --------------------------------------------------------------------- #
# Enable / disable / environment


def enabled() -> bool:
    """Whether tracing is collecting (the hot-path fast check)."""
    return OBS.enabled


def enable() -> None:
    """Start collecting spans, counters, and gauges in this process."""
    OBS.enabled = True


def disable() -> None:
    """Stop collecting.  Already-collected metrics are kept."""
    OBS.enabled = False


def reset() -> None:
    """Drop all collected metrics (keeps the enabled flag)."""
    OBS.reset()


def env_trace_path() -> str | None:
    """The default JSONL export path named by ``REPRO_TRACE``, if any.

    ``REPRO_TRACE=1`` (and friends) enable collection without naming a
    path; any other truthy value is interpreted as a file path.
    """
    raw = _envmod.get_raw(_ENV)
    if raw is None:
        return None
    val = raw.strip()
    if _envmod.is_falsey(val) or _envmod.is_truthy(val):
        return None
    return val


def configure_from_env() -> bool:
    """Sync the enabled flag with ``REPRO_TRACE``; returns the flag.

    Called at import time so fresh processes (CLI runs, spawned
    workers) honour the environment automatically; call it again after
    changing the environment mid-process (tests do).
    """
    raw = _envmod.get_raw(_ENV)
    if raw is None or _envmod.is_falsey(raw):
        OBS.enabled = False
    else:
        OBS.enabled = True
    return OBS.enabled


# --------------------------------------------------------------------- #
# Spans, counters, gauges


@contextmanager
def span(name: str, **attrs: Any) -> Iterator[None]:
    """Record a nested, monotonic-clock timed span around a block.

    Nesting is tracked with an explicit stack: a span opened while
    another is active records that span as its parent.  Attributes are
    small JSON-serializable values attached to the span event.
    """
    if not OBS.enabled:
        yield
        return
    parent = OBS.stack[-1] if OBS.stack else None
    OBS.stack.append(name)
    t0 = time.perf_counter()
    try:
        yield
    finally:
        dur = time.perf_counter() - t0
        OBS.stack.pop()
        tot = OBS.span_totals.get(name)
        if tot is None:
            OBS.span_totals[name] = [1, dur]
        else:
            tot[0] += 1
            tot[1] += dur
        if len(OBS.events) < MAX_EVENTS:
            OBS.events.append(
                (name, parent, len(OBS.stack), t0, dur, attrs or None)
            )
        else:
            OBS.dropped_events += 1


def profiled(
    name: str | None = None,
) -> Callable[[Callable], Callable]:
    """Decorator: run the function under a :func:`span`.

    With tracing disabled the wrapper is a single attribute check plus
    the call — safe on hot paths.  *name* defaults to
    ``<module-tail>.<qualname>``.
    """

    def decorate(fn: Callable) -> Callable:
        span_name = name or (
            f"{fn.__module__.rsplit('.', 1)[-1]}.{fn.__qualname__}"
        )

        @wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not OBS.enabled:
                return fn(*args, **kwargs)
            with span(span_name):
                return fn(*args, **kwargs)

        wrapper.span_name = span_name  # type: ignore[attr-defined]
        return wrapper

    return decorate


def counter_add(name: str, value: float = 1.0) -> None:
    """Add *value* to the named counter (no-op while disabled)."""
    if OBS.enabled:
        counters = OBS.counters
        counters[name] = counters.get(name, 0.0) + value


def counter_add_many(names, values) -> None:
    """Add paired *values* to the named counters (no-op while disabled).

    Vectorized callers (e.g. the simmpi engine's per-dimension gb·hops
    attribution) accumulate increments as a numpy array and fold them
    in with one call; each addition is ``float``-coerced exactly as
    :func:`counter_add` would, so traces are unchanged.
    """
    if OBS.enabled:
        counters = OBS.counters
        for name, value in zip(names, values):
            counters[name] = counters.get(name, 0.0) + float(value)


def gauge_set(name: str, value: float) -> None:
    """Set the named gauge to *value* (no-op while disabled)."""
    if OBS.enabled:
        OBS.gauges[name] = float(value)


# --------------------------------------------------------------------- #
# Worker-process snapshots (the sweep_map merge path)


@dataclass(frozen=True)
class TraceSnapshot:
    """Cumulative, picklable view of one process's metrics.

    Counters, gauges, and span totals are only non-empty when tracing
    is enabled in the worker; ``cache_counts`` is *always* populated so
    memo hit/miss accounting survives ``jobs > 1`` sweeps regardless of
    tracing.  Snapshots are cumulative: within one pid, the snapshot
    with the largest ``seq`` supersedes all earlier ones.
    """

    pid: int
    seq: int
    counters: dict[str, float]
    gauges: dict[str, float]
    span_totals: dict[str, tuple[int, float]]
    cache_counts: dict[str, tuple[int, int]]


def worker_snapshot() -> TraceSnapshot:
    """This process's cumulative metrics, for shipping to a parent."""
    from .caching import cache_counts

    return TraceSnapshot(
        pid=os.getpid(),
        seq=next(_seq),
        counters=dict(OBS.counters),
        gauges=dict(OBS.gauges),
        span_totals={
            k: (v[0], v[1]) for k, v in OBS.span_totals.items()
        },
        cache_counts=cache_counts(),
    )


def merge_snapshot(snap: TraceSnapshot) -> None:
    """Fold a worker's final snapshot into this process.

    Memo hit/miss counts always merge (into the registered memos of
    :mod:`repro.caching`); counters and span totals additionally merge
    into the trace state when tracing is enabled here.  Gauges merge by
    maximum — they are high-water marks across processes.
    """
    from .caching import merge_cache_counts

    merge_cache_counts(snap.cache_counts)
    if not OBS.enabled:
        return
    counters = OBS.counters
    for k, v in snap.counters.items():
        counters[k] = counters.get(k, 0.0) + v
    gauges = OBS.gauges
    for k, v in snap.gauges.items():
        cur = gauges.get(k)
        gauges[k] = v if cur is None else max(cur, v)
    for k, (count, total) in snap.span_totals.items():
        tot = OBS.span_totals.get(k)
        if tot is None:
            OBS.span_totals[k] = [count, total]
        else:
            tot[0] += count
            tot[1] += total


def reset_worker() -> None:
    """Zero this process's metrics at worker start.

    Used as the process-pool initializer: fork-started workers inherit
    the parent's accumulated counters and memo hit/miss counts, which
    would double-count when the worker's cumulative snapshot merges
    back.  Memo *contents* are kept — inherited cache entries are real
    hits.
    """
    from .caching import reset_cache_counters

    OBS.reset()
    OBS.origin = "worker"
    reset_cache_counters()


# --------------------------------------------------------------------- #
# JSONL export / summary


def export_jsonl(path: str | os.PathLike) -> int:
    """Write the collected trace as JSON Lines; returns the record count.

    Record types (one JSON object per line, ``"type"`` discriminated):

    - ``meta`` — schema version, pid, event accounting;
    - ``span_total`` — per-name aggregate: ``count``, ``total_s``
      (includes merged worker totals);
    - ``counter`` / ``gauge`` — named values (merged);
    - ``cache`` — one per registered memo: ``hits``, ``misses``,
      ``size``, ``maxsize`` (merged via :func:`merge_snapshot`);
    - ``span`` — individual events: ``name``, ``parent``, ``depth``,
      ``t0`` (monotonic, process-relative), ``dur`` seconds, optional
      ``attrs``.
    """
    from .caching import cache_stats

    records: list[dict] = [
        {
            "type": "meta",
            "version": 1,
            "pid": os.getpid(),
            "origin": OBS.origin,
            "enabled": OBS.enabled,
            "events": len(OBS.events),
            "dropped_events": OBS.dropped_events,
            "timestamp": time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
            ),
        }
    ]
    for name, (count, total) in sorted(OBS.span_totals.items()):
        records.append(
            {
                "type": "span_total",
                "name": name,
                "count": count,
                "total_s": total,
            }
        )
    for name, value in sorted(OBS.counters.items()):
        records.append({"type": "counter", "name": name, "value": value})
    for name, value in sorted(OBS.gauges.items()):
        records.append({"type": "gauge", "name": name, "value": value})
    for name, info in sorted(cache_stats().items()):
        records.append(
            {
                "type": "cache",
                "name": name,
                "hits": info.hits,
                "misses": info.misses,
                "size": info.size,
                "maxsize": info.maxsize,
            }
        )
    for name, parent, depth, t0, dur, attrs in OBS.events:
        rec: dict = {
            "type": "span",
            "name": name,
            "parent": parent,
            "depth": depth,
            "t0": t0,
            "dur": dur,
        }
        if attrs:
            rec["attrs"] = attrs
        records.append(rec)
    with open(path, "w", encoding="utf-8") as fh:
        for rec in records:
            fh.write(json.dumps(rec) + "\n")
    return len(records)


def summarize_jsonl(path: str | os.PathLike) -> dict:
    """Aggregate a JSONL trace file for display.

    Returns a dict with keys ``meta`` (the first meta record or None),
    ``spans`` (name -> {count, total_s, mean_s}), ``counters``,
    ``gauges`` (name -> value), ``caches`` (name -> {hits, misses,
    size, maxsize, hit_rate}), and ``span_events`` (number of
    individual span records).  Raises :class:`ValueError` on a file
    with no recognizable trace records.
    """
    meta: dict | None = None
    spans: dict[str, dict] = {}
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    caches: dict[str, dict] = {}
    span_events = 0
    recognized = 0
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}: line {lineno} is not valid JSON: {exc}"
                ) from None
            kind = rec.get("type")
            if kind == "meta" and meta is None:
                meta = rec
            elif kind == "span_total":
                count = int(rec["count"])
                total = float(rec["total_s"])
                spans[rec["name"]] = {
                    "count": count,
                    "total_s": total,
                    "mean_s": total / count if count else 0.0,
                }
            elif kind == "counter":
                counters[rec["name"]] = (
                    counters.get(rec["name"], 0.0) + float(rec["value"])
                )
            elif kind == "gauge":
                gauges[rec["name"]] = float(rec["value"])
            elif kind == "cache":
                hits, misses = int(rec["hits"]), int(rec["misses"])
                total = hits + misses
                caches[rec["name"]] = {
                    "hits": hits,
                    "misses": misses,
                    "size": int(rec["size"]),
                    "maxsize": int(rec["maxsize"]),
                    "hit_rate": hits / total if total else 0.0,
                }
            elif kind == "span":
                span_events += 1
            else:
                continue
            recognized += 1
    if recognized == 0:
        raise ValueError(f"{path}: no trace records found")
    return {
        "meta": meta,
        "spans": spans,
        "counters": counters,
        "gauges": gauges,
        "caches": caches,
        "span_events": span_events,
    }


configure_from_env()
