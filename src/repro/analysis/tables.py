"""Regenerate every table of the paper from the library.

Each ``table*`` function recomputes the corresponding paper table using
the allocation engine / experiment harnesses, returning plain dict rows
shaped exactly like the ground truth in
:mod:`repro.analysis.paperdata`, so the two can be compared
cell-by-cell (which the test-suite does).
"""

from __future__ import annotations

from ..allocation.optimizer import (
    best_worst_table,
    compare_policy_to_optimal,
    improvable_sizes,
)
from ..allocation.policy import mira_policy
from ..experiments.machinedesign import compare_machines
from ..kernels.caps import CapsConfig, caps_computation_time
from ..machines.catalog import JUQUEEN, JUQUEEN_48, JUQUEEN_54
from .paperdata import TABLE_3_MATMUL_PARAMS, TABLE_4_STRONG_SCALING

__all__ = [
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
]


def table1() -> list[dict]:
    """Table 1 — Mira rows where the proposed geometry improves."""
    rows = []
    for cmp_row in improvable_sizes(mira_policy()):
        rows.append(
            {
                "nodes": cmp_row.num_nodes,
                "midplanes": cmp_row.num_midplanes,
                "current": cmp_row.current.dims,
                "current_bw": cmp_row.current_bw,
                "proposed": cmp_row.proposed.dims,
                "proposed_bw": cmp_row.proposed_bw,
            }
        )
    return rows


def table2() -> list[dict]:
    """Table 2 — JUQUEEN rows where best and worst geometries differ."""
    rows = []
    for cmp_row in best_worst_table(JUQUEEN):
        if cmp_row.is_improved:
            rows.append(
                {
                    "nodes": cmp_row.num_nodes,
                    "midplanes": cmp_row.num_midplanes,
                    "worst": cmp_row.current.dims,
                    "worst_bw": cmp_row.current_bw,
                    "best": cmp_row.proposed.dims,
                    "best_bw": cmp_row.proposed_bw,
                }
            )
    return rows


def table3() -> list[dict]:
    """Table 3 — matmul experiment parameters, with recomputed averages.

    The rank counts, core caps and matrix dimensions are experimental
    choices (taken from the paper); the average-cores column is
    recomputed (ranks / nodes) as a consistency check.
    """
    rows = []
    for row in TABLE_3_MATMUL_PARAMS:
        out = dict(row)
        out["avg_cores"] = round(row["ranks"] / row["nodes"], 2)
        config = CapsConfig(n=row["matrix_dim"], num_ranks=row["ranks"])
        out["computation_time_model"] = caps_computation_time(config)
        rows.append(out)
    return rows


def table4() -> list[dict]:
    """Table 4 — strong-scaling parameters with recomputed bandwidths."""
    from ..allocation.geometry import PartitionGeometry

    geo_by_midplanes = {
        2: ((2, 1, 1, 1), (2, 1, 1, 1)),
        4: ((4, 1, 1, 1), (2, 2, 1, 1)),
        8: ((4, 2, 1, 1), (2, 2, 2, 1)),
    }
    rows = []
    for row in TABLE_4_STRONG_SCALING:
        cur_dims, prop_dims = geo_by_midplanes[row["midplanes"]]
        out = dict(row)
        out["avg_cores"] = round(row["ranks"] / row["nodes"], 2)
        out["current_bw"] = PartitionGeometry(
            cur_dims
        ).normalized_bisection_bandwidth
        out["proposed_bw"] = PartitionGeometry(
            prop_dims
        ).normalized_bisection_bandwidth
        rows.append(out)
    return rows


def table5() -> dict[int, dict[str, tuple[tuple, int] | None]]:
    """Table 5 — best-case partitions of JUQUEEN / JUQUEEN-54 / -48."""
    machines = [JUQUEEN, JUQUEEN_54, JUQUEEN_48]
    out: dict[int, dict[str, tuple[tuple, int] | None]] = {}
    for row in compare_machines(machines):
        entry: dict[str, tuple[tuple, int] | None] = {}
        for m in machines:
            geo = row.geometries[m.name]
            bw = row.bandwidths[m.name]
            entry[m.name] = None if geo is None else (geo, bw)
        out[row.num_midplanes] = entry
    return out


def table6() -> list[dict]:
    """Table 6 — Mira's full current list with proposals where improved."""
    rows = []
    for cmp_row in compare_policy_to_optimal(mira_policy()):
        improved = cmp_row.is_improved
        rows.append(
            {
                "nodes": cmp_row.num_nodes,
                "midplanes": cmp_row.num_midplanes,
                "current": cmp_row.current.dims,
                "current_bw": cmp_row.current_bw,
                "proposed": cmp_row.proposed.dims if improved else None,
                "proposed_bw": cmp_row.proposed_bw if improved else None,
            }
        )
    return rows


def table7() -> list[dict]:
    """Table 7 — JUQUEEN's full best/worst list."""
    rows = []
    for cmp_row in best_worst_table(JUQUEEN):
        improved = cmp_row.is_improved
        rows.append(
            {
                "nodes": cmp_row.num_nodes,
                "midplanes": cmp_row.num_midplanes,
                "worst": cmp_row.current.dims,
                "worst_bw": cmp_row.current_bw,
                "best": cmp_row.proposed.dims if improved else None,
                "best_bw": cmp_row.proposed_bw if improved else None,
            }
        )
    return rows
