"""Contention-sensitivity analysis of computation kernels.

The paper's future-work section predicts that kernels with higher
asymptotic contention lower bounds — direct N-body, classical matrix
multiplication, FFT — benefit *more* from improved partition bisection
than fast matrix multiplication does.  This module quantifies that via
the framework of Ballard et al. (reference [7]): combine a kernel's
per-processor communication volume with the partition's small-set
expansion/bisection to bound the contention time, then compare the
bound across geometries.
"""

from __future__ import annotations

from dataclasses import dataclass

from .._validation import check_positive_float, check_positive_int
from ..allocation.geometry import PartitionGeometry
from ..kernels.caps import CapsConfig, caps_total_words_per_rank
from ..kernels.classical import (
    nbody_ring_words_per_rank,
    summa_words_per_rank,
)
from ..kernels.costmodel import LINK_BANDWIDTH_GB_PER_S, WORD_BYTES

__all__ = [
    "KernelContention",
    "caps_contention",
    "summa_contention",
    "nbody_contention",
    "geometry_sensitivity",
]

_GB = 1024.0**3


@dataclass(frozen=True)
class KernelContention:
    """Contention lower bound of a kernel on a partition.

    Attributes
    ----------
    kernel:
        Kernel name.
    words_per_rank:
        Per-processor communication volume (words).
    bound_seconds:
        Contention time lower bound: all traffic from one half must
        cross the bisection in the worst case, so
        ``(ranks/2 · words · bytes) / (bisection links · link GB/s)``.
    """

    kernel: str
    geometry: PartitionGeometry
    num_ranks: int
    words_per_rank: float
    bound_seconds: float


def _bisection_bound(
    geometry: PartitionGeometry,
    num_ranks: int,
    words_per_rank: float,
    kernel: str,
    link_bandwidth: float,
) -> KernelContention:
    bw_links = geometry.normalized_bisection_bandwidth
    bytes_crossing = (num_ranks / 2.0) * words_per_rank * WORD_BYTES
    seconds = bytes_crossing / (_GB * bw_links * link_bandwidth)
    return KernelContention(
        kernel=kernel,
        geometry=geometry,
        num_ranks=num_ranks,
        words_per_rank=words_per_rank,
        bound_seconds=seconds,
    )


def caps_contention(
    geometry: PartitionGeometry,
    num_ranks: int,
    matrix_dim: int,
    link_bandwidth: float = LINK_BANDWIDTH_GB_PER_S,
) -> KernelContention:
    """Contention bound of CAPS fast matmul on a partition."""
    check_positive_int(matrix_dim, "matrix_dim")
    words = caps_total_words_per_rank(
        CapsConfig(n=matrix_dim, num_ranks=num_ranks)
    )
    return _bisection_bound(
        geometry, num_ranks, words, "caps-strassen", link_bandwidth
    )


def summa_contention(
    geometry: PartitionGeometry,
    num_ranks: int,
    matrix_dim: int,
    link_bandwidth: float = LINK_BANDWIDTH_GB_PER_S,
) -> KernelContention:
    """Contention bound of classical SUMMA matmul on a partition."""
    words = summa_words_per_rank(matrix_dim, num_ranks)
    return _bisection_bound(
        geometry, num_ranks, words, "summa-classical", link_bandwidth
    )


def nbody_contention(
    geometry: PartitionGeometry,
    num_ranks: int,
    num_bodies: int,
    link_bandwidth: float = LINK_BANDWIDTH_GB_PER_S,
) -> KernelContention:
    """Contention bound of direct N-body (ring pass) on a partition."""
    words = nbody_ring_words_per_rank(num_bodies, num_ranks)
    return _bisection_bound(
        geometry, num_ranks, words, "nbody-direct", link_bandwidth
    )


def geometry_sensitivity(
    a: KernelContention, b: KernelContention
) -> float:
    """Contention-bound ratio between two geometries for one kernel.

    With equal rank counts and volumes this reduces to the inverse
    bandwidth ratio — i.e. the maximum speedup reallocation can give a
    fully contention-bound kernel.
    """
    if a.kernel != b.kernel:
        raise ValueError(
            f"cannot compare different kernels: {a.kernel} vs {b.kernel}"
        )
    check_positive_float(b.bound_seconds, "bound_seconds")
    return a.bound_seconds / b.bound_seconds
