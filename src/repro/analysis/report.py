"""ASCII rendering of tables and figure series.

The benchmark harnesses print these renderings so that running
``pytest benchmarks/`` regenerates the paper's tables and figures as
readable text, one per harness.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

__all__ = ["render_table", "render_series", "format_geometry"]


def format_geometry(dims: Sequence[int] | None) -> str:
    """Render a geometry tuple like the paper: ``4 x 2 x 1 x 1``."""
    if dims is None:
        return "-"
    return " x ".join(str(d) for d in dims)


def render_table(
    rows: Sequence[Mapping],
    columns: Sequence[str],
    headers: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render dict rows as a fixed-width ASCII table.

    Geometry tuples are rendered via :func:`format_geometry`; ``None``
    becomes ``-``; floats are shown with 4 significant digits.
    """
    if headers is None:
        headers = list(columns)
    if len(headers) != len(columns):
        raise ValueError(
            f"{len(headers)} headers for {len(columns)} columns"
        )

    def fmt(value) -> str:
        if value is None:
            return "-"
        if isinstance(value, tuple):
            return format_geometry(value)
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    grid = [[fmt(r.get(c)) for c in columns] for r in rows]
    widths = [
        max(len(h), *(len(row[i]) for row in grid)) if grid else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in grid:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    series: Mapping[str, Mapping[int, float | int | None]],
    title: str | None = None,
    x_label: str = "midplanes",
    y_format: str = "{:.4g}",
) -> str:
    """Render named series (x -> y) side by side, one x per row."""
    xs = sorted({x for s in series.values() for x in s})
    names = list(series)
    widths = [max(len(x_label), 9)] + [
        max(len(n), 9) for n in names
    ]
    lines = []
    if title:
        lines.append(title)
    header = [x_label.ljust(widths[0])] + [
        n.ljust(w) for n, w in zip(names, widths[1:])
    ]
    lines.append("  ".join(header))
    lines.append("  ".join("-" * w for w in widths))
    for x in xs:
        cells = [str(x).ljust(widths[0])]
        for n, w in zip(names, widths[1:]):
            y = series[n].get(x)
            cells.append(
                ("-" if y is None else y_format.format(y)).ljust(w)
            )
        lines.append("  ".join(cells))
    return "\n".join(lines)
