"""Ground-truth data transcribed from the paper.

Every table of the paper, plus the numeric values quoted in the text and
readable off the experiment figures, hard-coded verbatim.  The
test-suite and benchmark harnesses check the library's regenerated
tables cell-by-cell against these constants, and EXPERIMENTS.md records
paper-vs-measured for the simulated experiments.

All bisection bandwidths are *normalized* (each link contributes 1
unit); geometries are midplane cuboids in the canonical sorted order.
"""

from __future__ import annotations

__all__ = [
    "TABLE_1_MIRA_IMPROVED",
    "TABLE_2_JUQUEEN_IMPROVED",
    "TABLE_3_MATMUL_PARAMS",
    "TABLE_4_STRONG_SCALING",
    "TABLE_5_MACHINE_DESIGN",
    "TABLE_6_MIRA_FULL",
    "TABLE_7_JUQUEEN_FULL",
    "FIGURE_5_COMM_TIMES",
    "FIGURE_6_STRONG_SCALING_TIMES",
    "PAIRING_PREDICTED_RATIOS",
    "PAIRING_MEASURED_RATIO_FLOOR",
    "MATMUL_COMM_RATIO_RANGE",
    "MATMUL_WALLCLOCK_RATIO_RANGE",
    "COMPUTATION_TIMES_SECONDS",
]

# --------------------------------------------------------------------- #
# Table 1 — Mira: rows where the proposed geometry improves.             #
# (P nodes, midplanes, current geometry, current BW, proposed, BW)       #
# --------------------------------------------------------------------- #
TABLE_1_MIRA_IMPROVED: list[dict] = [
    {"nodes": 2048, "midplanes": 4, "current": (4, 1, 1, 1),
     "current_bw": 256, "proposed": (2, 2, 1, 1), "proposed_bw": 512},
    {"nodes": 4096, "midplanes": 8, "current": (4, 2, 1, 1),
     "current_bw": 512, "proposed": (2, 2, 2, 1), "proposed_bw": 1024},
    {"nodes": 8192, "midplanes": 16, "current": (4, 4, 1, 1),
     "current_bw": 1024, "proposed": (2, 2, 2, 2), "proposed_bw": 2048},
    {"nodes": 12288, "midplanes": 24, "current": (4, 3, 2, 1),
     "current_bw": 1536, "proposed": (3, 2, 2, 2), "proposed_bw": 2048},
]

# --------------------------------------------------------------------- #
# Table 2 — JUQUEEN: rows where best and worst cases differ.              #
# --------------------------------------------------------------------- #
TABLE_2_JUQUEEN_IMPROVED: list[dict] = [
    {"nodes": 2048, "midplanes": 4, "worst": (4, 1, 1, 1),
     "worst_bw": 256, "best": (2, 2, 1, 1), "best_bw": 512},
    {"nodes": 3072, "midplanes": 6, "worst": (6, 1, 1, 1),
     "worst_bw": 256, "best": (3, 2, 1, 1), "best_bw": 512},
    {"nodes": 4096, "midplanes": 8, "worst": (4, 2, 1, 1),
     "worst_bw": 512, "best": (2, 2, 2, 1), "best_bw": 1024},
    {"nodes": 6144, "midplanes": 12, "worst": (6, 2, 1, 1),
     "worst_bw": 512, "best": (3, 2, 2, 1), "best_bw": 1024},
    {"nodes": 8192, "midplanes": 16, "worst": (4, 2, 2, 1),
     "worst_bw": 1024, "best": (2, 2, 2, 2), "best_bw": 2048},
    {"nodes": 12288, "midplanes": 24, "worst": (6, 2, 2, 1),
     "worst_bw": 1024, "best": (3, 2, 2, 2), "best_bw": 2048},
]

# --------------------------------------------------------------------- #
# Table 3 — matrix multiplication experiment parameters (Mira).           #
# --------------------------------------------------------------------- #
TABLE_3_MATMUL_PARAMS: list[dict] = [
    {"nodes": 2048, "midplanes": 4, "ranks": 31213, "max_cores": 16,
     "avg_cores": 15.24, "matrix_dim": 32928},
    {"nodes": 4096, "midplanes": 8, "ranks": 31213, "max_cores": 8,
     "avg_cores": 7.62, "matrix_dim": 32928},
    {"nodes": 8192, "midplanes": 16, "ranks": 31213, "max_cores": 4,
     "avg_cores": 3.81, "matrix_dim": 32928},
    {"nodes": 12288, "midplanes": 24, "ranks": 117649, "max_cores": 16,
     "avg_cores": 9.57, "matrix_dim": 21952},
]

# --------------------------------------------------------------------- #
# Table 4 — strong-scaling experiment parameters (Mira, n = 9408).        #
# --------------------------------------------------------------------- #
TABLE_4_STRONG_SCALING: list[dict] = [
    {"nodes": 1024, "midplanes": 2, "ranks": 2401, "max_cores": 4,
     "avg_cores": 2.34, "current_bw": 256, "proposed_bw": 256},
    {"nodes": 2048, "midplanes": 4, "ranks": 4802, "max_cores": 4,
     "avg_cores": 2.34, "current_bw": 256, "proposed_bw": 512},
    {"nodes": 4096, "midplanes": 8, "ranks": 9604, "max_cores": 4,
     "avg_cores": 2.34, "current_bw": 512, "proposed_bw": 1024},
]

# --------------------------------------------------------------------- #
# Table 5 — best-case partitions: JUQUEEN vs JUQUEEN-54 vs JUQUEEN-48.    #
# midplanes -> {machine: (geometry, bw) or None}                          #
# --------------------------------------------------------------------- #
TABLE_5_MACHINE_DESIGN: dict[int, dict[str, tuple[tuple, int] | None]] = {
    1: {"JUQUEEN": ((1, 1, 1, 1), 256), "JUQUEEN-54": ((1, 1, 1, 1), 256),
        "JUQUEEN-48": ((1, 1, 1, 1), 256)},
    2: {"JUQUEEN": ((2, 1, 1, 1), 256), "JUQUEEN-54": ((2, 1, 1, 1), 256),
        "JUQUEEN-48": ((2, 1, 1, 1), 256)},
    3: {"JUQUEEN": ((3, 1, 1, 1), 256), "JUQUEEN-54": ((3, 1, 1, 1), 256),
        "JUQUEEN-48": ((3, 1, 1, 1), 256)},
    4: {"JUQUEEN": ((2, 2, 1, 1), 512), "JUQUEEN-54": ((2, 2, 1, 1), 512),
        "JUQUEEN-48": ((2, 2, 1, 1), 512)},
    5: {"JUQUEEN": ((5, 1, 1, 1), 256), "JUQUEEN-54": None,
        "JUQUEEN-48": None},
    6: {"JUQUEEN": ((3, 2, 1, 1), 512), "JUQUEEN-54": ((3, 2, 1, 1), 512),
        "JUQUEEN-48": ((3, 2, 1, 1), 512)},
    7: {"JUQUEEN": ((7, 1, 1, 1), 256), "JUQUEEN-54": None,
        "JUQUEEN-48": None},
    8: {"JUQUEEN": ((2, 2, 2, 1), 1024), "JUQUEEN-54": ((2, 2, 2, 1), 1024),
        "JUQUEEN-48": ((2, 2, 2, 1), 1024)},
    9: {"JUQUEEN": None, "JUQUEEN-54": ((3, 3, 1, 1), 768),
        "JUQUEEN-48": ((3, 3, 1, 1), 768)},
    10: {"JUQUEEN": ((5, 2, 1, 1), 512), "JUQUEEN-54": None,
         "JUQUEEN-48": None},
    12: {"JUQUEEN": ((3, 2, 2, 1), 1024), "JUQUEEN-54": ((3, 2, 2, 1), 1024),
         "JUQUEEN-48": ((3, 2, 2, 1), 1024)},
    14: {"JUQUEEN": ((7, 2, 1, 1), 512), "JUQUEEN-54": None,
         "JUQUEEN-48": None},
    16: {"JUQUEEN": ((2, 2, 2, 2), 2048), "JUQUEEN-54": ((2, 2, 2, 2), 2048),
         "JUQUEEN-48": ((2, 2, 2, 2), 2048)},
    18: {"JUQUEEN": None, "JUQUEEN-54": ((3, 3, 2, 1), 1536),
         "JUQUEEN-48": ((3, 3, 2, 1), 1536)},
    20: {"JUQUEEN": ((5, 2, 2, 1), 1024), "JUQUEEN-54": None,
         "JUQUEEN-48": None},
    24: {"JUQUEEN": ((3, 2, 2, 2), 2048), "JUQUEEN-54": ((3, 2, 2, 2), 2048),
         "JUQUEEN-48": ((3, 2, 2, 2), 2048)},
    27: {"JUQUEEN": None, "JUQUEEN-54": ((3, 3, 3, 1), 2304),
         "JUQUEEN-48": None},
    28: {"JUQUEEN": ((7, 2, 2, 1), 1024), "JUQUEEN-54": None,
         "JUQUEEN-48": None},
    32: {"JUQUEEN": ((4, 2, 2, 2), 2048), "JUQUEEN-54": None,
         "JUQUEEN-48": ((4, 2, 2, 2), 2048)},
    36: {"JUQUEEN": None, "JUQUEEN-54": ((3, 3, 2, 2), 3072),
         "JUQUEEN-48": ((3, 3, 2, 2), 3072)},
    40: {"JUQUEEN": ((5, 2, 2, 2), 2048), "JUQUEEN-54": None,
         "JUQUEEN-48": None},
    48: {"JUQUEEN": ((6, 2, 2, 2), 2048), "JUQUEEN-54": None,
         "JUQUEEN-48": ((4, 3, 2, 2), 3072)},
    54: {"JUQUEEN": None, "JUQUEEN-54": ((3, 3, 3, 2), 4608),
         "JUQUEEN-48": None},
    56: {"JUQUEEN": ((7, 2, 2, 2), 2048), "JUQUEEN-54": None,
         "JUQUEEN-48": None},
}

# --------------------------------------------------------------------- #
# Table 6 — Mira's full partition list with proposals.                    #
# --------------------------------------------------------------------- #
TABLE_6_MIRA_FULL: list[dict] = [
    {"nodes": 512, "midplanes": 1, "current": (1, 1, 1, 1),
     "current_bw": 256, "proposed": None, "proposed_bw": None},
    {"nodes": 1024, "midplanes": 2, "current": (2, 1, 1, 1),
     "current_bw": 256, "proposed": None, "proposed_bw": None},
    {"nodes": 2048, "midplanes": 4, "current": (4, 1, 1, 1),
     "current_bw": 256, "proposed": (2, 2, 1, 1), "proposed_bw": 512},
    {"nodes": 4096, "midplanes": 8, "current": (4, 2, 1, 1),
     "current_bw": 512, "proposed": (2, 2, 2, 1), "proposed_bw": 1024},
    {"nodes": 8192, "midplanes": 16, "current": (4, 4, 1, 1),
     "current_bw": 1024, "proposed": (2, 2, 2, 2), "proposed_bw": 2048},
    {"nodes": 12288, "midplanes": 24, "current": (4, 3, 2, 1),
     "current_bw": 1536, "proposed": (3, 2, 2, 2), "proposed_bw": 2048},
    {"nodes": 16384, "midplanes": 32, "current": (4, 4, 2, 1),
     "current_bw": 2048, "proposed": None, "proposed_bw": None},
    {"nodes": 24576, "midplanes": 48, "current": (4, 4, 3, 1),
     "current_bw": 3072, "proposed": None, "proposed_bw": None},
    {"nodes": 32768, "midplanes": 64, "current": (4, 4, 2, 2),
     "current_bw": 4096, "proposed": None, "proposed_bw": None},
    {"nodes": 49152, "midplanes": 96, "current": (4, 4, 3, 2),
     "current_bw": 6144, "proposed": None, "proposed_bw": None},
]

# --------------------------------------------------------------------- #
# Table 7 — JUQUEEN's full best/worst list.                                #
# --------------------------------------------------------------------- #
TABLE_7_JUQUEEN_FULL: list[dict] = [
    {"nodes": 512, "midplanes": 1, "worst": (1, 1, 1, 1), "worst_bw": 256,
     "best": None, "best_bw": None},
    {"nodes": 1024, "midplanes": 2, "worst": (2, 1, 1, 1), "worst_bw": 256,
     "best": None, "best_bw": None},
    {"nodes": 1536, "midplanes": 3, "worst": (3, 1, 1, 1), "worst_bw": 256,
     "best": None, "best_bw": None},
    {"nodes": 2048, "midplanes": 4, "worst": (4, 1, 1, 1), "worst_bw": 256,
     "best": (2, 2, 1, 1), "best_bw": 512},
    {"nodes": 2560, "midplanes": 5, "worst": (5, 1, 1, 1), "worst_bw": 256,
     "best": None, "best_bw": None},
    {"nodes": 3072, "midplanes": 6, "worst": (6, 1, 1, 1), "worst_bw": 256,
     "best": (3, 2, 1, 1), "best_bw": 512},
    {"nodes": 3584, "midplanes": 7, "worst": (7, 1, 1, 1), "worst_bw": 256,
     "best": None, "best_bw": None},
    {"nodes": 4096, "midplanes": 8, "worst": (4, 2, 1, 1), "worst_bw": 512,
     "best": (2, 2, 2, 1), "best_bw": 1024},
    {"nodes": 5120, "midplanes": 10, "worst": (5, 2, 1, 1), "worst_bw": 512,
     "best": None, "best_bw": None},
    {"nodes": 6144, "midplanes": 12, "worst": (6, 2, 1, 1), "worst_bw": 512,
     "best": (3, 2, 2, 1), "best_bw": 1024},
    {"nodes": 7168, "midplanes": 14, "worst": (7, 2, 1, 1), "worst_bw": 512,
     "best": None, "best_bw": None},
    {"nodes": 8192, "midplanes": 16, "worst": (4, 2, 2, 1), "worst_bw": 1024,
     "best": (2, 2, 2, 2), "best_bw": 2048},
    {"nodes": 10240, "midplanes": 20, "worst": (5, 2, 2, 1), "worst_bw": 1024,
     "best": None, "best_bw": None},
    {"nodes": 12288, "midplanes": 24, "worst": (6, 2, 2, 1), "worst_bw": 1024,
     "best": (3, 2, 2, 2), "best_bw": 2048},
    {"nodes": 14336, "midplanes": 28, "worst": (7, 2, 2, 1), "worst_bw": 1024,
     "best": None, "best_bw": None},
    {"nodes": 16384, "midplanes": 32, "worst": (4, 2, 2, 2), "worst_bw": 2048,
     "best": None, "best_bw": None},
    {"nodes": 20480, "midplanes": 40, "worst": (5, 2, 2, 2), "worst_bw": 2048,
     "best": None, "best_bw": None},
    {"nodes": 24576, "midplanes": 48, "worst": (6, 2, 2, 2), "worst_bw": 2048,
     "best": None, "best_bw": None},
    {"nodes": 28672, "midplanes": 56, "worst": (7, 2, 2, 2), "worst_bw": 2048,
     "best": None, "best_bw": None},
]

# --------------------------------------------------------------------- #
# Figure 5 — measured CAPS communication times on Mira (seconds).         #
# --------------------------------------------------------------------- #
FIGURE_5_COMM_TIMES: dict[int, dict[str, float]] = {
    4: {"current": 0.37, "proposed": 0.27},
    8: {"current": 0.21, "proposed": 0.14},
    16: {"current": 0.13, "proposed": 0.0824},
    24: {"current": 0.12, "proposed": 0.091},
}

#: Communication costs hidden by overlap, not shown in Figure 5 (s).
FIGURE_5_HIDDEN_COSTS: dict[int, float] = {4: 0.059, 8: 0.067, 16: 0.099,
                                           24: 0.0}

# --------------------------------------------------------------------- #
# Figure 6 — strong-scaling communication times (seconds).                #
# --------------------------------------------------------------------- #
FIGURE_6_STRONG_SCALING_TIMES: dict[str, dict[int, float]] = {
    "current": {2: 0.0984, 4: 0.0421, 8: 0.0298},
    "proposed": {2: 0.0984, 4: 0.0266, 8: 0.0219},
}

# --------------------------------------------------------------------- #
# Experiment A — predicted and measured speedup ratios.                    #
# --------------------------------------------------------------------- #

#: Predicted pairing-time ratios current(worst)/proposed(best) by
#: midplane count on Mira; the paper predicts 2.00 except 24 midplanes.
PAIRING_PREDICTED_RATIOS: dict[int, float] = {4: 2.0, 8: 2.0, 16: 2.0,
                                              24: 1.5}

#: The paper: measured ratios were "at least a factor of 1.92" (1.44 for
#: the 24-midplane case).
PAIRING_MEASURED_RATIO_FLOOR: float = 1.92

#: Experiment B: communication-cost improvement range (current/proposed).
MATMUL_COMM_RATIO_RANGE: tuple[float, float] = (1.37, 1.52)

#: Experiment B: total wall-clock improvement range.
MATMUL_WALLCLOCK_RATIO_RANGE: tuple[float, float] = (1.08, 1.22)

#: Computation seconds by midplane count (geometry-independent).
COMPUTATION_TIMES_SECONDS: dict[int, float] = {
    4: 0.554, 8: 0.5115, 16: 0.4965, 24: 0.0604,
}
