"""Regenerate the data series of every figure of the paper.

Each ``figure*`` function returns the plotted series as plain Python
structures (midplane counts on the x-axis, bandwidths or seconds on the
y-axis).  The benchmark harnesses print them and assert the paper's
shape claims; :mod:`repro.analysis.report` renders them as ASCII.
"""

from __future__ import annotations

from ..allocation.enumeration import achievable_midplane_counts
from ..allocation.optimizer import (
    best_geometry_for_machine,
    compare_policy_to_optimal,
    worst_geometry_for_machine,
)
from ..allocation.policy import mira_policy
from ..experiments.machinedesign import compare_machines
from ..experiments.matmul import run_caps_on_geometry
from ..experiments.pairing import PairingParameters, run_pairing
from ..experiments.strongscaling import run_strong_scaling
from ..machines.catalog import JUQUEEN, JUQUEEN_48, JUQUEEN_54
from .paperdata import TABLE_3_MATMUL_PARAMS

__all__ = [
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "FIGURE_3_MIDPLANES",
    "FIGURE_4_MIDPLANES",
]

#: Midplane counts on the x-axes of the pairing figures.
FIGURE_3_MIDPLANES: tuple[int, ...] = (4, 8, 16, 24)
FIGURE_4_MIDPLANES: tuple[int, ...] = (4, 6, 8, 12, 16)


def figure1() -> dict[str, dict[int, int]]:
    """Figure 1 — Mira: current vs proposed bisection bandwidth.

    Returns ``{"current": {midplanes: bw}, "proposed": {...}}`` over
    Mira's predefined partition sizes; the proposed series uses the
    best fitting geometry (which equals the current one where no
    improvement exists).
    """
    current: dict[int, int] = {}
    proposed: dict[int, int] = {}
    for row in compare_policy_to_optimal(mira_policy()):
        current[row.num_midplanes] = row.current_bw
        proposed[row.num_midplanes] = row.proposed_bw
    return {"current": current, "proposed": proposed}


def figure2() -> dict[str, dict[int, int]]:
    """Figure 2 — JUQUEEN: best vs worst-case bandwidth over all sizes.

    The 'spiking' drops of the best-case series occur at sizes (5, 7,
    10, 14, ...) whose factorizations force ring-shaped partitions.
    """
    best: dict[int, int] = {}
    worst: dict[int, int] = {}
    for size in achievable_midplane_counts(JUQUEEN):
        best[size] = best_geometry_for_machine(
            JUQUEEN, size
        ).normalized_bisection_bandwidth
        worst[size] = worst_geometry_for_machine(
            JUQUEEN, size
        ).normalized_bisection_bandwidth
    return {"best": best, "worst": worst}


def _pairing_series(
    machine_rows: list[tuple[int, tuple, tuple]],
    params: PairingParameters | None,
) -> dict[str, dict[int, float]]:
    from ..allocation.geometry import PartitionGeometry

    first: dict[int, float] = {}
    second: dict[int, float] = {}
    for midplanes, a_dims, b_dims in machine_rows:
        first[midplanes] = run_pairing(
            PartitionGeometry(a_dims), params
        ).time_seconds
        second[midplanes] = run_pairing(
            PartitionGeometry(b_dims), params
        ).time_seconds
    return {"worse": first, "better": second}


def figure3(
    params: PairingParameters | None = None,
) -> dict[str, dict[int, float]]:
    """Figure 3 — Mira bisection pairing times (simulated).

    Returns ``{"current": {...}, "proposed": {...}}`` in seconds.
    """
    rows = [
        (4, (4, 1, 1, 1), (2, 2, 1, 1)),
        (8, (4, 2, 1, 1), (2, 2, 2, 1)),
        (16, (4, 4, 1, 1), (2, 2, 2, 2)),
        (24, (4, 3, 2, 1), (3, 2, 2, 2)),
    ]
    series = _pairing_series(rows, params)
    return {"current": series["worse"], "proposed": series["better"]}


def figure4(
    params: PairingParameters | None = None,
) -> dict[str, dict[int, float]]:
    """Figure 4 — JUQUEEN bisection pairing times (simulated).

    Returns ``{"worst": {...}, "proposed": {...}}`` in seconds.
    """
    rows = [
        (4, (4, 1, 1, 1), (2, 2, 1, 1)),
        (6, (6, 1, 1, 1), (3, 2, 1, 1)),
        (8, (4, 2, 1, 1), (2, 2, 2, 1)),
        (12, (6, 2, 1, 1), (3, 2, 2, 1)),
        (16, (4, 2, 2, 1), (2, 2, 2, 2)),
    ]
    series = _pairing_series(rows, params)
    return {"worst": series["worse"], "proposed": series["better"]}


def figure5(**caps_kwargs) -> dict[str, dict[int, float]]:
    """Figure 5 — Mira CAPS communication times (simulated, seconds).

    Uses the Table 3 parameters; extra keyword arguments go to
    :func:`repro.experiments.matmul.run_caps_on_geometry`.
    """
    from ..allocation.geometry import PartitionGeometry

    geos = {
        4: ((4, 1, 1, 1), (2, 2, 1, 1)),
        8: ((4, 2, 1, 1), (2, 2, 2, 1)),
        16: ((4, 4, 1, 1), (2, 2, 2, 2)),
        24: ((4, 3, 2, 1), (3, 2, 2, 2)),
    }
    current: dict[int, float] = {}
    proposed: dict[int, float] = {}
    for row in TABLE_3_MATMUL_PARAMS:
        mp = row["midplanes"]
        cur_dims, prop_dims = geos[mp]
        for dims, sink in ((cur_dims, current), (prop_dims, proposed)):
            res = run_caps_on_geometry(
                PartitionGeometry(dims),
                num_ranks=row["ranks"],
                matrix_dim=row["matrix_dim"],
                max_cores=row["max_cores"],
                **caps_kwargs,
            )
            sink[mp] = res.communication_time
    return {"current": current, "proposed": proposed}


def figure6(**caps_kwargs) -> dict[str, dict[int, float]]:
    """Figure 6 — strong-scaling communication times (simulated).

    Returns ``{"current": {...}, "proposed": {...},
    "computation": {...}}`` in seconds.
    """
    res = run_strong_scaling(**caps_kwargs)
    return {
        "current": {
            p.num_midplanes: p.communication_time for p in res.current
        },
        "proposed": {
            p.num_midplanes: p.communication_time for p in res.proposed
        },
        "computation": {
            p.num_midplanes: p.computation_time for p in res.current
        },
    }


def figure7() -> dict[str, dict[int, int | None]]:
    """Figure 7 — JUQUEEN vs JUQUEEN-48/54 best-case bandwidth curves."""
    machines = [JUQUEEN, JUQUEEN_48, JUQUEEN_54]
    out: dict[str, dict[int, int | None]] = {m.name: {} for m in machines}
    for row in compare_machines(machines):
        for m in machines:
            out[m.name][row.num_midplanes] = row.bandwidths[m.name]
    return out
