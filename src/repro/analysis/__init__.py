"""Reporting and paper reproduction data (S9 in DESIGN.md).

* :mod:`~repro.analysis.paperdata` — every paper table transcribed as
  ground truth;
* :mod:`~repro.analysis.tables` — the same tables regenerated from the
  library;
* :mod:`~repro.analysis.figures` — every figure's data series
  regenerated (combinatorial figures exactly, experiment figures via
  the simulator);
* :mod:`~repro.analysis.report` — ASCII rendering;
* :mod:`~repro.analysis.contention` — kernel contention bounds (the
  future-work sensitivity analysis).
"""

from . import paperdata
from .contention import (
    KernelContention,
    caps_contention,
    geometry_sensitivity,
    nbody_contention,
    summa_contention,
)
from .figures import (
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
)
from .report import format_geometry, render_series, render_table
from .tables import table1, table2, table3, table4, table5, table6, table7

__all__ = [
    "paperdata",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "render_table",
    "render_series",
    "format_geometry",
    "KernelContention",
    "caps_contention",
    "summa_contention",
    "nbody_contention",
    "geometry_sensitivity",
]
