"""Shared argument-validation helpers.

Every public entry point in :mod:`repro` validates its arguments eagerly so
that user errors surface as clear :class:`ValueError`/:class:`TypeError`
messages at the call site rather than as cryptic failures deep inside a
combinatorial routine.  These helpers centralize the checks so that error
messages stay uniform across the package.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from typing import Any

__all__ = [
    "require",
    "check_positive_int",
    "check_nonnegative_int",
    "check_dims",
    "check_positive_float",
    "check_probability",
    "check_subset_size",
]


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with *message* unless *condition* holds."""
    if not condition:
        raise ValueError(message)


def check_positive_int(value: Any, name: str) -> int:
    """Validate that *value* is a positive integer and return it as ``int``.

    Accepts exact integral types only (``bool`` is rejected because it is
    almost always a bug when passed where a count is expected).
    """
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_nonnegative_int(value: Any, name: str) -> int:
    """Validate that *value* is a non-negative integer."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value


def check_dims(dims: Iterable[int], name: str = "dims", *, min_len: int = 1) -> tuple[int, ...]:
    """Validate a sequence of torus/mesh dimension lengths.

    Returns the dimensions as a tuple of ints.  Every dimension must be a
    positive integer; the sequence must contain at least *min_len* entries.
    """
    if isinstance(dims, (str, bytes)):
        raise TypeError(f"{name} must be a sequence of ints, got {type(dims).__name__}")
    out = tuple(dims)
    if len(out) < min_len:
        raise ValueError(f"{name} must have at least {min_len} dimension(s), got {len(out)}")
    for i, a in enumerate(out):
        if isinstance(a, bool) or not isinstance(a, int):
            raise TypeError(f"{name}[{i}] must be an int, got {type(a).__name__}")
        if a <= 0:
            raise ValueError(f"{name}[{i}] must be positive, got {a}")
    return out


def check_positive_float(value: Any, name: str) -> float:
    """Validate that *value* is a positive finite real number."""
    if isinstance(value, bool):
        raise TypeError(f"{name} must be a number, got bool")
    try:
        out = float(value)
    except (TypeError, ValueError) as exc:
        raise TypeError(f"{name} must be a number, got {type(value).__name__}") from exc
    if not (out > 0.0) or math.isinf(out):
        raise ValueError(f"{name} must be positive and finite, got {value}")
    return out


def check_probability(value: Any, name: str) -> float:
    """Validate that *value* lies in the closed interval [0, 1]."""
    if isinstance(value, bool):
        raise TypeError(f"{name} must be a number, got bool")
    out = float(value)
    if not 0.0 <= out <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return out


def check_subset_size(t: Any, num_vertices: int, name: str = "t") -> int:
    """Validate a target subset size for an isoperimetric query.

    The edge-isoperimetric problem is conventionally posed for
    ``1 <= t <= |V| / 2`` (the complement of a larger set has the same
    perimeter); we accept any ``1 <= t <= |V|`` and let callers that need
    the half-size restriction enforce it themselves.
    """
    t = check_positive_int(t, name)
    if t > num_vertices:
        raise ValueError(f"{name}={t} exceeds the number of vertices ({num_vertices})")
    return t


def as_sorted_desc(dims: Sequence[int]) -> tuple[int, ...]:
    """Return *dims* sorted in descending order (paper's canonical form)."""
    return tuple(sorted(dims, reverse=True))
