"""repro — Network Partitioning and Avoidable Contention (SPAA 2020).

A faithful, self-contained reproduction of Oltchik & Schwartz's paper:
edge-isoperimetric analysis of torus (and other) networks, partition
allocation policies of the Blue Gene/Q machines Mira / JUQUEEN /
Sequoia, a flow-level network contention simulator replacing the
retired hardware, and harnesses regenerating every table and figure of
the paper's evaluation.

Quick start
-----------
>>> import repro
>>> geo = repro.PartitionGeometry((4, 1, 1, 1))      # Mira's 4-midplane
>>> geo.normalized_bisection_bandwidth
256
>>> best = repro.best_geometry_for_machine(repro.MIRA, 4)
>>> best.dims, best.normalized_bisection_bandwidth
((2, 2, 1, 1), 512)

Packages
--------
- :mod:`repro.topology` — torus / mesh / hypercube / HyperX / Dragonfly
  / fat-tree graphs;
- :mod:`repro.isoperimetry` — Theorem 3.1 and friends (Bollobás–Leader,
  Harper, Lindsey, Ahlswede–Bezrukov, weighted, spectral), exact
  brute-force oracles, small-set expansion;
- :mod:`repro.machines` — Blue Gene/Q model and machine catalog;
- :mod:`repro.allocation` — partition geometries, policies, optimizer,
  scheduling advisor;
- :mod:`repro.netsim` — routing, max-min fairness, fluid contention
  simulation, traffic patterns, rank embeddings;
- :mod:`repro.kernels` — Strassen–Winograd, the CAPS communication
  model, classical baselines, calibrated cost model;
- :mod:`repro.experiments` — the paper's Experiments A/B/C and the
  machine-design study;
- :mod:`repro.analysis` — paper ground-truth data, regenerated tables
  and figures, contention bounds, ASCII reports.
"""

from .allocation import (
    FreeCuboidPolicy,
    PartitionGeometry,
    PredefinedListPolicy,
    SchedulingAdvisor,
    best_geometry_for_machine,
    enumerate_geometries,
    improvable_sizes,
    juqueen_policy,
    mira_policy,
    sequoia_policy,
    worst_geometry_for_machine,
)
from .isoperimetry import (
    best_cuboid,
    bollobas_leader_bound,
    cuboid_perimeter,
    harper_min_boundary,
    lindsey_min_boundary,
    torus_isoperimetric_bound,
    torus_small_set_expansion,
)
from .machines import (
    JUQUEEN,
    JUQUEEN_48,
    JUQUEEN_54,
    MIRA,
    SEQUOIA,
    BlueGeneQMachine,
    get_machine,
    normalized_bisection_bandwidth,
)
from .topology import (
    CliqueProduct,
    Dragonfly,
    FatTree,
    Hypercube,
    Mesh,
    Torus,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # topology
    "Torus",
    "Mesh",
    "Hypercube",
    "CliqueProduct",
    "Dragonfly",
    "FatTree",
    # isoperimetry
    "torus_isoperimetric_bound",
    "bollobas_leader_bound",
    "best_cuboid",
    "cuboid_perimeter",
    "harper_min_boundary",
    "lindsey_min_boundary",
    "torus_small_set_expansion",
    # machines
    "BlueGeneQMachine",
    "MIRA",
    "JUQUEEN",
    "SEQUOIA",
    "JUQUEEN_48",
    "JUQUEEN_54",
    "get_machine",
    "normalized_bisection_bandwidth",
    # allocation
    "PartitionGeometry",
    "enumerate_geometries",
    "PredefinedListPolicy",
    "FreeCuboidPolicy",
    "mira_policy",
    "juqueen_policy",
    "sequoia_policy",
    "best_geometry_for_machine",
    "worst_geometry_for_machine",
    "improvable_sizes",
    "SchedulingAdvisor",
]
