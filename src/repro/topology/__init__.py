"""Network topology graphs (S1 in DESIGN.md).

Provides the graph substrate for the whole package: tori (Blue Gene/Q),
meshes, hypercubes, Cartesian products of cliques (HyperX), Dragonfly
networks with the three global-link arrangements of Hastings et al., and a
three-tier fat-tree.  All classes implement the small
:class:`~repro.topology.base.Topology` interface (vertex iteration,
weighted neighbors, cut evaluation, NetworkX export).
"""

from .base import (
    SubgraphView,
    Topology,
    Vertex,
    cut_edges,
    is_connected_subset,
)
from .clique_product import CliqueProduct
from .dragonfly import ARRANGEMENTS, Dragonfly
from .fattree import FatTree
from .hypercube import Hypercube
from .mesh import Mesh
from .slimfly import SlimFly, mms_parameters
from .torus import Torus, degenerate_free_dims, torus_num_edges

__all__ = [
    "Topology",
    "SubgraphView",
    "Vertex",
    "cut_edges",
    "is_connected_subset",
    "Torus",
    "Mesh",
    "Hypercube",
    "CliqueProduct",
    "Dragonfly",
    "ARRANGEMENTS",
    "FatTree",
    "SlimFly",
    "mms_parameters",
    "torus_num_edges",
    "degenerate_free_dims",
]
