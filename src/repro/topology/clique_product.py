"""Cartesian products of cliques — the HyperX family.

A HyperX network (Ahn et al. 2009) is the Cartesian product of cliques
``K_{a_1} × ... × K_{a_D}``: vertices are coordinate tuples, and two
vertices are adjacent iff they differ in exactly one coordinate (by *any*
amount — each dimension is fully connected).  When all links have the same
capacity the network is *regular HyperX*, and the edge-isoperimetric
problem is solved by Lindsey's theorem (1964): take vertices in
lexicographic order with dimensions sorted by descending size
(:mod:`repro.isoperimetry.lindsey`).

Per-dimension link capacities are supported (``weights``), covering the
intra-group structure of Dragonfly (``K_16 × K_6`` with the ``K_6`` links
3× as wide — Section 5 of the paper).
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Iterator, Sequence

from .._validation import check_dims, check_positive_float
from .base import Topology, Vertex

__all__ = ["CliqueProduct"]


class CliqueProduct(Topology):
    """Cartesian product of cliques ``K_{a_1} × ... × K_{a_D}``.

    Parameters
    ----------
    dims:
        Clique sizes ``(a_1, ..., a_D)``; a size-1 clique is degenerate
        (contributes no edges).
    weights:
        Optional per-dimension link capacities.  ``weights[k]`` is the
        capacity of every edge inside dimension-*k* cliques.  Defaults to
        1.0 everywhere (regular HyperX).

    Examples
    --------
    >>> h = CliqueProduct((3, 2))
    >>> h.num_vertices, h.num_edges
    (6, 9)
    >>> h.degree((0, 0))
    3
    """

    def __init__(
        self, dims: Sequence[int], weights: Sequence[float] | None = None
    ):
        self._dims = check_dims(dims, "dims")
        if weights is None:
            self._weights = (1.0,) * len(self._dims)
        else:
            ws = tuple(weights)
            if len(ws) != len(self._dims):
                raise ValueError(
                    f"weights has {len(ws)} entries but dims has "
                    f"{len(self._dims)}"
                )
            self._weights = tuple(
                check_positive_float(w, f"weights[{k}]") for k, w in enumerate(ws)
            )
        self._n = math.prod(self._dims)

    @property
    def dims(self) -> tuple[int, ...]:
        """Clique sizes in construction order."""
        return self._dims

    @property
    def weights(self) -> tuple[float, ...]:
        """Per-dimension link capacities."""
        return self._weights

    @property
    def ndim(self) -> int:
        return len(self._dims)

    @property
    def num_vertices(self) -> int:
        return self._n

    @property
    def name(self) -> str:
        return "K" + "xK".join(str(a) for a in self._dims)

    def is_uniform(self) -> bool:
        """Whether all link capacities are equal (regular HyperX)."""
        return len(set(self._weights)) <= 1

    def contains(self, v: Vertex) -> bool:
        return (
            isinstance(v, tuple)
            and len(v) == len(self._dims)
            and all(
                isinstance(c, int) and 0 <= c < a for c, a in zip(v, self._dims)
            )
        )

    def vertices(self) -> Iterator[tuple[int, ...]]:
        return itertools.product(*(range(a) for a in self._dims))

    def neighbors(self, v: Vertex) -> Iterator[tuple[tuple[int, ...], float]]:
        if not self.contains(v):
            raise ValueError(f"{v!r} is not a vertex of {self.name}")
        coords = tuple(v)  # type: ignore[arg-type]
        for k, a in enumerate(self._dims):
            w = self._weights[k]
            for c in range(a):
                if c != coords[k]:
                    yield coords[:k] + (c,) + coords[k + 1 :], w

    def degree(self, v: Vertex) -> int:
        if not self.contains(v):
            raise ValueError(f"{v!r} is not a vertex of {self.name}")
        return sum(a - 1 for a in self._dims)

    @property
    def num_edges(self) -> int:
        total = 0
        for a in self._dims:
            # Each dimension contributes (n / a) * C(a, 2) edges.
            total += (self._n // a) * (a * (a - 1) // 2)
        return total

    def is_regular(self) -> bool:
        return True

    def regular_degree(self) -> int:
        return sum(a - 1 for a in self._dims)

    def hop_distance(self, u: Vertex, v: Vertex) -> int:
        """Hamming distance — one hop fixes one coordinate."""
        if not self.contains(u):
            raise ValueError(f"{u!r} is not a vertex of {self.name}")
        if not self.contains(v):
            raise ValueError(f"{v!r} is not a vertex of {self.name}")
        return sum(1 for x, y in zip(u, v) if x != y)  # type: ignore[arg-type]

    @property
    def diameter(self) -> int:
        return sum(1 for a in self._dims if a > 1)

    def bisection_width(self) -> float:
        """Weighted bisection width of the HyperX network.

        Per Ahn et al., the bisection is attained by taking half the
        vertices of one clique ``K_{a_i}`` (times all other coordinates):
        the cut then consists of ``(a_i/2)·(a_i - a_i/2)`` clique edges per
        line.  We scan all dimensions with at least one even-splittable
        layout and return the minimum weighted cut.
        """
        best: float | None = None
        for k, a in enumerate(self._dims):
            if a < 2:
                continue
            half = a // 2
            # For odd a this is a near-bisection; only even dims give an
            # exact bisection of the full vertex set.
            if (self._n // a) * a % 2 == 0 and a % 2 != 0:
                # Odd clique in an even graph: an exact bisection must split
                # some line unevenly; the perpendicular construction does
                # not apply. Skip — another dimension will provide the cut.
                continue
            cut = half * (a - half) * (self._n // a) * self._weights[k]
            if best is None or cut < best:
                best = cut
        if best is None:
            raise ValueError(f"{self.name} admits no perpendicular bisection")
        return best

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, CliqueProduct)
            and self._dims == other._dims
            and self._weights == other._weights
        )

    def __hash__(self) -> int:
        return hash(("CliqueProduct", self._dims, self._weights))

    def __repr__(self) -> str:
        if self.is_uniform() and self._weights[0] == 1.0:  # repro: allow-float-eq default weight is stored as exactly 1.0; repr-only cosmetics
            return f"CliqueProduct({self._dims})"
        return f"CliqueProduct({self._dims}, weights={self._weights})"
