"""D-dimensional torus network graphs.

The torus is the central topology of the paper: IBM Blue Gene/Q machines are
5-D tori, and their partitions are sub-tori.  Following Section 2 of the
paper, a *D-torus* with dimensions ``(a_1, ..., a_D)`` has vertex set
``[a_1] × ... × [a_D]``; two vertices are adjacent iff they differ by
``±1 (mod a_k)`` in exactly one coordinate ``k``.

Dimension-length conventions
----------------------------

* ``a_k == 1`` — the dimension is degenerate and contributes no edges.
* ``a_k == 2`` — the "cycle" of length 2 collapses to a *single* edge
  between the two vertices (``+1`` and ``-1 (mod 2)`` reach the same
  neighbor).  With this convention ``Torus((2,)*d)`` is exactly the
  ``d``-dimensional hypercube, matching Harper's theorem as used in
  Lemma 3.2 of the paper, and matching the Blue Gene/Q E-dimension of
  size 2 which provides one link.
* ``a_k >= 3`` — a proper cycle; a contiguous interval that does not cover
  the whole dimension has 2 boundary edges per line.

All links have unit capacity (uniform-capacity networks, as in Blue
Gene/Q); weighted tori for Dragonfly-like analyses live in
:mod:`repro.topology.dragonfly` and :mod:`repro.isoperimetry.weighted`.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Iterator, Sequence

from .._validation import check_dims
from .base import Topology, Vertex

__all__ = ["Torus", "torus_num_edges", "degenerate_free_dims"]


def degenerate_free_dims(dims: Sequence[int]) -> tuple[int, ...]:
    """Return *dims* with length-1 (edge-free) dimensions removed.

    A torus with dimensions ``(4, 1, 1)`` is graph-isomorphic to the ring
    ``(4,)``; analyses that depend only on the graph may canonicalize with
    this helper.
    """
    return tuple(a for a in dims if a > 1)


def torus_num_edges(dims: Sequence[int]) -> int:
    """Number of edges of the torus with the given dimensions.

    Each dimension of length ``a >= 3`` contributes ``|V|`` edges (one per
    vertex in the + direction); a dimension of length 2 contributes
    ``|V| / 2`` single edges; length 1 contributes none.
    """
    dims = check_dims(dims)
    n = math.prod(dims)
    total = 0
    for a in dims:
        if a >= 3:
            total += n
        elif a == 2:
            total += n // 2
    return total


class Torus(Topology):
    """A D-dimensional torus with arbitrary (possibly unequal) dimensions.

    Parameters
    ----------
    dims:
        Dimension lengths ``(a_1, ..., a_D)``, each a positive integer.
        The order is preserved as given (coordinates are meaningful for
        routing); use :meth:`sorted_dims` for the paper's canonical
        descending representation.
    dim_weights:
        Optional per-dimension link capacities (default 1.0 everywhere).
        Used to model physical networks whose dimensions have unequal
        bandwidth — e.g. Blue Gene/Q's E dimension of length 2, whose
        E+ and E− ports reach the *same* partner node and therefore
        provide double capacity between the pair.

    Examples
    --------
    >>> t = Torus((4, 4, 2))
    >>> t.num_vertices
    32
    >>> t.degree((0, 0, 0))
    5
    >>> t.hop_distance((0, 0, 0), (2, 3, 1))
    4
    """

    def __init__(
        self,
        dims: Sequence[int],
        dim_weights: Sequence[float] | None = None,
    ):
        self._dims = check_dims(dims, "dims")
        self._n = math.prod(self._dims)
        if dim_weights is None:
            self._weights: tuple[float, ...] = (1.0,) * len(self._dims)
        else:
            ws = tuple(float(w) for w in dim_weights)
            if len(ws) != len(self._dims):
                raise ValueError(
                    f"dim_weights has {len(ws)} entries but dims has "
                    f"{len(self._dims)}"
                )
            if any(w <= 0 for w in ws):
                raise ValueError("all dim_weights must be positive")
            self._weights = ws

    # ------------------------------------------------------------------ #
    # Basic structure                                                      #
    # ------------------------------------------------------------------ #

    @property
    def dims(self) -> tuple[int, ...]:
        """Dimension lengths in construction order."""
        return self._dims

    @property
    def ndim(self) -> int:
        """Number of dimensions ``D``."""
        return len(self._dims)

    @property
    def num_vertices(self) -> int:
        return self._n

    @property
    def name(self) -> str:
        return "Torus" + "x".join(str(a) for a in self._dims)

    def sorted_dims(self) -> tuple[int, ...]:
        """Dimensions sorted descending — the paper's canonical form."""
        return tuple(sorted(self._dims, reverse=True))

    def is_cubic(self) -> bool:
        """Whether all dimensions are equal (Bollobás–Leader setting)."""
        return len(set(self._dims)) == 1

    def contains(self, v: Vertex) -> bool:
        return (
            isinstance(v, tuple)
            and len(v) == len(self._dims)
            and all(
                isinstance(c, int) and 0 <= c < a for c, a in zip(v, self._dims)
            )
        )

    def vertices(self) -> Iterator[tuple[int, ...]]:
        return itertools.product(*(range(a) for a in self._dims))

    @property
    def dim_weights(self) -> tuple[float, ...]:
        """Per-dimension link capacities."""
        return self._weights

    def is_uniform(self) -> bool:
        """Whether all dimension weights are 1.0 (plain unit-capacity)."""
        return all(w == 1.0 for w in self._weights)  # repro: allow-float-eq default weight is stored as exactly 1.0; uniformity is a stored-repr property

    def neighbors(self, v: Vertex) -> Iterator[tuple[tuple[int, ...], float]]:
        if not self.contains(v):
            raise ValueError(f"{v!r} is not a vertex of {self.name}")
        coords = tuple(v)  # type: ignore[arg-type]
        for k, a in enumerate(self._dims):
            if a == 1:
                continue
            w = self._weights[k]
            if a == 2:
                other = coords[:k] + (1 - coords[k],) + coords[k + 1 :]
                yield other, w
                continue
            up = coords[:k] + ((coords[k] + 1) % a,) + coords[k + 1 :]
            down = coords[:k] + ((coords[k] - 1) % a,) + coords[k + 1 :]
            yield up, w
            yield down, w

    def degree(self, v: Vertex) -> int:
        # All vertices have equal degree; compute from dims in O(D).
        if not self.contains(v):
            raise ValueError(f"{v!r} is not a vertex of {self.name}")
        return sum(2 if a >= 3 else 1 for a in self._dims if a > 1)

    @property
    def num_edges(self) -> int:
        return torus_num_edges(self._dims)

    def is_regular(self) -> bool:
        return True

    def regular_degree(self) -> int:
        return sum(2 if a >= 3 else 1 for a in self._dims if a > 1)

    # ------------------------------------------------------------------ #
    # Distances                                                            #
    # ------------------------------------------------------------------ #

    def ring_distance(self, k: int, x: int, y: int) -> int:
        """Hop distance between coordinates *x* and *y* along dimension *k*."""
        a = self._dims[k]
        d = abs(x - y) % a
        return min(d, a - d)

    def hop_distance(self, u: Vertex, v: Vertex) -> int:
        """Shortest-path (hop) distance between vertices *u* and *v*.

        On a torus the shortest path decomposes per dimension into the
        shorter way around each ring.
        """
        if not self.contains(u):
            raise ValueError(f"{u!r} is not a vertex of {self.name}")
        if not self.contains(v):
            raise ValueError(f"{v!r} is not a vertex of {self.name}")
        return sum(
            self.ring_distance(k, x, y)
            for k, (x, y) in enumerate(zip(u, v))  # type: ignore[arg-type]
        )

    @property
    def diameter(self) -> int:
        """Maximum hop distance between any two vertices."""
        return sum(a // 2 for a in self._dims)

    def antipode(self, v: Vertex) -> tuple[int, ...]:
        """The vertex at maximal hop distance from *v*.

        Offsets every coordinate by ``a_k // 2``; this realizes the
        furthest-node pairing of the paper's bisection pairing experiment
        (the scheme of Chen et al. for Blue Gene/Q).  The map is an
        involution whenever all dimensions are even.
        """
        if not self.contains(v):
            raise ValueError(f"{v!r} is not a vertex of {self.name}")
        return tuple(
            (c + a // 2) % a for c, a in zip(v, self._dims)  # type: ignore[arg-type]
        )

    # ------------------------------------------------------------------ #
    # Cuts                                                                 #
    # ------------------------------------------------------------------ #

    def cross_section(self, k: int) -> int:
        """Number of axis-*k* lines, i.e. ``|V| / a_k``."""
        if not 0 <= k < self.ndim:
            raise ValueError(f"dimension index {k} out of range for {self.name}")
        return self._n // self._dims[k]

    def perpendicular_cut(self, k: int) -> int:
        """Cut size of a perpendicular bisection of dimension *k*.

        Splitting the length-``a_k`` ring into two contiguous halves cuts
        2 edges per line for ``a_k >= 3`` and 1 for ``a_k == 2``.  Requires
        ``a_k`` even so the split is an exact bisection.
        """
        a = self._dims[k]
        if a % 2 != 0:
            raise ValueError(
                f"dimension {k} of {self.name} has odd length {a}; a "
                "perpendicular cut there is not a bisection"
            )
        per_line = 2 if a >= 3 else 1
        return per_line * self.cross_section(k)

    def best_perpendicular_bisection(self) -> tuple[int, int]:
        """Minimum perpendicular bisection ``(dimension_index, cut_size)``.

        Scans all even-length dimensions.  For tori whose longest dimension
        is even (every Blue Gene/Q partition at node granularity), this is
        the graph's bisection width: the perpendicular cut of the longest
        dimension matches the Theorem 3.1 lower bound with ``r = D - 1``.

        Raises :class:`ValueError` when no dimension is even (no
        perpendicular bisection exists; use the isoperimetric machinery
        directly in that case).
        """
        best: tuple[int, int] | None = None
        for k, a in enumerate(self._dims):
            if a % 2 != 0 or a == 1:
                continue
            cut = self.perpendicular_cut(k)
            if best is None or cut < best[1]:
                best = (k, cut)
        if best is None:
            raise ValueError(
                f"{self.name} has no even dimension; no perpendicular "
                "bisection exists"
            )
        return best

    def bisection_width(self) -> int:
        """Bisection width (number of unit-capacity links) of the torus.

        Computed as the best perpendicular bisection; for tori with an even
        longest dimension this equals ``2·N/L`` (``L`` the longest
        dimension) when ``L >= 3``, the Blue Gene/Q formula of Chen et al.
        """
        return self.best_perpendicular_bisection()[1]

    def halfspace(self, k: int) -> set[tuple[int, ...]]:
        """The vertex set ``{v : v_k < a_k / 2}`` of a perpendicular bisection."""
        a = self._dims[k]
        if a % 2 != 0:
            raise ValueError(
                f"dimension {k} of {self.name} has odd length {a}"
            )
        half = a // 2
        return {v for v in self.vertices() if v[k] < half}

    # ------------------------------------------------------------------ #
    # Sub-tori                                                             #
    # ------------------------------------------------------------------ #

    def subtorus(self, dims: Sequence[int]) -> "Torus":
        """A sub-torus with the given dimensions.

        Models a Blue Gene/Q partition: the machine guarantees wrap-around
        links inside a partition even when the partition does not cover a
        dimension of the host network, so a partition *is* a smaller torus.
        Each requested dimension must fit inside some distinct host
        dimension (multiset containment after sorting).
        """
        sub = check_dims(dims, "dims")
        host = sorted(self._dims, reverse=True)
        want = sorted(sub, reverse=True)
        if len(want) > len(host):
            raise ValueError(
                f"sub-torus has {len(want)} dimensions but {self.name} has "
                f"only {len(host)}"
            )
        # Greedy matching of sorted sequences suffices for containment.
        hi = 0
        for w in want:
            while hi < len(host) and host[hi] < w:
                hi += 1
            if hi >= len(host):
                raise ValueError(
                    f"sub-torus dimensions {tuple(sub)} do not fit inside "
                    f"{self.name}"
                )
            hi += 1
        return Torus(sub)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Torus)
            and self._dims == other._dims
            and self._weights == other._weights
        )

    def __hash__(self) -> int:
        return hash(("Torus", self._dims, self._weights))

    def __repr__(self) -> str:
        if self.is_uniform():
            return f"Torus({self._dims})"
        return f"Torus({self._dims}, dim_weights={self._weights})"
