"""Dragonfly network graphs with configurable global-link arrangements.

Section 5 of the paper describes how the isoperimetric method extends to
Dragonfly networks (Kim et al. 2008) as implemented in the Cray XC series:

* each *group* is a Cartesian product of cliques ``K_a × K_h`` (Aries:
  ``K_16 × K_6``), where the ``K_h`` ("green"/backplane) links have a
  normalized capacity of 3 relative to the ``K_a`` links;
* groups are joined by *global* ("blue") links of normalized capacity 4;
* the inter-group arrangement is not publicly documented, so the paper
  points to the three candidate schemes studied by Hastings et al. 2015 —
  **absolute**, **relative**, and **circulant** — all of which are
  implemented here.

Vertices are routers labelled ``(g, x, y)`` with group ``g``, row
coordinate ``x ∈ [a]`` and column coordinate ``y ∈ [h]``.  Global port
``k`` of group ``g`` is hosted by router ``k mod (a·h)`` of the group
(round-robin), which spreads global connectivity uniformly — the paper
notes each physical endpoint is really a *pair* of adjacent Aries routers;
round-robin port placement preserves the capacity structure that matters
for cut analysis while keeping the graph simple.

Because link capacities are non-uniform, isoperimetric questions on a
Dragonfly require the weighted machinery of
:mod:`repro.isoperimetry.weighted`.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator

from .._validation import check_positive_float, check_positive_int
from .base import Topology, Vertex

__all__ = ["Dragonfly", "ARRANGEMENTS"]

#: Supported global-link arrangement schemes (Hastings et al. 2015).
ARRANGEMENTS = ("absolute", "relative", "circulant")


class Dragonfly(Topology):
    """A Dragonfly network of ``K_a × K_h`` groups with weighted links.

    Parameters
    ----------
    num_groups:
        Number of groups ``G >= 1``.
    a:
        Row clique size (16 for Aries).
    h:
        Column clique size (6 for Aries).
    arrangement:
        Global-link arrangement: ``"absolute"``, ``"relative"`` or
        ``"circulant"``.
    global_links_per_group:
        Number of outgoing global ports per group.  Defaults to ``G - 1``
        (single link to every other group).  Must be a multiple of
        ``G - 1`` so every pair of groups receives the same number of
        links (uniform arrangements, as studied by Hastings et al.).
    row_capacity, col_capacity, global_capacity:
        Link capacities; defaults follow the paper's normalization
        (1, 3, 4).

    Examples
    --------
    >>> d = Dragonfly(num_groups=3, a=4, h=3)
    >>> d.num_vertices
    36
    """

    def __init__(
        self,
        num_groups: int,
        a: int = 16,
        h: int = 6,
        arrangement: str = "absolute",
        global_links_per_group: int | None = None,
        row_capacity: float = 1.0,
        col_capacity: float = 3.0,
        global_capacity: float = 4.0,
    ):
        self._g = check_positive_int(num_groups, "num_groups")
        self._a = check_positive_int(a, "a")
        self._h = check_positive_int(h, "h")
        if arrangement not in ARRANGEMENTS:
            raise ValueError(
                f"arrangement must be one of {ARRANGEMENTS}, got "
                f"{arrangement!r}"
            )
        self._arrangement = arrangement
        self._wr = check_positive_float(row_capacity, "row_capacity")
        self._wc = check_positive_float(col_capacity, "col_capacity")
        self._wg = check_positive_float(global_capacity, "global_capacity")
        routers_per_group = self._a * self._h
        if self._g == 1:
            self._ports = 0
        else:
            if global_links_per_group is None:
                global_links_per_group = self._g - 1
            check_positive_int(global_links_per_group, "global_links_per_group")
            if global_links_per_group % (self._g - 1) != 0:
                raise ValueError(
                    "global_links_per_group must be a multiple of "
                    f"num_groups - 1 = {self._g - 1}, got "
                    f"{global_links_per_group}"
                )
            self._ports = global_links_per_group
        self._routers_per_group = routers_per_group
        # Precompute the global adjacency with summed capacities:
        # maps router label -> {router label: capacity}.
        self._global: dict[tuple[int, int, int], dict[tuple[int, int, int], float]] = {}
        self._build_global_links()

    # ------------------------------------------------------------------ #
    # Construction of global links                                         #
    # ------------------------------------------------------------------ #

    def _port_target_group(self, g: int, k: int) -> int:
        """Target group of global port *k* of group *g* under the scheme."""
        G = self._g
        base = k % (G - 1)
        if self._arrangement == "absolute":
            # Port index enumerates absolute group ids, skipping self.
            return base if base < g else base + 1
        if self._arrangement == "relative":
            # Port index enumerates offsets from the own group.
            return (g + base + 1) % G
        # circulant: ports alternate +offset / -offset.
        off = base // 2 + 1
        if base % 2 == 0:
            return (g + off) % G
        return (g - off) % G

    def _port_router(self, k: int) -> tuple[int, int]:
        """Router coordinates hosting port *k* within its group."""
        r = k % self._routers_per_group
        return (r % self._a, r // self._a)

    def _build_global_links(self) -> None:
        if self._g == 1:
            return
        # Collect directed endpoints (g, port) -> target group, then pair
        # opposite directions: the j-th link from group g to group g' pairs
        # with the j-th link from g' to g.
        per_pair: dict[tuple[int, int], list[tuple[int, int]]] = {}
        for g in range(self._g):
            for k in range(self._ports):
                tgt = self._port_target_group(g, k)
                if tgt == g:
                    raise AssertionError("arrangement produced a self-link")
                key = (min(g, tgt), max(g, tgt))
                per_pair.setdefault(key, []).append((g, k))
        for (g1, g2), endpoints in per_pair.items():
            mine = [(g, k) for g, k in endpoints if g == g1]
            theirs = [(g, k) for g, k in endpoints if g == g2]
            if len(mine) != len(theirs):
                raise AssertionError(
                    f"asymmetric global arrangement between groups {g1},{g2}"
                )
            for (ga, ka), (gb, kb) in zip(mine, theirs):
                xa, ya = self._port_router(ka)
                xb, yb = self._port_router(kb)
                u = (ga, xa, ya)
                v = (gb, xb, yb)
                self._global.setdefault(u, {})
                self._global.setdefault(v, {})
                self._global[u][v] = self._global[u].get(v, 0.0) + self._wg
                self._global[v][u] = self._global[v].get(u, 0.0) + self._wg

    # ------------------------------------------------------------------ #
    # Topology interface                                                   #
    # ------------------------------------------------------------------ #

    @property
    def num_groups(self) -> int:
        return self._g

    @property
    def group_dims(self) -> tuple[int, int]:
        """Clique sizes ``(a, h)`` of each group."""
        return (self._a, self._h)

    @property
    def arrangement(self) -> str:
        """Global-link arrangement scheme."""
        return self._arrangement

    @property
    def num_vertices(self) -> int:
        return self._g * self._routers_per_group

    @property
    def name(self) -> str:
        return (
            f"Dragonfly(G={self._g},K{self._a}xK{self._h},"
            f"{self._arrangement})"
        )

    def contains(self, v: Vertex) -> bool:
        return (
            isinstance(v, tuple)
            and len(v) == 3
            and all(isinstance(c, int) for c in v)
            and 0 <= v[0] < self._g
            and 0 <= v[1] < self._a
            and 0 <= v[2] < self._h
        )

    def vertices(self) -> Iterator[tuple[int, int, int]]:
        return itertools.product(
            range(self._g), range(self._a), range(self._h)
        )

    def neighbors(self, v: Vertex) -> Iterator[tuple[tuple[int, int, int], float]]:
        if not self.contains(v):
            raise ValueError(f"{v!r} is not a vertex of {self.name}")
        g, x, y = v  # type: ignore[misc]
        for x2 in range(self._a):
            if x2 != x:
                yield (g, x2, y), self._wr
        for y2 in range(self._h):
            if y2 != y:
                yield (g, x, y2), self._wc
        for u, w in self._global.get((g, x, y), {}).items():
            yield u, w

    def group_vertices(self, g: int) -> list[tuple[int, int, int]]:
        """All routers of group *g*."""
        if not 0 <= g < self._g:
            raise ValueError(f"group index {g} out of range")
        return [
            (g, x, y)
            for x in range(self._a)
            for y in range(self._h)
        ]

    def global_cut_between_groups(self) -> float:
        """Total global-link capacity leaving any single group.

        Uniform arrangements give every group the same outgoing capacity;
        this is the denominator of group-granularity cut analyses.
        """
        if self._g == 1:
            return 0.0
        return self._ports * self._wg

    def __repr__(self) -> str:
        return (
            f"Dragonfly(num_groups={self._g}, a={self._a}, h={self._h}, "
            f"arrangement={self._arrangement!r})"
        )
