"""Abstract topology interface shared by all network graphs in :mod:`repro`.

A :class:`Topology` is an undirected, possibly edge-weighted graph whose
vertices are hashable labels (tuples of coordinates for product topologies,
ints for others).  The interface is deliberately small — vertex iteration,
weighted neighbor iteration, and degree — and everything else (edge lists,
cut evaluation, NetworkX export, regularity checks) is derived generically.

Edge weights model *link capacities*: an edge of weight ``w`` contributes
``w`` units to any cut it crosses.  Unweighted topologies simply report
weight 1.0 for every edge, in which case cut weights coincide with cut
cardinalities (the convention used throughout the paper for Blue Gene/Q,
whose links all have equal capacity).
"""

from __future__ import annotations

import abc
from collections.abc import Hashable, Iterable, Iterator
from typing import Any

__all__ = [
    "Vertex",
    "Topology",
    "SubgraphView",
    "cut_edges",
    "is_connected_subset",
]

#: Type alias for vertex labels.  Product topologies use coordinate tuples.
Vertex = Hashable


class Topology(abc.ABC):
    """Base class for network topologies.

    Subclasses must implement :meth:`vertices`, :meth:`neighbors` and
    :attr:`num_vertices`.  The neighbor relation must be symmetric with
    symmetric weights; :meth:`validate` checks this exhaustively and is used
    by the test-suite on small instances.
    """

    # ------------------------------------------------------------------ #
    # Abstract interface                                                  #
    # ------------------------------------------------------------------ #

    @property
    @abc.abstractmethod
    def num_vertices(self) -> int:
        """Number of vertices ``|V|``."""

    @abc.abstractmethod
    def vertices(self) -> Iterator[Vertex]:
        """Iterate over all vertex labels in a deterministic order."""

    @abc.abstractmethod
    def neighbors(self, v: Vertex) -> Iterator[tuple[Vertex, float]]:
        """Yield ``(neighbor, weight)`` pairs for vertex *v*.

        Each undirected edge ``{u, v}`` must be reported from both
        endpoints with the same weight.  Parallel edges are modelled by
        summing their capacities into a single weighted edge.
        """

    # ------------------------------------------------------------------ #
    # Generic derived functionality                                       #
    # ------------------------------------------------------------------ #

    @property
    def name(self) -> str:
        """Human-readable topology name (defaults to the class name)."""
        return type(self).__name__

    def contains(self, v: Vertex) -> bool:
        """Whether *v* is a vertex of this topology.

        The generic implementation scans :meth:`vertices`; subclasses with
        structured labels override this with an O(1) check.
        """
        return any(u == v for u in self.vertices())

    def degree(self, v: Vertex) -> int:
        """Number of distinct neighbors of *v* (ignoring weights)."""
        return sum(1 for _ in self.neighbors(v))

    def weighted_degree(self, v: Vertex) -> float:
        """Total capacity of edges incident to *v*."""
        return sum(w for _, w in self.neighbors(v))

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``|E|``."""
        return sum(self.degree(v) for v in self.vertices()) // 2

    @property
    def total_capacity(self) -> float:
        """Sum of all edge weights."""
        return sum(self.weighted_degree(v) for v in self.vertices()) / 2.0

    def edges(self) -> Iterator[tuple[Vertex, Vertex, float]]:
        """Iterate over undirected edges as ``(u, v, weight)``.

        Each edge is yielded exactly once; the endpoint ordering within a
        pair is arbitrary but deterministic.
        """
        seen: set[Vertex] = set()
        for u in self.vertices():
            seen.add(u)
            for v, w in self.neighbors(u):
                if v not in seen:
                    yield (u, v, w)

    def is_regular(self) -> bool:
        """Whether every vertex has the same (unweighted) degree."""
        it = self.vertices()
        try:
            first = next(it)
        except StopIteration:
            return True
        d0 = self.degree(first)
        return all(self.degree(v) == d0 for v in it)

    def regular_degree(self) -> int:
        """Common degree of a regular topology.

        Raises :class:`ValueError` if the topology is not regular.
        """
        degrees = {self.degree(v) for v in self.vertices()}
        if len(degrees) != 1:
            raise ValueError(
                f"{self.name} is not regular: observed degrees {sorted(degrees)}"
            )
        return degrees.pop()

    # ------------------------------------------------------------------ #
    # Cuts                                                                 #
    # ------------------------------------------------------------------ #

    def cut_weight(self, subset: Iterable[Vertex]) -> float:
        """Total capacity of edges with exactly one endpoint in *subset*.

        This is the weighted perimeter ``|E(S, S̄)|`` of the paper.  For
        unweighted topologies it equals the edge count of the cut.
        """
        s = set(subset)
        total = 0.0
        for u in s:
            for v, w in self.neighbors(u):
                if v not in s:
                    total += w
        return total

    def interior_weight(self, subset: Iterable[Vertex]) -> float:
        """Total capacity of edges with both endpoints in *subset*.

        This is the weighted interior ``|E(S, S)|``; for a k-regular
        unweighted graph, ``k·|S| = 2·interior + perimeter`` (Equation 1
        of the paper), which the test-suite verifies.
        """
        s = set(subset)
        total = 0.0
        for u in s:
            for v, w in self.neighbors(u):
                if v in s:
                    total += w
        return total / 2.0

    def expansion(self, subset: Iterable[Vertex]) -> float:
        """Edge expansion of *subset*: perimeter / total incident capacity.

        For a k-regular graph this is ``cut / (k · |S|)``, the quantity
        minimized by the small-set expansion ``h_t(G)``.
        """
        s = set(subset)
        if not s:
            raise ValueError("expansion of the empty set is undefined")
        incident = sum(self.weighted_degree(v) for v in s)
        return self.cut_weight(s) / incident

    # ------------------------------------------------------------------ #
    # Interop & checking                                                   #
    # ------------------------------------------------------------------ #

    def to_networkx(self) -> Any:
        """Export to a :class:`networkx.Graph` with ``weight`` edge data."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(self.vertices())
        for u, v, w in self.edges():
            g.add_edge(u, v, weight=w)
        return g

    def validate(self) -> None:
        """Exhaustively check structural invariants (small graphs only).

        Verifies that the neighbor relation is symmetric with symmetric
        weights, free of self-loops, and consistent with
        :attr:`num_vertices`.  Raises :class:`AssertionError` on violation.
        """
        verts = list(self.vertices())
        assert len(verts) == self.num_vertices, (
            f"vertices() yielded {len(verts)} labels but num_vertices is "
            f"{self.num_vertices}"
        )
        assert len(set(verts)) == len(verts), "vertices() yielded duplicates"
        vset = set(verts)
        weights: dict[tuple[Vertex, Vertex], float] = {}
        for u in verts:
            seen_here: set[Vertex] = set()
            for v, w in self.neighbors(u):
                assert v != u, f"self-loop at {u!r}"
                assert v in vset, f"neighbor {v!r} of {u!r} is not a vertex"
                assert v not in seen_here, f"duplicate neighbor {v!r} of {u!r}"
                assert w > 0, f"non-positive weight {w} on edge ({u!r}, {v!r})"
                seen_here.add(v)
                weights[(u, v)] = w
        for (u, v), w in weights.items():
            assert (v, u) in weights, f"edge ({u!r}, {v!r}) not symmetric"
            assert weights[(v, u)] == w, (
                f"asymmetric weights on edge ({u!r}, {v!r}): "
                f"{w} vs {weights[(v, u)]}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(|V|={self.num_vertices})"


class SubgraphView(Topology):
    """Filtered view of a base topology (surviving subgraph of faults).

    Keeps only vertices passing *node_alive* and, from each surviving
    vertex, only the neighbors for which *edge_alive(u, v)* holds.  The
    edge filter is evaluated *per direction*, so the view may be
    directional (e.g. one direction of a link failed) — it is meant for
    route computation, not for the symmetric cut/isoperimetry machinery,
    and :meth:`validate` is intentionally not guaranteed to pass on it.

    Vertices and weights come straight from the base topology, so view
    construction is O(1); filtering happens lazily during iteration.
    """

    def __init__(
        self,
        base: Topology,
        node_alive: Any = None,
        edge_alive: Any = None,
    ):
        self._base = base
        self._node_alive = node_alive or (lambda v: True)
        self._edge_alive = edge_alive or (lambda u, v: True)
        self._count: int | None = None

    @property
    def base(self) -> Topology:
        """The unfiltered topology this view restricts."""
        return self._base

    @property
    def name(self) -> str:
        return f"{self._base.name}[surviving]"

    @property
    def num_vertices(self) -> int:
        if self._count is None:
            self._count = sum(1 for _ in self.vertices())
        return self._count

    def vertices(self) -> Iterator[Vertex]:
        return (v for v in self._base.vertices() if self._node_alive(v))

    def contains(self, v: Vertex) -> bool:
        return self._base.contains(v) and self._node_alive(v)

    def neighbors(self, v: Vertex) -> Iterator[tuple[Vertex, float]]:
        if not self._node_alive(v):
            raise ValueError(f"{v!r} is not alive in {self.name}")
        for u, w in self._base.neighbors(v):
            if self._node_alive(u) and self._edge_alive(v, u):
                yield (u, w)


def cut_edges(
    topo: Topology, subset: Iterable[Vertex]
) -> list[tuple[Vertex, Vertex, float]]:
    """Return the list of cut edges ``(inside, outside, weight)`` of *subset*."""
    s = set(subset)
    out: list[tuple[Vertex, Vertex, float]] = []
    for u in s:
        for v, w in topo.neighbors(u):
            if v not in s:
                out.append((u, v, w))
    return out


def is_connected_subset(topo: Topology, subset: Iterable[Vertex]) -> bool:
    """Whether the subgraph induced by *subset* is connected.

    The empty set is considered connected (vacuously).
    """
    s = set(subset)
    if not s:
        return True
    start = next(iter(s))
    frontier = [start]
    seen = {start}
    while frontier:
        u = frontier.pop()
        for v, _ in topo.neighbors(u):
            if v in s and v not in seen:
                seen.add(v)
                frontier.append(v)
    return seen == s
