"""D-dimensional mesh (grid) network graphs — tori without wrap-around.

Meshes appear in the paper's discussion of lower-dimensional torus
machines and of the 2-D grid edge-isoperimetric results of Ahlswede and
Bezrukov, implemented in :mod:`repro.isoperimetry.mesh2d`.  A mesh with
dimensions ``(a_1, ..., a_D)`` has vertices ``[a_1] × ... × [a_D]`` and
edges between vertices differing by exactly 1 in one coordinate (no
modular wrap).
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Iterator, Sequence

from .._validation import check_dims
from .base import Topology, Vertex

__all__ = ["Mesh"]


class Mesh(Topology):
    """A D-dimensional mesh grid with open (non-wrapping) boundaries.

    Examples
    --------
    >>> m = Mesh((3, 2))
    >>> m.num_vertices, m.num_edges
    (6, 7)
    >>> m.degree((0, 0)), m.degree((1, 0))
    (2, 3)
    """

    def __init__(self, dims: Sequence[int]):
        self._dims = check_dims(dims, "dims")
        self._n = math.prod(self._dims)

    @property
    def dims(self) -> tuple[int, ...]:
        """Dimension lengths in construction order."""
        return self._dims

    @property
    def ndim(self) -> int:
        """Number of dimensions ``D``."""
        return len(self._dims)

    @property
    def num_vertices(self) -> int:
        return self._n

    @property
    def name(self) -> str:
        return "Mesh" + "x".join(str(a) for a in self._dims)

    def contains(self, v: Vertex) -> bool:
        return (
            isinstance(v, tuple)
            and len(v) == len(self._dims)
            and all(
                isinstance(c, int) and 0 <= c < a for c, a in zip(v, self._dims)
            )
        )

    def vertices(self) -> Iterator[tuple[int, ...]]:
        return itertools.product(*(range(a) for a in self._dims))

    def neighbors(self, v: Vertex) -> Iterator[tuple[tuple[int, ...], float]]:
        if not self.contains(v):
            raise ValueError(f"{v!r} is not a vertex of {self.name}")
        coords = tuple(v)  # type: ignore[arg-type]
        for k, a in enumerate(self._dims):
            c = coords[k]
            if c + 1 < a:
                yield coords[:k] + (c + 1,) + coords[k + 1 :], 1.0
            if c - 1 >= 0:
                yield coords[:k] + (c - 1,) + coords[k + 1 :], 1.0

    @property
    def num_edges(self) -> int:
        total = 0
        for k, a in enumerate(self._dims):
            total += (a - 1) * (self._n // a)
        return total

    def hop_distance(self, u: Vertex, v: Vertex) -> int:
        """Manhattan distance between *u* and *v*."""
        if not self.contains(u):
            raise ValueError(f"{u!r} is not a vertex of {self.name}")
        if not self.contains(v):
            raise ValueError(f"{v!r} is not a vertex of {self.name}")
        return sum(abs(x - y) for x, y in zip(u, v))  # type: ignore[arg-type]

    @property
    def diameter(self) -> int:
        return sum(a - 1 for a in self._dims)

    def bisection_width(self) -> int:
        """Bisection width: one cut plane perpendicular to the longest
        even-splittable dimension (1 edge per line — no wrap)."""
        best: int | None = None
        for k, a in enumerate(self._dims):
            if a % 2 != 0:
                continue
            cut = self._n // a
            if best is None or cut < best:
                best = cut
        if best is None:
            raise ValueError(
                f"{self.name} has no even dimension; no perpendicular "
                "bisection exists"
            )
        return best

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Mesh) and self._dims == other._dims

    def __hash__(self) -> int:
        return hash(("Mesh", self._dims))

    def __repr__(self) -> str:
        return f"Mesh({self._dims})"
