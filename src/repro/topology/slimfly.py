"""Slim Fly networks (McKay–Miller–Širáň graphs).

Section 5 of the paper notes that Slim Fly (Besta & Hoefler 2014) "is
more difficult to analyze in the general case, since the cabling layout
varies greatly based on the global network size, necessitating
exhaustive search", and doubts a general isoperimetric solution exists.
We therefore provide the *construction* plus numeric tooling — exact
brute force on the smallest instance and spectral bounds beyond — rather
than a closed form, exactly the situation the paper describes.

The construction is the McKay–Miller–Širáň (MMS) family used by Slim
Fly: for a prime power ``q = 4w + δ`` (``δ ∈ {-1, 0, 1}``), the graph
has ``2 q²`` vertices ``(i, x, y)`` with ``i ∈ {0, 1}``, ``x, y ∈
GF(q)``:

* ``(0, x, y) ~ (0, x, y')``  iff ``y - y' ∈ X``   (primitive even powers);
* ``(1, m, c) ~ (1, m, c')``  iff ``c - c' ∈ X'``  (primitive odd powers);
* ``(0, x, y) ~ (1, m, c)``   iff ``y = m·x + c``  (point on line).

The result is ``(3q - δ)/2``-regular with diameter 2 and near-optimal
(Moore-bound) scale.  This implementation supports prime ``q`` (5, 13,
17, 29 cover the published Slim Fly sizes; extension fields are out of
scope and rejected).
"""

from __future__ import annotations

from collections.abc import Iterator

from .._validation import check_positive_int
from .base import Topology, Vertex

__all__ = ["SlimFly", "mms_parameters"]


def _is_prime(n: int) -> bool:
    if n < 2:
        return False
    f = 2
    while f * f <= n:
        if n % f == 0:
            return False
        f += 1
    return True


def mms_parameters(q: int) -> tuple[int, int]:
    """Validate an MMS modulus and return ``(delta, degree)``.

    This implementation supports primes ``q ≡ 1 (mod 4)`` (δ = 1): then
    −1 is a quadratic residue, the even-power generator set is closed
    under negation, and the simple-graph construction below is
    well-defined.  The published Slim Fly configurations (q = 5, 13, 17,
    29, ...) all satisfy this; the δ ∈ {0, −1} variants need extension
    fields / asymmetric generator sets and are out of scope (consistent
    with the paper's remark that Slim Fly resists uniform treatment).
    """
    check_positive_int(q, "q")
    if not _is_prime(q):
        raise ValueError(
            f"q must be prime for the prime-field MMS construction, "
            f"got {q}"
        )
    if q % 4 != 1:
        raise ValueError(
            "this implementation requires a prime q ≡ 1 (mod 4) "
            f"(e.g. 5, 13, 17, 29); got {q}"
        )
    delta = 1
    degree = (3 * q - delta) // 2
    return delta, degree


class SlimFly(Topology):
    """A Slim Fly (MMS) router graph over the prime field GF(q).

    Parameters
    ----------
    q:
        Prime modulus; the network has ``2 q²`` routers.

    Examples
    --------
    >>> sf = SlimFly(5)
    >>> sf.num_vertices
    50
    >>> sf.regular_degree()
    7
    >>> sf.diameter_upper_bound
    2
    """

    def __init__(self, q: int):
        self._delta, self._degree = mms_parameters(q)
        self._q = q
        # Generator sets: X = even powers of a primitive root xi,
        # X' = odd powers.  |X| = |X'| = (q - delta) / 2.
        xi = self._primitive_root(q)
        half = (q - self._delta) // 2
        even: set[int] = set()
        odd: set[int] = set()
        power = 1
        for exp in range(q - 1):
            if exp % 2 == 0 and len(even) < half:
                even.add(power)
            elif exp % 2 == 1 and len(odd) < half:
                odd.add(power)
            power = (power * xi) % q
        self._X = even
        self._Xp = odd

    @staticmethod
    def _primitive_root(q: int) -> int:
        """Smallest primitive root modulo prime *q*."""
        if q == 2:
            return 1
        factors = set()
        phi = q - 1
        n = phi
        f = 2
        while f * f <= n:
            while n % f == 0:
                factors.add(f)
                n //= f
            f += 1
        if n > 1:
            factors.add(n)
        for g in range(2, q):
            if all(pow(g, phi // p, q) != 1 for p in factors):
                return g
        raise AssertionError(f"no primitive root found for {q}")

    # ------------------------------------------------------------------ #

    @property
    def q(self) -> int:
        """The field modulus."""
        return self._q

    @property
    def num_vertices(self) -> int:
        return 2 * self._q * self._q

    @property
    def name(self) -> str:
        return f"SlimFly(q={self._q})"

    @property
    def diameter_upper_bound(self) -> int:
        """MMS graphs have diameter 2."""
        return 2

    def is_regular(self) -> bool:
        return True

    def regular_degree(self) -> int:
        return self._degree

    def contains(self, v: Vertex) -> bool:
        return (
            isinstance(v, tuple)
            and len(v) == 3
            and all(isinstance(c, int) for c in v)
            and v[0] in (0, 1)
            and 0 <= v[1] < self._q
            and 0 <= v[2] < self._q
        )

    def vertices(self) -> Iterator[tuple[int, int, int]]:
        for i in (0, 1):
            for x in range(self._q):
                for y in range(self._q):
                    yield (i, x, y)

    def neighbors(self, v: Vertex) -> Iterator[tuple[tuple[int, int, int], float]]:
        if not self.contains(v):
            raise ValueError(f"{v!r} is not a vertex of {self.name}")
        i, x, y = v  # type: ignore[misc]
        q = self._q
        if i == 0:
            for d in self._X:
                yield (0, x, (y + d) % q), 1.0
            # (0, x, y) ~ (1, m, c) iff y = m x + c  =>  c = y - m x.
            for m in range(q):
                yield (1, m, (y - m * x) % q), 1.0
        else:
            m, c = x, y
            for d in self._Xp:
                yield (1, m, (c + d) % q), 1.0
            # (1, m, c) ~ (0, x, y) with y = m x + c.
            for xx in range(q):
                yield (0, xx, (m * xx + c) % q), 1.0

    def __repr__(self) -> str:
        return f"SlimFly({self._q})"
