"""Three-tier k-ary fat-tree topology.

Section 5 of the paper notes that applying the isoperimetric method to
fat-trees is "more challenging": when the allocation policy lets distinct
jobs share network resources, the capacity actually available to a job can
be smaller than isoperimetric analysis indicates, and when sharing is
forbidden the policy is usually too constrained to improve.  We still
provide the topology so users can compute cuts and expansion of candidate
allocations, and so the contention simulator can route over it.

This is the standard k-ary fat-tree (Al-Fares et al. layout, also the
structure of many InfiniBand CLOS fabrics):

* ``(k/2)^2`` core switches;
* ``k`` pods, each with ``k/2`` aggregation and ``k/2`` edge switches;
* ``k/2`` hosts per edge switch (``k^3/4`` hosts total);
* core switch ``(i, j)`` (arranged as a ``(k/2) × (k/2)`` grid) connects
  to aggregation switch ``i`` of every pod;
* aggregation switch ``i`` of a pod connects to all edge switches of the
  pod.

Vertex labels are tuples: ``("core", i, j)``, ``("agg", p, i)``,
``("edge", p, i)`` and ``("host", p, i, h)``.
"""

from __future__ import annotations

from collections.abc import Iterator

from .._validation import check_positive_int
from .base import Topology, Vertex

__all__ = ["FatTree"]


class FatTree(Topology):
    """A k-ary three-tier fat-tree with unit-capacity links.

    Parameters
    ----------
    k:
        Arity; must be a positive even integer.

    Examples
    --------
    >>> ft = FatTree(4)
    >>> ft.num_hosts
    16
    >>> ft.num_vertices
    36
    """

    def __init__(self, k: int):
        self._k = check_positive_int(k, "k")
        if self._k % 2 != 0:
            raise ValueError(f"k must be even, got {k}")
        self._half = self._k // 2

    @property
    def k(self) -> int:
        """Fat-tree arity."""
        return self._k

    @property
    def num_hosts(self) -> int:
        """Number of compute hosts ``k^3 / 4``."""
        return self._k * self._half * self._half

    @property
    def num_switches(self) -> int:
        """Number of switches across all three tiers."""
        return self._half * self._half + self._k * self._k

    @property
    def num_vertices(self) -> int:
        return self.num_hosts + self.num_switches

    @property
    def name(self) -> str:
        return f"FatTree(k={self._k})"

    def contains(self, v: Vertex) -> bool:
        if not isinstance(v, tuple) or not v:
            return False
        kind = v[0]
        h = self._half
        if kind == "core":
            return len(v) == 3 and all(isinstance(c, int) for c in v[1:]) and (
                0 <= v[1] < h and 0 <= v[2] < h
            )
        if kind in ("agg", "edge"):
            return len(v) == 3 and all(isinstance(c, int) for c in v[1:]) and (
                0 <= v[1] < self._k and 0 <= v[2] < h
            )
        if kind == "host":
            return len(v) == 4 and all(isinstance(c, int) for c in v[1:]) and (
                0 <= v[1] < self._k and 0 <= v[2] < h and 0 <= v[3] < h
            )
        return False

    def vertices(self) -> Iterator[tuple]:
        h = self._half
        for i in range(h):
            for j in range(h):
                yield ("core", i, j)
        for p in range(self._k):
            for i in range(h):
                yield ("agg", p, i)
            for i in range(h):
                yield ("edge", p, i)
            for i in range(h):
                for hh in range(h):
                    yield ("host", p, i, hh)

    def hosts(self) -> Iterator[tuple]:
        """Iterate over host vertices only."""
        h = self._half
        for p in range(self._k):
            for i in range(h):
                for hh in range(h):
                    yield ("host", p, i, hh)

    def neighbors(self, v: Vertex) -> Iterator[tuple[tuple, float]]:
        if not self.contains(v):
            raise ValueError(f"{v!r} is not a vertex of {self.name}")
        h = self._half
        kind = v[0]  # type: ignore[index]
        if kind == "core":
            _, i, _j = v  # type: ignore[misc]
            for p in range(self._k):
                yield ("agg", p, i), 1.0
        elif kind == "agg":
            _, p, i = v  # type: ignore[misc]
            for j in range(h):
                yield ("core", i, j), 1.0
            for e in range(h):
                yield ("edge", p, e), 1.0
        elif kind == "edge":
            _, p, e = v  # type: ignore[misc]
            for i in range(h):
                yield ("agg", p, i), 1.0
            for hh in range(h):
                yield ("host", p, e, hh), 1.0
        else:  # host
            _, p, e, _hh = v  # type: ignore[misc]
            yield ("edge", p, e), 1.0

    def host_bisection_width(self) -> int:
        """Full-bisection cut between two host halves (rearrangeably
        non-blocking: ``num_hosts / 2`` at the core level)."""
        return self.num_hosts // 2

    def __repr__(self) -> str:
        return f"FatTree({self._k})"
