"""Hypercube network graphs.

The ``d``-dimensional hypercube ``Q_d`` has vertex set ``{0, 1}^d`` with
edges between vertices at Hamming distance 1.  Hypercube-based machines
(e.g. NASA's Pleiades, discussed in Section 5 of the paper) admit a fully
solved edge-isoperimetric problem (Harper 1964), so the paper's method
applies to them directly; :mod:`repro.isoperimetry.harper` implements the
solution on top of this topology.

Vertices are labelled by integers ``0 .. 2^d - 1`` interpreted as bit
vectors, which makes Harper's binary-order constructions O(1) per vertex.
Use :meth:`Hypercube.to_coordinates` to translate to the tuple labels used
by :class:`repro.topology.torus.Torus` (``Q_d`` is the torus ``(2,)*d``).
"""

from __future__ import annotations

from collections.abc import Iterator

from .._validation import check_nonnegative_int
from .base import Topology, Vertex

__all__ = ["Hypercube"]


class Hypercube(Topology):
    """The ``d``-dimensional hypercube ``Q_d`` with integer vertex labels.

    Parameters
    ----------
    d:
        Number of dimensions (``d >= 0``).  ``Q_0`` is a single vertex.

    Examples
    --------
    >>> q = Hypercube(3)
    >>> q.num_vertices
    8
    >>> sorted(v for v, _ in q.neighbors(0))
    [1, 2, 4]
    """

    def __init__(self, d: int):
        self._d = check_nonnegative_int(d, "d")
        if self._d > 30:
            raise ValueError(
                f"refusing to build a hypercube with 2^{self._d} vertices"
            )
        self._n = 1 << self._d

    @property
    def d(self) -> int:
        """Number of dimensions."""
        return self._d

    @property
    def num_vertices(self) -> int:
        return self._n

    @property
    def name(self) -> str:
        return f"Q{self._d}"

    def contains(self, v: Vertex) -> bool:
        return isinstance(v, int) and not isinstance(v, bool) and 0 <= v < self._n

    def vertices(self) -> Iterator[int]:
        return iter(range(self._n))

    def neighbors(self, v: Vertex) -> Iterator[tuple[int, float]]:
        if not self.contains(v):
            raise ValueError(f"{v!r} is not a vertex of {self.name}")
        for k in range(self._d):
            yield v ^ (1 << k), 1.0  # type: ignore[operator]

    def degree(self, v: Vertex) -> int:
        if not self.contains(v):
            raise ValueError(f"{v!r} is not a vertex of {self.name}")
        return self._d

    @property
    def num_edges(self) -> int:
        return self._d * self._n // 2

    def is_regular(self) -> bool:
        return True

    def regular_degree(self) -> int:
        return self._d

    def hop_distance(self, u: Vertex, v: Vertex) -> int:
        """Hamming distance between the bit labels of *u* and *v*."""
        if not self.contains(u):
            raise ValueError(f"{u!r} is not a vertex of {self.name}")
        if not self.contains(v):
            raise ValueError(f"{v!r} is not a vertex of {self.name}")
        return int.bit_count(u ^ v)  # type: ignore[operator, arg-type]

    @property
    def diameter(self) -> int:
        return self._d

    def antipode(self, v: Vertex) -> int:
        """The complementary vertex, at maximal Hamming distance *d*."""
        if not self.contains(v):
            raise ValueError(f"{v!r} is not a vertex of {self.name}")
        return v ^ (self._n - 1)  # type: ignore[operator]

    def bisection_width(self) -> int:
        """Bisection width of ``Q_d``: ``2^(d-1)`` (cut one dimension)."""
        if self._d == 0:
            return 0
        return self._n // 2

    def to_coordinates(self, v: int) -> tuple[int, ...]:
        """Translate integer label *v* to a ``{0,1}^d`` coordinate tuple.

        Bit ``k`` of *v* becomes coordinate ``k``, matching the dimension
        numbering of :meth:`neighbors`.
        """
        if not self.contains(v):
            raise ValueError(f"{v!r} is not a vertex of {self.name}")
        return tuple((v >> k) & 1 for k in range(self._d))

    def from_coordinates(self, coords: tuple[int, ...]) -> int:
        """Inverse of :meth:`to_coordinates`."""
        if len(coords) != self._d or any(c not in (0, 1) for c in coords):
            raise ValueError(
                f"{coords!r} is not a valid {self._d}-bit coordinate tuple"
            )
        return sum(c << k for k, c in enumerate(coords))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Hypercube) and self._d == other._d

    def __hash__(self) -> int:
        return hash(("Hypercube", self._d))

    def __repr__(self) -> str:
        return f"Hypercube({self._d})"
