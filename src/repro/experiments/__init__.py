"""Experiment harnesses reproducing Section 4 and 5 of the paper (S8).

* :mod:`~repro.experiments.pairing` — Experiment A, bisection pairing
  (Figures 3/4);
* :mod:`~repro.experiments.matmul` — Experiment B, CAPS fast matrix
  multiplication (Table 3, Figure 5);
* :mod:`~repro.experiments.strongscaling` — Experiment C, the
  strong-scaling illusion (Table 4, Figure 6);
* :mod:`~repro.experiments.machinedesign` — the JUQUEEN-48/54
  machine-design study (Table 5, Figure 7);
* :mod:`~repro.experiments.faultstudy` — geometry-ranking robustness
  under sampled link failures (degraded-bisection study).
"""

from .designsearch import DesignCandidate, design_search, score_machine
from .faultstudy import (
    DegradedBisectionRow,
    default_geometry_for_machine,
    degraded_bisection_study,
    surviving_bisection_bandwidth,
)
from .futurekernels import KernelRun, run_fft_transpose, run_nbody_sweep
from .machinedesign import (
    MachineDesignRow,
    compare_machines,
    is_constructible_within,
    peak_speedup_nearest_size,
    peak_speedup_over_baseline,
)
from .matmul import MatmulResult, run_caps_on_geometry, step_traffic_matrix
from .pairing import PairingParameters, PairingResult, run_pairing
from .strongscaling import (
    STRONG_SCALING_MATRIX_DIM,
    STRONG_SCALING_TABLE4,
    ScalingPoint,
    StrongScalingResult,
    run_strong_scaling,
)

__all__ = [
    "PairingParameters",
    "PairingResult",
    "run_pairing",
    "MatmulResult",
    "run_caps_on_geometry",
    "step_traffic_matrix",
    "ScalingPoint",
    "StrongScalingResult",
    "STRONG_SCALING_TABLE4",
    "STRONG_SCALING_MATRIX_DIM",
    "run_strong_scaling",
    "MachineDesignRow",
    "compare_machines",
    "is_constructible_within",
    "peak_speedup_over_baseline",
    "peak_speedup_nearest_size",
    "KernelRun",
    "run_fft_transpose",
    "run_nbody_sweep",
    "DesignCandidate",
    "design_search",
    "score_machine",
    "DegradedBisectionRow",
    "degraded_bisection_study",
    "default_geometry_for_machine",
    "surviving_bisection_bandwidth",
]
