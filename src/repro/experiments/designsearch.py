"""Machine-design search — discovering JUQUEEN-48/54 automatically.

The paper picks its two improved hypothetical machines by hand and
argues from Figure 7 that they dominate JUQUEEN.  Its discussion section
then suggests that "designing new network topologies, and evaluating
existing ones, should be done with their partitioning constraints and
internal bisection bandwidths in mind".  This module turns that into an
optimizer: enumerate candidate 4-D midplane machine geometries, score
each by the bisection bandwidth its *partitions* can offer, and rank.

Scoring.  For a machine ``M`` and a set of job sizes, the score of each
size is the best-case partition bandwidth (0 if the size cannot be
allocated); aggregate scores are compared lexicographically by
(number of baseline sizes matched-or-beaten, total bandwidth).  The
search reproduces the paper's findings: among machines of at most 56
midplanes, 3×3×3×2 (= JUQUEEN-54) and 4×3×2×2 (= JUQUEEN-48) emerge as
the dominant designs against the JUQUEEN baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import observability
from .._validation import check_positive_int
from ..allocation.enumeration import factorizations_into_dims
from ..allocation.optimizer import best_geometry_for_machine
from ..machines.bgq import BlueGeneQMachine
from ..parallel import register_block_runner, sweep_map

__all__ = [
    "DesignCandidate",
    "score_machine",
    "design_search",
    "fluid_check",
]


@dataclass(frozen=True)
class DesignCandidate:
    """One scored machine geometry.

    Attributes
    ----------
    machine:
        The candidate machine.
    bandwidths:
        Best-case partition bandwidth per requested size (0 when the
        size cannot be allocated).
    dominated_baseline:
        True when the candidate matches or beats the baseline at every
        size the baseline can allocate (on common allocatable sizes).
    wins:
        Number of sizes where the candidate strictly beats the baseline.
    """

    machine: BlueGeneQMachine
    bandwidths: dict[int, int]
    dominated_baseline: bool
    wins: int

    @property
    def total_bandwidth(self) -> int:
        return sum(self.bandwidths.values())


def score_machine(
    machine: BlueGeneQMachine, sizes: list[int]
) -> dict[int, int]:
    """Best-case partition bandwidth of *machine* at each size (0 = n/a)."""
    out: dict[int, int] = {}
    for size in sizes:
        try:
            best = best_geometry_for_machine(machine, size)
        except ValueError:
            out[size] = 0
        else:
            out[size] = best.normalized_bisection_bandwidth
    return out


def _score_candidate(
    task: tuple[tuple[int, ...], tuple[int, ...]],
) -> dict[int, int]:
    """Score one candidate machine shape over the given sizes."""
    dims, sizes = task
    machine = BlueGeneQMachine(f"candidate-{'x'.join(map(str, dims))}", dims)
    return score_machine(machine, list(sizes))


def _score_candidate_block(
    tasks: list[tuple[tuple[int, ...], tuple[int, ...]]],
) -> list[dict[int, int]]:
    """Block form of :func:`_score_candidate`: plain chunking.

    Candidate scoring has no stacked numpy kernel — the win here is
    dispatch economics: registering a block form routes small design
    searches through :func:`repro.parallel.sweep_map`'s serial blocked
    path (no pool startup for sweeps the pool made *slower*, the
    BENCH_perf.json crossover seam) and hands big searches to workers
    as a few large blocks instead of many small pickles.
    """
    return [_score_candidate(t) for t in tasks]


register_block_runner(
    _score_candidate,
    _score_candidate_block,
    min_block_tasks=2,
    max_block_tasks=64,
)


def design_search(
    max_midplanes: int,
    baseline: BlueGeneQMachine,
    sizes: list[int] | None = None,
    min_midplanes: int = 1,
    jobs: int | None = 1,
    fluid_check_top: int = 0,
    checkpoint=None,
    transport: str | None = None,
) -> list[DesignCandidate]:
    """Enumerate and rank machine geometries against a baseline.

    Parameters
    ----------
    max_midplanes:
        Upper bound on candidate machine size.
    baseline:
        The machine to beat (the paper uses JUQUEEN).
    sizes:
        Job sizes to score; defaults to the baseline's *improvable-free*
        comparison set — every size the baseline can allocate.
    min_midplanes:
        Lower bound on candidate size (avoid degenerate tiny machines).
    jobs:
        Worker processes for candidate scoring (the expensive part —
        one geometry enumeration per candidate per size); ``1`` scores
        serially with identical results.
    fluid_check_top:
        Verify the top-``N`` ranked candidates' headline scores through
        the flow-level simulator: the batch-routed antipodal pairing on
        the winning partition of each candidate's largest allocatable
        size must reproduce the cut-arithmetic bandwidth
        (:func:`repro.experiments.pairing.fluid_bisection_bandwidth`),
        else a :class:`RuntimeError` is raised.  ``0`` (default) skips
        the check; the ranking itself is unchanged either way.
    checkpoint:
        Optional JSONL path: completed candidate scores are journaled
        and a killed search resumes from them (see
        :mod:`repro.resilience`).
    transport:
        How parallel blocks move to workers — ``"auto"`` (default),
        ``"shm"`` (zero-copy shared memory), or ``"pickle"``; see
        :mod:`repro.sharedmem`.

    Returns
    -------
    Candidates sorted best-first: dominating candidates first, then by
    (wins, total bandwidth, fewer midplanes — smaller machines that do
    the same job rank higher).  The baseline itself is excluded.
    """
    check_positive_int(max_midplanes, "max_midplanes")
    check_positive_int(min_midplanes, "min_midplanes")
    if min_midplanes > max_midplanes:
        raise ValueError(
            f"min_midplanes={min_midplanes} exceeds "
            f"max_midplanes={max_midplanes}"
        )
    if sizes is None:
        from ..allocation.enumeration import achievable_midplane_counts

        sizes = achievable_midplane_counts(baseline)
    base_scores = score_machine(baseline, sizes)

    # Enumerate the candidate shapes up front (deterministic order),
    # then score them — the expensive part — through the sweep executor.
    shapes: list[tuple[int, ...]] = []
    seen: set[tuple[int, ...]] = set()
    for total in range(min_midplanes, max_midplanes + 1):
        for dims in factorizations_into_dims(total, 4):
            if dims in seen:
                continue
            seen.add(dims)
            if dims == baseline.midplane_dims:
                continue
            shapes.append(dims)
    size_key = tuple(sizes)
    with observability.span(
        "experiment.designsearch", candidates=len(shapes)
    ):
        all_scores = sweep_map(
            _score_candidate,
            [(dims, size_key) for dims in shapes],
            jobs=jobs,
            checkpoint=checkpoint,
            transport=transport,
        )

    candidates: list[DesignCandidate] = []
    for dims, scores in zip(shapes, all_scores):
        machine = BlueGeneQMachine(f"candidate-{'x'.join(map(str, dims))}",
                                   dims)
        dominated = all(
            scores[s] >= bw
            for s, bw in base_scores.items()
            if bw > 0 and scores[s] > 0
        ) and any(
            scores[s] > 0 for s, bw in base_scores.items() if bw > 0
        )
        wins = sum(
            1
            for s, bw in base_scores.items()
            if scores[s] > bw > 0
        )
        candidates.append(
            DesignCandidate(
                machine=machine,
                bandwidths=scores,
                dominated_baseline=dominated,
                wins=wins,
            )
        )
    candidates.sort(
        key=lambda c: (
            not c.dominated_baseline,
            -c.wins,
            -c.total_bandwidth,
            c.machine.num_midplanes,
            c.machine.midplane_dims,
        )
    )
    if fluid_check_top > 0:
        fluid_check(candidates[:fluid_check_top])
    return candidates


def fluid_check(candidates: list[DesignCandidate]) -> list[dict]:
    """Cross-check candidates' headline scores via the flow simulator.

    For each candidate, simulates the antipodal pairing on the winning
    partition of its largest allocatable size and compares the
    flow-level bisection to the cut arithmetic; raises
    :class:`RuntimeError` on mismatch.  Returns one record per checked
    candidate — ``{"dims", "size", "static_bw", "fluid_bw"}`` — so the
    golden-fixture tests can pin the exact set of checks (and their
    float values) the stacked rewrite must preserve.
    """
    import math

    from .pairing import fluid_bisection_bandwidth

    records: list[dict] = []
    for cand in candidates:
        checkable = [
            (s, bw) for s, bw in cand.bandwidths.items() if bw > 0
        ]
        if not checkable:
            continue
        size, static_bw = max(checkable)
        geometry = best_geometry_for_machine(cand.machine, size)
        fluid_bw = fluid_bisection_bandwidth(geometry)
        if not math.isclose(fluid_bw, float(static_bw), rel_tol=1e-9):
            raise RuntimeError(
                f"fluid cross-check failed for candidate "
                f"{cand.machine.midplane_dims} at size {size}: "
                f"flow-level bisection {fluid_bw} vs cut arithmetic "
                f"{static_bw}"
            )
        records.append(
            {
                "dims": list(cand.machine.midplane_dims),
                "size": int(size),
                "static_bw": float(static_bw),
                "fluid_bw": float(fluid_bw),
            }
        )
    return records
