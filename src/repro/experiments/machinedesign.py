"""Machine-design comparison — JUQUEEN vs JUQUEEN-48 / JUQUEEN-54.

Section 5 of the paper proposes two hypothetical Blue Gene/Q machines
with *fewer* midplanes than JUQUEEN (7×2×2×2 = 56) but more balanced
dimensions — JUQUEEN-48 (4×3×2×2) and JUQUEEN-54 (3×3×3×2) — and shows
(Table 5, Figure 7) that their best-case partitions match JUQUEEN's at
every common size and strictly beat it at the largest sizes, with
predicted contention speedups up to ×1.5 and ×2 respectively.

Both proposed networks are subgraphs of Mira's 4×4×3×2, so they are
physically constructible — a property :func:`is_constructible_within`
checks in general.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..allocation.enumeration import achievable_midplane_counts
from ..allocation.optimizer import best_geometry_for_machine
from ..machines.bgq import BlueGeneQMachine

__all__ = [
    "MachineDesignRow",
    "compare_machines",
    "is_constructible_within",
    "peak_speedup_over_baseline",
]


@dataclass(frozen=True)
class MachineDesignRow:
    """Best-case bisection bandwidth of each machine at one size.

    ``bandwidths[name]`` is ``None`` when the machine cannot host a
    cuboid of that many midplanes (e.g. 5 midplanes needs a ring of 5,
    which only JUQUEEN's 7-long dimension offers).
    """

    num_midplanes: int
    bandwidths: dict[str, int | None]
    geometries: dict[str, tuple[int, int, int, int] | None]


def compare_machines(
    machines: list[BlueGeneQMachine],
    sizes: list[int] | None = None,
) -> list[MachineDesignRow]:
    """Best-case partition bandwidth of each machine at each size.

    *sizes* defaults to the union of the machines' achievable midplane
    counts (the x-axis of Figure 7).
    """
    if not machines:
        raise ValueError("compare_machines needs at least one machine")
    if sizes is None:
        all_sizes: set[int] = set()
        for m in machines:
            all_sizes.update(achievable_midplane_counts(m))
        sizes = sorted(all_sizes)
    rows: list[MachineDesignRow] = []
    for size in sizes:
        bws: dict[str, int | None] = {}
        geos: dict[str, tuple[int, int, int, int] | None] = {}
        for m in machines:
            try:
                best = best_geometry_for_machine(m, size)
            except ValueError:
                bws[m.name] = None
                geos[m.name] = None
            else:
                bws[m.name] = best.normalized_bisection_bandwidth
                geos[m.name] = best.dims
        rows.append(
            MachineDesignRow(
                num_midplanes=size, bandwidths=bws, geometries=geos
            )
        )
    return rows


def is_constructible_within(
    candidate: BlueGeneQMachine, host: BlueGeneQMachine
) -> bool:
    """Whether *candidate*'s network is a subgraph of *host*'s.

    Sorted componentwise midplane-dimension comparison — the argument the
    paper uses to justify the feasibility of JUQUEEN-48/54 (both fit in
    Mira's network).
    """
    return host.fits(candidate.midplane_dims)


def peak_speedup_over_baseline(
    rows: list[MachineDesignRow], baseline: str, candidate: str
) -> float:
    """Maximum bandwidth ratio candidate/baseline over *common* sizes.

    At sizes both machines can allocate, JUQUEEN-48 reaches ×1.5 over
    JUQUEEN (48 midplanes); JUQUEEN-54's sizes of advantage (9, 18, 27,
    36, 54) have no same-size JUQUEEN counterpart — use
    :func:`peak_speedup_nearest_size` for those.
    """
    # "No common size" is tracked as None, not as a float-zero
    # sentinel: a ratio can legitimately be tiny, and float equality
    # on results is banned (staticcheck float-eq).
    best: float | None = None
    for row in rows:
        b = row.bandwidths.get(baseline)
        c = row.bandwidths.get(candidate)
        if b and c:
            best = c / b if best is None else max(best, c / b)
    if best is None:
        raise ValueError(
            f"no common sizes between {baseline!r} and {candidate!r}"
        )
    return best


def peak_speedup_nearest_size(
    rows: list[MachineDesignRow], baseline: str, candidate: str
) -> float:
    """Maximum candidate/baseline ratio against the baseline's nearest
    same-or-larger size.

    This is the comparison behind the paper's "up to ×2 (JUQUEEN-54) and
    ×1.5 (JUQUEEN-48)" headline: a job that fits a 54-midplane
    JUQUEEN-54 partition (bw 4608) would occupy all 56 midplanes of
    JUQUEEN (bw 2048) — a ×2.25 bandwidth advantage for the smaller
    machine.
    """
    baseline_sizes = sorted(
        (r.num_midplanes, r.bandwidths[baseline])
        for r in rows
        if r.bandwidths.get(baseline)
    )
    if not baseline_sizes:
        raise ValueError(f"baseline {baseline!r} has no allocatable sizes")
    best: float | None = None
    for row in rows:
        c = row.bandwidths.get(candidate)
        if not c:
            continue
        matches = [bw for size, bw in baseline_sizes
                   if size >= row.num_midplanes]
        if not matches:
            continue  # candidate size exceeds the baseline machine
        ratio = c / matches[0]
        best = ratio if best is None else max(best, ratio)
    if best is None:
        raise ValueError(
            f"no comparable sizes between {baseline!r} and {candidate!r}"
        )
    return best
