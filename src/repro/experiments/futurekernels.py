"""Future-work experiment: bisection sensitivity of FFT and N-body.

Section 5 of the paper predicts that kernels with higher asymptotic
contention costs — direct N-body and FFT — show a *larger* share of the
×2 bandwidth improvement in wall-clock than fast matrix multiplication
did (×1.08–×1.22 total).  This harness makes that prediction concrete
on the simulator:

* **FFT** — one global transpose (pairwise all-to-all) of an
  ``n``-point complex dataset, one rank per node;
* **N-body** — one ring-pass force sweep over ``B`` bodies;
* both run on a worse/better geometry pair, with computation modelled
  from flop counts so wall-clock ratios can be compared against CAPS.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import observability
from .._validation import check_positive_float, check_positive_int
from ..allocation.geometry import PartitionGeometry
from ..kernels.costmodel import FLOP_RATE_PER_RANK, LINK_BANDWIDTH_GB_PER_S
from ..kernels.fft import COMPLEX_BYTES, fft_flops, fft_transpose_block_words
from ..netsim.collectives import pairwise_alltoall, ring_pass
from ..netsim.network import LinkNetwork
from ..netsim.schedule import RouteCache, simulate_rounds

__all__ = ["KernelRun", "run_fft_transpose", "run_nbody_sweep"]

_GB = 1024.0**3


@dataclass(frozen=True)
class KernelRun:
    """Simulated run of one kernel on one partition geometry."""

    kernel: str
    geometry: PartitionGeometry
    communication_time: float
    computation_time: float

    @property
    def total_time(self) -> float:
        return self.communication_time + self.computation_time

    @property
    def comm_fraction(self) -> float:
        """Share of wall-clock spent communicating."""
        total = self.total_time
        return self.communication_time / total if total > 0 else 0.0


@observability.profiled("experiment.fft.run")
def run_fft_transpose(
    geometry: PartitionGeometry,
    n: int,
    link_bandwidth: float = LINK_BANDWIDTH_GB_PER_S,
    flop_rate: float = FLOP_RATE_PER_RANK,
    max_sampled_rounds: int = 64,
) -> KernelRun:
    """Simulate one distributed-FFT global transpose on *geometry*.

    One rank per node.  The transpose is the pairwise all-to-all with
    block volume ``n / P²`` complex words; computation is the local FFT
    work ``5 n log2 n / P``.

    The all-to-all has ``P − 1`` shift rounds; for large partitions the
    time is estimated from a uniform sample of *max_sampled_rounds*
    shift offsets scaled to the full count (shift-round times vary
    smoothly with the offset, so the stratified sample converges fast;
    pass ``max_sampled_rounds >= P`` for the exact sum).
    """
    check_positive_int(n, "n")
    check_positive_float(link_bandwidth, "link_bandwidth")
    check_positive_int(max_sampled_rounds, "max_sampled_rounds")
    torus = geometry.bgq_network()
    p = torus.num_vertices
    net = LinkNetwork(torus, link_bandwidth=link_bandwidth)
    cache = RouteCache(net, torus)
    block_gb = fft_transpose_block_words(n, p) * COMPLEX_BYTES / _GB
    all_rounds = pairwise_alltoall(p, block_gb)
    if len(all_rounds) <= max_sampled_rounds:
        comm, _ = simulate_rounds(cache, all_rounds)
    else:
        stride = len(all_rounds) / max_sampled_rounds
        sample = [
            all_rounds[int(i * stride)] for i in range(max_sampled_rounds)
        ]
        sampled_time, _ = simulate_rounds(cache, sample)
        comm = sampled_time * len(all_rounds) / len(sample)
    comp = fft_flops(n) / (p * flop_rate)
    return KernelRun(
        kernel="fft-transpose",
        geometry=geometry,
        communication_time=comm,
        computation_time=comp,
    )


@observability.profiled("experiment.nbody.run")
def run_nbody_sweep(
    geometry: PartitionGeometry,
    num_bodies: int,
    bytes_per_body: int = 32,
    flops_per_interaction: float = 20.0,
    link_bandwidth: float = LINK_BANDWIDTH_GB_PER_S,
    flop_rate: float = FLOP_RATE_PER_RANK,
    ring_order: str = "walk",
    seed: int = 0,
) -> KernelRun:
    """Simulate one direct N-body ring-pass force sweep on *geometry*.

    One rank per node; each holds ``B / P`` bodies (position + mass,
    *bytes_per_body*) and forwards its visiting block around the ring
    for ``P − 1`` rounds while evaluating all pairwise interactions.

    ``ring_order`` selects the task mapping:

    * ``"walk"`` (default) — the ring follows the node walk order, so
      every hop is near-neighbor: the schedule is contention-free and
      *geometry-insensitive*, illustrating that a good task mapping can
      sidestep the bisection entirely (the paper's related-work point);
    * ``"random"`` — a seeded random ring order models a mapping-unaware
      launcher.  Empirically the simulated time is then dominated by
      *random link collisions* (a handful of flows stacking on one
      link), not by the bisection — a hotspot effect that is nearly
      geometry-independent and ~5× slower than the walk ring.  This is
      the flip side of the paper's framing: N-body's high contention
      *floor* (see :mod:`repro.analysis.contention`) is only reached by
      adversarial traffic; a real launcher's random mapping loses to
      hotspots first, which is why the related work on topology-aware
      task mapping and hotspot-avoiding routing matters.
    """
    check_positive_int(num_bodies, "num_bodies")
    check_positive_int(bytes_per_body, "bytes_per_body")
    check_positive_float(flops_per_interaction, "flops_per_interaction")
    if ring_order not in ("walk", "random"):
        raise ValueError(
            f"ring_order must be 'walk' or 'random', got {ring_order!r}"
        )
    torus = geometry.bgq_network()
    p = torus.num_vertices
    net = LinkNetwork(torus, link_bandwidth=link_bandwidth)
    cache = RouteCache(net, torus)
    block_gb = (num_bodies / p) * bytes_per_body / _GB
    if ring_order == "walk":
        # All P-1 ring rounds are the same shift-by-one permutation, so
        # the total is one round's bottleneck time times the count.
        rounds = ring_pass(p, block_gb)
        if rounds:
            one, _ = simulate_rounds(cache, rounds[:1])
            comm = one * len(rounds)
        else:
            comm = 0.0
    else:
        import numpy as np

        from ..netsim.schedule import TransferRound

        rng = np.random.default_rng(seed)
        order = [int(x) for x in rng.permutation(p)]
        succ = tuple(order[(i + 1) % p] for i in range(p))
        rnd = TransferRound(tuple(order), succ, block_gb,
                            label="shuffled ring pass")
        one, _ = simulate_rounds(cache, [rnd])
        comm = one * (p - 1)
    interactions = float(num_bodies) * float(num_bodies)
    comp = interactions * flops_per_interaction / (p * flop_rate)
    return KernelRun(
        kernel="nbody-ring",
        geometry=geometry,
        communication_time=comm,
        computation_time=comp,
    )
