"""Degraded-bisection study: does geometry ranking survive failures?

The paper's Tables 1–2 rank partition geometries by internal bisection
bandwidth on a *healthy* torus.  Real machines run with failed links, so
an allocation policy built on that ranking must answer: does the better
geometry stay better when ``k`` links die?  This study recomputes the
(perpendicular-cut) bisection bandwidth of a machine's default and
optimal geometries under seeded samples of ``k = 1..K`` uniform link
failures and reports how stable the ranking is.

Metric: the surviving bisection of a faulted partition is taken as the
best perpendicular cut of the node-level torus minus the failed links
crossing it — the same family of cuts that realizes the healthy
bisection (Theorem 3.1 tightness), evaluated on the surviving subgraph.
A few random failures almost never open a cheaper non-perpendicular
cut, and restricting to the paper's cut family keeps the healthy
``k = 0`` column exactly equal to Tables 1–2.

Everything is deterministic: trial ``t`` at failure count ``k`` uses
seed ``seed + 1000·k + t`` for both geometries — the *same* failure
draw is applied to each (paired comparison).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .. import observability
from .._validation import check_nonnegative_int, check_positive_int
from ..allocation.geometry import PartitionGeometry
from ..allocation.optimizer import (
    best_geometry_for_machine,
    worst_geometry_for_machine,
)
from ..allocation.policy import PredefinedListPolicy, mira_policy
from ..faults import DegradedResult, FaultSet, random_link_failures
from ..kernels.costmodel import LINK_BANDWIDTH_GB_PER_S
from ..machines.bgq import BlueGeneQMachine
from ..netsim.batchroute import (
    batch_dimension_ordered_routes,
    batch_fault_aware_routes,
    fault_capacity_plane,
)
from ..netsim.fairness import max_min_fair_rates, stacked_max_min_fair_rates
from ..netsim.network import LinkNetwork
from ..netsim.stacked import StackedPathMatrix
from ..parallel import register_block_runner, sweep_map
from ..topology.torus import Torus

__all__ = [
    "DegradedBisectionRow",
    "FaultScenarioRow",
    "surviving_bisection_bandwidth",
    "default_geometry_for_machine",
    "degraded_bisection_study",
    "fluid_fault_sweep",
]


@dataclass(frozen=True)
class DegradedBisectionRow:
    """Robustness of the default-vs-optimal ranking at one failure count.

    Attributes
    ----------
    failures:
        Number of failed (undirected) links per trial, ``k``.
    trials:
        Number of seeded failure draws.
    default_mean_bw / default_min_bw:
        Mean and worst surviving bisection of the default geometry.
    optimal_mean_bw / optimal_min_bw:
        The same for the optimal geometry.
    ranking_stable_fraction:
        Fraction of paired trials where the optimal geometry's surviving
        bisection is still at least the default's.
    """

    failures: int
    trials: int
    default_mean_bw: float
    default_min_bw: float
    optimal_mean_bw: float
    optimal_min_bw: float
    ranking_stable_fraction: float


def surviving_bisection_bandwidth(
    torus: Torus, faults: FaultSet
) -> float:
    """Best perpendicular bisection of *torus* on the surviving links.

    Evaluates every even-length dimension's perpendicular cut with the
    cut's failed links removed (and degraded links scaled), returning
    the weighted minimum.  With an empty fault set this equals
    :meth:`Torus.bisection_width` for unit-weight tori.
    """
    # Each undirected failure/degradation is stored as two directed
    # links; canonicalize so a severed cable is counted once per cut.
    undirected_failed = {
        (u, v) if (u, v) <= (v, u) else (v, u)
        for u, v in faults.failed_links
    }
    drained = faults.failed_nodes
    degraded = {}
    for (u, v), factor in faults.degraded_links.items():
        key = (u, v) if (u, v) <= (v, u) else (v, u)
        degraded[key] = factor

    def crosses(u, v, k: int, half: int) -> bool:
        return u[k] != v[k] and (u[k] < half) != (v[k] < half)

    best: float | None = None
    for k, a in enumerate(torus.dims):
        if a % 2 != 0 or a == 1:
            continue
        half = a // 2
        cut = float(torus.perpendicular_cut(k)) * torus.dim_weights[k]
        for u, v in undirected_failed:
            if crosses(u, v, k, half):
                cut -= torus.dim_weights[k]
        for (u, v), factor in degraded.items():
            if (u, v) not in undirected_failed and crosses(u, v, k, half):
                cut -= torus.dim_weights[k] * (1.0 - factor)
        # A drained node loses all its cut edges in this dimension.
        for n in drained:
            for nb, w in torus.neighbors(n):
                if nb in drained and nb < n:
                    continue  # both ends drained: count the edge once
                if (
                    crosses(n, nb, k, half)
                    and ((n, nb) if (n, nb) <= (nb, n) else (nb, n))
                    not in undirected_failed
                ):
                    cut -= w
        cut = max(cut, 0.0)
        if best is None or cut < best:
            best = cut
    if best is None:
        raise ValueError(
            f"{torus.name} has no even dimension; no perpendicular "
            "bisection exists"
        )
    return best


def default_geometry_for_machine(
    machine: BlueGeneQMachine, num_midplanes: int
) -> PartitionGeometry:
    """The geometry a size-only request gets today on *machine*.

    Mira serves its predefined partition list (Table 6); free-cuboid
    machines (JUQUEEN, Sequoia) may serve the worst permissible cuboid
    — the paper's pessimistic "current" column.
    """
    if machine.name.lower() == "mira":
        policy: PredefinedListPolicy = mira_policy()
        if policy.supports(num_midplanes):
            return policy.geometry_for(num_midplanes)
    return worst_geometry_for_machine(machine, num_midplanes)


# Worker-side memo: partition dims -> (node torus, undirected edges).
# Each worker process rebuilds a geometry's network at most once, no
# matter how many (k, trial) tasks of the grid it executes.
_NET_CACHE: dict[
    tuple[int, ...], tuple[Torus, list[tuple[tuple, tuple]]]
] = {}


def _net_for_dims(dims: tuple[int, ...]) -> tuple[Torus, list]:
    entry = _NET_CACHE.get(dims)
    if entry is None:
        net = PartitionGeometry(dims).network()
        entry = (net, [(u, v) for u, v, _ in net.edges()])
        _NET_CACHE[dims] = entry
    return entry


def _paired_trial(
    task: tuple[tuple[int, ...], tuple[int, ...], int, int],
) -> tuple[float, float]:
    """Surviving bisection of (default, optimal) for one failure draw."""
    default_dims, optimal_dims, k, trial_seed = task
    default_net, default_edges = _net_for_dims(default_dims)
    optimal_net, optimal_edges = _net_for_dims(optimal_dims)
    d_bw = surviving_bisection_bandwidth(
        default_net,
        random_link_failures(
            default_net, k, seed=trial_seed, edges=default_edges
        ),
    )
    o_bw = surviving_bisection_bandwidth(
        optimal_net,
        random_link_failures(
            optimal_net, k, seed=trial_seed, edges=optimal_edges
        ),
    )
    return d_bw, o_bw


@dataclass(frozen=True)
class FaultScenarioRow:
    """One flow-level fault scenario of :func:`fluid_fault_sweep`.

    Attributes
    ----------
    failures:
        Number of failed (undirected) links, ``k``.
    trial:
        Trial index within the failure count.
    seed:
        The scenario's failure-draw seed.
    bandwidth:
        Normalized *surviving* bisection bandwidth measured through the
        flow model (aggregate max-min rate of the still-connected
        antipodal flows over twice the link bandwidth).  Equals the
        healthy fluid bisection at ``k = 0``.
    degraded:
        ``None`` for a fully connected scenario; otherwise the
        :class:`repro.faults.DegradedResult` naming the fault set, a
        severed witness pair, and the disconnected-flow count.  The
        scenario still contributes its surviving bandwidth — a severed
        pair degrades the row, it does not abort the sweep.
    """

    failures: int
    trial: int
    seed: int
    bandwidth: float
    degraded: DegradedResult | None = None


# Worker-side memo for the fluid scenario tasks: geometry dims ->
# (bgq torus, LinkNetwork, undirected edges, antipodal src/dst arrays).
_FLUID_CACHE: dict[tuple, tuple] = {}


def _fluid_net_for(dims: tuple[int, ...], link_bandwidth: float) -> tuple:
    key = (dims, link_bandwidth)
    entry = _FLUID_CACHE.get(key)
    if entry is None:
        torus = PartitionGeometry(dims).bgq_network()
        net = LinkNetwork(torus, link_bandwidth=link_bandwidth)
        edges = [(u, v) for u, v, _ in torus.edges()]
        n = torus.num_vertices
        src = np.arange(n, dtype=np.int64)
        coords = np.stack(np.unravel_index(src, torus.dims), axis=1)
        d = np.asarray(torus.dims, dtype=np.int64)
        anti = (coords + d[None, :] // 2) % d[None, :]
        dst = np.ravel_multi_index(tuple(anti.T), torus.dims).astype(
            np.int64
        )
        entry = (torus, net, edges, src, dst)
        _FLUID_CACHE[key] = entry
    return entry


def _fluid_scenario(
    task: tuple[tuple[int, ...], int, int, int, float, str],
) -> FaultScenarioRow:
    """Flow-level surviving bandwidth of one seeded failure draw."""
    dims, k, trial, trial_seed, link_bandwidth, tie = task
    torus, net, edges, src, dst = _fluid_net_for(dims, link_bandwidth)
    faults = random_link_failures(torus, k, seed=trial_seed, edges=edges)
    pm, disconnected = batch_fault_aware_routes(
        torus, src, dst, faults, tie=tie
    )
    fnet = net.with_faults(faults) if faults else net
    active = None
    if disconnected.size:
        active = np.setdiff1d(
            np.arange(len(pm), dtype=np.int64),
            disconnected,
            assume_unique=True,
        )
    if active is not None and active.size == 0:
        surviving = 0.0
    else:
        rates = max_min_fair_rates(pm, fnet.capacities, active=active)
        surviving = float(rates.sum()) / (2.0 * link_bandwidth)
    degraded = None
    if disconnected.size:
        i = int(disconnected[0])
        verts = list(torus.vertices())
        degraded = DegradedResult(
            scenario=(k, trial),
            faults=faults,
            witness=(verts[int(src[i])], verts[int(dst[i])]),
            disconnected_flows=int(disconnected.size),
        )
    return FaultScenarioRow(
        failures=k,
        trial=trial,
        seed=trial_seed,
        bandwidth=surviving,
        degraded=degraded,
    )


def _fluid_scenario_block(
    tasks: list[tuple[tuple[int, ...], int, int, int, float, str]],
) -> list[FaultScenarioRow]:
    """Stacked form of :func:`_fluid_scenario`: one numpy water-fill.

    Groups the block's scenarios by ``(dims, link_bandwidth, tie)``
    (one group per geometry in practice), routes the healthy antipodal
    pairing once per group, builds each scenario's fault-masked paths
    and capacity plane, stacks them into a
    :class:`~repro.netsim.stacked.StackedPathMatrix`, and solves every
    scenario's max-min rates in a single
    :func:`~repro.netsim.fairness.stacked_max_min_fair_rates` pass.
    Rows are **bit-identical** to ``[_fluid_scenario(t) for t in
    tasks]`` (differential-tested) — the per-scenario sums index the
    compacted active rates so even float summation order matches.
    """
    rows: list[FaultScenarioRow | None] = [None] * len(tasks)
    groups: dict[tuple, list[int]] = {}
    for i, task in enumerate(tasks):
        dims, _k, _trial, _seed, link_bandwidth, tie = task
        groups.setdefault((dims, link_bandwidth, tie), []).append(i)
    for (dims, link_bandwidth, tie), idxs in groups.items():
        torus, net, edges, src, dst = _fluid_net_for(
            dims, link_bandwidth
        )
        healthy = batch_dimension_ordered_routes(torus, src, dst, tie=tie)
        verts = list(torus.vertices())
        scenarios = []
        metas = []
        for i in idxs:
            _, k, trial, trial_seed, _, _ = tasks[i]
            faults = random_link_failures(
                torus, k, seed=trial_seed, edges=edges
            )
            pm, disconnected = batch_fault_aware_routes(
                torus, src, dst, faults, tie=tie, healthy=healthy
            )
            caps = (
                fault_capacity_plane(torus, net.capacities, faults)
                if faults
                else net.capacities
            )
            active = None
            if disconnected.size:
                active = np.setdiff1d(
                    np.arange(len(pm), dtype=np.int64),
                    disconnected,
                    assume_unique=True,
                )
            scenarios.append((pm, caps, active))
            metas.append((i, k, trial, trial_seed, faults,
                          disconnected, active))
        stack = StackedPathMatrix.from_scenarios(scenarios)
        flat_rates = stacked_max_min_fair_rates(stack)
        for s, (i, k, trial, trial_seed, faults, disconnected,
                active) in enumerate(metas):
            rates_s = flat_rates[stack.flow_slice(s)]
            if active is not None and active.size == 0:
                surviving = 0.0
            elif active is not None:
                # Compact before summing: same values in the same
                # order as the scalar path's active-rate vector, so
                # the pairwise float sum is bit-identical.
                surviving = float(rates_s[active].sum()) / (
                    2.0 * link_bandwidth
                )
            else:
                surviving = float(rates_s.sum()) / (2.0 * link_bandwidth)
            degraded = None
            if disconnected.size:
                j = int(disconnected[0])
                degraded = DegradedResult(
                    scenario=(k, trial),
                    faults=faults,
                    witness=(
                        verts[int(src[j])], verts[int(dst[j])]
                    ),
                    disconnected_flows=int(disconnected.size),
                )
            rows[i] = FaultScenarioRow(
                failures=k,
                trial=trial,
                seed=trial_seed,
                bandwidth=surviving,
                degraded=degraded,
            )
    return rows  # type: ignore[return-value]


register_block_runner(
    _fluid_scenario,
    _fluid_scenario_block,
    min_block_tasks=2,
    max_block_tasks=256,
)


def fluid_fault_sweep(
    geometry: PartitionGeometry,
    max_failures: int = 4,
    trials: int = 10,
    seed: int = 0,
    jobs: int | None = 1,
    checkpoint=None,
    link_bandwidth: float = LINK_BANDWIDTH_GB_PER_S,
    tie: str = "parity",
    transport: str | None = None,
) -> list[FaultScenarioRow]:
    """Flow-level fault scenarios on one geometry, degraded not aborted.

    For every ``k = 0..max_failures`` and trial, fails ``k`` seeded
    links of the geometry's node-level torus, routes the full antipodal
    pairing through the fault-masked batch router
    (:func:`repro.netsim.batchroute.batch_fault_aware_routes`), and
    measures the surviving flows' aggregate max-min bandwidth.  A
    scenario whose fault set severs some pair yields a row carrying a
    :class:`repro.faults.DegradedResult` — the sweep never raises
    :class:`~repro.faults.PartitionDisconnectedError`.

    The ``(k, trial)`` grid runs through :func:`repro.parallel.sweep_map`
    with the same pairing of seeds as :func:`degraded_bisection_study`
    (``seed + 1000·k + t``), so rows are bit-identical across ``jobs``;
    *checkpoint* (a JSONL path) enables resumable execution via
    :mod:`repro.resilience`; *transport* selects the worker payload
    path (``"auto"``/``"shm"``/``"pickle"``, see :mod:`repro.sharedmem`).
    """
    check_nonnegative_int(max_failures, "max_failures")
    check_positive_int(trials, "trials")
    counts = [1 if k == 0 else trials for k in range(max_failures + 1)]
    tasks = [
        (geometry.dims, k, t, seed + 1000 * k + t, link_bandwidth, tie)
        for k, n_trials in enumerate(counts)
        for t in range(n_trials)
    ]
    with observability.span(
        "experiment.faultstudy.fluid", scenarios=len(tasks)
    ):
        rows = sweep_map(
            _fluid_scenario, tasks, jobs=jobs, checkpoint=checkpoint,
            transport=transport,
        )
    if observability.OBS.enabled:
        observability.counter_add(
            "faultstudy.degraded_scenarios",
            sum(1 for r in rows if r.degraded is not None),
        )
    return rows


def degraded_bisection_study(
    machine: BlueGeneQMachine,
    num_midplanes: int,
    max_failures: int = 8,
    trials: int = 20,
    seed: int = 0,
    jobs: int | None = 1,
    fluid_check: bool = False,
    checkpoint=None,
    transport: str | None = None,
) -> list[DegradedBisectionRow]:
    """Default-vs-optimal bisection under ``k = 0..max_failures`` failures.

    Returns one row per failure count (including the healthy ``k = 0``
    baseline, whose bandwidths equal the paper's Tables 1–2 values).
    Failure draws are paired: trial ``t`` uses the same seed on both
    geometries, so the stability fraction compares like with like.

    With ``jobs > 1`` the (failure count × trial) grid is evaluated in
    worker processes (:func:`repro.parallel.sweep_map`); each trial's
    seed is fixed by its grid position, so the rows are bit-identical
    to a serial run.

    With ``fluid_check=True`` the pristine ``k = 0`` row is additionally
    verified against the flow-level simulator: the batch-routed
    antipodal pairing's aggregate max-min rate
    (:func:`repro.experiments.pairing.fluid_bisection_bandwidth`) must
    reproduce both geometries' cut-arithmetic bandwidths, else a
    :class:`RuntimeError` is raised.  The rows themselves are unchanged.

    *checkpoint* (a JSONL path) journals completed trials and resumes a
    killed run from them (see :mod:`repro.resilience`); *transport*
    selects the worker payload path (see :mod:`repro.sharedmem`).
    """
    check_positive_int(num_midplanes, "num_midplanes")
    check_nonnegative_int(max_failures, "max_failures")
    check_positive_int(trials, "trials")
    default = default_geometry_for_machine(machine, num_midplanes)
    optimal = best_geometry_for_machine(machine, num_midplanes)

    counts = [1 if k == 0 else trials for k in range(max_failures + 1)]
    tasks = [
        (default.dims, optimal.dims, k, seed + 1000 * k + t)
        for k, n_trials in enumerate(counts)
        for t in range(n_trials)
    ]
    with observability.span(
        "experiment.faultstudy", trials=len(tasks)
    ):
        results = sweep_map(
            _paired_trial, tasks, jobs=jobs, checkpoint=checkpoint,
            transport=transport,
        )

    if fluid_check:
        from .pairing import fluid_bisection_bandwidth

        for label, geometry in (("default", default), ("optimal", optimal)):
            static_bw = surviving_bisection_bandwidth(
                geometry.network(), FaultSet()
            )
            fluid_bw = fluid_bisection_bandwidth(geometry)
            if not math.isclose(fluid_bw, static_bw, rel_tol=1e-9):
                raise RuntimeError(
                    f"fluid cross-check failed for the {label} geometry "
                    f"{geometry.dims}: flow-level bisection {fluid_bw} "
                    f"vs cut arithmetic {static_bw}"
                )

    rows: list[DegradedBisectionRow] = []
    offset = 0
    for k, n_trials in enumerate(counts):
        pairs = results[offset : offset + n_trials]
        offset += n_trials
        d_vals = [d for d, _ in pairs]
        o_vals = [o for _, o in pairs]
        stable = sum(1 for d, o in pairs if o >= d)
        rows.append(
            DegradedBisectionRow(
                failures=k,
                trials=n_trials,
                default_mean_bw=sum(d_vals) / n_trials,
                default_min_bw=min(d_vals),
                optimal_mean_bw=sum(o_vals) / n_trials,
                optimal_min_bw=min(o_vals),
                ranking_stable_fraction=stable / n_trials,
            )
        )
    return rows
