"""Experiment A — the bisection pairing benchmark (Figures 3 and 4).

Reproduces the paper's furthest-node ping-pong: every node exchanges
fixed-size messages with the node at maximal hop distance, all pairs
simultaneously, for a number of rounds.  On the real machines this
saturates the partition bisection; in the reproduction the same traffic
is driven through the max-min fluid simulator, whose bottleneck is the
same set of links.

Paper parameters (Section 4.1): 30 rounds of which 4 are uncounted
warm-up, total volume 2 GB per pair per round sent as 16 chunks of
0.1342 GB, links at 2 GB/s per direction.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from .. import observability
from .._validation import check_positive_float, check_positive_int
from ..allocation.geometry import PartitionGeometry
from ..kernels.costmodel import LINK_BANDWIDTH_GB_PER_S
from ..netsim.fluid import FluidSimulation
from ..netsim.network import LinkNetwork
from ..netsim.routing import dimension_ordered_route
from ..netsim.traffic import bisection_pairing
from ..parallel import sweep_map

__all__ = [
    "PairingParameters",
    "PairingResult",
    "run_pairing",
    "run_pairing_sweep",
]


@dataclass(frozen=True)
class PairingParameters:
    """Knobs of the bisection pairing benchmark (paper defaults).

    Attributes
    ----------
    rounds:
        Counted communication rounds (26 in the paper: 30 minus 4
        warm-up rounds, which are not timed).
    chunks_per_round:
        Message chunks per pair per round (16).
    chunk_gb:
        Chunk size in GB (0.1342).
    link_bandwidth:
        Link capacity, GB/s per direction (2.0).
    tie:
        Routing tie-break for exact-half ring distances (see
        :func:`repro.netsim.routing.dimension_ordered_route`).
    """

    rounds: int = 26
    chunks_per_round: int = 16
    chunk_gb: float = 0.1342
    link_bandwidth: float = LINK_BANDWIDTH_GB_PER_S
    tie: str = "parity"

    def __post_init__(self) -> None:
        check_positive_int(self.rounds, "rounds")
        check_positive_int(self.chunks_per_round, "chunks_per_round")
        check_positive_float(self.chunk_gb, "chunk_gb")
        check_positive_float(self.link_bandwidth, "link_bandwidth")

    @property
    def volume_per_pair_gb(self) -> float:
        """Total counted volume each pair sends in each direction (GB)."""
        return self.rounds * self.chunks_per_round * self.chunk_gb


@dataclass(frozen=True)
class PairingResult:
    """Outcome of one pairing run on one partition geometry.

    Attributes
    ----------
    geometry:
        The partition geometry.
    time_seconds:
        Simulated wall-clock for all pairs to finish all rounds (the
        paper's y-axis in Figures 3/4, "average time required for a pair
        of nodes to complete all rounds" — in the fluid model all pairs
        finish together for symmetric geometries).
    min_rate, max_rate:
        Extremes of the per-flow max-min rates at t=0 (GB/s); equal for
        fully symmetric patterns.
    num_flows:
        Number of simulated flows (= nodes; each node sends one stream).
    """

    geometry: PartitionGeometry
    time_seconds: float
    min_rate: float
    max_rate: float
    num_flows: int

    @property
    def num_midplanes(self) -> int:
        return self.geometry.num_midplanes


@observability.profiled("experiment.pairing.run")
def run_pairing(
    geometry: PartitionGeometry,
    params: PairingParameters | None = None,
) -> PairingResult:
    """Simulate the bisection pairing benchmark on *geometry*.

    Builds the partition's node-level torus, routes every node's stream
    to its antipode with dimension-ordered routing, and runs the fluid
    contention simulation to completion.

    Examples
    --------
    >>> r = run_pairing(PartitionGeometry((2, 2, 1, 1)))
    >>> round(r.time_seconds, 1)
    55.8
    """
    if params is None:
        params = PairingParameters()
    torus = geometry.bgq_network()
    net = LinkNetwork(torus, link_bandwidth=params.link_bandwidth)
    pairs = bisection_pairing(torus)
    paths = [
        net.path_to_links(
            dimension_ordered_route(torus, src, dst, tie=params.tie)
        )
        for src, dst in pairs
    ]
    volume = params.volume_per_pair_gb
    sim = FluidSimulation(net, paths, [volume] * len(paths))
    makespan, results = sim.run()
    rates = [r.initial_rate for r in results]
    if observability.OBS.enabled:
        observability.counter_add("pairing.runs")
        observability.counter_add("pairing.flows", len(paths))
        observability.counter_add("pairing.gb", volume * len(paths))
    return PairingResult(
        geometry=geometry,
        time_seconds=makespan,
        min_rate=min(rates),
        max_rate=max(rates),
        num_flows=len(paths),
    )


def _pairing_task(
    task: tuple[PartitionGeometry, PairingParameters],
) -> PairingResult:
    geometry, params = task
    return run_pairing(geometry, params)


def run_pairing_sweep(
    geometries: Sequence[PartitionGeometry],
    params: PairingParameters | None = None,
    jobs: int | None = 1,
) -> list[PairingResult]:
    """Run the pairing benchmark over many geometries.

    The geometry grid behind Figures 3 and 4 (current vs proposed at
    every size) is embarrassingly parallel: one fluid simulation per
    geometry, no shared state.  With ``jobs > 1`` the simulations run in
    worker processes via :func:`repro.parallel.sweep_map`; results come
    back in *geometries* order and are bit-identical to the serial path.
    """
    if params is None:
        params = PairingParameters()
    with observability.span(
        "experiment.pairing.sweep", geometries=len(geometries)
    ):
        return sweep_map(
            _pairing_task, [(g, params) for g in geometries], jobs=jobs
        )
