"""Experiment A — the bisection pairing benchmark (Figures 3 and 4).

Reproduces the paper's furthest-node ping-pong: every node exchanges
fixed-size messages with the node at maximal hop distance, all pairs
simultaneously, for a number of rounds.  On the real machines this
saturates the partition bisection; in the reproduction the same traffic
is driven through the max-min fluid simulator, whose bottleneck is the
same set of links.

Paper parameters (Section 4.1): 30 rounds of which 4 are uncounted
warm-up, total volume 2 GB per pair per round sent as 16 chunks of
0.1342 GB, links at 2 GB/s per direction.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from .. import observability
from .._validation import check_positive_float, check_positive_int
from ..allocation.geometry import PartitionGeometry
from ..kernels.costmodel import LINK_BANDWIDTH_GB_PER_S
from ..netsim.batchroute import (
    PathMatrix,
    batch_dimension_ordered_routes,
    vector_enabled,
)
from ..netsim.fairness import max_min_fair_rates
from ..netsim.fluid import FluidSimulation, StackedFluidSimulation
from ..netsim.network import LinkNetwork
from ..netsim.routing import dimension_ordered_route
from ..netsim.stacked import StackedPathMatrix
from ..netsim.traffic import bisection_pairing
from ..parallel import register_block_runner, sweep_map
from ..topology.torus import Torus

__all__ = [
    "PairingParameters",
    "PairingResult",
    "pairing_path_matrix",
    "fluid_bisection_bandwidth",
    "run_pairing",
    "run_pairing_sweep",
]


@dataclass(frozen=True)
class PairingParameters:
    """Knobs of the bisection pairing benchmark (paper defaults).

    Attributes
    ----------
    rounds:
        Counted communication rounds (26 in the paper: 30 minus 4
        warm-up rounds, which are not timed).
    chunks_per_round:
        Message chunks per pair per round (16).
    chunk_gb:
        Chunk size in GB (0.1342).
    link_bandwidth:
        Link capacity, GB/s per direction (2.0).
    tie:
        Routing tie-break for exact-half ring distances (see
        :func:`repro.netsim.routing.dimension_ordered_route`).
    """

    rounds: int = 26
    chunks_per_round: int = 16
    chunk_gb: float = 0.1342
    link_bandwidth: float = LINK_BANDWIDTH_GB_PER_S
    tie: str = "parity"

    def __post_init__(self) -> None:
        check_positive_int(self.rounds, "rounds")
        check_positive_int(self.chunks_per_round, "chunks_per_round")
        check_positive_float(self.chunk_gb, "chunk_gb")
        check_positive_float(self.link_bandwidth, "link_bandwidth")

    @property
    def volume_per_pair_gb(self) -> float:
        """Total counted volume each pair sends in each direction (GB)."""
        return self.rounds * self.chunks_per_round * self.chunk_gb


@dataclass(frozen=True)
class PairingResult:
    """Outcome of one pairing run on one partition geometry.

    Attributes
    ----------
    geometry:
        The partition geometry.
    time_seconds:
        Simulated wall-clock for all pairs to finish all rounds (the
        paper's y-axis in Figures 3/4, "average time required for a pair
        of nodes to complete all rounds" — in the fluid model all pairs
        finish together for symmetric geometries).
    min_rate, max_rate:
        Extremes of the per-flow max-min rates at t=0 (GB/s); equal for
        fully symmetric patterns.
    num_flows:
        Number of simulated flows (= nodes; each node sends one stream).
    """

    geometry: PartitionGeometry
    time_seconds: float
    min_rate: float
    max_rate: float
    num_flows: int

    @property
    def num_midplanes(self) -> int:
        return self.geometry.num_midplanes


def pairing_path_matrix(torus: Torus, tie: str = "parity") -> PathMatrix:
    """Batch-routed paths of the full bisection pairing on *torus*.

    Every node to its antipode, dimension-ordered, in
    ``Torus.vertices()`` (row-major) flow order — the CSR equivalent of
    routing :func:`repro.netsim.traffic.bisection_pairing` pair by pair,
    link-for-link identical to the scalar router.
    """
    n = torus.num_vertices
    src = np.arange(n, dtype=np.int64)
    coords = np.stack(np.unravel_index(src, torus.dims), axis=1)
    dims = np.asarray(torus.dims, dtype=np.int64)
    anti = (coords + dims[None, :] // 2) % dims[None, :]
    dst = np.ravel_multi_index(tuple(anti.T), torus.dims).astype(np.int64)
    return batch_dimension_ordered_routes(torus, src, dst, tie=tie)


def _pairing_paths(
    torus: Torus, net: LinkNetwork, tie: str
) -> PathMatrix | list[np.ndarray]:
    """Antipodal-pairing paths: batch-routed, or scalar under
    ``REPRO_VECTOR=0`` (the oracle escape hatch)."""
    if vector_enabled():
        return pairing_path_matrix(torus, tie=tie)
    return [
        net.path_to_links(dimension_ordered_route(torus, src, dst, tie=tie))
        for src, dst in bisection_pairing(torus)
    ]


def fluid_bisection_bandwidth(
    geometry: PartitionGeometry,
    link_bandwidth: float = LINK_BANDWIDTH_GB_PER_S,
    tie: str = "parity",
) -> float:
    """Normalized bisection bandwidth *measured* through the flow model.

    Routes the full antipodal pairing on the geometry's node-level torus
    and solves one max-min allocation; the aggregate rate, divided by
    twice the per-link bandwidth, is the partition's bisection bandwidth
    in link units — directly comparable to the static cut arithmetic of
    :func:`repro.machines.bgq.normalized_bisection_bandwidth`.  Used as
    an optional cross-check by the fault study and design search
    (pristine topology only).
    """
    check_positive_float(link_bandwidth, "link_bandwidth")
    torus = geometry.bgq_network()
    net = LinkNetwork(torus, link_bandwidth=link_bandwidth)
    paths = _pairing_paths(torus, net, tie)
    rates = max_min_fair_rates(paths, net.capacities)
    return float(rates.sum()) / (2.0 * link_bandwidth)


@observability.profiled("experiment.pairing.run")
def run_pairing(
    geometry: PartitionGeometry,
    params: PairingParameters | None = None,
) -> PairingResult:
    """Simulate the bisection pairing benchmark on *geometry*.

    Builds the partition's node-level torus, routes every node's stream
    to its antipode with dimension-ordered routing, and runs the fluid
    contention simulation to completion.

    Examples
    --------
    >>> r = run_pairing(PartitionGeometry((2, 2, 1, 1)))
    >>> round(r.time_seconds, 1)
    55.8
    """
    if params is None:
        params = PairingParameters()
    torus = geometry.bgq_network()
    net = LinkNetwork(torus, link_bandwidth=params.link_bandwidth)
    paths = _pairing_paths(torus, net, params.tie)
    volume = params.volume_per_pair_gb
    sim = FluidSimulation(net, paths, [volume] * len(paths))
    makespan, _, rates = sim.solve()
    if observability.OBS.enabled:
        observability.counter_add("pairing.runs")
        observability.counter_add("pairing.flows", len(paths))
        observability.counter_add("pairing.gb", volume * len(paths))
    return PairingResult(
        geometry=geometry,
        time_seconds=makespan,
        min_rate=float(rates.min()),
        max_rate=float(rates.max()),
        num_flows=len(paths),
    )


def _pairing_task(
    task: tuple[PartitionGeometry, PairingParameters],
) -> PairingResult:
    geometry, params = task
    return run_pairing(geometry, params)


def _pairing_block(
    tasks: list[tuple[PartitionGeometry, PairingParameters]],
) -> list[PairingResult]:
    """Stacked form of :func:`_pairing_task`: one fluid loop for the
    whole block of geometries.

    Each geometry's antipodal pairing becomes one scenario of a
    :class:`~repro.netsim.stacked.StackedPathMatrix`; a single
    :class:`~repro.netsim.fluid.StackedFluidSimulation` then advances
    all of them together.  Results are bit-identical to running
    :func:`run_pairing` per geometry (differential-tested).
    """
    scenarios = []
    volumes = []
    for geometry, params in tasks:
        torus = geometry.bgq_network()
        net = LinkNetwork(torus, link_bandwidth=params.link_bandwidth)
        pm = pairing_path_matrix(torus, tie=params.tie)
        scenarios.append((pm, net.capacities, None))
        volumes.append(
            np.full(len(pm), params.volume_per_pair_gb, dtype=float)
        )
    stack = StackedPathMatrix.from_scenarios(scenarios)
    flat_volumes = np.concatenate(volumes)
    sim = StackedFluidSimulation(stack, flat_volumes)
    makespans, _completions, initial_rates = sim.solve()
    results = []
    for s, (geometry, params) in enumerate(tasks):
        rates = initial_rates[stack.flow_slice(s)]
        results.append(
            PairingResult(
                geometry=geometry,
                time_seconds=float(makespans[s]),
                min_rate=float(rates.min()),
                max_rate=float(rates.max()),
                num_flows=int(stack.flow_base[s + 1] - stack.flow_base[s]),
            )
        )
    if observability.OBS.enabled:
        observability.counter_add("pairing.runs", len(tasks))
        observability.counter_add("pairing.flows", stack.num_flows)
        observability.counter_add(
            "pairing.gb", float(flat_volumes.sum())
        )
    return results


register_block_runner(
    _pairing_task,
    _pairing_block,
    min_block_tasks=2,
    max_block_tasks=64,
)


def run_pairing_sweep(
    geometries: Sequence[PartitionGeometry],
    params: PairingParameters | None = None,
    jobs: int | None = 1,
    checkpoint=None,
    transport: str | None = None,
) -> list[PairingResult]:
    """Run the pairing benchmark over many geometries.

    The geometry grid behind Figures 3 and 4 (current vs proposed at
    every size) is embarrassingly parallel: one fluid simulation per
    geometry, no shared state.  With ``jobs > 1`` the simulations run in
    worker processes via :func:`repro.parallel.sweep_map`; results come
    back in *geometries* order and are bit-identical to the serial path.
    *checkpoint* (a JSONL path) journals completed geometries and
    resumes a killed sweep from them (see :mod:`repro.resilience`).
    *transport* selects how parallel blocks move to workers
    (``"auto"``/``"shm"``/``"pickle"``, see :mod:`repro.sharedmem`).
    """
    if params is None:
        params = PairingParameters()
    with observability.span(
        "experiment.pairing.sweep", geometries=len(geometries)
    ):
        return sweep_map(
            _pairing_task,
            [(g, params) for g in geometries],
            jobs=jobs,
            checkpoint=checkpoint,
            transport=transport,
        )
