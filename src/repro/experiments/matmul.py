"""Experiment B — CAPS fast matrix multiplication (Table 3, Figure 5).

Drives the CAPS communication schedule (:mod:`repro.kernels.caps`)
through the network simulator on a given partition geometry:

1. ranks are placed on nodes with the block embedding (Table 3's
   multi-core rank counts);
2. for every BFS step, the rank exchange pairs are aggregated into a
   node-to-node traffic matrix (intra-node pairs drop out);
3. each node pair's volume is routed dimension-ordered and the step's
   time is the bottleneck link load over capacity;
4. step times add up (CAPS steps are globally synchronized), yielding
   the communication time; computation time comes from the calibrated
   flop rate and is geometry-independent.

The aggregation is vectorized: peers at a step differ by a fixed rank
stride within contiguous groups, so the full pair list is a handful of
NumPy expressions even for the 117 649-rank runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import observability
from .._validation import check_positive_float, check_positive_int
from ..allocation.geometry import PartitionGeometry
from ..kernels.caps import CapsConfig, caps_computation_time, caps_steps
from ..kernels.costmodel import LINK_BANDWIDTH_GB_PER_S
from ..netsim.embedding import block_embedding
from ..netsim.network import LinkNetwork
from ..netsim.routing import dimension_ordered_route

__all__ = ["MatmulResult", "run_caps_on_geometry", "step_traffic_matrix"]

_GB = 1024.0**3


@dataclass(frozen=True)
class MatmulResult:
    """Outcome of one simulated CAPS run.

    Attributes
    ----------
    geometry:
        Partition geometry the run used.
    num_ranks:
        MPI ranks (Table 3).
    matrix_dim:
        Matrix dimension ``n``.
    communication_time:
        Simulated network time (s) summed over BFS steps — the paper's
        Figure 5 quantity.
    computation_time:
        Local multiply time (s) from the calibrated flop rate —
        geometry-independent, as the paper observes.
    step_times:
        Per-BFS-step communication times (s), outermost first.
    """

    geometry: PartitionGeometry
    num_ranks: int
    matrix_dim: int
    communication_time: float
    computation_time: float
    step_times: tuple[float, ...]

    @property
    def total_time(self) -> float:
        """Wall-clock: computation + (non-overlapped) communication."""
        return self.communication_time + self.computation_time


def step_traffic_matrix(
    num_ranks: int,
    stride: int,
    group_size: int,
    node_of_rank: np.ndarray,
    round_offset: int | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Aggregate one BFS step's rank pairs into node-to-node traffic.

    With ``round_offset=j`` (1 <= j < group_size), only the *j*-th
    exchange round is generated: every rank sends to the partner ``j``
    subgroups ahead (cyclically) — the pairwise-exchange schedule of the
    CAPS implementation.  With ``round_offset=None`` all ``g - 1``
    partners are superposed (a fully-overlapped schedule).

    Returns ``(src_nodes, dst_nodes, pair_counts)``: the distinct
    inter-node pairs and how many rank pairs map to each.  Vectorized
    over all pairs.
    """
    check_positive_int(num_ranks, "num_ranks")
    check_positive_int(stride, "stride")
    check_positive_int(group_size, "group_size")
    r = np.arange(num_ranks, dtype=np.int64)
    block = group_size * stride
    base = (r // block) * block
    offset = r % stride
    mine = (r - base) // stride
    srcs: list[np.ndarray] = []
    dsts: list[np.ndarray] = []
    if round_offset is None:
        rounds = range(1, group_size)
    else:
        if not 1 <= round_offset < group_size:
            raise ValueError(
                f"round_offset must be in [1, {group_size - 1}], got "
                f"{round_offset}"
            )
        rounds = range(round_offset, round_offset + 1)
    for j in rounds:
        target = (mine + j) % group_size
        peer = base + target * stride + offset
        srcs.append(node_of_rank[r])
        dsts.append(node_of_rank[peer])
    src = np.concatenate(srcs)
    dst = np.concatenate(dsts)
    inter = src != dst
    src = src[inter]
    dst = dst[inter]
    if len(src) == 0:
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )
    n_nodes = int(node_of_rank.max()) + 1
    key = src * n_nodes + dst
    uniq, counts = np.unique(key, return_counts=True)
    return uniq // n_nodes, uniq % n_nodes, counts


@observability.profiled("experiment.caps.run")
def run_caps_on_geometry(
    geometry: PartitionGeometry,
    num_ranks: int,
    matrix_dim: int,
    max_cores: int | None = None,
    link_bandwidth: float = LINK_BANDWIDTH_GB_PER_S,
    comm_slowdown: float = 1.0,
    schedule: str = "rounds",
    digit_order: str = "deep-major",
    node_order: str = "tedcba",
) -> MatmulResult:
    """Simulate one CAPS execution on a partition geometry.

    Parameters
    ----------
    geometry:
        Partition geometry (midplanes).
    num_ranks:
        Total MPI ranks, ``f · 7^k`` (Table 3 values).
    matrix_dim:
        Matrix dimension ``n``.
    max_cores:
        Active-core cap per node (Table 3's "Max. active cores"); the
        block embedding refuses rank counts that would exceed it.
    link_bandwidth:
        GB/s per link direction.
    comm_slowdown:
        Multiplier on communication time (used by the strong-scaling
        experiment to model the L2-spill effect on 2 midplanes).
    schedule:
        ``"rounds"`` (default) executes each BFS step as ``g - 1``
        sequential pairwise exchange rounds, like the reference
        implementation; ``"superposition"`` overlaps all partners of a
        step (idealized fully-pipelined exchange).  The rounds schedule
        concentrates each round's traffic into a shift permutation and
        is the one that reproduces the paper's geometry sensitivity.
    digit_order:
        Rank-digit layout of the recursion tree (see
        :func:`repro.kernels.caps.caps_steps`).
    node_order:
        Node walk order of the block embedding: ``"tedcba"`` (default
        here — longest dimension varies fastest) or ``"abcdet"`` (the
        launcher default — shortest dimension varies fastest).  The two
        bracket the paper's measured geometry sensitivity; the paper's
        multi-core runs used a custom mapping chosen "to minimize the
        imbalance", and "tedcba" is the one that reproduces the paper's
        reported ×1.37–×1.52 communication ratios.  See EXPERIMENTS.md.

    Examples
    --------
    >>> res = run_caps_on_geometry(
    ...     PartitionGeometry((2, 1, 1, 1)), num_ranks=343, matrix_dim=2744)
    >>> res.computation_time > 0 and res.communication_time > 0
    True
    """
    check_positive_int(num_ranks, "num_ranks")
    check_positive_int(matrix_dim, "matrix_dim")
    check_positive_float(link_bandwidth, "link_bandwidth")
    check_positive_float(comm_slowdown, "comm_slowdown")
    if schedule not in ("rounds", "superposition"):
        raise ValueError(
            f"schedule must be 'rounds' or 'superposition', got {schedule!r}"
        )

    torus = geometry.bgq_network()
    net = LinkNetwork(torus, link_bandwidth=link_bandwidth)
    emb = block_embedding(
        torus, num_ranks, max_ranks_per_node=max_cores,
        node_order=node_order,
    )
    node_of_rank = emb.node_indices
    verts = list(torus.vertices())

    config = CapsConfig(
        n=matrix_dim, num_ranks=num_ranks, digit_order=digit_order
    )
    path_cache: dict[tuple[int, int], np.ndarray] = {}

    def bottleneck(
        src_n: np.ndarray, dst_n: np.ndarray, counts: np.ndarray,
        gb_per_pair: float,
    ) -> float:
        load = np.zeros(net.num_links, dtype=float)
        for s, d, c in zip(src_n, dst_n, counts):
            key = (int(s), int(d))
            path = path_cache.get(key)
            if path is None:
                path = net.path_to_links(
                    dimension_ordered_route(
                        torus, verts[key[0]], verts[key[1]]
                    )
                )
                path_cache[key] = path
            if len(path):
                load[path] += float(c) * gb_per_pair
        if not load.any():
            return 0.0
        return float((load / net.capacities).max())

    step_times: list[float] = []
    for step in caps_steps(config):
        gb_per_pair = step.bytes_per_rank / (step.group_size - 1) / _GB
        if schedule == "superposition":
            src_n, dst_n, counts = step_traffic_matrix(
                num_ranks, step.stride, step.group_size, node_of_rank
            )
            step_times.append(bottleneck(src_n, dst_n, counts, gb_per_pair))
        else:
            total = 0.0
            for j in range(1, step.group_size):
                src_n, dst_n, counts = step_traffic_matrix(
                    num_ranks, step.stride, step.group_size, node_of_rank,
                    round_offset=j,
                )
                total += bottleneck(src_n, dst_n, counts, gb_per_pair)
            step_times.append(total)
    comm = sum(step_times) * comm_slowdown
    comp = caps_computation_time(config)
    return MatmulResult(
        geometry=geometry,
        num_ranks=num_ranks,
        matrix_dim=matrix_dim,
        communication_time=comm,
        computation_time=comp,
        step_times=tuple(t * comm_slowdown for t in step_times),
    )
