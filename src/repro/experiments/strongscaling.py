"""Experiment C — the strong-scaling illusion (Table 4, Figure 6).

The paper's point: when a scheduler may serve either optimal or
sub-optimal geometries for the same size, the *apparent* strong-scaling
curve of an algorithm depends on which geometries the runs happened to
get — communication may scale linearly on proposed geometries but
sub-linearly on current ones, falsely suggesting the algorithm stops
scaling.

Setup (Table 4): CAPS with matrix dimension 9408 on 2, 4 and 8 midplanes
(2401, 4802 and 9604 ranks, ≤ 4 cores per node).  The 2-midplane cuboid
is unique (``2 × 1 × 1 × 1``), giving the two curves a common starting
point.  The paper additionally observes a *super-linear* drop from 2 to
4 midplanes and attributes it to the CAPS working set
(18.55 GB × ≈2 for buffers) exceeding the 32 GB aggregate L2 of 2
midplanes; :func:`repro.kernels.costmodel.l2_spill_penalty` reproduces
that as a communication slowdown on the spilling runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import observability
from .._validation import check_positive_int
from ..allocation.geometry import PartitionGeometry
from ..kernels.caps import split_rank_count
from ..kernels.costmodel import l2_spill_penalty
from .matmul import MatmulResult, run_caps_on_geometry

__all__ = [
    "ScalingPoint",
    "StrongScalingResult",
    "STRONG_SCALING_TABLE4",
    "run_strong_scaling",
]

#: Table 4 of the paper: (midplanes, ranks, max cores, current geometry,
#: proposed geometry).  The 2-midplane row admits only one geometry.
STRONG_SCALING_TABLE4: list[tuple[int, int, int, tuple, tuple]] = [
    (2, 2401, 4, (2, 1, 1, 1), (2, 1, 1, 1)),
    (4, 4802, 4, (4, 1, 1, 1), (2, 2, 1, 1)),
    (8, 9604, 4, (4, 2, 1, 1), (2, 2, 2, 1)),
]

#: Table 4's matrix dimension.
STRONG_SCALING_MATRIX_DIM = 9408


@dataclass(frozen=True)
class ScalingPoint:
    """One point of a strong-scaling curve.

    Attributes
    ----------
    num_midplanes:
        Partition size.
    result:
        The underlying simulated CAPS run.
    spill_penalty:
        The L2-spill communication slowdown applied (1.0 = working set
        fits in aggregate L2).
    """

    num_midplanes: int
    result: MatmulResult
    spill_penalty: float

    @property
    def communication_time(self) -> float:
        return self.result.communication_time

    @property
    def computation_time(self) -> float:
        return self.result.computation_time


@dataclass(frozen=True)
class StrongScalingResult:
    """Both strong-scaling curves (current and proposed geometries)."""

    matrix_dim: int
    current: tuple[ScalingPoint, ...]
    proposed: tuple[ScalingPoint, ...]

    def speedup(self, curve: str = "proposed") -> float:
        """Communication speedup from the smallest to the largest point."""
        pts = self.proposed if curve == "proposed" else self.current
        return pts[0].communication_time / pts[-1].communication_time


@observability.profiled("experiment.strongscaling.run")
def run_strong_scaling(
    matrix_dim: int = STRONG_SCALING_MATRIX_DIM,
    table: list[tuple[int, int, int, tuple, tuple]] | None = None,
    apply_cache_model: bool = True,
    **caps_kwargs,
) -> StrongScalingResult:
    """Simulate the strong-scaling experiment of Section 4.3.

    Parameters
    ----------
    matrix_dim:
        Matrix dimension (9408 in the paper).
    table:
        Rows ``(midplanes, ranks, max_cores, current_dims,
        proposed_dims)``; defaults to Table 4.
    apply_cache_model:
        Whether to apply the L2-spill communication penalty (the paper's
        explanation for the super-linear 2→4 drop).
    caps_kwargs:
        Extra arguments forwarded to
        :func:`repro.experiments.matmul.run_caps_on_geometry`
        (``schedule``, ``digit_order``, ``link_bandwidth``...).
    """
    check_positive_int(matrix_dim, "matrix_dim")
    if table is None:
        table = STRONG_SCALING_TABLE4
    current: list[ScalingPoint] = []
    proposed: list[ScalingPoint] = []
    for midplanes, ranks, cores, cur_dims, prop_dims in table:
        _, k = split_rank_count(ranks)
        for dims, sink in ((cur_dims, current), (prop_dims, proposed)):
            geo = PartitionGeometry(dims)
            penalty = (
                l2_spill_penalty(matrix_dim, k, geo.num_nodes)
                if apply_cache_model
                else 1.0
            )
            res = run_caps_on_geometry(
                geo,
                num_ranks=ranks,
                matrix_dim=matrix_dim,
                max_cores=cores,
                comm_slowdown=penalty,
                **caps_kwargs,
            )
            sink.append(
                ScalingPoint(
                    num_midplanes=midplanes,
                    result=res,
                    spill_penalty=penalty,
                )
            )
    return StrongScalingResult(
        matrix_dim=matrix_dim,
        current=tuple(current),
        proposed=tuple(proposed),
    )
