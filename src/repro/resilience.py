"""Fault-tolerant sweep execution: retries, timeouts, checkpoint/resume.

:func:`repro.parallel.sweep_map` treats every task failure as fatal:
one hung worker, one ``BrokenProcessPool``, or one crashing task aborts
the whole sweep and discards every completed result.  That is the right
default for unit-sized grids, but the fault-study and design-search
sweeps run hundreds of scenarios for hours — the execution layer must
survive partial failure the way the simulated network survives link
failures.  This module provides that layer:

* **bounded retries** with exponential backoff — a task that raises is
  re-executed up to ``max_retries`` times with its *original* arguments
  (per-task seeds travel inside the task tuple, so a retry is
  deterministically re-seeded, never re-randomized);
* **per-task wall-clock timeouts** — a task that exceeds
  ``task_timeout`` seconds is treated like a failed attempt and the
  pool is rebuilt (the stuck worker cannot be reclaimed);
* **worker-crash detection** — a ``BrokenProcessPool`` rebuilds the
  pool and resubmits every unfinished task, up to
  ``max_pool_rebuilds`` times, after which the sweep degrades to
  serial in-process execution with a warning;
* **poison-task quarantine** — with ``quarantine=True`` a task that
  exhausts its retries is recorded as a structured :class:`TaskFailure`
  result at its slot instead of raising, so one poison scenario cannot
  sink the other N-1;
* **checkpoint/resume** — completed ``(task_key, result)`` records are
  appended to a JSONL file as they finish; a restarted sweep skips
  every task whose key hash is already on disk and recomputes the rest,
  producing results bit-identical to an uninterrupted run.

Determinism is preserved throughout: results are assembled in task
order, retries re-run identical arguments, and resumed tasks are
verified by a SHA-256 hash of their pickled task tuple — a checkpoint
from a *different* grid simply misses and recomputes.

All activity is surfaced through :mod:`repro.observability` counters
(``resilience.retries``, ``resilience.timeouts``,
``resilience.quarantined``, ``resilience.pool_rebuilds``,
``resilience.resumed_tasks``, ``resilience.fallback_serial``) and the
``resilience.sweep`` span.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
import time
import warnings
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, TypeVar

from . import env, observability
from ._validation import check_nonnegative_int

__all__ = [
    "ResiliencePolicy",
    "TaskFailure",
    "SweepCheckpoint",
    "resilient_sweep_map",
    "task_key",
]

_T = TypeVar("_T")

#: Test hook: set to a task index to make the wrapped task call
#: ``os._exit`` *before* executing — a deterministic stand-in for a
#: worker SIGKILL.  In the pool path this kills one worker (exercising
#: ``BrokenProcessPool`` recovery); in the serial path it kills the
#: driver process itself (exercising checkpoint/resume).  With
#: ``REPRO_RESILIENCE_TEST_KILL_MARKER`` set to a file path the kill
#: fires only while the marker file does not exist (it is created just
#: before exiting), so a rebuilt pool or resumed run proceeds normally.
_KILL_ENV = "REPRO_RESILIENCE_TEST_KILL"
_KILL_MARKER_ENV = "REPRO_RESILIENCE_TEST_KILL_MARKER"

#: Exit code used by the kill hook, distinctive in CI logs.
TEST_KILL_EXIT_CODE = 43


@dataclass(frozen=True)
class ResiliencePolicy:
    """Knobs for :func:`resilient_sweep_map`.

    Attributes
    ----------
    max_retries:
        Additional attempts after the first failure of a task.  ``0``
        disables retries (a failing task immediately quarantines or
        raises).
    task_timeout:
        Per-task wall-clock budget in seconds, measured from when the
        parent starts waiting on that task's result.  ``None`` disables
        timeouts.  A timeout counts as a failed attempt *and* forces a
        pool rebuild — a stuck worker cannot be interrupted any other
        way.
    backoff_base:
        First retry delay in seconds; attempt *k* sleeps
        ``backoff_base * 2**(k-1)``, capped at ``backoff_max``.
    backoff_max:
        Upper bound on any single backoff sleep.
    quarantine:
        When true, a task that exhausts its retries yields a
        :class:`TaskFailure` at its result slot instead of raising.
        When false (the default), the sweep raises the task's last
        exception — matching plain ``sweep_map`` semantics.
    max_pool_rebuilds:
        How many times a broken/stuck pool is rebuilt before the sweep
        degrades to serial execution for the remaining tasks.
    """

    max_retries: int = 2
    task_timeout: float | None = None
    backoff_base: float = 0.05
    backoff_max: float = 2.0
    quarantine: bool = False
    max_pool_rebuilds: int = 3

    def __post_init__(self) -> None:
        check_nonnegative_int(self.max_retries, "max_retries")
        check_nonnegative_int(self.max_pool_rebuilds, "max_pool_rebuilds")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError(
                f"task_timeout must be positive or None, got "
                f"{self.task_timeout!r}"
            )
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff delays must be non-negative")

    def backoff(self, attempt: int) -> float:
        """Sleep before retry *attempt* (1-based)."""
        return min(self.backoff_max, self.backoff_base * 2 ** (attempt - 1))


@dataclass(frozen=True)
class TaskFailure:
    """Structured record of a quarantined (poison) task.

    Appears at the failed task's slot in the result list, so downstream
    code can count/report failures without losing positional alignment
    with the task grid.  ``error_type`` is the exception class name
    (``"TimeoutError"`` for per-task timeouts), ``attempts`` the total
    number of executions tried.
    """

    index: int
    task: str
    error_type: str
    error: str
    attempts: int

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return (
            f"TaskFailure(#{self.index} {self.task}: "
            f"{self.error_type}: {self.error} after {self.attempts} "
            f"attempt(s))"
        )


def task_key(task: Any) -> str:
    """Stable content hash of a task tuple (checkpoint record key).

    SHA-256 over the pickle of the task.  Pickle output is a pure
    function of the task's structure for the plain tuples/dataclasses
    the experiment drivers use, so the same grid reproduces the same
    keys across processes and sessions.
    """
    return hashlib.sha256(
        pickle.dumps(task, protocol=4)
    ).hexdigest()


def _fn_name(fn: Callable[..., Any]) -> str:
    mod = getattr(fn, "__module__", "?")
    qual = getattr(fn, "__qualname__", repr(fn))
    return f"{mod}.{qual}"


class SweepCheckpoint:
    """Append-only JSONL journal of completed sweep tasks.

    Line 1 is a header ``{"type": "header", "version": 1, "fn": ...,
    "tasks": N}``; every subsequent line is ``{"type": "task", "key":
    sha256-hex, "index": i, "result": base64-pickle}``.  Records are
    flushed as they are written, so a killed run loses at most the line
    being written; a truncated or corrupt trailing line is ignored on
    load.  Failures are never checkpointed — a resumed run retries
    them.

    Resume is *best-effort but always correct*: tasks are matched by
    content hash, so a checkpoint written for a different grid (or a
    stale file) simply misses and the task is recomputed.  A checkpoint
    written by a *different task function* is rejected outright — same
    grid keys with a different ``fn`` would silently return the wrong
    results.
    """

    VERSION = 1

    def __init__(self, path: str | os.PathLike[str]):
        self.path = Path(path)
        self._handle: Any = None
        self._header_written = False

    # -- loading ----------------------------------------------------

    def load(self, fn_name: str) -> dict[str, Any]:
        """Completed ``{key: result}`` records, validating *fn_name*.

        Task records are accepted only **after** a valid header naming
        *fn_name* has been seen.  A torn or corrupt header must not
        degrade into "no validation": without this gate, a journal
        whose first line was mangled mid-write would silently resume
        records written by a *different task function* whenever the
        task keys happened to collide.  Headerless records are skipped
        (recompute is always correct) with a warning.
        """
        completed: dict[str, Any] = {}
        if not self.path.exists():
            return completed
        header_ok = False
        skipped_headerless = 0
        with self.path.open("r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError:
                    # Torn write from a killed run: ignore the line.
                    continue
                if rec.get("type") == "header":
                    got = rec.get("fn")
                    if got != fn_name:
                        raise ValueError(
                            f"checkpoint {self.path} was written for "
                            f"task function {got!r}, not {fn_name!r}; "
                            f"refusing to resume (delete the file or "
                            f"pass a different --checkpoint path)"
                        )
                    header_ok = True
                    continue
                if rec.get("type") != "task":
                    continue
                if not header_ok:
                    skipped_headerless += 1
                    continue
                try:
                    result = pickle.loads(
                        base64.b64decode(rec["result"])
                    )
                except Exception:
                    # Corrupt record: recompute that task.
                    continue
                completed[rec["key"]] = result
        if skipped_headerless:
            warnings.warn(
                f"checkpoint {self.path} has {skipped_headerless} task "
                f"record(s) before any valid header; they cannot be "
                f"attributed to a task function and will be recomputed",
                RuntimeWarning,
                stacklevel=2,
            )
        return completed

    def _has_valid_header(self) -> bool:
        """Whether any line of the file parses as a header record."""
        try:
            with self.path.open("r", encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        rec = json.loads(line)
                    except json.JSONDecodeError:
                        continue
                    if rec.get("type") == "header":
                        return True
        except OSError:
            return False
        return False

    # -- writing ----------------------------------------------------

    def open_for_append(self, fn_name: str, num_tasks: int) -> None:
        # A fresh header is also written when the existing file lacks a
        # valid one (torn first line): the old headerless records stay
        # dead — load() refuses them — but everything journaled from
        # here on resumes normally, so one torn header costs one
        # recompute, not the checkpoint file.
        needs_header = (
            not self.path.exists()
            or self.path.stat().st_size == 0
            or not self._has_valid_header()
        )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("a", encoding="utf-8")
        if needs_header:
            self._write(
                {
                    "type": "header",
                    "version": self.VERSION,
                    "fn": fn_name,
                    "tasks": num_tasks,
                }
            )

    def record(self, key: str, index: int, result: Any) -> None:
        if self._handle is None:
            return
        payload = base64.b64encode(
            pickle.dumps(result, protocol=4)
        ).decode("ascii")
        self._write(
            {"type": "task", "key": key, "index": index,
             "result": payload}
        )

    def _write(self, rec: dict[str, Any]) -> None:
        self._handle.write(json.dumps(rec, separators=(",", ":")) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


# ----------------------------------------------------------------------
# Worker-side task wrapper


def _maybe_test_kill(index: int) -> None:
    """Deterministic crash injection (see ``_KILL_ENV``)."""
    raw = env.get_raw(_KILL_ENV)
    if raw is None:
        return
    try:
        target = int(raw)
    except ValueError:
        return
    if index != target:
        return
    marker = env.get_raw(_KILL_MARKER_ENV)
    if marker:
        if os.path.exists(marker):
            return  # already killed once; behave normally now
        with open(marker, "w", encoding="utf-8") as fh:
            fh.write(str(index))
    os._exit(TEST_KILL_EXIT_CODE)


class _ResilientTask:
    """Picklable per-submit wrapper: kill hook + metric snapshot."""

    __slots__ = ("_fn",)

    def __init__(self, fn: Callable[[_T], Any]):
        self._fn = fn

    def __call__(
        self, index: int, task: _T
    ) -> tuple[Any, observability.TraceSnapshot]:
        _maybe_test_kill(index)
        return self._fn(task), observability.worker_snapshot()


class _ResilientBlock:
    """Picklable block wrapper: kill hook per contained scenario.

    The kill hook fires for *every* index the block contains, so a
    chaos test targeting scenario ``i`` kills the worker (or, serially,
    the driver) no matter how the sweep was blocked — exactly the
    mid-block death the checkpoint/resume tests simulate.

    The chunk may arrive as a :class:`repro.sharedmem.ShmPayload`
    (shared-memory transport): it is decoded to zero-copy views *after*
    the kill hook, so an injected death leaves the payload untouched —
    the parent unlinks that dispatch generation's segments during the
    pool rebuild.  With ``shm_results=True`` large result buffers
    travel back through worker-owned segments (the parent materializes
    owned copies before journaling: checkpoints record contents, never
    segment names).
    """

    __slots__ = ("_block_fn", "_shm_results")

    def __init__(
        self,
        block_fn: Callable[[Sequence[_T]], Sequence[Any]],
        shm_results: bool = False,
    ):
        self._block_fn = block_fn
        self._shm_results = shm_results

    def __call__(
        self, indices: Sequence[int], chunk: Any
    ) -> tuple[Any, observability.TraceSnapshot]:
        from . import sharedmem

        for i in indices:
            _maybe_test_kill(i)
        chunk = sharedmem.shm_loads(chunk)
        with observability.span("parallel.block", tasks=len(chunk)):
            values = list(self._block_fn(chunk))
        out: Any = values
        if self._shm_results:
            out = sharedmem.maybe_shm_dumps(values)
        return out, observability.worker_snapshot()


# ----------------------------------------------------------------------
# Execution paths


class _PoolRestart(Exception):
    """Internal: unwind to the pool-rebuild loop."""

    def __init__(self, reason: str):
        self.reason = reason


@dataclass
class _SweepState:
    """Mutable bookkeeping shared by the pool and serial paths."""

    fn: Callable[[Any], Any]
    tasks: Sequence[Any]
    results: list[Any]
    policy: ResiliencePolicy
    ckpt: SweepCheckpoint | None
    keys: Sequence[str] | None
    attempts: dict[int, int] = field(default_factory=dict)
    retries: int = 0
    timeouts: int = 0
    quarantined: int = 0
    pool_rebuilds: int = 0

    def pending(self) -> list[int]:
        return [
            i for i, r in enumerate(self.results) if r is _PENDING
        ]

    def complete(self, index: int, value: Any) -> None:
        self.results[index] = value
        if self.ckpt is not None and self.keys is not None:
            self.ckpt.record(self.keys[index], index, value)

    def fail(self, index: int, exc: BaseException) -> None:
        """A task exhausted its retries: quarantine or raise."""
        if not self.policy.quarantine:
            raise exc
        self.quarantined += 1
        observability.counter_add("resilience.quarantined")
        self.results[index] = TaskFailure(
            index=index,
            task=_short_repr(self.tasks[index]),
            error_type=type(exc).__name__,
            error=str(exc),
            attempts=self.attempts.get(index, 0),
        )

    def note_attempt_failed(self, index: int) -> bool:
        """Record a failed attempt; True if the task may retry."""
        self.attempts[index] = self.attempts.get(index, 0) + 1
        if self.attempts[index] > self.policy.max_retries:
            return False
        self.retries += 1
        observability.counter_add("resilience.retries")
        time.sleep(self.policy.backoff(self.attempts[index]))  # repro: allow-wallclock retry backoff; delays rerun, never changes results
        return True


_PENDING = object()


def _short_repr(task: Any, limit: int = 120) -> str:
    text = repr(task)
    return text if len(text) <= limit else text[: limit - 3] + "..."


def _run_serial(state: _SweepState, indices: Sequence[int]) -> None:
    """In-process execution with the same retry/quarantine semantics.

    The kill hook fires here too — in the serial path it terminates the
    driver process itself, which is exactly what the checkpoint/resume
    chaos tests want: a deterministic mid-sweep death.
    """
    runner = _ResilientTask(state.fn)
    for i in indices:
        while True:
            try:
                value, _snap = runner(i, state.tasks[i])
            except Exception as exc:
                if state.note_attempt_failed(i):
                    continue
                state.fail(i, exc)
                break
            else:
                state.complete(i, value)
                break


def _plan_blocks(
    pending: Sequence[int], workers: int, runner: Any
) -> list[list[int]]:
    """Chunk the pending index list into contiguous blocks."""
    from .parallel import _block_size

    size = _block_size(len(pending), workers, runner)
    return [
        list(pending[s : s + size])
        for s in range(0, len(pending), size)
    ]


def _run_block_serial(
    state: _SweepState, indices: Sequence[int], runner: Any
) -> None:
    """In-process block execution with per-scenario checkpointing.

    A block that raises falls back to per-task :func:`_run_serial` for
    exactly that chunk — the scalar task function with full
    retry/quarantine semantics — so one poison scenario degrades its
    block, never the sweep.  The kill hook fires per contained index
    (terminating the driver, as the serial chaos tests expect).
    """
    from .parallel import _check_block_results

    blocks = _plan_blocks(indices, 1, runner)
    block_runner = _ResilientBlock(runner.block_fn)
    for blk in blocks:
        chunk = [state.tasks[i] for i in blk]
        try:
            values, _snap = block_runner(blk, chunk)
            _check_block_results(values, chunk, runner)
        except Exception:
            observability.counter_add("resilience.block_fallbacks")
            _run_serial(state, blk)
            continue
        for i, v in zip(blk, values):
            state.complete(i, v)
        observability.counter_add("resilience.blocks")


def _run_block_pool(
    state: _SweepState,
    workers: int,
    runner: Any,
    transport: str | None = None,
) -> None:
    """Pool block execution with crash recovery and rebuilds.

    Mirrors :func:`_run_pool`: a ``BrokenProcessPool`` (e.g. the chaos
    kill hook firing mid-block) rebuilds the pool and re-plans blocks
    over the *remaining* scenarios — completed blocks' scenarios were
    already journaled individually, so the re-planned blocking need not
    match the original one.  A block whose function raises falls back
    to per-task serial execution for that chunk.

    With the shared-memory transport each dispatch generation's chunks
    live in one parent-owned segment pool, unlinked when the generation
    completes **or** dies — a worker kill mid-block must not leave its
    generation's ``/dev/shm`` segments behind.  Results are
    materialized (owned copies) before they reach the checkpoint, so
    the journal records contents, never segment names.
    """
    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures.process import BrokenProcessPool

    from . import sharedmem
    from .parallel import _check_block_results, _pool_worker_init

    # Never spawn more pool processes than the block plan can feed: a
    # worker with no block to run is pure fork cost (the small-block
    # over-provisioning bug).
    workers = min(
        workers, len(_plan_blocks(state.pending(), workers, runner))
    )

    def make_pool() -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=workers,
            initializer=_pool_worker_init,
        )

    try:
        executor = make_pool()
    except (ImportError, NotImplementedError, OSError, PermissionError) as exc:
        warnings.warn(
            f"no usable process pool "
            f"({type(exc).__name__}: {exc}); running the blocked "
            f"resilient sweep serially",
            RuntimeWarning,
            stacklevel=3,
        )
        observability.counter_add("resilience.fallback_serial")
        _run_block_serial(state, state.pending(), runner)
        return

    mode = sharedmem.resolve_transport(transport)
    snapshots: dict[int, observability.TraceSnapshot] = {}

    def harvest(snap: observability.TraceSnapshot) -> None:
        cur = snapshots.get(snap.pid)
        if cur is None or snap.seq > cur.seq:
            snapshots[snap.pid] = snap

    tx: Any = None
    try:
        while True:
            pending = state.pending()
            if not pending:
                break
            blocks = _plan_blocks(pending, workers, runner)
            chunks = [[state.tasks[i] for i in blk] for blk in blocks]
            if mode == "shm":
                tx = sharedmem.SharedArrayPool()
                payloads: list[Any] = [tx.dumps(c) for c in chunks]
            else:
                payloads = chunks
            futures: list[Any] = []
            try:
                futures = [
                    executor.submit(
                        _ResilientBlock(
                            runner.block_fn, shm_results=mode == "shm"
                        ),
                        blk,
                        payload,
                    )
                    for blk, payload in zip(blocks, payloads)
                ]
                for blk, fut in zip(blocks, futures):
                    try:
                        values, snap = fut.result()
                        values = sharedmem.decode_result(values)
                        _check_block_results(
                            values, blk, runner
                        )
                    except BrokenProcessPool:
                        raise _PoolRestart(
                            "worker process died mid-block"
                        ) from None
                    except Exception:
                        # The block form failed; the scalar task
                        # function is the oracle — run this chunk
                        # per-task with full retry semantics.
                        observability.counter_add(
                            "resilience.block_fallbacks"
                        )
                        _run_serial(state, blk)
                        continue
                    harvest(snap)
                    for i, v in zip(blk, values):
                        state.complete(i, v)
                    observability.counter_add("resilience.blocks")
                if tx is not None:
                    tx.unlink()
                    tx = None
            except (_PoolRestart, BrokenProcessPool) as err:
                restart = (
                    err
                    if isinstance(err, _PoolRestart)
                    else _PoolRestart("worker process died")
                )
                state.pool_rebuilds += 1
                observability.counter_add("resilience.pool_rebuilds")
                executor.shutdown(wait=False, cancel_futures=True)
                # Futures that completed but were never consumed may
                # hold worker-produced result segments; their scenarios
                # will be recomputed, so release the orphaned payloads.
                for fut in futures:
                    if fut.done() and not fut.cancelled():
                        try:
                            values, _snap = fut.result()
                        except Exception:
                            continue
                        sharedmem.release_payload(values)
                if tx is not None:
                    # The dead generation's segments: unlink now, the
                    # re-planned generation gets a fresh pool.
                    tx.unlink()
                    tx = None
                if state.pool_rebuilds > state.policy.max_pool_rebuilds:
                    warnings.warn(
                        f"process pool irrecoverable after "
                        f"{state.policy.max_pool_rebuilds} rebuild(s) "
                        f"(last: {restart.reason}); degrading to "
                        f"serial block execution for the remaining "
                        f"{len(state.pending())} task(s)",
                        RuntimeWarning,
                        stacklevel=3,
                    )
                    observability.counter_add(
                        "resilience.fallback_serial"
                    )
                    _run_block_serial(state, state.pending(), runner)
                    return
                warnings.warn(
                    f"rebuilding worker pool "
                    f"({restart.reason}); re-planning blocks over "
                    f"{len(state.pending())} unfinished task(s)",
                    RuntimeWarning,
                    stacklevel=3,
                )
                executor = make_pool()
    finally:
        executor.shutdown(wait=False, cancel_futures=True)
        if tx is not None:
            tx.unlink()
    for snap in snapshots.values():
        observability.merge_snapshot(snap)


def _run_pool(state: _SweepState, workers: int) -> None:
    """Pool execution with timeout, crash recovery, and rebuilds."""
    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures import TimeoutError as FuturesTimeout
    from concurrent.futures.process import BrokenProcessPool

    def make_pool() -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=workers,
            initializer=observability.reset_worker,
        )

    try:
        executor = make_pool()
    except (ImportError, NotImplementedError, OSError, PermissionError) as exc:
        warnings.warn(
            f"no usable process pool "
            f"({type(exc).__name__}: {exc}); running the resilient "
            f"sweep serially",
            RuntimeWarning,
            stacklevel=3,
        )
        observability.counter_add("resilience.fallback_serial")
        _run_serial(state, state.pending())
        return

    snapshots: dict[int, observability.TraceSnapshot] = {}

    def harvest(snap: observability.TraceSnapshot) -> None:
        cur = snapshots.get(snap.pid)
        if cur is None or snap.seq > cur.seq:
            snapshots[snap.pid] = snap

    try:
        while True:
            pending = state.pending()
            if not pending:
                break
            try:
                futures = {
                    i: executor.submit(
                        _ResilientTask(state.fn), i, state.tasks[i]
                    )
                    for i in pending
                }
                for i in pending:
                    if state.results[i] is not _PENDING:
                        continue
                    while True:
                        try:
                            value, snap = futures[i].result(
                                timeout=state.policy.task_timeout
                            )
                        except FuturesTimeout:
                            state.timeouts += 1
                            observability.counter_add(
                                "resilience.timeouts"
                            )
                            if not state.note_attempt_failed(i):
                                state.fail(
                                    i,
                                    TimeoutError(
                                        f"task exceeded "
                                        f"{state.policy.task_timeout}s "
                                        f"wall-clock budget"
                                    ),
                                )
                            # Either way the worker is stuck on this
                            # task: the pool must be rebuilt.
                            raise _PoolRestart(
                                f"task {i} timed out"
                            ) from None
                        except BrokenProcessPool:
                            raise _PoolRestart(
                                "worker process died"
                            ) from None
                        except Exception as exc:
                            if state.note_attempt_failed(i):
                                futures[i] = executor.submit(
                                    _ResilientTask(state.fn),
                                    i,
                                    state.tasks[i],
                                )
                                continue
                            state.fail(i, exc)
                            break
                        else:
                            harvest(snap)
                            state.complete(i, value)
                            break
            except (_PoolRestart, BrokenProcessPool) as err:
                # BrokenProcessPool can also surface from submit()
                # itself when the pool died between result waits.
                restart = (
                    err
                    if isinstance(err, _PoolRestart)
                    else _PoolRestart("worker process died")
                )
                state.pool_rebuilds += 1
                observability.counter_add("resilience.pool_rebuilds")
                executor.shutdown(wait=False, cancel_futures=True)
                if state.pool_rebuilds > state.policy.max_pool_rebuilds:
                    warnings.warn(
                        f"process pool irrecoverable after "
                        f"{state.policy.max_pool_rebuilds} rebuild(s) "
                        f"(last: {restart.reason}); degrading to "
                        f"serial execution for the remaining "
                        f"{len(state.pending())} task(s)",
                        RuntimeWarning,
                        stacklevel=3,
                    )
                    observability.counter_add(
                        "resilience.fallback_serial"
                    )
                    _run_serial(state, state.pending())
                    return
                warnings.warn(
                    f"rebuilding worker pool "
                    f"({restart.reason}); resubmitting "
                    f"{len(state.pending())} unfinished task(s)",
                    RuntimeWarning,
                    stacklevel=3,
                )
                executor = make_pool()
    finally:
        executor.shutdown(wait=False, cancel_futures=True)
    for snap in snapshots.values():
        observability.merge_snapshot(snap)


def resilient_sweep_map(
    fn: Callable[[_T], Any],
    tasks: Iterable[_T],
    jobs: int | None = 1,
    *,
    policy: ResiliencePolicy | None = None,
    checkpoint: str | os.PathLike[str] | SweepCheckpoint | None = None,
    transport: str | None = None,
) -> list[Any]:
    """Fault-tolerant :func:`repro.parallel.sweep_map`.

    Identical contract — one result per task, in task order,
    bit-identical across ``jobs`` — plus the retry/timeout/quarantine
    semantics of *policy* and optional checkpoint/resume via
    *checkpoint* (a JSONL path or :class:`SweepCheckpoint`).
    *transport* selects how block payloads reach pool workers
    (``"shm"``/``"pickle"``/auto — see :func:`repro.parallel.sweep_map`);
    checkpoints always journal materialized result *contents*,
    regardless of transport.

    With ``policy.quarantine`` the result list may contain
    :class:`TaskFailure` entries; callers that opt in must be prepared
    to see them.  Failures are never written to the checkpoint, so a
    resumed run retries them.
    """
    from .parallel import resolve_jobs  # late: avoid import cycle

    task_list = list(tasks)
    if policy is None:
        policy = ResiliencePolicy()
    jobs = resolve_jobs(jobs)

    results: list[Any] = [_PENDING] * len(task_list)
    keys: list[str] | None = None
    ckpt: SweepCheckpoint | None = None
    if checkpoint is not None:
        ckpt = (
            checkpoint
            if isinstance(checkpoint, SweepCheckpoint)
            else SweepCheckpoint(checkpoint)
        )
        name = _fn_name(fn)
        keys = [task_key(t) for t in task_list]
        completed = ckpt.load(name)
        resumed = 0
        for i, key in enumerate(keys):
            if key in completed:
                results[i] = completed[key]
                resumed += 1
        if resumed:
            observability.counter_add(
                "resilience.resumed_tasks", resumed
            )
        ckpt.open_for_append(name, len(task_list))

    state = _SweepState(
        fn=fn,
        tasks=task_list,
        results=results,
        policy=policy,
        ckpt=ckpt,
        keys=keys,
    )
    try:
        pending = state.pending()
        with observability.span(
            "resilience.sweep",
            tasks=len(task_list),
            pending=len(pending),
        ):
            if pending:
                workers = min(
                    jobs, len(pending), os.cpu_count() or 1
                )
                # Blocked execution needs indefinite result waits, so
                # per-task timeouts keep the scalar path.  Scenarios
                # are checkpointed individually either way.
                runner = None
                if policy.task_timeout is None:
                    from .parallel import (
                        _SMALL_SWEEP_TASKS,
                        block_runner_for,
                    )

                    runner = block_runner_for(fn)
                if (
                    runner is not None
                    and len(pending) >= runner.min_block_tasks
                ):
                    if (
                        workers <= 1
                        or len(pending) <= _SMALL_SWEEP_TASKS
                    ):
                        _run_block_serial(state, pending, runner)
                    else:
                        _run_block_pool(
                            state, workers, runner, transport
                        )
                elif workers <= 1:
                    _run_serial(state, pending)
                else:
                    _run_pool(state, workers)
    finally:
        if ckpt is not None:
            ckpt.close()
    if observability.OBS.enabled:
        observability.counter_add("resilience.sweeps")
        observability.counter_add(
            "resilience.tasks", len(task_list)
        )
    assert all(r is not _PENDING for r in results)
    return results
