"""Bounded memoization for the allocation/isoperimetry hot paths.

The sweep drivers (:mod:`repro.parallel` and the experiment harnesses)
evaluate the same per-geometry quantities — bisection bandwidths,
geometry enumerations, optimal cuboid bounds — thousands of times across
a grid.  Those evaluations are pure functions of small hashable keys, so
a shared bounded memo turns the grid's inner loop into dictionary hits.

Design:

* :class:`BoundedMemo` — a plain LRU dictionary with hit/miss counters.
  Bounded so long-lived processes (servers, large sweeps) cannot grow
  without limit; the default size comes from ``REPRO_CACHE_SIZE``.
* :func:`memoized` — decorator storing results in a :class:`BoundedMemo`
  keyed on the *normalized* arguments produced by an optional ``key``
  callable (use it to canonicalize, e.g. sort dimension tuples).
* A module registry so tests and benchmarks can
  :func:`clear_all_caches` or inspect :func:`cache_stats` globally.

Memoized functions must be pure and must return *immutable* values
(tuples, frozen dataclasses, :class:`~repro.allocation.geometry.\
PartitionGeometry`) — results are shared between callers, never copied.

Worker processes spawned by :func:`repro.parallel.sweep_map` each carry
their own memo (forked copies diverge); determinism is unaffected
because memoization never changes a value, only how fast it returns.
Worker hit/miss *counters* are shipped back to the parent when a sweep
completes (see :func:`repro.observability.merge_snapshot` and
:func:`merge_cache_counts`), so :func:`cache_stats` accounts for
``jobs > 1`` runs too.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Callable, Hashable
from dataclasses import dataclass
from functools import wraps
from typing import Any

from . import env

__all__ = [
    "BoundedMemo",
    "CacheInfo",
    "memoized",
    "clear_all_caches",
    "cache_stats",
    "cache_counts",
    "merge_cache_counts",
    "reset_cache_counters",
    "default_cache_size",
]

#: Environment knob for the default per-function memo capacity; the
#: default (4096) lives with the declaration in :mod:`repro.env`.
_SIZE_ENV = "REPRO_CACHE_SIZE"

_registry: dict[str, "BoundedMemo"] = {}
_registry_lock = threading.Lock()


def default_cache_size() -> int:
    """Memo capacity used when a call site does not pass ``maxsize``.

    Reads ``REPRO_CACHE_SIZE`` (falling back to 4096); invalid or
    non-positive values fall back to the built-in default so a bad
    environment can never disable the bound.
    """
    return env.get_int(_SIZE_ENV)


@dataclass(frozen=True)
class CacheInfo:
    """Snapshot of one memo's counters."""

    hits: int
    misses: int
    size: int
    maxsize: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class BoundedMemo:
    """A thread-safe LRU mapping with hit/miss accounting.

    Parameters
    ----------
    maxsize:
        Capacity; the least-recently-used entry is evicted on overflow.
    name:
        Registry name (shown by :func:`cache_stats`).
    """

    def __init__(self, maxsize: int | None = None, name: str = "memo"):
        if maxsize is None:
            maxsize = default_cache_size()
        if maxsize < 1:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._maxsize = maxsize
        self._name = name
        self._hits = 0
        self._misses = 0
        self._lock = threading.Lock()

    @property
    def name(self) -> str:
        return self._name

    def get_or_compute(
        self, key: Hashable, compute: Callable[[], Any]
    ) -> Any:
        """Return the cached value for *key*, computing it on a miss."""
        with self._lock:
            if key in self._data:
                self._hits += 1
                self._data.move_to_end(key)
                return self._data[key]
        # Compute outside the lock: evaluations can be expensive and
        # recursive (enumerate -> bandwidth); a duplicate computation on
        # a race is harmless for pure functions.
        value = compute()
        with self._lock:
            self._misses += 1
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self._maxsize:
                self._data.popitem(last=False)
        return value

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self._hits = 0
            self._misses = 0

    def reset_counters(self) -> None:
        """Zero the hit/miss counters without touching cached entries.

        Worker processes call this at start (via
        :func:`repro.observability.reset_worker`) so that counts
        inherited from a fork are not double-counted when the worker's
        cumulative snapshot merges back into the parent.
        """
        with self._lock:
            self._hits = 0
            self._misses = 0

    def merge_counts(self, hits: int, misses: int) -> None:
        """Fold externally observed hit/miss counts into this memo.

        Used by the observability merge path to account for lookups
        that happened in a worker process's forked copy of the memo.
        """
        if hits < 0 or misses < 0:
            raise ValueError(
                f"merged counts must be non-negative, got "
                f"hits={hits}, misses={misses}"
            )
        with self._lock:
            self._hits += hits
            self._misses += misses

    def info(self) -> CacheInfo:
        with self._lock:
            return CacheInfo(
                hits=self._hits,
                misses=self._misses,
                size=len(self._data),
                maxsize=self._maxsize,
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data


def _register(memo: BoundedMemo) -> None:
    with _registry_lock:
        base = memo.name
        name = base
        i = 2
        while name in _registry:
            name = f"{base}#{i}"
            i += 1
        memo._name = name  # noqa: SLF001 - registry owns naming
        _registry[name] = memo


def memoized(
    maxsize: int | None = None,
    key: Callable[..., Hashable] | None = None,
) -> Callable[[Callable], Callable]:
    """Memoize a pure function in a registered :class:`BoundedMemo`.

    Parameters
    ----------
    maxsize:
        Memo capacity (default :func:`default_cache_size`).
    key:
        Optional key builder called with the function's arguments;
        defaults to ``(args, tuple(sorted(kwargs.items())))``.  Use it to
        canonicalize arguments so equivalent calls share one entry.

    The wrapped function gains ``cache`` (the memo), ``cache_info()``
    and ``cache_clear()`` attributes, mirroring ``functools.lru_cache``.
    """

    def decorate(fn: Callable) -> Callable:
        memo = BoundedMemo(maxsize, name=f"{fn.__module__}.{fn.__qualname__}")
        _register(memo)

        @wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if key is not None:
                k = key(*args, **kwargs)
            elif kwargs:
                k = (args, tuple(sorted(kwargs.items())))
            else:
                k = args
            return memo.get_or_compute(k, lambda: fn(*args, **kwargs))

        wrapper.cache = memo  # type: ignore[attr-defined]
        wrapper.cache_info = memo.info  # type: ignore[attr-defined]
        wrapper.cache_clear = memo.clear  # type: ignore[attr-defined]
        return wrapper

    return decorate


def clear_all_caches() -> None:
    """Empty every registered memo (tests, benchmarks, live reconfigs)."""
    with _registry_lock:
        memos = list(_registry.values())
    for memo in memos:
        memo.clear()


def cache_stats() -> dict[str, CacheInfo]:
    """Counters of every registered memo, keyed by registry name.

    Counts from ``jobs > 1`` sweeps are included *after* each
    :func:`repro.parallel.sweep_map` call completes: every worker ships
    a cumulative snapshot of its forked memos' counters with its task
    results, and the parent folds the final snapshot per worker back in
    via :func:`merge_cache_counts`.  **Pre-merge limitation:** while a
    parallel sweep is still running (or if a worker dies before
    returning a result), worker-side lookups are invisible here — only
    the parent process's own hits and misses are counted until the
    merge happens at sweep completion.
    """
    with _registry_lock:
        memos = dict(_registry)
    return {name: memo.info() for name, memo in memos.items()}


def cache_counts() -> dict[str, tuple[int, int]]:
    """``{registry name: (hits, misses)}`` for every registered memo.

    The compact form shipped inside worker snapshots; memos with no
    activity are omitted to keep the pickled payload small.
    """
    with _registry_lock:
        memos = dict(_registry)
    out: dict[str, tuple[int, int]] = {}
    for name, memo in memos.items():
        info = memo.info()
        if info.hits or info.misses:
            out[name] = (info.hits, info.misses)
    return out


def merge_cache_counts(counts: dict[str, tuple[int, int]]) -> None:
    """Fold worker-process hit/miss counts into this process's memos.

    Unknown names are ignored: a worker may have imported (and thereby
    registered) a memo the parent never did, and its counters have no
    local memo to land in.
    """
    with _registry_lock:
        memos = dict(_registry)
    for name, (hits, misses) in counts.items():
        memo = memos.get(name)
        if memo is not None:
            memo.merge_counts(hits, misses)


def reset_cache_counters() -> None:
    """Zero every registered memo's counters, keeping cached entries."""
    with _registry_lock:
        memos = list(_registry.values())
    for memo in memos:
        memo.reset_counters()
