"""Bounded memoization for the allocation/isoperimetry hot paths.

The sweep drivers (:mod:`repro.parallel` and the experiment harnesses)
evaluate the same per-geometry quantities — bisection bandwidths,
geometry enumerations, optimal cuboid bounds — thousands of times across
a grid.  Those evaluations are pure functions of small hashable keys, so
a shared bounded memo turns the grid's inner loop into dictionary hits.

Design:

* :class:`BoundedMemo` — a plain LRU dictionary with hit/miss counters.
  Bounded so long-lived processes (servers, large sweeps) cannot grow
  without limit; the default size comes from ``REPRO_CACHE_SIZE``.
* :func:`memoized` — decorator storing results in a :class:`BoundedMemo`
  keyed on the *normalized* arguments produced by an optional ``key``
  callable (use it to canonicalize, e.g. sort dimension tuples).
* A module registry so tests and benchmarks can
  :func:`clear_all_caches` or inspect :func:`cache_stats` globally.

Memoized functions must be pure and must return *immutable* values
(tuples, frozen dataclasses, :class:`~repro.allocation.geometry.\
PartitionGeometry`) — results are shared between callers, never copied.

Worker processes spawned by :func:`repro.parallel.sweep_map` each carry
their own memo (forked copies diverge); determinism is unaffected
because memoization never changes a value, only how fast it returns.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from collections.abc import Callable, Hashable
from dataclasses import dataclass
from functools import wraps
from typing import Any

__all__ = [
    "BoundedMemo",
    "CacheInfo",
    "memoized",
    "clear_all_caches",
    "cache_stats",
    "default_cache_size",
]

#: Environment knob for the default per-function memo capacity.
_SIZE_ENV = "REPRO_CACHE_SIZE"
_DEFAULT_SIZE = 4096

_registry: dict[str, "BoundedMemo"] = {}
_registry_lock = threading.Lock()


def default_cache_size() -> int:
    """Memo capacity used when a call site does not pass ``maxsize``.

    Reads ``REPRO_CACHE_SIZE`` (falling back to 4096); invalid or
    non-positive values fall back to the built-in default so a bad
    environment can never disable the bound.
    """
    raw = os.environ.get(_SIZE_ENV)
    if raw is None:
        return _DEFAULT_SIZE
    try:
        size = int(raw)
    except ValueError:
        return _DEFAULT_SIZE
    return size if size > 0 else _DEFAULT_SIZE


@dataclass(frozen=True)
class CacheInfo:
    """Snapshot of one memo's counters."""

    hits: int
    misses: int
    size: int
    maxsize: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class BoundedMemo:
    """A thread-safe LRU mapping with hit/miss accounting.

    Parameters
    ----------
    maxsize:
        Capacity; the least-recently-used entry is evicted on overflow.
    name:
        Registry name (shown by :func:`cache_stats`).
    """

    def __init__(self, maxsize: int | None = None, name: str = "memo"):
        if maxsize is None:
            maxsize = default_cache_size()
        if maxsize < 1:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._maxsize = maxsize
        self._name = name
        self._hits = 0
        self._misses = 0
        self._lock = threading.Lock()

    @property
    def name(self) -> str:
        return self._name

    def get_or_compute(
        self, key: Hashable, compute: Callable[[], Any]
    ) -> Any:
        """Return the cached value for *key*, computing it on a miss."""
        with self._lock:
            if key in self._data:
                self._hits += 1
                self._data.move_to_end(key)
                return self._data[key]
        # Compute outside the lock: evaluations can be expensive and
        # recursive (enumerate -> bandwidth); a duplicate computation on
        # a race is harmless for pure functions.
        value = compute()
        with self._lock:
            self._misses += 1
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self._maxsize:
                self._data.popitem(last=False)
        return value

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self._hits = 0
            self._misses = 0

    def info(self) -> CacheInfo:
        with self._lock:
            return CacheInfo(
                hits=self._hits,
                misses=self._misses,
                size=len(self._data),
                maxsize=self._maxsize,
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data


def _register(memo: BoundedMemo) -> None:
    with _registry_lock:
        base = memo.name
        name = base
        i = 2
        while name in _registry:
            name = f"{base}#{i}"
            i += 1
        memo._name = name  # noqa: SLF001 - registry owns naming
        _registry[name] = memo


def memoized(
    maxsize: int | None = None,
    key: Callable[..., Hashable] | None = None,
) -> Callable[[Callable], Callable]:
    """Memoize a pure function in a registered :class:`BoundedMemo`.

    Parameters
    ----------
    maxsize:
        Memo capacity (default :func:`default_cache_size`).
    key:
        Optional key builder called with the function's arguments;
        defaults to ``(args, tuple(sorted(kwargs.items())))``.  Use it to
        canonicalize arguments so equivalent calls share one entry.

    The wrapped function gains ``cache`` (the memo), ``cache_info()``
    and ``cache_clear()`` attributes, mirroring ``functools.lru_cache``.
    """

    def decorate(fn: Callable) -> Callable:
        memo = BoundedMemo(maxsize, name=f"{fn.__module__}.{fn.__qualname__}")
        _register(memo)

        @wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if key is not None:
                k = key(*args, **kwargs)
            elif kwargs:
                k = (args, tuple(sorted(kwargs.items())))
            else:
                k = args
            return memo.get_or_compute(k, lambda: fn(*args, **kwargs))

        wrapper.cache = memo  # type: ignore[attr-defined]
        wrapper.cache_info = memo.info  # type: ignore[attr-defined]
        wrapper.cache_clear = memo.clear  # type: ignore[attr-defined]
        return wrapper

    return decorate


def clear_all_caches() -> None:
    """Empty every registered memo (tests, benchmarks, live reconfigs)."""
    with _registry_lock:
        memos = list(_registry.values())
    for memo in memos:
        memo.clear()


def cache_stats() -> dict[str, CacheInfo]:
    """Counters of every registered memo, keyed by registry name."""
    with _registry_lock:
        memos = dict(_registry)
    return {name: memo.info() for name, memo in memos.items()}
