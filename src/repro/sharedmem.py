"""Zero-copy shared-memory transport for sweep payloads.

:func:`repro.parallel.sweep_map` ships every task chunk to its workers
through a pickle pipe.  After the stacked rewrite (PR 7) those chunks
carry large numpy blocks — CSR ``link_ids``/``offsets`` planes,
capacity/fault planes, stacked result rows — and copying megabytes
through the pipe per dispatch is exactly the avoidable-contention
pattern the reproduced paper warns about at the fabric level: the
payload crosses the parent/worker boundary twice (serialize +
deserialize) when it only needs to cross zero times.

This module provides the zero-copy alternative:

* :class:`SharedArrayPool` packs array buffers into a small number of
  named ``multiprocessing.shared_memory`` slab segments and returns
  tiny :class:`ArrayDescriptor` records (segment name, dtype, shape,
  byte offset) instead;
* :meth:`SharedArrayPool.dumps` pickles an arbitrary task payload with
  pickle protocol 5, diverting every large buffer out-of-band into the
  pool, so what crosses the pipe is a small control stream plus
  descriptors;
* :func:`shm_loads` reconstructs the payload in the worker with the
  buffers mapped **read-only, zero-copy** straight out of the shared
  segments;
* classes that register a codec (:func:`register_shared_codec`; see
  ``PathMatrix.to_shared`` / ``StackedPathMatrix.from_shared``) are
  reduced to their descriptor form explicitly, skipping both the byte
  copy *and* their constructors' O(entries) revalidation on the worker
  side.

Lifecycle discipline
--------------------

Segments are owned by exactly one side.  A parent-owned pool
(``SharedArrayPool()``) unlinks its segments when the sweep finishes
(or, via a pid-guarded finalizer, when the pool is garbage collected —
a crashed sweep must not leak ``/dev/shm`` entries).  Worker-side
result payloads (:func:`maybe_shm_dumps`) use non-owning pools: the
worker closes its mapping and the *parent* unlinks the segments after
materializing the results (:func:`decode_result` copies them out — a
checkpoint must journal contents, never segment names).

``REPRO_SHM=0`` disables the transport everywhere (the pickle pipe is
the oracle, exactly like ``REPRO_VECTOR=0`` for the vector compute
paths); platforms without a usable ``shared_memory`` implementation
degrade to pickle automatically.
"""

from __future__ import annotations

import io
import os
import pickle
import warnings
import weakref
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from . import env

__all__ = [
    "ArrayDescriptor",
    "ShmPayload",
    "SharedArrayPool",
    "shm_loads",
    "maybe_shm_dumps",
    "decode_result",
    "attach_array",
    "detach_segments",
    "release_payload",
    "register_shared_codec",
    "shm_enabled",
    "shm_supported",
    "resolve_transport",
    "active_segments",
    "SEGMENT_PREFIX",
    "MIN_SHARED_BYTES",
]

#: Environment knob: ``REPRO_SHM=0`` disables the shared-memory
#: transport, forcing the classic pickle pipe (the transport oracle).
_SHM_ENV = "REPRO_SHM"

#: Prefix of every segment name this module creates; the leak-checking
#: test fixture (and :func:`active_segments`) key off it.
SEGMENT_PREFIX = "repro-shm-"

#: Buffers smaller than this stay in-band: a descriptor plus a page
#: fault costs more than pickling a few KiB.
MIN_SHARED_BYTES = 64 * 1024

#: Slab segment size; buffers are packed at 64-byte alignment and a
#: buffer larger than a slab gets a dedicated segment.
_SLAB_BYTES = 8 * 1024 * 1024

_ALIGN = 64


def shm_enabled() -> bool:
    """Whether the shared-memory transport is enabled.

    Reads ``REPRO_SHM`` at call time; any of ``0``, ``false``, ``no``,
    ``off`` (case-insensitive) disables it.
    """
    return env.get_flag(_SHM_ENV)


_SUPPORTED: bool | None = None


def shm_supported() -> bool:
    """Whether ``multiprocessing.shared_memory`` actually works here.

    Probes once per process by creating (and immediately unlinking) a
    tiny segment — import success alone does not guarantee a usable
    ``/dev/shm`` in restricted sandboxes.
    """
    global _SUPPORTED
    if _SUPPORTED is None:
        try:
            from multiprocessing import shared_memory

            seg = shared_memory.SharedMemory(create=True, size=16)
            seg.close()
            seg.unlink()
            _SUPPORTED = True
        except Exception:
            _SUPPORTED = False
    return _SUPPORTED


def resolve_transport(transport: str | None) -> str:
    """Normalize a transport request to ``"shm"`` or ``"pickle"``.

    ``None``/``"auto"`` follows ``REPRO_SHM`` and platform support;
    ``"shm"`` degrades (with a warning) when unsupported; ``"pickle"``
    always honors the request.
    """
    if transport in (None, "auto"):
        return "shm" if shm_enabled() and shm_supported() else "pickle"
    if transport == "shm":
        if not shm_supported():
            warnings.warn(
                "shared-memory transport requested but "
                "multiprocessing.shared_memory is unusable here; "
                "falling back to pickle",
                RuntimeWarning,
                stacklevel=2,
            )
            return "pickle"
        return "shm"
    if transport == "pickle":
        return "pickle"
    raise ValueError(
        f"transport must be 'auto', 'shm', or 'pickle', got {transport!r}"
    )


@dataclass(frozen=True)
class ArrayDescriptor:
    """Zero-copy handle to an array living in a shared segment.

    A few dozen bytes on the wire regardless of the array's size:
    workers rebuild a read-only :class:`numpy.ndarray` view over the
    named segment instead of unpickling the data.
    """

    segment: str
    dtype: str
    shape: tuple[int, ...]
    offset: int

    @property
    def nbytes(self) -> int:
        n = np.dtype(self.dtype).itemsize
        for dim in self.shape:
            n *= dim
        return n


@dataclass(frozen=True)
class ShmPayload:
    """A pickled object whose large buffers live in shared segments.

    ``data`` is the protocol-5 control stream (small); ``buffers`` are
    the out-of-band buffer descriptors in pickling order, as required
    by ``pickle.loads(..., buffers=...)``.
    """

    data: bytes
    buffers: tuple[ArrayDescriptor, ...]


# ----------------------------------------------------------------------
# Attach-side cache
#
# A worker decodes many payloads against the same few slab segments;
# re-mapping the segment per array would defeat the point.  The cache
# maps segment name -> SharedMemory handle and is cleared by the pool
# initializer (fresh worker) and by release_payload (parent side).

_ATTACHED: dict[str, Any] = {}


def _attach(name: str):
    seg = _ATTACHED.get(name)
    if seg is None:
        from multiprocessing import shared_memory

        seg = shared_memory.SharedMemory(name=name)
        _ATTACHED[name] = seg
    return seg


def detach_segments() -> None:
    """Close every cached segment mapping (worker/test hygiene).

    A mapping whose buffer is still exported (zero-copy arrays alive
    somewhere) cannot close yet; it stays cached rather than dangling
    half-closed until garbage collection complains.
    """
    still_exported: dict[str, Any] = {}
    for name, seg in _ATTACHED.items():
        try:
            seg.close()
        except BufferError:
            still_exported[name] = seg
        except Exception:  # pragma: no cover - close is best-effort
            pass
    _ATTACHED.clear()
    _ATTACHED.update(still_exported)


def _attach_view(desc: ArrayDescriptor) -> memoryview:
    view = _attach(desc.segment).buf[
        desc.offset : desc.offset + desc.nbytes
    ]
    return view.toreadonly()


def attach_array(desc: ArrayDescriptor) -> np.ndarray:
    """Read-only zero-copy ndarray over *desc*'s shared bytes."""
    dtype = np.dtype(desc.dtype)
    if desc.segment == "":
        return np.empty(desc.shape, dtype=dtype)
    return np.frombuffer(_attach_view(desc), dtype=dtype).reshape(
        desc.shape
    )


# ----------------------------------------------------------------------
# Shared codecs
#
# Types that know how to describe themselves as descriptors (PathMatrix,
# StackedPathMatrix) register here; the pool's pickler reduces them to
# ``cls.from_shared(handles)`` so the worker-side rebuild skips both the
# byte copy and the constructor's O(entries) validation.

_SHARED_CODECS: set[type] = set()


def register_shared_codec(cls: type) -> None:
    """Register *cls* (with ``to_shared``/``from_shared``) for
    descriptor-form transport through :meth:`SharedArrayPool.dumps`."""
    if not hasattr(cls, "to_shared") or not hasattr(cls, "from_shared"):
        raise TypeError(
            f"{cls.__name__} must define to_shared/from_shared to be a "
            f"shared codec"
        )
    _SHARED_CODECS.add(cls)


class _ShmPickler(pickle.Pickler):
    """Protocol-5 pickler diverting large buffers into a pool."""

    def __init__(
        self,
        file: io.BytesIO,
        pool: "SharedArrayPool",
        min_bytes: int,
        codecs: bool,
    ):
        super().__init__(
            file, protocol=5, buffer_callback=self._buffer_cb
        )
        self._pool = pool
        self._min_bytes = min_bytes
        self._codecs = codecs
        self.descriptors: list[ArrayDescriptor] = []

    def _buffer_cb(self, pbuf: pickle.PickleBuffer) -> bool:
        try:
            raw = pbuf.raw()
        except BufferError:
            return True  # non-contiguous: keep in-band
        if raw.nbytes < self._min_bytes:
            return True
        self.descriptors.append(self._pool.put_buffer(raw))
        return False  # out-of-band: worker reads it from the segment

    def reducer_override(self, obj: Any):
        if self._codecs and type(obj) in _SHARED_CODECS:
            return (
                type(obj).from_shared,
                (obj.to_shared(self._pool),),
            )
        return NotImplemented


# ----------------------------------------------------------------------
# The pool


def _cleanup_segments(segments: list[Any], pid: int) -> None:
    """Finalizer: unlink leftover segments, but only in the creating
    process — a forked worker inheriting the pool object must never
    destroy segments the parent still serves."""
    if os.getpid() != pid:
        return
    for seg in segments:
        try:
            seg.close()
        except Exception:  # pragma: no cover - cleanup is best-effort
            pass
        try:
            seg.unlink()
        except FileNotFoundError:
            pass
        except Exception:  # pragma: no cover - cleanup is best-effort
            pass
    segments.clear()


class SharedArrayPool:
    """Packs array buffers into named shared-memory slab segments.

    Parameters
    ----------
    slab_bytes:
        Segment granularity; buffers pack into the current slab at
        64-byte alignment, oversized buffers get a dedicated segment.
    owner:
        ``True`` (parent side): the pool unlinks its segments on
        :meth:`unlink`, and a pid-guarded finalizer unlinks them on
        garbage collection as a crash safety net.  ``False`` (worker
        result payloads): the pool only ever closes its own mappings —
        the *reader* unlinks via :func:`release_payload`.
    """

    _seq = 0

    def __init__(
        self, slab_bytes: int = _SLAB_BYTES, *, owner: bool = True
    ):
        if slab_bytes <= 0:
            raise ValueError(f"slab_bytes must be positive, got {slab_bytes}")
        self._slab_bytes = slab_bytes
        self._segments: list[Any] = []
        self._cursor = 0  # free offset in the last segment
        self._owner = owner
        self.bytes_used = 0
        self._finalizer = (
            weakref.finalize(
                self, _cleanup_segments, self._segments, os.getpid()
            )
            if owner
            else None
        )

    # -- allocation --------------------------------------------------

    def _new_segment(self, size: int):
        from multiprocessing import shared_memory

        while True:
            SharedArrayPool._seq += 1
            name = f"{SEGMENT_PREFIX}{os.getpid()}-{SharedArrayPool._seq}"
            try:
                seg = shared_memory.SharedMemory(
                    name=name, create=True, size=size
                )
            except FileExistsError:  # pragma: no cover - stale name
                continue
            self._segments.append(seg)
            self._cursor = 0
            return seg

    def _alloc(self, nbytes: int) -> tuple[Any, int]:
        """A (segment, offset) span of *nbytes* writable bytes."""
        if nbytes > self._slab_bytes:
            return self._new_segment(nbytes), 0
        aligned = -(-self._cursor // _ALIGN) * _ALIGN
        if not self._segments or aligned + nbytes > self._segments[-1].size:
            return self._new_segment(self._slab_bytes), 0
        self._cursor = aligned
        return self._segments[-1], aligned

    def put_buffer(self, raw: memoryview) -> ArrayDescriptor:
        """Copy a raw C-contiguous byte buffer into the pool."""
        seg, offset = self._alloc(raw.nbytes)
        dest = seg.buf[offset : offset + raw.nbytes]
        dest[:] = raw
        dest.release()
        self._cursor = offset + raw.nbytes
        self.bytes_used += raw.nbytes
        return ArrayDescriptor(
            segment=seg.name,
            dtype="|u1",
            shape=(raw.nbytes,),
            offset=offset,
        )

    def put_array(self, arr: np.ndarray) -> ArrayDescriptor:
        """Copy *arr* into the pool; returns its zero-copy descriptor.

        The one copy happens here, on the producing side; every reader
        attaches a view.  Object dtypes cannot live in flat shared
        bytes and are rejected.
        """
        arr = np.ascontiguousarray(arr)
        if arr.dtype.hasobject:
            raise TypeError(
                "object-dtype arrays cannot be placed in shared memory"
            )
        if arr.nbytes == 0:
            return ArrayDescriptor(
                segment="", dtype=arr.dtype.str, shape=arr.shape, offset=0
            )
        desc = self.put_buffer(memoryview(arr).cast("B"))
        return ArrayDescriptor(
            segment=desc.segment,
            dtype=arr.dtype.str,
            shape=arr.shape,
            offset=desc.offset,
        )

    # -- codec -------------------------------------------------------

    def dumps(
        self,
        obj: Any,
        min_bytes: int = MIN_SHARED_BYTES,
        *,
        codecs: bool = True,
    ) -> ShmPayload:
        """Pickle *obj* with its large buffers diverted into the pool.

        With ``codecs=True`` registered types additionally travel as
        explicit descriptor handles (see :func:`register_shared_codec`).
        Worker-produced *result* payloads use ``codecs=False`` so the
        parent can always materialize owned copies before the segments
        are unlinked (:func:`decode_result`).
        """
        buf = io.BytesIO()
        pickler = _ShmPickler(buf, self, min_bytes, codecs)
        pickler.dump(obj)
        return ShmPayload(
            data=buf.getvalue(), buffers=tuple(pickler.descriptors)
        )

    # -- lifecycle ---------------------------------------------------

    @property
    def segment_names(self) -> list[str]:
        return [seg.name for seg in self._segments]

    def close(self) -> None:
        """Close this process's mappings; segments stay alive."""
        for seg in self._segments:
            try:
                seg.close()
            except Exception:  # pragma: no cover
                pass
        if self._finalizer is not None:
            self._finalizer.detach()
        self._segments.clear()

    def unlink(self) -> None:
        """Destroy every segment this pool created (owner side)."""
        for seg in self._segments:
            try:
                seg.close()
            except Exception:  # pragma: no cover - close is best-effort
                pass
            try:
                seg.unlink()
            except FileNotFoundError:
                pass
        if self._finalizer is not None:
            self._finalizer.detach()
        self._segments.clear()

    def __enter__(self) -> "SharedArrayPool":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.unlink() if self._owner else self.close()


def shm_loads(payload: Any, *, copy: bool = False) -> Any:
    """Inverse of :meth:`SharedArrayPool.dumps`.

    Non-payload objects pass through, so call sites need no transport
    branch.  ``copy=False`` maps buffers zero-copy (read-only views
    valid while the segments live); ``copy=True`` materializes owned
    bytes — required before the segments are unlinked.
    """
    if not isinstance(payload, ShmPayload):
        return payload
    buffers: list[Any] = []
    for desc in payload.buffers:
        view = _attach_view(desc)
        buffers.append(bytearray(view) if copy else view)
    return pickle.loads(payload.data, buffers=buffers)


def release_payload(payload: Any) -> None:
    """Unlink every segment backing *payload* (reader side).

    Used by the parent after :func:`decode_result` copied a worker's
    result payload out of shared memory; the worker side never unlinks.
    """
    if not isinstance(payload, ShmPayload):
        return
    from multiprocessing import shared_memory

    for name in {d.segment for d in payload.buffers if d.segment}:
        seg = _ATTACHED.pop(name, None)
        if seg is None:
            try:
                seg = shared_memory.SharedMemory(name=name)
            except FileNotFoundError:
                continue
        try:
            seg.close()
        except Exception:  # pragma: no cover - close is best-effort
            pass
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover - racing cleanup
            pass


def maybe_shm_dumps(
    values: Any, min_bytes: int = MIN_SHARED_BYTES
) -> Any:
    """Worker-side result encoding: shared segments only when it pays.

    Returns *values* unchanged when no buffer clears *min_bytes* (the
    common case — sweep results are small row records); otherwise a
    :class:`ShmPayload` whose segments the parent must release after
    :func:`decode_result`.  Codec reduction is disabled: results must
    be materializable as owned copies (checkpoints journal contents,
    never segment names).
    """
    if not shm_supported():
        return values
    pool = SharedArrayPool(owner=False)
    try:
        payload = pool.dumps(values, min_bytes, codecs=False)
    except Exception:
        pool.unlink()  # nothing downstream knows these names
        return values
    if not payload.buffers:
        pool.unlink()  # nothing was offloaded; drop any empty slab
        return values
    pool.close()  # parent unlinks via release_payload
    return payload


def decode_result(values: Any) -> Any:
    """Parent-side inverse of :func:`maybe_shm_dumps`.

    Materializes owned copies and unlinks the worker's segments; plain
    (non-payload) results pass through untouched.
    """
    if not isinstance(values, ShmPayload):
        return values
    out = shm_loads(values, copy=True)
    release_payload(values)
    return out


# ----------------------------------------------------------------------
# Leak accounting (test support)


def active_segments() -> list[str]:
    """Names of live ``/dev/shm`` segments created by this module.

    Empty on platforms without a visible ``/dev/shm``; the leak-check
    fixtures skip there.
    """
    shm_dir = Path("/dev/shm")
    if not shm_dir.is_dir():
        return []
    return sorted(
        p.name
        for p in shm_dir.iterdir()
        if p.name.startswith(SEGMENT_PREFIX)
    )
