"""Classical parallel matrix-multiplication communication models.

Baselines against which the CAPS model is compared in the benchmark
ablations: the paper's future-work section predicts that kernels with
higher communication-to-computation ratios (classical matmul, FFT,
N-body) are *more* sensitive to partition bisection bandwidth than fast
matrix multiplication.  These models provide per-rank communication
volumes and simple traffic patterns for:

* **2-D SUMMA** — ``P = p²`` ranks in a grid, per-rank bandwidth cost
  ``≈ 2 n² / √P`` words (row/column broadcasts);
* **3-D / 2.5-D** (Solomonik & Demmel) — with replication factor ``c``,
  per-rank cost ``≈ 2 n² / √(c P)`` words plus a reduction;
* **direct N-body** — all-pairs force evaluation with a ring pass:
  per-rank cost ``≈ N_bodies / P`` words per ring step, ``P`` steps.
"""

from __future__ import annotations

import math
from collections.abc import Iterator

from .._validation import check_positive_int

__all__ = [
    "summa_words_per_rank",
    "c25d_words_per_rank",
    "nbody_ring_words_per_rank",
    "summa_rank_pairs",
    "ring_rank_pairs",
]


def summa_words_per_rank(n: int, num_ranks: int) -> float:
    """Per-rank communication volume (words) of 2-D SUMMA.

    Requires *num_ranks* to be a perfect square; each rank broadcasts
    its ``(n/√P)²`` block along its row and column ``√P - 1`` times in
    panels, for ``≈ 2 n²/√P`` words total.
    """
    n = check_positive_int(n, "n")
    num_ranks = check_positive_int(num_ranks, "num_ranks")
    p = math.isqrt(num_ranks)
    if p * p != num_ranks:
        raise ValueError(
            f"SUMMA needs a square rank count, got {num_ranks}"
        )
    return 2.0 * n * n / p


def c25d_words_per_rank(n: int, num_ranks: int, c: int = 1) -> float:
    """Per-rank communication volume (words) of 2.5-D matmul.

    Replication factor *c* trades memory for bandwidth:
    ``≈ 2 n² / √(c P)`` words (Solomonik & Demmel 2011).  ``c = 1``
    recovers SUMMA's asymptotics.
    """
    n = check_positive_int(n, "n")
    num_ranks = check_positive_int(num_ranks, "num_ranks")
    c = check_positive_int(c, "c")
    if c > round(num_ranks ** (1.0 / 3.0)) ** 2 + 1:
        raise ValueError(
            f"replication c={c} exceeds the 2.5-D limit ~P^(2/3) for "
            f"P={num_ranks}"
        )
    return 2.0 * n * n / math.sqrt(c * num_ranks)


def nbody_ring_words_per_rank(num_bodies: int, num_ranks: int) -> float:
    """Per-rank total volume (words) of a ring-pass direct N-body step.

    Each rank holds ``N/P`` bodies and forwards them around a ring for
    ``P - 1`` steps: ``≈ N`` words per rank per force evaluation — the
    Θ(1) computation-to-communication ratio that makes N-body the
    paper's candidate for stronger bisection sensitivity.
    """
    num_bodies = check_positive_int(num_bodies, "num_bodies")
    num_ranks = check_positive_int(num_ranks, "num_ranks")
    per = num_bodies / num_ranks
    return per * max(num_ranks - 1, 1)


def summa_rank_pairs(num_ranks: int) -> Iterator[tuple[int, int]]:
    """Rank pairs of one SUMMA panel step (row + column broadcasts).

    Rank ``(i, j)`` of the ``√P × √P`` grid (row-major ids) exchanges
    with its whole row and column.  Yields each ordered pair once.
    """
    num_ranks = check_positive_int(num_ranks, "num_ranks")
    p = math.isqrt(num_ranks)
    if p * p != num_ranks:
        raise ValueError(
            f"SUMMA needs a square rank count, got {num_ranks}"
        )
    for i in range(p):
        for j in range(p):
            r = i * p + j
            for jj in range(p):
                if jj != j:
                    yield (r, i * p + jj)
            for ii in range(p):
                if ii != i:
                    yield (r, ii * p + j)


def ring_rank_pairs(num_ranks: int) -> Iterator[tuple[int, int]]:
    """Rank pairs of one ring-pass step: each rank sends to its successor."""
    num_ranks = check_positive_int(num_ranks, "num_ranks")
    if num_ranks < 2:
        raise ValueError("a ring needs at least 2 ranks")
    for r in range(num_ranks):
        yield (r, (r + 1) % num_ranks)
