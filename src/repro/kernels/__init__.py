"""Computation kernels and their communication models (S7 in DESIGN.md).

Real Strassen–Winograd matrix multiplication plus the CAPS parallel
communication schedule of the paper's Experiment B, classical baselines
(SUMMA, 2.5-D, N-body ring), and the calibrated cost-model constants.
"""

from .caps import (
    CapsConfig,
    CapsStep,
    caps_computation_time,
    caps_steps,
    caps_total_words_per_rank,
    split_rank_count,
    step_rank_pairs,
)
from .classical import (
    c25d_words_per_rank,
    nbody_ring_words_per_rank,
    ring_rank_pairs,
    summa_rank_pairs,
    summa_words_per_rank,
)
from .fft import (
    fft_flops,
    fft_flops_per_word,
    fft_transpose_block_words,
    fft_transpose_words_per_rank,
)
from .costmodel import (
    CAPS_COMM_FACTOR,
    FLOP_RATE_PER_RANK,
    L2_BYTES_PER_NODE,
    LINK_BANDWIDTH_GB_PER_S,
    WORD_BYTES,
    aggregate_l2,
    caps_memory_footprint,
    l2_spill_penalty,
)
from .strassen import (
    classical_flop_count,
    matrix_dim_constraint,
    required_rank_count,
    strassen_flop_count,
    strassen_winograd,
)

__all__ = [
    "strassen_winograd",
    "strassen_flop_count",
    "classical_flop_count",
    "required_rank_count",
    "matrix_dim_constraint",
    "CapsConfig",
    "CapsStep",
    "caps_steps",
    "step_rank_pairs",
    "caps_total_words_per_rank",
    "caps_computation_time",
    "split_rank_count",
    "summa_words_per_rank",
    "c25d_words_per_rank",
    "nbody_ring_words_per_rank",
    "summa_rank_pairs",
    "ring_rank_pairs",
    "LINK_BANDWIDTH_GB_PER_S",
    "FLOP_RATE_PER_RANK",
    "L2_BYTES_PER_NODE",
    "WORD_BYTES",
    "CAPS_COMM_FACTOR",
    "caps_memory_footprint",
    "aggregate_l2",
    "l2_spill_penalty",
    "fft_flops",
    "fft_transpose_words_per_rank",
    "fft_transpose_block_words",
    "fft_flops_per_word",
]
