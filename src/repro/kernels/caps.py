"""CAPS — Communication-Avoiding Parallel Strassen (communication model).

Experiment B of the paper benchmarks the Strassen–Winograd implementation
of Ballard et al. / Lipshitz et al. ("CAPS").  CAPS runs on ``f · 7^k``
ranks: at each of the ``k`` **BFS steps** the current processor group
splits into 7 subgroups, one per Strassen subproblem, and the groups
exchange submatrix blocks; an initial ``f``-way step handles the non-7
factor.  After the BFS steps each rank multiplies its local block.

This module models the *communication schedule* of that algorithm:

* :class:`CapsConfig` validates the paper's parameter constraints
  (rank count ``f · 7^k``, matrix dimension a multiple of
  ``f · 2^r · 7^{⌈k/2⌉}``);
* :func:`caps_steps` lists the BFS steps with their group sizes, rank
  strides (contiguous-block grouping, matching the launcher's rank
  order), and per-rank communication volumes — each step moves
  ``CAPS_COMM_FACTOR × (local share at that level)`` words per rank,
  which telescopes to the known CAPS bandwidth cost
  ``Θ((7/4)^k · n² / P)``;
* :func:`step_rank_pairs` enumerates which ranks exchange at a step
  (each rank with the ``g - 1`` ranks at the same position of the other
  subgroups);
* :func:`caps_computation_time` gives the local-multiply time from the
  calibrated flop rate.

Driving these pairs through :mod:`repro.netsim` (see
:mod:`repro.experiments.matmul`) reproduces the geometry sensitivity of
Figure 5: early (large-stride) steps cross the partition bisection and
speed up on better-shaped partitions, while the late local steps —
which carry *more* volume — do not, so the end-to-end ratio lands below
the raw ×2 bandwidth ratio, as the paper measures (×1.37–×1.52).
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from .._validation import check_positive_int
from .costmodel import CAPS_COMM_FACTOR, FLOP_RATE_PER_RANK, WORD_BYTES
from .strassen import strassen_flop_count

__all__ = [
    "CapsConfig",
    "CapsStep",
    "caps_steps",
    "step_rank_pairs",
    "caps_total_words_per_rank",
    "caps_computation_time",
    "split_rank_count",
]


def split_rank_count(num_ranks: int) -> tuple[int, int]:
    """Factor a rank count as ``f · 7^k`` with maximal ``k``.

    Examples
    --------
    >>> split_rank_count(31213)     # the paper's 13 · 7^4
    (13, 4)
    >>> split_rank_count(117649)    # 7^6
    (1, 6)
    """
    num_ranks = check_positive_int(num_ranks, "num_ranks")
    k = 0
    f = num_ranks
    while f % 7 == 0:
        f //= 7
        k += 1
    return f, k


@dataclass(frozen=True)
class CapsConfig:
    """Parameters of one CAPS execution.

    Attributes
    ----------
    n:
        Matrix dimension.
    num_ranks:
        Total MPI ranks, ``f · 7^k``.
    word_bytes:
        Bytes per element (8 for double precision).
    comm_factor:
        Words exchanged per rank per BFS step, in units of the local
        submatrix share at that level.
    """

    n: int
    num_ranks: int
    word_bytes: int = WORD_BYTES
    comm_factor: float = CAPS_COMM_FACTOR
    digit_order: str = "deep-major"

    def __post_init__(self) -> None:
        check_positive_int(self.n, "n")
        check_positive_int(self.num_ranks, "num_ranks")
        check_positive_int(self.word_bytes, "word_bytes")
        if self.comm_factor <= 0:
            raise ValueError(
                f"comm_factor must be positive, got {self.comm_factor}"
            )
        if self.digit_order not in ("deep-major", "top-major"):
            raise ValueError(
                "digit_order must be 'deep-major' or 'top-major', got "
                f"{self.digit_order!r}"
            )

    @property
    def f(self) -> int:
        """The non-7 factor of the rank count."""
        return split_rank_count(self.num_ranks)[0]

    @property
    def k(self) -> int:
        """Number of 7-way BFS steps (``7^k`` divides the rank count)."""
        return split_rank_count(self.num_ranks)[1]

    def satisfies_paper_constraints(self, r: int = 0) -> bool:
        """Whether ``f <= 6`` and the matrix dimension constraint hold.

        The reference implementation requires ``1 <= f <= 6`` and ``n`` a
        multiple of ``f · 2^r · 7^{⌈k/2⌉}``.  (The paper's own 31 213-rank
        runs have ``f = 13``; they emulate the extra factor with
        multi-rank nodes, which this model also permits.)
        """
        from .strassen import matrix_dim_constraint

        f, k = split_rank_count(self.num_ranks)
        if f > 6:
            return False
        return self.n % matrix_dim_constraint(f, k, r) == 0


@dataclass(frozen=True)
class CapsStep:
    """One BFS step of the CAPS schedule.

    Attributes
    ----------
    level:
        Step index, 0-based; step 0 is the outermost split (largest
        rank strides, most bisection-crossing traffic).
    group_size:
        Fan-out of the split: 7 for Strassen steps, ``f`` for the
        initial non-7 step.
    stride:
        Rank-id distance between exchange partners (the subgroup size).
    words_per_rank:
        Words each rank sends during the step.
    """

    level: int
    group_size: int
    stride: int
    words_per_rank: float

    @property
    def bytes_per_rank(self) -> float:
        """Bytes each rank sends during the step (at 8-byte words)."""
        return self.words_per_rank * WORD_BYTES


def caps_steps(config: CapsConfig) -> list[CapsStep]:
    """The BFS steps of a CAPS run, in execution order (outermost first).

    Every rank starts with a ``n² / P``-word share of each matrix.  Each
    7-way BFS step blows the per-rank share up by ``7/4`` (seven
    subproblems of a quarter the elements) and moves
    ``comm_factor × share`` words per rank; the initial ``f``-way step
    (when ``f > 1``) redistributes panels without changing the share.

    Partner strides depend on how ranks encode their position in the
    recursion tree (``config.digit_order``):

    * ``"deep-major"`` (default) — the *deepest* recursion level is the
      most significant rank digit, so the outermost step exchanges with
      nearby ranks (stride ``f·7^0``-ish) and the deepest, highest-volume
      step spans the whole allocation (stride ``P / 7``).  This order
      reproduces the bisection sensitivity the paper measures (the
      dominant traffic crosses the partition bisection).
    * ``"top-major"`` — contiguous top-level groups: the outermost step
      has stride ``P / group_size`` and the deepest step is
      nearest-neighbor.  Under this order the dominant traffic is local
      and geometry barely matters; the ablation benchmark contrasts the
      two.
    """
    f, k = split_rank_count(config.num_ranks)
    steps: list[CapsStep] = []
    level = 0
    share = float(config.n) * float(config.n) / config.num_ranks
    # Group sizes in execution order: the f-way split first, then k
    # 7-way Strassen steps.
    sizes: list[int] = ([f] if f > 1 else []) + [7] * k
    shares: list[float] = []
    for g in sizes:
        shares.append(share)
        if g == 7:
            share *= 7.0 / 4.0
    # Strides per execution order under each digit layout.
    strides: list[int] = []
    if config.digit_order == "top-major":
        remaining = config.num_ranks
        for g in sizes:
            strides.append(remaining // g)
            remaining //= g
    else:  # deep-major: execution-order step i varies digit i (LSB first)
        stride = 1
        for g in sizes:
            strides.append(stride)
            stride *= g
    for g, s, sh in zip(sizes, strides, shares):
        steps.append(
            CapsStep(
                level=level,
                group_size=g,
                stride=s,
                words_per_rank=config.comm_factor * sh,
            )
        )
        level += 1
    return steps


def step_rank_pairs(
    config: CapsConfig, step: CapsStep
) -> Iterator[tuple[int, int]]:
    """Ordered rank pairs ``(sender, receiver)`` exchanging at *step*.

    With contiguous grouping, rank ``r`` belongs to subgroup
    ``(r // stride) mod group_size`` of its enclosing group and talks to
    the ranks at the same in-subgroup offset of every *other* subgroup:
    ``base + j·stride + offset`` for ``j ≠`` its own subgroup index.
    Every rank sends to ``group_size - 1`` partners.
    """
    g = step.group_size
    s = step.stride
    block = g * s  # enclosing group size at this level
    for r in range(config.num_ranks):
        base = (r // block) * block
        offset = r % s
        mine = (r - base) // s
        for j in range(g):
            if j != mine:
                yield (r, base + j * s + offset)


def caps_total_words_per_rank(config: CapsConfig) -> float:
    """Total words sent per rank over all BFS steps.

    Telescopes to ``comm_factor · n²/P · Σ (7/4)^ℓ ≈ Θ((7/4)^k n²/P)``,
    the CAPS bandwidth cost.
    """
    return sum(s.words_per_rank for s in caps_steps(config))


def caps_computation_time(
    config: CapsConfig, flop_rate: float = FLOP_RATE_PER_RANK
) -> float:
    """Local-multiply time (seconds) of one CAPS run.

    The ``7^k`` base-case multiplies of dimension ``n / 2^k`` (plus the
    BFS additions) are spread over the ranks; per-rank flops divide
    evenly because CAPS is fully load balanced.  The default *flop_rate*
    is calibrated to the paper's measured computation times (which are
    geometry-independent, as the paper observes).
    """
    if flop_rate <= 0:
        raise ValueError(f"flop_rate must be positive, got {flop_rate}")
    _, k = split_rank_count(config.num_ranks)
    # Round the matrix dimension down to a multiple of 2^k for the flop
    # formula; the error is negligible at experiment scales.
    n_eff = (config.n // (1 << k)) * (1 << k)
    if n_eff == 0:
        n_eff = 1 << k
    flops = strassen_flop_count(n_eff, k)
    return flops / (config.num_ranks * flop_rate)
