"""Sequential Strassen–Winograd fast matrix multiplication.

The paper's application benchmark (Experiment B) is the CAPS
communication-avoiding parallel Strassen of Ballard, Demmel, Holtz,
Lipshitz & Schwartz.  This module implements the underlying
*Strassen–Winograd* recursion — the variant with 7 multiplications and
15 additions per level (vs. Strassen's 18) — as real, tested NumPy code.
It supplies:

* a correct fast multiply (:func:`strassen_winograd`) validated against
  ``numpy.dot`` in the test-suite;
* exact flop counts (:func:`strassen_flop_count`,
  :func:`classical_flop_count`) used by the experiment cost models.

Odd dimensions are handled by zero-padding to the next even size at each
level (standard dynamic peeling alternative); the recursion stops at
*cutoff* and falls back to BLAS (``@``).
"""

from __future__ import annotations

import numpy as np

from .._validation import check_nonnegative_int, check_positive_int

__all__ = [
    "strassen_winograd",
    "strassen_flop_count",
    "classical_flop_count",
    "required_rank_count",
    "matrix_dim_constraint",
]


def _split(M: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split a matrix into four quadrants (copies, even dimensions)."""
    h, w = M.shape[0] // 2, M.shape[1] // 2
    return M[:h, :w], M[:h, w:], M[h:, :w], M[h:, w:]


def _pad_to_even(M: np.ndarray) -> np.ndarray:
    """Zero-pad rows/cols so both dimensions are even (no-op if even)."""
    r = M.shape[0] % 2
    c = M.shape[1] % 2
    if r == 0 and c == 0:
        return M
    return np.pad(M, ((0, r), (0, c)))


def strassen_winograd(
    A: np.ndarray, B: np.ndarray, cutoff: int = 64
) -> np.ndarray:
    """Multiply ``A @ B`` with the Strassen–Winograd recursion.

    Parameters
    ----------
    A, B:
        2-D arrays with compatible shapes ``(m, k)`` and ``(k, n)``.
        Any numeric dtype; computation promotes to float64 for
        stability unless the inputs are complex.
    cutoff:
        Dimension below which the recursion falls back to ``A @ B``.
        Must be at least 2.

    Returns
    -------
    numpy.ndarray of shape ``(m, n)``.

    Examples
    --------
    >>> rng = np.random.default_rng(0)
    >>> A = rng.standard_normal((8, 8)); B = rng.standard_normal((8, 8))
    >>> np.allclose(strassen_winograd(A, B, cutoff=2), A @ B)
    True
    """
    A = np.asarray(A)
    B = np.asarray(B)
    if A.ndim != 2 or B.ndim != 2:
        raise ValueError(
            f"expected 2-D operands, got shapes {A.shape} and {B.shape}"
        )
    if A.shape[1] != B.shape[0]:
        raise ValueError(
            f"inner dimensions disagree: {A.shape} @ {B.shape}"
        )
    cutoff = check_positive_int(cutoff, "cutoff")
    if cutoff < 2:
        raise ValueError(f"cutoff must be at least 2, got {cutoff}")
    if not np.issubdtype(A.dtype, np.complexfloating) and not np.issubdtype(
        B.dtype, np.complexfloating
    ):
        A = A.astype(np.float64, copy=False)
        B = B.astype(np.float64, copy=False)
    return _sw_recurse(A, B, cutoff)


def _sw_recurse(A: np.ndarray, B: np.ndarray, cutoff: int) -> np.ndarray:
    m, k = A.shape
    n = B.shape[1]
    if min(m, k, n) < cutoff:
        return A @ B
    out_m, out_n = m, n
    A = _pad_to_even(A)
    B = _pad_to_even(B)
    A11, A12, A21, A22 = _split(A)
    B11, B12, B21, B22 = _split(B)

    # Winograd's 8 linear combinations of the inputs.
    S1 = A21 + A22
    S2 = S1 - A11
    S3 = A11 - A21
    S4 = A12 - S2
    T1 = B12 - B11
    T2 = B22 - T1
    T3 = B22 - B12
    T4 = T2 - B21

    # 7 recursive multiplications.
    M1 = _sw_recurse(A11, B11, cutoff)
    M2 = _sw_recurse(A12, B21, cutoff)
    M3 = _sw_recurse(S4, B22, cutoff)
    M4 = _sw_recurse(A22, T4, cutoff)
    M5 = _sw_recurse(S1, T1, cutoff)
    M6 = _sw_recurse(S2, T2, cutoff)
    M7 = _sw_recurse(S3, T3, cutoff)

    # 7 linear combinations of the products.
    U1 = M1 + M2
    U2 = M1 + M6
    U3 = U2 + M7
    U4 = U2 + M5
    U5 = U4 + M3
    U6 = U3 - M4
    U7 = U3 + M5

    C = np.empty((A.shape[0], B.shape[1]), dtype=M1.dtype)
    h, w = A.shape[0] // 2, B.shape[1] // 2
    C[:h, :w] = U1
    C[:h, w:] = U5
    C[h:, :w] = U6
    C[h:, w:] = U7
    return C[:out_m, :out_n]


def classical_flop_count(n: int) -> int:
    """Flops of the classical ``n × n`` multiply: ``2 n^3 - n^2``."""
    n = check_positive_int(n, "n")
    return 2 * n**3 - n**2


def strassen_flop_count(n: int, levels: int) -> int:
    """Flops of Strassen–Winograd on ``n × n`` with *levels* recursions.

    After ``k`` levels there are ``7^k`` classical multiplies of size
    ``n / 2^k`` plus ``15`` block additions of size ``(n/2^ℓ)²`` at each
    level ``ℓ`` (Winograd's count).  Requires ``2^levels`` to divide
    ``n``.
    """
    n = check_positive_int(n, "n")
    levels = check_nonnegative_int(levels, "levels")
    if n % (1 << levels) != 0:
        raise ValueError(
            f"n={n} is not divisible by 2^levels={1 << levels}"
        )
    total = 0
    block = n
    mults = 1
    for _ in range(levels):
        block //= 2
        total += mults * 15 * block * block
        mults *= 7
    total += mults * classical_flop_count(block)
    return total


def required_rank_count(f: int, k: int) -> int:
    """CAPS rank-count constraint: exactly ``f · 7^k`` MPI ranks.

    The paper's experiments require ``1 <= f <= 6`` for the reference
    implementation (some of their own runs stretch this — 31 213 ranks is
    ``13 · 7^4``); we validate positivity only and record the constraint
    here.
    """
    f = check_positive_int(f, "f")
    k = check_nonnegative_int(k, "k")
    return f * 7**k


def matrix_dim_constraint(f: int, k: int, r: int = 0) -> int:
    """Smallest valid matrix dimension multiple for CAPS.

    The implementation of Ballard/Lipshitz et al. requires the matrix
    dimension to be a multiple of ``f · 2^r · 7^{⌈k/2⌉}`` (Section 4.2 of
    the paper).
    """
    f = check_positive_int(f, "f")
    k = check_nonnegative_int(k, "k")
    r = check_nonnegative_int(r, "r")
    return f * (1 << r) * 7 ** ((k + 1) // 2)
