"""Calibrated cost model constants and helpers.

The experiments report times in seconds; these constants anchor the
simulated times to the paper's hardware:

* link bandwidth — 2 GB/s per direction per link (Chen et al., quoted in
  Section 4.1 of the paper);
* per-rank flop rate — calibrated so that the 4-midplane CAPS run's
  computation time matches the paper's measured 0.554 s (Section 4.2);
  the resulting ≈2.4 GF/s per rank is comfortably below the PowerPC A2
  peak, as expected for Strassen–Winograd's memory-bound additions;
* L2 capacity — each Blue Gene/Q processor has 32 MB of shared L2; the
  paper attributes the super-linear 2→4 midplane speedup of the
  strong-scaling experiment to the working set exceeding the aggregate
  L2 on 2 midplanes (Section 4.3).  :func:`caps_memory_footprint`
  reproduces the paper's 18.55 GB computation, and
  :func:`l2_spill_penalty` converts the spill into a slowdown factor.
"""

from __future__ import annotations

from .._validation import (
    check_nonnegative_int,
    check_positive_float,
    check_positive_int,
)

__all__ = [
    "LINK_BANDWIDTH_GB_PER_S",
    "FLOP_RATE_PER_RANK",
    "L2_BYTES_PER_NODE",
    "WORD_BYTES",
    "CAPS_COMM_FACTOR",
    "caps_memory_footprint",
    "aggregate_l2",
    "l2_spill_penalty",
]

#: One Blue Gene/Q link, GB/s per direction.
LINK_BANDWIDTH_GB_PER_S: float = 2.0

#: Sustained Strassen–Winograd flop rate per MPI rank (flops/s),
#: calibrated to the paper's 0.554 s computation time on 4 midplanes.
FLOP_RATE_PER_RANK: float = 2.4e9

#: Shared L2 cache per compute node (32 MB).
L2_BYTES_PER_NODE: int = 32 * 1024 * 1024

#: Bytes per matrix element (double precision).
WORD_BYTES: int = 8

#: Words communicated per rank per CAPS BFS step, as a multiple of the
#: rank's local submatrix share at that level (leading constant of the
#: CAPS bandwidth cost; exposed for sensitivity studies).
CAPS_COMM_FACTOR: float = 12.0 / 7.0

#: Default slowdown applied to communication when the CAPS working set
#: spills out of aggregate L2 (the paper's 2-midplane effect).  L2 and
#: DDR bandwidth on Blue Gene/Q differ by well over this factor; 1.5 is
#: calibrated so the strong-scaling curves match the paper's measured
#: 2-to-8-midplane speedups (x3.3 current / x4.4 proposed).
DEFAULT_SPILL_SLOWDOWN: float = 1.5


def caps_memory_footprint(
    n: int, bfs_steps: int, word_bytes: int = WORD_BYTES
) -> float:
    """Total bytes needed to store all CAPS matrices across processors.

    The paper's formula (Section 4.3): ``3 · (7/4)^k · w · n²`` bytes for
    ``k`` BFS steps and word size ``w`` — three matrices, each blown up
    by the ``(7/4)^k`` replication of the BFS recursion.

    Examples
    --------
    >>> round(caps_memory_footprint(9408, 4) / 2**30, 2)   # paper: 18.55 GB
    18.55
    """
    n = check_positive_int(n, "n")
    bfs_steps = check_nonnegative_int(bfs_steps, "bfs_steps")
    return 3.0 * (7.0 / 4.0) ** bfs_steps * word_bytes * n * n


def aggregate_l2(num_nodes: int) -> int:
    """Combined L2 bytes of *num_nodes* Blue Gene/Q nodes."""
    num_nodes = check_positive_int(num_nodes, "num_nodes")
    return num_nodes * L2_BYTES_PER_NODE


def l2_spill_penalty(
    n: int,
    bfs_steps: int,
    num_nodes: int,
    buffer_factor: float = 2.0,
    slowdown: float = DEFAULT_SPILL_SLOWDOWN,
) -> float:
    """Slowdown factor when the CAPS working set exceeds aggregate L2.

    The working set is the matrix footprint times *buffer_factor* (the
    paper adds "a similar amount of space for the communications library
    buffers", i.e. factor 2).  Returns *slowdown* when it does not fit
    in the nodes' combined L2, else 1.0.
    """
    check_positive_float(buffer_factor, "buffer_factor")
    check_positive_float(slowdown, "slowdown")
    need = caps_memory_footprint(n, bfs_steps) * buffer_factor
    if need > aggregate_l2(num_nodes):
        return slowdown
    return 1.0
