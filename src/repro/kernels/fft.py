"""Distributed FFT communication model.

The paper's future work singles out FFT as a kernel whose higher
communication-to-computation ratio should make it *more* sensitive to
partition bisection bandwidth than fast matrix multiplication.  The
dominant communication of a distributed 1-D (or pencil-decomposed
multi-dimensional) FFT is the global **transpose**: an all-to-all in
which every rank sends ``local_elements / P`` to every other rank.

This module provides the volume accounting; the transfer schedule comes
from :func:`repro.netsim.collectives.pairwise_alltoall` and the
experiment harness in :mod:`repro.experiments.futurekernels`.
"""

from __future__ import annotations

import math

from .._validation import check_positive_int
from .costmodel import WORD_BYTES

__all__ = [
    "fft_flops",
    "fft_transpose_words_per_rank",
    "fft_transpose_block_words",
    "fft_flops_per_word",
]

#: Complex double = 16 bytes per element.
COMPLEX_BYTES = 2 * WORD_BYTES


def fft_flops(n: int) -> float:
    """Flops of an ``n``-point complex FFT: ``5 n log2 n`` (standard)."""
    n = check_positive_int(n, "n")
    return 5.0 * n * math.log2(max(n, 2))


def fft_transpose_words_per_rank(n: int, num_ranks: int) -> float:
    """Complex words each rank sends in one global transpose.

    Each rank holds ``n / P`` elements and re-partitions them across all
    ranks: ``n/P · (P−1)/P ≈ n/P`` words leave the rank.
    """
    n = check_positive_int(n, "n")
    p = check_positive_int(num_ranks, "num_ranks")
    local = n / p
    return local * (p - 1) / p


def fft_transpose_block_words(n: int, num_ranks: int) -> float:
    """Complex words per rank pair in the transpose: ``n / P²``."""
    n = check_positive_int(n, "n")
    p = check_positive_int(num_ranks, "num_ranks")
    return n / (p * p)


def fft_flops_per_word(n: int, num_ranks: int) -> float:
    """Computation-to-communication ratio of the distributed FFT.

    ``O(log n)`` flops per transferred word — far below matmul's
    ``O(n / sqrt(P))``, which is exactly why the paper expects the
    bisection to dominate FFT wall-clock.
    """
    per_rank_flops = fft_flops(n) / num_ranks
    words = fft_transpose_words_per_rank(n, num_ranks)
    if words == 0:
        return math.inf
    return per_rank_flops / words
