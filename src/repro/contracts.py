"""Runtime contract sanitizer, enabled by ``REPRO_CHECK=1``.

The static-analysis pass (:mod:`repro.staticcheck`) catches contract
violations that are visible in source; this module catches the ones
that are only visible in *data*: a NaN smuggled into a capacity plane,
a float32 array silently widened, a non-contiguous view handed to a
CSR solver, a writable buffer escaping :class:`PathMatrix`.  With
``REPRO_CHECK=1`` (declared in :mod:`repro.env`) the checks run at
:class:`~repro.netsim.batchroute.PathMatrix` /
:class:`~repro.netsim.stacked.StackedPathMatrix` construction and at
fairness/fluid solver entry; CI runs one differential leg with the
contracts hot and asserts results stay bit-identical to the cold run.

All checks are **read-only**: they may raise :class:`ContractError`
but never modify, copy, or reorder data, which is what makes the
bit-identity guarantee trivial.  The disabled path costs one
``repro.env.check_enabled()`` flag read per instrumented entry.
"""

from __future__ import annotations

import numpy as np

from . import env

__all__ = [
    "ContractError",
    "enabled",
    "check_array",
    "check_path_matrix",
    "check_stacked_matrix",
    "check_solver_inputs",
]


class ContractError(AssertionError):
    """A runtime data contract was violated (``REPRO_CHECK=1``)."""


def enabled() -> bool:
    """Whether the sanitizer is on (``REPRO_CHECK``, read per call)."""
    return env.check_enabled()


def check_array(
    name: str,
    arr: np.ndarray,
    *,
    dtype: type | None = None,
    ndim: int | None = None,
    contiguous: bool = True,
    finite: bool = False,
    nonnegative: bool = False,
    readonly: bool = False,
) -> None:
    """Assert one array's shape/dtype/contiguity/value contract.

    *finite* rejects NaN and ±inf; *nonnegative* rejects values < 0
    (NaN also fails it); *readonly* asserts the writeable flag is off
    — the immutability the shared-path-buffer design depends on.
    """
    if not isinstance(arr, np.ndarray):
        raise ContractError(
            f"{name}: expected numpy.ndarray, got {type(arr).__name__}"
        )
    if dtype is not None and arr.dtype != np.dtype(dtype):
        raise ContractError(
            f"{name}: expected dtype {np.dtype(dtype)}, got {arr.dtype}"
        )
    if ndim is not None and arr.ndim != ndim:
        raise ContractError(
            f"{name}: expected {ndim}-D, got {arr.ndim}-D shape "
            f"{arr.shape}"
        )
    if contiguous and not arr.flags.c_contiguous:
        raise ContractError(f"{name}: array is not C-contiguous")
    if readonly and arr.flags.writeable:
        raise ContractError(
            f"{name}: buffer is writable; shared CSR planes must be "
            f"read-only"
        )
    if finite and arr.size and not np.isfinite(arr).all():
        bad = int(np.flatnonzero(~np.isfinite(arr).ravel())[0])
        raise ContractError(
            f"{name}: non-finite value {arr.ravel()[bad]!r} at flat "
            f"index {bad}"
        )
    if nonnegative and arr.size and not bool((arr >= 0).all()):
        ok = arr >= 0
        bad = int(np.flatnonzero(~ok.ravel())[0])
        raise ContractError(
            f"{name}: negative value {arr.ravel()[bad]!r} at flat "
            f"index {bad}"
        )


def check_path_matrix(pm) -> None:
    """Construction contract of a :class:`PathMatrix` (``REPRO_CHECK``)."""
    check_array("PathMatrix.link_ids", pm.link_ids,
                dtype=np.int64, ndim=1, readonly=True)
    check_array("PathMatrix.offsets", pm.offsets,
                dtype=np.int64, ndim=1, readonly=True)
    if len(pm.link_ids) and pm.link_ids.min() < 0:
        raise ContractError("PathMatrix.link_ids: negative link id")


def check_stacked_matrix(spm) -> None:
    """Construction contract of a :class:`StackedPathMatrix`."""
    check_array("StackedPathMatrix.link_ids", spm.link_ids,
                dtype=np.int64, ndim=1, readonly=True)
    check_array("StackedPathMatrix.offsets", spm.offsets,
                dtype=np.int64, ndim=1, readonly=True)
    check_array("StackedPathMatrix.flow_base", spm.flow_base,
                dtype=np.int64, ndim=1, readonly=True)
    check_array("StackedPathMatrix.link_base", spm.link_base,
                dtype=np.int64, ndim=1, readonly=True)
    check_array("StackedPathMatrix.capacities", spm.capacities,
                dtype=np.float64, ndim=1, readonly=True,
                finite=True, nonnegative=True)
    check_array("StackedPathMatrix.active", spm.active,
                dtype=np.bool_, ndim=1, readonly=True)


def check_solver_inputs(
    where: str,
    capacities: np.ndarray,
    demands: np.ndarray | None = None,
    volumes: np.ndarray | None = None,
) -> None:
    """Value contract at a fairness/fluid solver entry point.

    Capacities must be finite and non-negative; demands (rate caps)
    must be non-negative and NaN-free but may be ``inf`` (an uncapped
    flow); volumes must be finite and positive-checked by the caller
    (only finiteness is asserted here).
    """
    check_array(f"{where}: capacities", capacities,
                dtype=np.float64, ndim=1, finite=True, nonnegative=True,
                contiguous=False)
    if demands is not None:
        check_array(f"{where}: demands", demands,
                    ndim=1, nonnegative=True, contiguous=False)
        if demands.size and bool(np.isnan(demands).any()):
            raise ContractError(f"{where}: demands: NaN rate cap")
    if volumes is not None:
        check_array(f"{where}: volumes", volumes,
                    ndim=1, finite=True, contiguous=False)
