"""Determinism rules: randomness, wall-clock time, set iteration.

Every result in this reproduction must be a pure function of explicit
seeds — the serial≡parallel, vector≡scalar, and shm≡pickle contracts
are all bit-exact comparisons, and one stray global-RNG draw or
wall-clock read quietly voids them.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from .core import FileContext, Finding, Rule, register_rule, resolved_name

__all__ = [
    "UnseededRandomRule",
    "WallclockRule",
    "SetOrderRule",
]

#: ``random``-module attributes that are *safe*: constructing an
#: explicitly seeded generator object.  Everything else on the module
#: is a draw from (or a mutation of) the hidden global RNG, and
#: ``SystemRandom`` is OS entropy — unseedable by definition.
_RANDOM_OK = frozenset({"Random"})

#: ``numpy.random`` attributes that are safe: generator/seed machinery
#: rather than draws from the hidden legacy global state.
_NP_RANDOM_OK = frozenset({
    "default_rng",
    "SeedSequence",
    "Generator",
    "RandomState",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "MT19937",
    "SFC64",
})

#: ``time``-module calls that read the wall clock (or stall on it).
_WALLCLOCK = frozenset({
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.sleep",
})

_DATETIME_NOW = frozenset({
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})


@register_rule
class UnseededRandomRule(Rule):
    """Unseeded randomness: the global ``random``/``np.random`` state,
    ``SystemRandom``, and ``os.urandom``."""

    id = "unseeded-random"
    summary = (
        "randomness must flow through random.Random(seed) or "
        "numpy SeedSequence/default_rng(seed), never the global RNGs"
    )
    hint = (
        "construct random.Random(seed) or np.random.default_rng(seed) "
        "from an explicit seed (see repro.parallel.split_seeds)"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = resolved_name(ctx.aliases, node.func)
                if name is None:
                    continue
                bad = self._classify(name)
                if bad:
                    yield self.finding(ctx, node, bad)
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                for alias in node.names:
                    full = f"{base}.{alias.name}"
                    bad = self._classify(full)
                    if bad:
                        yield self.finding(
                            ctx, node,
                            f"importing {full} pulls in nondeterminism: "
                            f"{bad}",
                        )

    @staticmethod
    def _classify(name: str) -> str | None:
        if name == "os.urandom":
            return "os.urandom is OS entropy; results become irreproducible"
        if name == "random.SystemRandom":
            return (
                "random.SystemRandom draws OS entropy and cannot be "
                "seeded"
            )
        if name.startswith("random."):
            attr = name.split(".", 1)[1]
            if "." not in attr and attr not in _RANDOM_OK:
                return (
                    f"random.{attr} uses the hidden module-global RNG; "
                    f"results depend on import order and call history"
                )
        if name.startswith("numpy.random."):
            attr = name.split(".", 2)[2]
            if "." not in attr and attr not in _NP_RANDOM_OK:
                return (
                    f"numpy.random.{attr} uses the legacy global "
                    f"state; results depend on call history"
                )
        return None


@register_rule
class WallclockRule(Rule):
    """Wall-clock reads outside the observability layer."""

    id = "wallclock"
    summary = (
        "time.*/datetime.now belong to repro.observability; results "
        "must not depend on the clock"
    )
    hint = (
        "move timing into repro.observability spans, or suppress with "
        "a reason if the read cannot influence results"
    )

    #: The one module whose whole job is timing.
    _SANCTIONED = ("repro/observability.py",)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.is_module(*self._SANCTIONED):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = resolved_name(ctx.aliases, node.func)
            if name in _WALLCLOCK or name in _DATETIME_NOW:
                yield self.finding(
                    ctx, node,
                    f"{name} reads the wall clock outside "
                    f"repro.observability",
                )


def _is_set_expr(node: ast.AST) -> bool:
    """A set display, set comprehension, or ``set(...)`` call."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


@register_rule
class SetOrderRule(Rule):
    """Set iteration order leaking into ordered output."""

    id = "set-order"
    summary = (
        "iterating a set into a list/tuple/join or an accumulating "
        "loop bakes hash order into results"
    )
    hint = "wrap the set in sorted(...) before building ordered output"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                fn = node.func
                # list({...}) / tuple({...})
                if (
                    isinstance(fn, ast.Name)
                    and fn.id in ("list", "tuple")
                    and node.args
                    and _is_set_expr(node.args[0])
                ):
                    yield self.finding(
                        ctx, node,
                        f"{fn.id}() over a set produces hash-ordered "
                        f"output",
                    )
                # sep.join({...})
                elif (
                    isinstance(fn, ast.Attribute)
                    and fn.attr == "join"
                    and node.args
                    and _is_set_expr(node.args[0])
                ):
                    yield self.finding(
                        ctx, node,
                        "str.join over a set produces hash-ordered "
                        "output",
                    )
            elif isinstance(node, ast.ListComp):
                if any(_is_set_expr(gen.iter) for gen in node.generators):
                    yield self.finding(
                        ctx, node,
                        "list comprehension over a set produces "
                        "hash-ordered output",
                    )
            elif isinstance(node, ast.For):
                if _is_set_expr(node.iter) and self._accumulates(node):
                    yield self.finding(
                        ctx, node,
                        "loop over a set feeds ordered output "
                        "(append/yield/write)",
                    )

    @staticmethod
    def _accumulates(loop: ast.For) -> bool:
        for sub in ast.walk(loop):
            if isinstance(sub, (ast.Yield, ast.YieldFrom)):
                return True
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in ("append", "extend", "write",
                                      "writelines", "add_row")
            ):
                return True
        return False
