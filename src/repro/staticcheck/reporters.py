"""Text and JSON reporters for analyzer results."""

from __future__ import annotations

import json

from .core import RULES, AnalysisResult

__all__ = ["render_text", "render_json"]


def render_text(result: AnalysisResult, *, verbose_suppressed: bool = False) -> str:
    """Human-oriented report: one ``path:line:col`` block per finding."""
    lines: list[str] = []
    for f in result.findings:
        lines.append(f"{f.path}:{f.line}:{f.col + 1}: [{f.rule}] {f.message}")
        if f.hint:
            lines.append(f"    fix: {f.hint}")
    if verbose_suppressed:
        for f, reason in result.suppressed:
            lines.append(
                f"{f.path}:{f.line}:{f.col + 1}: [{f.rule}] suppressed: "
                f"{reason}"
            )
    lines.append(
        f"{len(result.findings)} finding"
        f"{'' if len(result.findings) == 1 else 's'} "
        f"({len(result.suppressed)} suppressed) in "
        f"{result.files_scanned} file"
        f"{'' if result.files_scanned == 1 else 's'}"
    )
    return "\n".join(lines)


def render_json(result: AnalysisResult) -> str:
    """Machine-oriented report (uploaded as a CI artifact)."""
    payload = {
        "version": 1,
        "files_scanned": result.files_scanned,
        "rules": {
            rid: RULES[rid].summary for rid in sorted(RULES)
        },
        "findings": [f.as_dict() for f in result.findings],
        "suppressed": [
            {**f.as_dict(), "reason": reason}
            for f, reason in result.suppressed
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
