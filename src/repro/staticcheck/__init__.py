"""reprolint: project-native static analysis for the repro codebase.

The rules encode this repo's *portable-determinism* contracts — the
invariants the test suite can only spot-check dynamically:

- determinism: no unseeded RNG, no wall-clock reads outside
  observability, no set-iteration feeding ordered output;
- float discipline: no ``==``/``!=`` on float-typed expressions;
- env hygiene: every ``REPRO_*`` knob flows through :mod:`repro.env`;
- shm safety: shared views stay read-only, segments get released;
- observability: experiment drivers open spans;
- checkpoint purity: journaled records embed no ephemeral identity.

Findings are suppressed per-line with an in-source audit trail::

    risky_call()  # repro: allow-<rule> <reason>

Use ``repro lint [paths...]`` from the CLI, or :func:`analyze_paths`
programmatically.
"""

from __future__ import annotations

from .core import (
    RULES,
    AnalysisResult,
    FileContext,
    Finding,
    Rule,
    analyze_file,
    analyze_paths,
    analyze_source,
    iter_python_files,
    parse_suppressions,
    register_rule,
    rule_ids,
)

# Importing the rule modules populates RULES via @register_rule.
from . import (  # noqa: E402,F401  (import for side effects)
    rules_checkpoint,
    rules_determinism,
    rules_env,
    rules_floats,
    rules_obs,
    rules_shm,
)
from .doccheck import check_knob_docs, find_docs_dir
from .reporters import render_json, render_text

__all__ = [
    "RULES",
    "AnalysisResult",
    "FileContext",
    "Finding",
    "Rule",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "check_knob_docs",
    "find_docs_dir",
    "iter_python_files",
    "parse_suppressions",
    "register_rule",
    "render_json",
    "render_text",
    "rule_ids",
]
