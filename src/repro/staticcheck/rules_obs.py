"""Observability coverage: experiment drivers must be traceable.

PR 3 threaded spans through the engine and drivers so production runs
can always answer "where did the time go"; a new driver entry point
without a span is a blind spot that only shows up during an incident.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from .core import FileContext, Finding, Rule, register_rule

__all__ = ["MissingSpanRule"]

#: Names that make a module-level function a *driver entry point*.
_DRIVER_SUFFIXES = ("_sweep", "_study", "_search")


def _is_driver_name(name: str) -> bool:
    if name.startswith("_"):
        return False
    return name.startswith("run_") or name.endswith(_DRIVER_SUFFIXES)


@register_rule
class MissingSpanRule(Rule):
    """Experiment-driver entry points without a span or @profiled."""

    id = "missing-span"
    summary = (
        "public run_*/-sweep/-study drivers in repro.experiments must "
        "open an observability span"
    )
    hint = (
        "decorate with @observability.profiled(\"experiment.<name>\") "
        "or wrap the body in `with observability.span(...)`"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if not ctx.in_package_dir("repro/experiments/"):
            return
        for node in ctx.tree.body:  # module level only
            if not isinstance(node, ast.FunctionDef):
                continue
            if not _is_driver_name(node.name):
                continue
            if self._has_profiled(node) or self._has_span(node):
                continue
            yield self.finding(
                ctx, node,
                f"driver entry point {node.name}() has no "
                f"observability span",
            )

    @staticmethod
    def _has_profiled(fn: ast.FunctionDef) -> bool:
        for dec in fn.decorator_list:
            target = dec.func if isinstance(dec, ast.Call) else dec
            name = (
                target.attr if isinstance(target, ast.Attribute)
                else target.id if isinstance(target, ast.Name)
                else ""
            )
            if name == "profiled":
                return True
        return False

    @staticmethod
    def _has_span(fn: ast.FunctionDef) -> bool:
        for node in ast.walk(fn):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            for item in node.items:
                call = item.context_expr
                if not isinstance(call, ast.Call):
                    continue
                target = call.func
                name = (
                    target.attr if isinstance(target, ast.Attribute)
                    else target.id if isinstance(target, ast.Name)
                    else ""
                )
                if name == "span":
                    return True
        return False
