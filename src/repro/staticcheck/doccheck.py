"""Knob ↔ docs drift check.

Every knob registered in :mod:`repro.env` must be documented in
``docs/performance.md`` or ``docs/observability.md``, and every
``REPRO_*`` name those two files mention must be a registered knob.
Run as part of ``repro lint`` whenever a ``docs/`` directory is
discoverable from the scanned paths.
"""

from __future__ import annotations

import re
from pathlib import Path

from .. import env
from .core import Finding

__all__ = ["DOC_FILES", "check_knob_docs", "find_docs_dir"]

#: The two files the contract names; other docs may mention knobs too,
#: but these are the canonical knob reference and are held in sync.
DOC_FILES = ("performance.md", "observability.md")

_KNOB_RE = re.compile(r"\bREPRO_[A-Z0-9_]+\b")


def find_docs_dir(start: Path) -> Path | None:
    """The repo's ``docs/`` directory, walking up from *start*."""
    cur = start.resolve()
    if cur.is_file():
        cur = cur.parent
    for candidate in (cur, *cur.parents):
        docs = candidate / "docs"
        if all((docs / name).is_file() for name in DOC_FILES):
            return docs
    return None


def check_knob_docs(docs_dir: Path) -> list[Finding]:
    """Findings for undocumented knobs and unregistered doc mentions."""
    findings: list[Finding] = []
    registered = {k.name for k in env.knobs()}
    documented: dict[str, tuple[str, int]] = {}

    for name in DOC_FILES:
        path = docs_dir / name
        rel = f"docs/{name}"
        for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            for m in _KNOB_RE.finditer(line):
                documented.setdefault(m.group(0), (rel, lineno))

    for knob in sorted(registered - set(documented)):
        findings.append(Finding(
            path=f"docs/{DOC_FILES[0]}",
            line=1,
            col=0,
            rule="knob-docs",
            message=(
                f"registered knob {knob} is documented in neither "
                f"docs/performance.md nor docs/observability.md"
            ),
            hint=f"add {knob} to the environment-knob table "
            f"(its declaration in repro.env has the docstring)",
        ))
    for knob in sorted(set(documented) - registered):
        rel, lineno = documented[knob]
        findings.append(Finding(
            path=rel,
            line=lineno,
            col=0,
            rule="knob-docs",
            message=(
                f"documented knob {knob} is not registered in "
                f"repro.env"
            ),
            hint="register it in repro.env or fix the doc reference",
        ))
    return findings
