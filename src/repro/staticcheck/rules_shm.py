"""Shared-memory safety rules.

The zero-copy transport hands workers read-only views into shared
segments (:func:`repro.sharedmem.attach_array`); every consumer of
those views relies on nobody writing through them, and every segment
placed by ``to_shared`` must eventually be released
(:func:`release_payload` parent-side, :func:`detach_segments`
worker-side) or ``/dev/shm`` leaks until reboot.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from .core import FileContext, Finding, Rule, register_rule

__all__ = ["ShmMutationRule", "ShmPairingRule"]


def _attach_names(scope: ast.AST) -> set[str]:
    """Names bound (anywhere in *scope*) from ``attach_array(...)``."""
    names: set[str] = set()
    for node in ast.walk(scope):
        if not isinstance(node, ast.Assign):
            continue
        call = node.value
        if not isinstance(call, ast.Call):
            continue
        fn = call.func
        fn_name = (
            fn.id if isinstance(fn, ast.Name)
            else fn.attr if isinstance(fn, ast.Attribute)
            else None
        )
        if fn_name != "attach_array":
            continue
        for tgt in node.targets:
            if isinstance(tgt, ast.Name):
                names.add(tgt.id)
    return names


@register_rule
class ShmMutationRule(Rule):
    """Writes through arrays attached from shared memory."""

    id = "shm-mutation"
    summary = (
        "arrays from sharedmem.attach_array are shared read-only "
        "views; writing through them corrupts every consumer"
    )
    hint = (
        "copy the array (arr.copy()) before mutating, or restructure "
        "so the producer writes before sharing"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        # Scope per function (plus module top level): a name rebound
        # in another function is a different variable.
        scopes: list[ast.AST] = [ctx.tree]
        scopes.extend(
            n for n in ast.walk(ctx.tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        seen: set[tuple[int, int]] = set()
        for scope in scopes:
            attached = _attach_names(scope)
            for node in ast.walk(scope):
                f = None
                if isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for tgt in targets:
                        if (
                            isinstance(tgt, ast.Subscript)
                            and isinstance(tgt.value, ast.Name)
                            and tgt.value.id in attached
                        ):
                            f = self.finding(
                                ctx, node,
                                f"write through shared view "
                                f"{tgt.value.id!r} (attached from "
                                f"shared memory)",
                            )
                if (
                    f is None
                    and isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Attribute)
                    and node.targets[0].attr == "writeable"
                    and isinstance(node.targets[0].value, ast.Attribute)
                    and node.targets[0].value.attr == "flags"
                    and isinstance(node.value, ast.Constant)
                    and node.value.value is True
                    and not ctx.is_module("repro/sharedmem.py")
                ):
                    f = self.finding(
                        ctx, node,
                        "re-enabling .flags.writeable on a shared "
                        "buffer defeats the read-only contract",
                    )
                if f is not None and (f.line, f.col) not in seen:
                    seen.add((f.line, f.col))
                    yield f


@register_rule
class ShmPairingRule(Rule):
    """``to_shared``/``attach_array`` without a release path in sight."""

    id = "shm-pairing"
    summary = (
        "a module that places or attaches shared segments must also "
        "reference release_payload/detach_segments"
    )
    hint = (
        "pair the encode/attach with sharedmem.release_payload "
        "(parent) or sharedmem.detach_segments (worker teardown)"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        releases = {"release_payload", "detach_segments", "close",
                    "unlink"}
        has_release = any(
            (isinstance(n, ast.Attribute) and n.attr in releases)
            or (isinstance(n, ast.Name) and n.id in releases)
            or (isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
                and n.name in releases)
            for n in ast.walk(ctx.tree)
        )
        if has_release:
            return

        # Calls inside to_shared/from_shared methods are the codec
        # definitions themselves: segment ownership lies with the
        # transport that invokes them, not with the class.
        codec_spans: list[tuple[int, int]] = []
        for n in ast.walk(ctx.tree):
            if (
                isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
                and n.name in ("to_shared", "from_shared")
            ):
                codec_spans.append((n.lineno, n.end_lineno or n.lineno))

        def in_codec(node: ast.AST) -> bool:
            return any(a <= node.lineno <= b for a, b in codec_spans)

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            fn = node.func
            fn_name = (
                fn.id if isinstance(fn, ast.Name)
                else fn.attr if isinstance(fn, ast.Attribute)
                else None
            )
            if fn_name in ("to_shared", "attach_array", "put_array") and (
                not in_codec(node)
            ):
                yield self.finding(
                    ctx, node,
                    f"{fn_name}() places/attaches shared segments but "
                    f"this module never releases them",
                )
