"""Float discipline: no ``==``/``!=`` on float-typed expressions.

The paper's geometry rankings are decided by comparing computed
bandwidths; an exact float comparison that happens to work today is a
refactor away from flipping a table row.  Comparisons must go through
an epsilon helper (``math.isclose``, ``np.isclose``, a module
``_EPS``) or be suppressed with a reason explaining why exactness is
guaranteed (e.g. a value stored, never computed).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from .core import FileContext, Finding, Rule, register_rule

__all__ = ["FloatEqRule"]


def _is_floatish(node: ast.AST) -> str | None:
    """Why *node* is float-typed, or None if it cannot be shown to be.

    Deliberately conservative: a float literal, a ``float(...)`` cast,
    or a true division are unambiguous; everything else (names,
    attribute loads) is unknown and left alone — this is a contract
    linter, not a type checker.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return f"float literal {node.value!r}"
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "float"
    ):
        return "float(...) cast"
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
        return "true-division result"
    if isinstance(node, ast.UnaryOp):
        return _is_floatish(node.operand)
    return None


@register_rule
class FloatEqRule(Rule):
    """``==`` / ``!=`` where a comparand is provably float-typed."""

    id = "float-eq"
    summary = (
        "no ==/!= against float literals, float() casts, or division "
        "results; use an epsilon comparison"
    )
    hint = (
        "compare with math.isclose/np.isclose or a grouped _EPS "
        "threshold; suppress with a reason when exactness is a stored "
        "invariant"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            comparands = [node.left, *node.comparators]
            for op, left, right in zip(
                node.ops, comparands, comparands[1:]
            ):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                why = _is_floatish(left) or _is_floatish(right)
                if why:
                    sym = "==" if isinstance(op, ast.Eq) else "!="
                    yield self.finding(
                        ctx, node,
                        f"float {sym} comparison against {why}",
                    )
