"""Analyzer core: findings, the rule registry, and suppressions.

The reproduction's headline claims are exact-arithmetic comparisons
(bit-identical serial/parallel, vector/scalar, pickle/shm results), so
the hazards worth linting for are the ones that silently break that
contract: unseeded randomness, wall-clock reads, float equality,
ad-hoc environment knobs, shared-memory mutation.  Rules are small AST
visitors registered in :data:`RULES`; the driver parses each file
once, hands every rule the same :class:`FileContext`, and filters the
emitted findings through per-line suppression comments::

    dangerous_thing()  # repro: allow-<rule-id> <reason>

A suppression must name the rule it silences and carry a non-empty
reason (a bare ``allow-`` is itself reported, as
``suppression-missing-reason``).  The comment may sit on the flagged
line or on the line directly above it (for statements too long to
share a line with their justification).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "Finding",
    "FileContext",
    "Rule",
    "RULES",
    "register_rule",
    "rule_ids",
    "AnalysisResult",
    "analyze_source",
    "analyze_file",
    "analyze_paths",
    "dotted_name",
    "resolved_name",
    "import_aliases",
]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    hint: str = ""

    def as_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "hint": self.hint,
        }


class Rule:
    """Base class for one lint rule.

    Subclasses set :attr:`id` (kebab-case, used in suppression
    comments), :attr:`summary` (one line for the catalogue), and
    :attr:`hint` (the fix suggestion attached to findings), and
    implement :meth:`check`.
    """

    id: str = ""
    summary: str = ""
    hint: str = ""

    def check(self, ctx: "FileContext") -> Iterable[Finding]:
        raise NotImplementedError

    def finding(
        self,
        ctx: "FileContext",
        node: ast.AST | int,
        message: str,
        hint: str | None = None,
    ) -> Finding:
        line = node if isinstance(node, int) else node.lineno
        col = 0 if isinstance(node, int) else node.col_offset
        return Finding(
            path=ctx.display_path,
            line=line,
            col=col,
            rule=self.id,
            message=message,
            hint=self.hint if hint is None else hint,
        )


#: The registry: rule id -> rule instance.  Importing
#: :mod:`repro.staticcheck` populates it from the ``rules_*`` modules.
RULES: dict[str, Rule] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and register a rule by its id."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"{cls.__name__} has no rule id")
    if rule.id in RULES and type(RULES[rule.id]) is not cls:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    RULES[rule.id] = rule
    return cls


def rule_ids() -> tuple[str, ...]:
    return tuple(sorted(RULES))


# --------------------------------------------------------------------- #
# Name resolution helpers shared by the rules


def import_aliases(tree: ast.AST) -> dict[str, str]:
    """Map of local names to canonical dotted module/object paths.

    ``import numpy as np`` maps ``np`` → ``numpy``; ``from numpy import
    random as nr`` maps ``nr`` → ``numpy.random``; ``from os import
    urandom`` maps ``urandom`` → ``os.urandom``.  Relative imports map
    to their trailing module path (``from ..sharedmem import
    attach_array`` → ``sharedmem.attach_array``), enough for the
    suffix-matching rules use.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                aliases[a.asname or a.name.split(".")[0]] = (
                    a.name if a.asname else a.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            for a in node.names:
                if a.name == "*":
                    continue
                full = f"{base}.{a.name}" if base else a.name
                aliases[a.asname or a.name] = full
    return aliases


def dotted_name(node: ast.AST) -> str | None:
    """The literal dotted source text of a Name/Attribute chain.

    ``self.ckpt.record`` → ``"self.ckpt.record"``; anything with a
    non-name base (calls, subscripts) returns None.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def resolved_name(aliases: dict[str, str], node: ast.AST) -> str | None:
    """Like :func:`dotted_name` but with the base resolved via imports.

    ``np.random.rand`` under ``import numpy as np`` resolves to
    ``"numpy.random.rand"``; a chain whose base is not an imported
    name resolves to None.
    """
    raw = dotted_name(node)
    if raw is None:
        return None
    head, _, rest = raw.partition(".")
    base = aliases.get(head)
    if base is None:
        return None
    return f"{base}.{rest}" if rest else base


# --------------------------------------------------------------------- #
# Per-file context


@dataclass
class FileContext:
    """Everything a rule needs about one parsed file."""

    path: Path
    display_path: str
    source: str
    tree: ast.AST
    aliases: dict[str, str] = field(default_factory=dict)

    @classmethod
    def parse(
        cls, source: str, path: Path, display_path: str | None = None
    ) -> "FileContext":
        tree = ast.parse(source, filename=str(path))
        ctx = cls(
            path=path,
            display_path=display_path or path.as_posix(),
            source=source,
            tree=tree,
        )
        ctx.aliases = import_aliases(tree)
        return ctx

    def is_module(self, *posix_suffixes: str) -> bool:
        """Whether this file *is* one of the given repo-relative files.

        Matched on the posix path suffix so it works both on the real
        tree (``src/repro/observability.py``) and on test fixtures
        that mirror the layout under a tmp dir.
        """
        p = self.path.as_posix()
        return any(p.endswith(s) for s in posix_suffixes)

    def in_package_dir(self, fragment: str) -> bool:
        """Whether the file lives under a directory path fragment
        (e.g. ``repro/experiments/``)."""
        return fragment in self.path.as_posix()


# --------------------------------------------------------------------- #
# Suppressions

_ALLOW_RE = re.compile(
    r"#\s*repro:\s*allow-(?P<rule>[a-z0-9][a-z0-9-]*)(?P<reason>.*)$"
)


def parse_suppressions(source: str) -> dict[int, dict[str, str]]:
    """Per-line suppressions: ``{line: {rule_id: reason}}``.

    Parsed from real COMMENT tokens (not substring search), so the
    marker inside a string literal does not suppress anything.
    """
    out: dict[int, dict[str, str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = _ALLOW_RE.search(tok.string)
            if not m:
                continue
            line = tok.start[0]
            out.setdefault(line, {})[m.group("rule")] = (
                m.group("reason").strip()
            )
    except tokenize.TokenError:
        pass
    return out


# --------------------------------------------------------------------- #
# Driver


@dataclass
class AnalysisResult:
    """Outcome of one analyzer run."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[tuple[Finding, str]] = field(default_factory=list)
    files_scanned: int = 0

    def extend(self, other: "AnalysisResult") -> None:
        self.findings.extend(other.findings)
        self.suppressed.extend(other.suppressed)
        self.files_scanned += other.files_scanned

    @property
    def clean(self) -> bool:
        return not self.findings


def _select_rules(only: Sequence[str] | None) -> list[Rule]:
    if only is None:
        return [RULES[rid] for rid in sorted(RULES)]
    unknown = sorted(set(only) - set(RULES))
    if unknown:
        raise KeyError(
            f"unknown rule id(s) {', '.join(unknown)}; "
            f"known: {', '.join(sorted(RULES))}"
        )
    return [RULES[rid] for rid in sorted(set(only))]


def analyze_source(
    source: str,
    path: str | Path = "<memory>",
    *,
    rules: Sequence[str] | None = None,
    display_path: str | None = None,
) -> AnalysisResult:
    """Run the rule set over one source string."""
    p = Path(path)
    result = AnalysisResult(files_scanned=1)
    disp = display_path or p.as_posix()
    try:
        ctx = FileContext.parse(source, p, disp)
    except SyntaxError as exc:
        result.findings.append(Finding(
            path=disp,
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            rule="parse-error",
            message=f"file does not parse: {exc.msg}",
            hint="fix the syntax error; unparseable files cannot be "
            "linted",
        ))
        return result

    suppressions = parse_suppressions(source)
    raw: list[Finding] = []
    for rule in _select_rules(rules):
        raw.extend(rule.check(ctx))

    for f in sorted(raw):
        reason = None
        for line in (f.line, f.line - 1):
            per_line = suppressions.get(line)
            if per_line is not None and f.rule in per_line:
                reason = per_line[f.rule]
                break
        if reason is None:
            result.findings.append(f)
        elif reason:
            result.suppressed.append((f, reason))
        else:
            # A suppression with no justification defeats the audit
            # trail the syntax exists for: keep the original finding
            # *and* flag the bare marker.
            result.findings.append(f)
            result.findings.append(Finding(
                path=disp,
                line=f.line,
                col=f.col,
                rule="suppression-missing-reason",
                message=(
                    f"suppression of {f.rule} has no reason; write "
                    f"'# repro: allow-{f.rule} <why this is safe>'"
                ),
                hint="state why the finding is a false positive or "
                "an accepted exception",
            ))
    return result


def analyze_file(
    path: str | Path,
    *,
    rules: Sequence[str] | None = None,
    root: Path | None = None,
) -> AnalysisResult:
    """Run the rule set over one file on disk."""
    p = Path(path)
    display = (
        p.relative_to(root).as_posix()
        if root is not None and p.is_relative_to(root)
        else p.as_posix()
    )
    source = p.read_text(encoding="utf-8")
    return analyze_source(source, p, rules=rules, display_path=display)


def iter_python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    """Every ``.py`` file under *paths*, sorted, caches skipped."""
    seen: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            candidates: Iterable[Path] = sorted(p.rglob("*.py"))
        elif p.suffix == ".py":
            candidates = [p]
        else:
            candidates = []
        for c in candidates:
            if "__pycache__" in c.parts or c in seen:
                continue
            seen.add(c)
            yield c


def analyze_paths(
    paths: Sequence[str | Path],
    *,
    rules: Sequence[str] | None = None,
    root: Path | None = None,
) -> AnalysisResult:
    """Run the rule set over files and directories."""
    result = AnalysisResult()
    for f in iter_python_files(paths):
        result.extend(analyze_file(f, rules=rules, root=root))
    result.findings.sort()
    result.suppressed.sort(key=lambda pair: pair[0])
    return result
