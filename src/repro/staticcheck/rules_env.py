"""Environment-knob hygiene: all ``os.environ`` reads flow through
:mod:`repro.env`.

Before the registry existed, six modules read seven ``REPRO_*`` knobs
ad hoc, each with its own truthiness vocabulary and each invisible to
the docs.  The registry makes every knob declared, uniformly parsed,
and drift-checked against the documentation — which only holds if no
new direct read sneaks in.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from .core import FileContext, Finding, Rule, register_rule, resolved_name

__all__ = ["EnvKnobRule"]

_GETTERS = frozenset({
    "os.getenv",
    "os.putenv",
    "os.unsetenv",
})


@register_rule
class EnvKnobRule(Rule):
    """Direct ``os.environ``/``os.getenv`` access outside repro.env."""

    id = "env-knob"
    summary = (
        "environment variables are read only via the repro.env "
        "registry (declared name, kind, default, doc)"
    )
    hint = (
        "register the knob in repro.env and read it with "
        "env.get_raw/get_flag/get_int"
    )

    #: The registry itself is where the reads are supposed to live.
    _SANCTIONED = ("repro/env.py",)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.is_module(*self._SANCTIONED):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute):
                if resolved_name(ctx.aliases, node) == "os.environ":
                    yield self.finding(
                        ctx, node,
                        "direct os.environ access bypasses the "
                        "repro.env knob registry",
                    )
            elif isinstance(node, ast.Name):
                # `from os import environ` / `from os import getenv`
                if ctx.aliases.get(node.id) == "os.environ" and (
                    isinstance(node.ctx, ast.Load)
                ):
                    yield self.finding(
                        ctx, node,
                        "direct os.environ access (imported name) "
                        "bypasses the repro.env knob registry",
                    )
            elif isinstance(node, ast.Call):
                name = resolved_name(ctx.aliases, node.func)
                if name in _GETTERS:
                    yield self.finding(
                        ctx, node,
                        f"{name} bypasses the repro.env knob registry",
                    )
