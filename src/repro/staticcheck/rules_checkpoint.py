"""Checkpoint-key purity: journaled records must be content-pure.

:class:`repro.resilience.SweepCheckpoint` resumes by content hash: a
record is reused iff its key matches a task in the new run.  Anything
process- or host-ephemeral inside a journaled object — a shared-memory
segment name, a pid, a wall-clock stamp — either breaks resume (keys
never match) or, worse, resurrects a dangling reference into the new
process (a segment name that no longer exists).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from .core import (
    FileContext,
    Finding,
    Rule,
    dotted_name,
    register_rule,
    resolved_name,
)

__all__ = ["CheckpointPurityRule"]

#: Attribute names that smell of process/host-ephemeral identity.
_EPHEMERAL_ATTRS = frozenset({"segment", "pid"})

#: Calls that produce per-process / per-moment values.
_EPHEMERAL_CALLS = frozenset({
    "os.getpid",
    "uuid.uuid1",
    "uuid.uuid4",
    "time.time",
    "time.time_ns",
    "time.monotonic",
})


@register_rule
class CheckpointPurityRule(Rule):
    """Ephemeral values flowing into a checkpoint ``record(...)``."""

    id = "checkpoint-purity"
    summary = (
        "objects journaled by SweepCheckpoint must not embed shm "
        "segment names, pids, or timestamps"
    )
    hint = (
        "journal only task-content-derived values; strip descriptors "
        "and pids before record()"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            fn = node.func
            if not (isinstance(fn, ast.Attribute) and fn.attr == "record"):
                continue
            receiver = (dotted_name(fn) or "").lower()
            if "ckpt" not in receiver and "checkpoint" not in receiver:
                continue
            for arg in [*node.args, *node.keywords]:
                sub_root = arg.value if isinstance(
                    arg, ast.keyword
                ) else arg
                for sub in ast.walk(sub_root):
                    impurity = self._impurity(ctx, sub)
                    if impurity:
                        yield self.finding(
                            ctx, node,
                            f"checkpoint record embeds {impurity}",
                        )

    @staticmethod
    def _impurity(ctx: FileContext, node: ast.AST) -> str | None:
        if isinstance(node, ast.Call):
            name = resolved_name(ctx.aliases, node.func)
            if name in _EPHEMERAL_CALLS:
                return f"{name}() (per-process/per-moment value)"
        if isinstance(node, ast.Attribute) and (
            node.attr in _EPHEMERAL_ATTRS
        ):
            return (
                f".{node.attr} (shared-memory segment names and pids "
                f"do not survive the process)"
            )
        if isinstance(node, ast.Name) and node.id == "SEGMENT_PREFIX":
            return "a shared-memory segment name"
        return None
