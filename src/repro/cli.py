"""Command-line interface: ``python -m repro`` / ``repro-nets``.

Subcommands
-----------
``machines``
    List the machine catalog with sizes and bisection bandwidths.
``analyze <machine>``
    Best/worst geometry per achievable size; flag improvable ones.
``geometry <dims...>``
    Inspect one partition geometry (bandwidth, node dims, shape).
``pairing <dims...>``
    Simulate the bisection pairing benchmark on a geometry.
``table <1-7>`` / ``figure <1-7>``
    Regenerate a paper table or figure as ASCII.
``advise <machine> <size> <available-dims...> --wait S --fraction F``
    Run the contention-aware scheduling advisor on a job.
``faults --machine M --size P --max-failures K``
    Geometry-robustness table: surviving bisection bandwidth of the
    default vs optimal geometry under sampled link failures.

``trace summarize <path>``
    Render the spans, counters, and cache stats of a recorded JSONL
    trace.
``lint [paths...]``
    Run the reprolint static-analysis pass (see
    :mod:`repro.staticcheck` and ``docs/static_analysis.md``); exits
    non-zero on unsuppressed findings unless ``--soft``.

The sweep-shaped subcommands (``pairing --sweep``, ``design-search``,
``variability``, ``faults``) accept ``--jobs N`` to evaluate their grids
across N worker processes (0 = auto-detect); results are bit-identical
to ``--jobs 1`` (see :mod:`repro.parallel`).  Note the distinction on
``variability``: ``--num-jobs`` is the *stream length* (identical jobs
per selection rule) while ``--jobs`` is, as everywhere else, the worker
process count.

The same sweep subcommands accept ``--trace PATH`` to record a JSONL
trace of the run (spans, counters, merged worker cache stats; see
:mod:`repro.observability`), equivalent to setting ``REPRO_TRACE=PATH``
in the environment, and ``--checkpoint PATH`` to journal completed
tasks to a JSONL checkpoint: a killed sweep re-run with the same
arguments and checkpoint resumes from the completed tasks and produces
bit-identical output (see :mod:`repro.resilience`).

``faults --fluid-sweep`` runs the flow-level fault scenario sweep on
the optimal geometry instead of the cut-arithmetic ranking table;
scenarios whose failures sever some antipodal pair are printed as
DEGRADED rows (with the disconnect witness) instead of aborting.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

__all__ = ["main", "build_parser"]


def _add_trace_flag(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--trace", metavar="PATH", default=None,
        help="record a JSONL observability trace of this run to PATH "
        "(same as REPRO_TRACE=PATH; inspect with 'trace summarize')",
    )


def _add_checkpoint_flag(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--checkpoint", metavar="PATH", default=None,
        help="journal completed sweep tasks to a JSONL checkpoint at "
        "PATH and resume from it on restart (bit-identical to an "
        "uninterrupted run)",
    )


def _add_transport_flag(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--transport", choices=["auto", "shm", "pickle"], default=None,
        help="how parallel sweep blocks move to workers: 'shm' forces "
        "zero-copy shared memory, 'pickle' forces per-chunk pickling, "
        "'auto' (default) picks shm when supported (same as REPRO_SHM)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-nets",
        description=(
            "Network Partitioning and Avoidable Contention (SPAA 2020) "
            "reproduction toolkit"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("machines", help="list the machine catalog")

    p = sub.add_parser("analyze", help="analyze a machine's allocations")
    p.add_argument("machine", help="machine name (e.g. mira, juqueen)")
    p.add_argument(
        "--improvable-only",
        action="store_true",
        help="show only sizes where geometry matters",
    )

    p = sub.add_parser("geometry", help="inspect a partition geometry")
    p.add_argument("dims", type=int, nargs="+", help="midplane dimensions")

    p = sub.add_parser("pairing", help="simulate the pairing benchmark")
    p.add_argument("dims", type=int, nargs="*", help="midplane dimensions")
    p.add_argument("--rounds", type=int, default=26)
    p.add_argument(
        "--sweep", metavar="MACHINE",
        help="instead of one geometry, sweep the best and worst "
        "geometries of every achievable size of MACHINE",
    )
    p.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for --sweep (0 = auto; default: 1)",
    )
    _add_trace_flag(p)
    _add_checkpoint_flag(p)
    _add_transport_flag(p)

    p = sub.add_parser("table", help="regenerate a paper table")
    p.add_argument("number", type=int, choices=range(1, 8))

    p = sub.add_parser("figure", help="regenerate a paper figure's data")
    p.add_argument("number", type=int, choices=range(1, 8))

    p = sub.add_parser(
        "design-search",
        help="rank machine geometries against a baseline (Section 5)",
    )
    p.add_argument("baseline", help="baseline machine (e.g. juqueen)")
    p.add_argument("--max-midplanes", type=int, default=56)
    p.add_argument("--top", type=int, default=10)
    p.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for candidate scoring (0 = auto)",
    )
    _add_trace_flag(p)
    _add_checkpoint_flag(p)
    _add_transport_flag(p)

    p = sub.add_parser(
        "variability",
        help="run-time spread of size-only requests (Section 4.3 risk)",
    )
    p.add_argument("machine")
    p.add_argument("size", type=int, help="job size in midplanes")
    p.add_argument("--num-jobs", type=int, default=100,
                   help="identical jobs per selection rule (default: 100)")
    p.add_argument("--fraction", type=float, default=0.6,
                   help="contention-bound fraction of run time")
    p.add_argument("--runtime", type=float, default=3600.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes, one selection rule each (0 = auto)",
    )
    _add_trace_flag(p)
    _add_checkpoint_flag(p)
    _add_transport_flag(p)

    p = sub.add_parser(
        "faults",
        help="geometry robustness under sampled link failures",
    )
    p.add_argument(
        "--machine", default="mira",
        help="machine name (default: mira)",
    )
    p.add_argument(
        "--size", type=int, default=16,
        help="partition size in midplanes (default: 16)",
    )
    p.add_argument(
        "--max-failures", type=int, default=8,
        help="largest sampled failure count K (default: 8)",
    )
    p.add_argument(
        "--trials", type=int, default=20,
        help="failure draws per failure count (default: 20)",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the trial grid (0 = auto)",
    )
    p.add_argument(
        "--fluid-sweep", action="store_true",
        help="run the flow-level fault scenario sweep on the optimal "
        "geometry (batch fault-masked routing); disconnected "
        "scenarios appear as DEGRADED rows instead of aborting",
    )
    _add_trace_flag(p)
    _add_checkpoint_flag(p)
    _add_transport_flag(p)

    p = sub.add_parser(
        "lint",
        help="run the reprolint static-analysis pass "
        "(determinism, float-discipline, shm contracts)",
    )
    p.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to scan (default: src)",
    )
    p.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="report format (default: text)",
    )
    p.add_argument(
        "--output", metavar="PATH", default=None,
        help="write the report to PATH instead of stdout",
    )
    p.add_argument(
        "--soft", action="store_true",
        help="report findings but always exit 0 (advisory pass, used "
        "for benchmarks/ in CI)",
    )
    p.add_argument(
        "--rules", metavar="ID[,ID...]", default=None,
        help="comma-separated rule ids to run (default: all; see "
        "docs/static_analysis.md)",
    )
    p.add_argument(
        "--no-docs-check", action="store_true",
        help="skip the REPRO_* knob <-> docs drift check",
    )
    p.add_argument(
        "--show-suppressed", action="store_true",
        help="also list suppressed findings with their reasons",
    )

    p = sub.add_parser(
        "trace",
        help="inspect a recorded JSONL observability trace",
    )
    p.add_argument(
        "action", choices=["summarize"],
        help="what to do with the trace file",
    )
    p.add_argument("path", help="JSONL trace written by --trace/REPRO_TRACE")

    p = sub.add_parser("advise", help="scheduling advisor for a hinted job")
    p.add_argument("machine")
    p.add_argument("size", type=int, help="job size in midplanes")
    p.add_argument(
        "available", type=int, nargs="+",
        help="geometry currently available (midplane dims)",
    )
    p.add_argument(
        "--wait", type=float, default=600.0,
        help="expected seconds until an optimal partition frees up",
    )
    p.add_argument(
        "--runtime", type=float, default=3600.0,
        help="estimated runtime on an optimal partition (s)",
    )
    p.add_argument(
        "--fraction", type=float, default=0.5,
        help="contention-bound fraction of the runtime [0, 1]",
    )
    return parser


def _cmd_machines() -> int:
    from .analysis.report import render_table
    from .machines.catalog import MACHINES

    rows = [
        {
            "name": m.name,
            "midplanes": m.num_midplanes,
            "nodes": m.num_nodes,
            "geometry": m.midplane_dims,
            "bisection": m.bisection_bandwidth(),
        }
        for m in MACHINES.values()
    ]
    print(
        render_table(
            rows,
            ["name", "geometry", "midplanes", "nodes", "bisection"],
            title="Blue Gene/Q machine catalog",
        )
    )
    return 0


def _cmd_analyze(machine_name: str, improvable_only: bool) -> int:
    from .allocation.optimizer import best_worst_table
    from .analysis.report import render_table
    from .machines.catalog import get_machine

    machine = get_machine(machine_name)
    rows = []
    for r in best_worst_table(machine):
        if improvable_only and not r.is_improved:
            continue
        rows.append(
            {
                "midplanes": r.num_midplanes,
                "nodes": r.num_nodes,
                "worst": r.current.dims,
                "worst_bw": r.current_bw,
                "best": r.proposed.dims,
                "best_bw": r.proposed_bw,
                "gain": f"x{r.improvement:.2f}",
            }
        )
    print(
        render_table(
            rows,
            ["midplanes", "nodes", "worst", "worst_bw", "best",
             "best_bw", "gain"],
            title=f"{machine.name} {machine.midplane_dims}: geometry "
            "best/worst per size",
        )
    )
    return 0


def _cmd_geometry(dims: Sequence[int]) -> int:
    from .allocation.geometry import PartitionGeometry

    geo = PartitionGeometry(tuple(dims))
    print(f"geometry        : {geo.label()}")
    print(f"midplanes       : {geo.num_midplanes}")
    print(f"compute nodes   : {geo.num_nodes}")
    print(f"node dimensions : {geo.node_dims}")
    print(f"bisection (norm): {geo.normalized_bisection_bandwidth}")
    print(f"bisection (GB/s): {geo.bisection_bandwidth_gb_per_s():.0f}")
    print(f"BW per node     : {geo.bandwidth_per_node:.4f}")
    print(f"ring-shaped     : {geo.is_ring()}")
    return 0


def _cmd_pairing(
    dims: Sequence[int],
    rounds: int,
    sweep: str | None,
    jobs: int,
    checkpoint: str | None = None,
    transport: str | None = None,
) -> int:
    from .allocation.geometry import PartitionGeometry
    from .experiments.pairing import PairingParameters, run_pairing

    params = PairingParameters(rounds=rounds)
    if sweep is not None:
        return _cmd_pairing_sweep(sweep, params, jobs, checkpoint, transport)
    if not dims:
        raise ValueError(
            "pairing needs a geometry (midplane dims) or --sweep MACHINE"
        )
    geo = PartitionGeometry(tuple(dims))
    res = run_pairing(geo, params)
    print(f"geometry      : {geo.label()} ({geo.num_nodes} nodes)")
    print(f"pairs         : {res.num_flows}")
    print(f"rate per flow : {res.min_rate:.3f}..{res.max_rate:.3f} GB/s")
    print(f"time          : {res.time_seconds:.2f} s")
    return 0


def _cmd_pairing_sweep(
    machine_name: str, params, jobs: int, checkpoint: str | None = None,
    transport: str | None = None,
) -> int:
    from .allocation.optimizer import best_worst_table
    from .analysis.report import render_table
    from .experiments.pairing import run_pairing_sweep
    from .machines.catalog import get_machine

    machine = get_machine(machine_name)
    comparisons = best_worst_table(machine)
    geometries = []
    for r in comparisons:
        geometries.append(r.current)
        geometries.append(r.proposed)
    results = run_pairing_sweep(
        geometries, params, jobs=jobs, checkpoint=checkpoint,
        transport=transport,
    )
    rows = []
    for r, worst_res, best_res in zip(
        comparisons, results[0::2], results[1::2]
    ):
        rows.append(
            {
                "midplanes": r.num_midplanes,
                "worst": r.current.dims,
                "worst_s": f"{worst_res.time_seconds:.1f}",
                "best": r.proposed.dims,
                "best_s": f"{best_res.time_seconds:.1f}",
                "speedup": (
                    f"x{worst_res.time_seconds / best_res.time_seconds:.2f}"
                ),
            }
        )
    print(render_table(
        rows,
        ["midplanes", "worst", "worst_s", "best", "best_s", "speedup"],
        title=f"{machine.name}: pairing benchmark, worst vs best "
        f"geometry per size",
    ))
    return 0


def _cmd_table(number: int) -> int:
    from .analysis import tables
    from .analysis.report import render_table

    fn = getattr(tables, f"table{number}")
    data = fn()
    if number == 5:
        rows = []
        for size in sorted(data):
            row = {"midplanes": size}
            for name, val in data[size].items():
                row[name] = "-" if val is None else (
                    f"{'x'.join(map(str, val[0]))} ({val[1]})"
                )
            rows.append(row)
        cols = ["midplanes"] + list(next(iter(data.values())))
        print(render_table(rows, cols, title=f"Table {number}"))
        return 0
    cols = list(data[0].keys()) if data else []
    print(render_table(data, cols, title=f"Table {number}"))
    return 0


def _cmd_figure(number: int) -> int:
    from .analysis import figures
    from .analysis.report import render_series

    fn = getattr(figures, f"figure{number}")
    series = fn()
    print(render_series(series, title=f"Figure {number}"))
    return 0


def _cmd_advise(
    machine_name: str,
    size: int,
    available: Sequence[int],
    wait: float,
    runtime: float,
    fraction: float,
) -> int:
    from .allocation.advisor import JobRequest, SchedulingAdvisor
    from .allocation.geometry import PartitionGeometry
    from .allocation.policy import FreeCuboidPolicy
    from .machines.catalog import get_machine

    machine = get_machine(machine_name)
    advisor = SchedulingAdvisor(FreeCuboidPolicy(machine))
    job = JobRequest(
        num_midplanes=size,
        optimal_runtime=runtime,
        contention_fraction=fraction,
    )
    avail = PartitionGeometry(tuple(available))
    decision = advisor.decide(job, avail, expected_wait=wait)
    print(f"machine          : {machine.name}")
    print(f"available        : {avail.label()} "
          f"(BW {avail.normalized_bisection_bandwidth})")
    print(f"recommendation   : {decision.action.upper()}")
    print(f"allocate-now time: {decision.available_time:.0f} s")
    print(f"wait-then-run    : {decision.wait_time:.0f} s")
    print(f"regret avoided   : {decision.regret:.0f} s")
    breakeven = advisor.breakeven_wait(job, avail)
    print(f"break-even wait  : {breakeven:.0f} s")
    return 0


def _cmd_faults(
    machine_name: str,
    size: int,
    max_failures: int,
    trials: int,
    seed: int,
    jobs: int,
    fluid_sweep: bool = False,
    checkpoint: str | None = None,
    transport: str | None = None,
) -> int:
    from .analysis.report import render_table
    from .experiments.faultstudy import (
        default_geometry_for_machine,
        degraded_bisection_study,
    )
    from .machines.catalog import get_machine
    from .allocation.optimizer import best_geometry_for_machine

    machine = get_machine(machine_name)
    default = default_geometry_for_machine(machine, size)
    optimal = best_geometry_for_machine(machine, size)
    if fluid_sweep:
        return _cmd_faults_fluid(
            machine, optimal, max_failures, trials, seed, jobs, checkpoint,
            transport,
        )
    rows = [
        {
            "failures": r.failures,
            "trials": r.trials,
            "default_mean": f"{r.default_mean_bw:.1f}",
            "default_min": f"{r.default_min_bw:.0f}",
            "optimal_mean": f"{r.optimal_mean_bw:.1f}",
            "optimal_min": f"{r.optimal_min_bw:.0f}",
            "stable": f"{100 * r.ranking_stable_fraction:.0f}%",
        }
        for r in degraded_bisection_study(
            machine, size, max_failures=max_failures, trials=trials,
            seed=seed, jobs=jobs, checkpoint=checkpoint,
            transport=transport,
        )
    ]
    print(render_table(
        rows,
        ["failures", "trials", "default_mean", "default_min",
         "optimal_mean", "optimal_min", "stable"],
        title=(
            f"{machine.name} {size} midplanes: surviving bisection, "
            f"default {default.label()} vs optimal {optimal.label()} "
            f"(seed {seed})"
        ),
    ))
    return 0


def _cmd_faults_fluid(
    machine, geometry, max_failures: int, trials: int, seed: int,
    jobs: int, checkpoint: str | None, transport: str | None = None,
) -> int:
    from .analysis.report import render_table
    from .experiments.faultstudy import fluid_fault_sweep

    results = fluid_fault_sweep(
        geometry, max_failures=max_failures, trials=trials, seed=seed,
        jobs=jobs, checkpoint=checkpoint, transport=transport,
    )
    rows = []
    degraded_count = 0
    for r in results:
        if r.degraded is not None:
            degraded_count += 1
            w_src, w_dst = r.degraded.witness
            rows.append({
                "failures": r.failures,
                "trial": r.trial,
                "seed": r.seed,
                "bandwidth": f"{r.bandwidth:.3f}",
                "status": (
                    f"DEGRADED ({r.degraded.disconnected_flows} flows "
                    f"cut, witness {tuple(w_src)}-{tuple(w_dst)})"
                ),
            })
        else:
            rows.append({
                "failures": r.failures,
                "trial": r.trial,
                "seed": r.seed,
                "bandwidth": f"{r.bandwidth:.3f}",
                "status": "ok",
            })
    print(render_table(
        rows,
        ["failures", "trial", "seed", "bandwidth", "status"],
        title=(
            f"{machine.name} optimal geometry {geometry.label()}: "
            f"flow-level surviving bisection under sampled link "
            f"failures (seed {seed}, {degraded_count} degraded)"
        ),
    ))
    return 0


def _cmd_design_search(
    baseline: str, max_midplanes: int, top: int, jobs: int,
    checkpoint: str | None = None, transport: str | None = None,
) -> int:
    from .analysis.report import render_table
    from .experiments.designsearch import design_search
    from .machines.catalog import get_machine

    machine = get_machine(baseline)
    search = design_search(
        max_midplanes, machine, jobs=jobs, checkpoint=checkpoint,
        transport=transport,
    )
    rows = [
        {
            "geometry": c.machine.midplane_dims,
            "midplanes": c.machine.num_midplanes,
            "dominates": c.dominated_baseline,
            "wins": c.wins,
            "total_bw": c.total_bandwidth,
        }
        for c in search[:top]
    ]
    print(render_table(
        rows,
        ["geometry", "midplanes", "dominates", "wins", "total_bw"],
        title=f"Top {len(rows)} of {len(search)} machine designs vs "
        f"{machine.name} (<= {max_midplanes} midplanes)",
    ))
    return 0


def _cmd_variability(
    machine_name: str,
    size: int,
    num_jobs: int,
    fraction: float,
    runtime: float,
    seed: int,
    jobs: int,
    checkpoint: str | None = None,
    transport: str | None = None,
) -> int:
    from .allocation.advisor import JobRequest
    from .allocation.policy import FreeCuboidPolicy
    from .allocation.variability import SELECTION_RULES, simulate_job_streams
    from .analysis.report import render_table
    from .machines.catalog import get_machine

    machine = get_machine(machine_name)
    policy = FreeCuboidPolicy(machine)
    job = JobRequest(
        num_midplanes=size,
        optimal_runtime=runtime,
        contention_fraction=fraction,
    )
    reports = simulate_job_streams(
        policy, job, num_jobs, SELECTION_RULES, seed=seed, jobs=jobs,
        checkpoint=checkpoint, transport=transport,
    )
    rows = [
        {
            "selection": rep.selection,
            "mean_s": rep.mean,
            "stdev_s": rep.stdev,
            "spread": rep.spread,
            "geometries": rep.distinct_geometries,
        }
        for rep in reports
    ]
    print(render_table(
        rows,
        ["selection", "mean_s", "stdev_s", "spread", "geometries"],
        title=f"{machine.name}: {num_jobs} identical {size}-midplane jobs, "
        f"contention fraction {fraction}",
    ))
    return 0


def _cmd_lint(
    paths: Sequence[str],
    fmt: str,
    output: str | None,
    soft: bool,
    rules: str | None,
    no_docs_check: bool,
    show_suppressed: bool,
) -> int:
    from pathlib import Path

    from . import staticcheck

    only = None
    if rules is not None:
        only = [r.strip() for r in rules.split(",") if r.strip()]
    result = staticcheck.analyze_paths(paths, rules=only, root=Path.cwd())
    if result.files_scanned == 0:
        print(
            f"error: no Python files under {', '.join(map(str, paths))}",
            file=sys.stderr,
        )
        return 2

    if not no_docs_check and only is None:
        docs = staticcheck.find_docs_dir(Path(paths[0]) if paths else Path())
        if docs is not None:
            result.findings.extend(staticcheck.check_knob_docs(docs))
            result.findings.sort()

    if fmt == "json":
        report = staticcheck.render_json(result)
    else:
        report = staticcheck.render_text(
            result, verbose_suppressed=show_suppressed
        )
    if output is not None:
        Path(output).write_text(report + "\n", encoding="utf-8")
        print(f"lint: report -> {output}", file=sys.stderr)
    else:
        print(report)
    if soft or result.clean:
        return 0
    return 1


def _cmd_trace(action: str, path: str) -> int:
    from . import observability
    from .analysis.report import render_table

    assert action == "summarize"
    try:
        summary = observability.summarize_jsonl(path)
    except OSError as exc:
        print(f"error: cannot read trace: {exc}", file=sys.stderr)
        return 2

    span_rows = [
        {
            "span": name,
            "count": agg["count"],
            "total_s": f"{agg['total_s']:.4f}",
            "mean_ms": f"{1000 * agg['mean_s']:.3f}",
        }
        for name, agg in sorted(
            summary["spans"].items(),
            key=lambda kv: -kv[1]["total_s"],
        )
    ]
    counter_rows = [
        {"counter": name, "value": f"{value:g}"}
        for name, value in sorted(summary["counters"].items())
    ] + [
        {"counter": f"{name} (gauge)", "value": f"{value:g}"}
        for name, value in sorted(summary["gauges"].items())
    ]
    cache_rows = [
        {
            "cache": name,
            "hits": info["hits"],
            "misses": info["misses"],
            "hit_rate": f"{100 * info['hit_rate']:.0f}%",
            "size": f"{info['size']}/{info['maxsize']}",
        }
        for name, info in sorted(summary["caches"].items())
        if info["hits"] or info["misses"]
    ]
    print(render_table(
        span_rows, ["span", "count", "total_s", "mean_ms"],
        title=f"Spans ({summary['span_events']} individual events)",
    ))
    print()
    print(render_table(counter_rows, ["counter", "value"],
                       title="Counters"))
    print()
    print(render_table(
        cache_rows, ["cache", "hits", "misses", "hit_rate", "size"],
        title="Caches (merged across worker processes)",
    ))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    from . import observability

    trace_path = getattr(args, "trace", None) or (
        observability.env_trace_path()
    )
    prior_enabled = observability.enabled()
    if trace_path and args.command != "trace":
        observability.enable()
    try:
        return _dispatch(args, trace_path, observability)
    finally:
        if not prior_enabled and observability.enabled():
            # --trace enabled collection for this invocation only:
            # restore the pre-call state so in-process callers (tests)
            # stay clean, even on error exits.
            observability.disable()
            observability.reset()


def _dispatch(args, trace_path, observability) -> int:
    code: int | None = None
    try:
        if args.command == "machines":
            code = _cmd_machines()
        elif args.command == "analyze":
            code = _cmd_analyze(args.machine, args.improvable_only)
        elif args.command == "geometry":
            code = _cmd_geometry(args.dims)
        elif args.command == "pairing":
            code = _cmd_pairing(args.dims, args.rounds, args.sweep,
                                args.jobs, args.checkpoint, args.transport)
        elif args.command == "table":
            code = _cmd_table(args.number)
        elif args.command == "figure":
            code = _cmd_figure(args.number)
        elif args.command == "faults":
            code = _cmd_faults(
                args.machine, args.size, args.max_failures, args.trials,
                args.seed, args.jobs, args.fluid_sweep, args.checkpoint,
                args.transport,
            )
        elif args.command == "design-search":
            code = _cmd_design_search(
                args.baseline, args.max_midplanes, args.top, args.jobs,
                args.checkpoint, args.transport,
            )
        elif args.command == "variability":
            code = _cmd_variability(
                args.machine, args.size, args.num_jobs, args.fraction,
                args.runtime, args.seed, args.jobs, args.checkpoint,
                args.transport,
            )
        elif args.command == "lint":
            code = _cmd_lint(
                args.paths, args.format, args.output, args.soft,
                args.rules, args.no_docs_check, args.show_suppressed,
            )
        elif args.command == "trace":
            code = _cmd_trace(args.action, args.path)
        elif args.command == "advise":
            code = _cmd_advise(
                args.machine, args.size, args.available,
                args.wait, args.runtime, args.fraction,
            )
    except (ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if code is None:
        raise AssertionError(f"unhandled command {args.command!r}")
    if trace_path and args.command != "trace" and code == 0:
        n = observability.export_jsonl(trace_path)
        print(f"trace: {n} records -> {trace_path}", file=sys.stderr)
    return code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
