"""Deterministic process-pool sweep executor.

Every sweep-shaped experiment in this repository — pairing curves,
fault-study grids, design searches, variability streams — evaluates a
pure task function over a fixed grid of (geometry, seed) points.  This
module runs such grids across worker processes while keeping the
results **bit-identical** to the serial path:

* tasks are enumerated once, up front, in a deterministic order;
* randomness is injected only through explicit per-task seeds (see
  :func:`split_seeds`) derived from the caller's base seed, never from
  worker identity, scheduling order, or wall-clock;
* results are collected **in task order** regardless of completion
  order (``ProcessPoolExecutor.map`` semantics);
* ``jobs=1`` — and any environment where a process pool cannot be
  created (restricted sandboxes, missing ``/dev/shm``, recursive
  pools) — falls back to a plain in-process loop over the same
  function, so parallelism is an optimization, never a semantic.

Task functions must be module-level callables and their arguments and
results picklable; the experiment drivers keep their workers at module
scope for exactly this reason.
"""

from __future__ import annotations

import os
import warnings
from collections.abc import Callable, Iterable, Sequence
from typing import Any, TypeVar

import numpy as np

from . import observability
from ._validation import check_nonnegative_int, check_positive_int

__all__ = ["sweep_map", "split_seeds", "resolve_jobs"]

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Environment knob: default worker count when a caller passes ``jobs=0``.
_JOBS_ENV = "REPRO_JOBS"


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value to a concrete worker count.

    ``None`` or ``0`` means "auto": the ``REPRO_JOBS`` environment
    variable if set and valid, else the machine's CPU count.  Anything
    else must be a positive integer and is returned unchanged.

    An invalid ``REPRO_JOBS`` (negative, zero, empty, or non-numeric)
    is not silently swallowed: a :class:`RuntimeWarning` names the bad
    value before the explicit fall back to the CPU count.
    """
    if jobs is None or jobs == 0:
        raw = os.environ.get(_JOBS_ENV)
        if raw is not None:
            try:
                val: int | None = int(raw)
            except ValueError:
                val = None
            if val is not None and val >= 1:
                return val
            fallback = os.cpu_count() or 1
            warnings.warn(
                f"ignoring invalid {_JOBS_ENV}={raw!r} (expected a "
                f"positive integer); falling back to the CPU count "
                f"({fallback})",
                RuntimeWarning,
                stacklevel=2,
            )
            return fallback
        return os.cpu_count() or 1
    return check_positive_int(jobs, "jobs")


def split_seeds(seed: int, n: int) -> tuple[int, ...]:
    """*n* statistically independent child seeds of *seed*.

    Uses :class:`numpy.random.SeedSequence` spawning, so the children
    are a pure function of ``(seed, n)`` — the same grid gets the same
    seeds no matter how many workers evaluate it, and nearby base seeds
    do not produce correlated streams (unlike ``seed + i`` arithmetic).

    Examples
    --------
    >>> split_seeds(0, 3) == split_seeds(0, 3)
    True
    >>> len(set(split_seeds(7, 100)))
    100
    """
    check_nonnegative_int(seed, "seed")
    check_nonnegative_int(n, "n")
    ss = np.random.SeedSequence(seed)
    return tuple(int(child.generate_state(1)[0]) for child in ss.spawn(n))


def _serial_map(fn: Callable[[_T], _R], tasks: Sequence[_T]) -> list[_R]:
    return [fn(t) for t in tasks]


def _serial_fallback(
    fn: Callable[[_T], _R], tasks: Sequence[_T]
) -> list[_R]:
    """Serial execution of a sweep that *requested* parallelism.

    Used when the effective worker count resolves to one (single-CPU
    host) or no process pool can be created.  Keeps the observability
    contract of the pool path — the ``parallel.sweep`` span and task
    counters still appear, with ``workers=1`` — so traces show the
    sweep regardless of where it ran.
    """
    with observability.span(
        "parallel.sweep", tasks=len(tasks), workers=1
    ):
        results = _serial_map(fn, tasks)
    if observability.OBS.enabled:
        observability.counter_add("parallel.sweeps")
        observability.counter_add("parallel.tasks", len(tasks))
        observability.gauge_set("parallel.workers", 1)
    return results


class _SnapshottingTask:
    """Task wrapper: every result carries the worker's metric snapshot.

    Snapshots are cumulative per worker process (counters, span totals,
    memo hit/miss counts); the parent keeps only the final snapshot of
    each worker pid and merges it once, so per-task payloads stay tiny
    and nothing is double-counted.  Picklable as long as the wrapped
    function is a module-level callable — the same constraint
    :func:`sweep_map` already imposes.
    """

    __slots__ = ("_fn",)

    def __init__(self, fn: Callable[[_T], _R]):
        self._fn = fn

    def __call__(
        self, task: _T
    ) -> tuple[_R, observability.TraceSnapshot]:
        return self._fn(task), observability.worker_snapshot()


def _merge_worker_snapshots(
    snapshots: Iterable[observability.TraceSnapshot],
) -> None:
    """Merge the final (highest-seq) snapshot of every worker pid."""
    final: dict[int, observability.TraceSnapshot] = {}
    for snap in snapshots:
        cur = final.get(snap.pid)
        if cur is None or snap.seq > cur.seq:
            final[snap.pid] = snap
    for snap in final.values():
        observability.merge_snapshot(snap)


def sweep_map(
    fn: Callable[[_T], _R],
    tasks: Iterable[_T],
    jobs: int | None = 1,
    chunksize: int | None = None,
    *,
    policy: Any | None = None,
    checkpoint: Any | None = None,
) -> list[_R]:
    """Map *fn* over *tasks*, optionally across worker processes.

    Parameters
    ----------
    fn:
        Pure task function.  For ``jobs > 1`` it must be a module-level
        callable with picklable arguments and results.
    tasks:
        The task grid; consumed eagerly so ordering is fixed before any
        worker starts.
    jobs:
        Worker processes.  ``1`` runs serially in-process; ``None``/``0``
        resolves via :func:`resolve_jobs` (``REPRO_JOBS`` or CPU count).
        The effective count is additionally capped at the machine's CPU
        count; when that cap leaves a single worker, the sweep runs
        serially (a one-worker pool is pure IPC overhead).
    chunksize:
        Tasks handed to a worker per dispatch; defaults to roughly four
        chunks per worker, which amortizes pickling for short tasks
        while keeping the pool load-balanced.
    policy:
        Optional :class:`repro.resilience.ResiliencePolicy`.  When set
        (or when *checkpoint* is set) the sweep runs through
        :func:`repro.resilience.resilient_sweep_map`, which adds
        bounded retries, per-task timeouts, worker-crash recovery, and
        poison-task quarantine while preserving this function's
        ordering and determinism contract.
    checkpoint:
        Optional JSONL checkpoint path (or
        :class:`repro.resilience.SweepCheckpoint`): completed task
        results are journaled as they finish and a restarted sweep
        resumes from them instead of recomputing.

    Returns
    -------
    list
        One result per task, **in task order** — bit-identical to
        ``[fn(t) for t in tasks]``.

    Notes
    -----
    Pool *creation* failures (platforms without process support) degrade
    to the serial path.  Exceptions raised by *fn* itself always
    propagate — a failing task is a bug, not a reason to fall back.

    Each parallel task result additionally carries the worker's
    cumulative metric snapshot (:mod:`repro.observability`); the final
    snapshot per worker is merged into this process at sweep
    completion, so memo hit/miss accounting
    (:func:`repro.caching.cache_stats`) and — when tracing is enabled —
    counters and span totals reflect worker-side activity.  The merge
    never changes results.
    """
    if policy is not None or checkpoint is not None:
        from .resilience import resilient_sweep_map

        return resilient_sweep_map(
            fn, tasks, jobs, policy=policy, checkpoint=checkpoint
        )
    task_list = list(tasks)
    jobs = resolve_jobs(jobs)
    if chunksize is not None:
        check_positive_int(chunksize, "chunksize")
    if jobs == 1 or len(task_list) <= 1:
        return _serial_map(fn, task_list)

    # Parallelism cannot beat the hardware: more workers than CPUs only
    # adds process churn and pickling (a 1-CPU host ran the parallel
    # design-search sweep ~2x slower than serial before this cap), so
    # the effective count is bounded by the CPU count — and a bound of
    # one means the pool would be pure overhead: run serially instead.
    workers = min(jobs, len(task_list), os.cpu_count() or 1)
    if workers <= 1:
        return _serial_fallback(fn, task_list)
    if chunksize is None:
        chunksize = max(1, -(-len(task_list) // (workers * 4)))
    try:
        from concurrent.futures import ProcessPoolExecutor

        # The initializer zeroes fork-inherited counters so each
        # worker's cumulative snapshot is a clean delta (see
        # observability.reset_worker).
        executor = ProcessPoolExecutor(
            max_workers=workers, initializer=observability.reset_worker
        )
    except (ImportError, NotImplementedError, OSError, PermissionError) as exc:
        # No usable process pool on this platform/sandbox: the sweep
        # still completes, just serially — but never invisibly.
        warnings.warn(
            f"cannot create a process pool "
            f"({type(exc).__name__}: {exc}); running the sweep "
            f"serially",
            RuntimeWarning,
            stacklevel=2,
        )
        observability.counter_add("parallel.fallback_serial")
        return _serial_fallback(fn, task_list)
    try:
        with observability.span(
            "parallel.sweep", tasks=len(task_list), workers=workers
        ):
            pairs = list(
                executor.map(
                    _SnapshottingTask(fn), task_list, chunksize=chunksize
                )
            )
    finally:
        executor.shutdown()
    _merge_worker_snapshots(snap for _, snap in pairs)
    if observability.OBS.enabled:
        observability.counter_add("parallel.sweeps")
        observability.counter_add("parallel.tasks", len(task_list))
        observability.gauge_set("parallel.workers", workers)
    return [result for result, _ in pairs]
