"""Deterministic process-pool sweep executor.

Every sweep-shaped experiment in this repository — pairing curves,
fault-study grids, design searches, variability streams — evaluates a
pure task function over a fixed grid of (geometry, seed) points.  This
module runs such grids across worker processes while keeping the
results **bit-identical** to the serial path:

* tasks are enumerated once, up front, in a deterministic order;
* randomness is injected only through explicit per-task seeds (see
  :func:`split_seeds`) derived from the caller's base seed, never from
  worker identity, scheduling order, or wall-clock;
* results are collected **in task order** regardless of completion
  order (``ProcessPoolExecutor.map`` semantics);
* ``jobs=1`` — and any environment where a process pool cannot be
  created (restricted sandboxes, missing ``/dev/shm``, recursive
  pools) — falls back to a plain in-process loop over the same
  function, so parallelism is an optimization, never a semantic.

Task functions must be module-level callables and their arguments and
results picklable; the experiment drivers keep their workers at module
scope for exactly this reason.
"""

from __future__ import annotations

import os
import time
import warnings
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass
from typing import Any, TypeVar

import numpy as np

from . import env, observability, sharedmem
from ._validation import check_nonnegative_int, check_positive_int

__all__ = [
    "sweep_map",
    "split_seeds",
    "resolve_jobs",
    "BlockRunner",
    "register_block_runner",
    "unregister_block_runner",
    "block_runner_for",
]

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Environment knob: default worker count when a caller passes ``jobs=0``.
_JOBS_ENV = "REPRO_JOBS"


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value to a concrete worker count.

    ``None`` or ``0`` means "auto": the ``REPRO_JOBS`` environment
    variable if set and valid, else the machine's CPU count.  Anything
    else must be a positive integer and is returned unchanged.

    An invalid ``REPRO_JOBS`` (negative, zero, empty, or non-numeric)
    is not silently swallowed: a :class:`RuntimeWarning` names the bad
    value before the explicit fall back to the CPU count.
    """
    if jobs is None or jobs == 0:
        raw = env.get_raw(_JOBS_ENV)
        if raw is not None:
            try:
                val: int | None = int(raw)
            except ValueError:
                val = None
            if val is not None and val >= 1:
                return val
            fallback = os.cpu_count() or 1
            warnings.warn(
                f"ignoring invalid {_JOBS_ENV}={raw!r} (expected a "
                f"positive integer); falling back to the CPU count "
                f"({fallback})",
                RuntimeWarning,
                stacklevel=2,
            )
            return fallback
        return os.cpu_count() or 1
    return check_positive_int(jobs, "jobs")


def split_seeds(seed: int, n: int) -> tuple[int, ...]:
    """*n* statistically independent child seeds of *seed*.

    Uses :class:`numpy.random.SeedSequence` spawning, so the children
    are a pure function of ``(seed, n)`` — the same grid gets the same
    seeds no matter how many workers evaluate it, and nearby base seeds
    do not produce correlated streams (unlike ``seed + i`` arithmetic).

    Examples
    --------
    >>> split_seeds(0, 3) == split_seeds(0, 3)
    True
    >>> len(set(split_seeds(7, 100)))
    100
    """
    check_nonnegative_int(seed, "seed")
    check_nonnegative_int(n, "n")
    ss = np.random.SeedSequence(seed)
    return tuple(int(child.generate_state(1)[0]) for child in ss.spawn(n))


def _serial_map(fn: Callable[[_T], _R], tasks: Sequence[_T]) -> list[_R]:
    return [fn(t) for t in tasks]


def _serial_fallback(
    fn: Callable[[_T], _R], tasks: Sequence[_T]
) -> list[_R]:
    """Serial execution of a sweep that *requested* parallelism.

    Used when the effective worker count resolves to one (single-CPU
    host) or no process pool can be created.  Keeps the observability
    contract of the pool path — the ``parallel.sweep`` span and task
    counters still appear, with ``workers=1`` — so traces show the
    sweep regardless of where it ran.
    """
    with observability.span(
        "parallel.sweep", tasks=len(tasks), workers=1
    ):
        results = _serial_map(fn, tasks)
    if observability.OBS.enabled:
        observability.counter_add("parallel.sweeps")
        observability.counter_add("parallel.tasks", len(tasks))
        observability.gauge_set("parallel.workers", 1)
    return results


class _SnapshottingTask:
    """Task wrapper: every result carries the worker's metric snapshot.

    Snapshots are cumulative per worker process (counters, span totals,
    memo hit/miss counts); the parent keeps only the final snapshot of
    each worker pid and merges it once, so per-task payloads stay tiny
    and nothing is double-counted.  Picklable as long as the wrapped
    function is a module-level callable — the same constraint
    :func:`sweep_map` already imposes.
    """

    __slots__ = ("_fn",)

    def __init__(self, fn: Callable[[_T], _R]):
        self._fn = fn

    def __call__(
        self, task: _T
    ) -> tuple[_R, observability.TraceSnapshot]:
        return self._fn(task), observability.worker_snapshot()


def _merge_worker_snapshots(
    snapshots: Iterable[observability.TraceSnapshot],
) -> None:
    """Merge the final (highest-seq) snapshot of every worker pid."""
    final: dict[int, observability.TraceSnapshot] = {}
    for snap in snapshots:
        cur = final.get(snap.pid)
        if cur is None or snap.seq > cur.seq:
            final[snap.pid] = snap
    for snap in final.values():
        observability.merge_snapshot(snap)


# ----------------------------------------------------------------------
# Block dispatch: batchable task families
#
# Some task functions have a *block form* — a module-level callable that
# evaluates a whole list of tasks in one vectorized pass (e.g. the
# stacked fluid solver advancing hundreds of fault scenarios in one
# numpy water-fill) and returns one result per task, bit-identical to
# ``[fn(t) for t in tasks]``.  Registering that block form lets
# :func:`sweep_map` dispatch scenario *blocks* instead of single tasks:
# the per-scenario python overhead amortizes across the block, and the
# pool moves far fewer (bigger) pickles.  The scalar path remains the
# oracle: ``REPRO_VECTOR=0`` disables block dispatch entirely, and the
# differential suite pins block results to the scalar ones.

#: Sweeps at or below this many tasks run serially in-process — pool
#: startup + pickling costs more than it saves at this size (the
#: designsearch crossover seam in BENCH_perf.json, where the parallel
#: sweep ran ~1.7x *slower* than serial).  Applies to block-dispatched
#: families and plain per-task sweeps alike.
_SMALL_SWEEP_TASKS = 32

#: Scheduler cost model, calibrated coarse on purpose: these only have
#: to get the *sign* of "does a pool pay for itself" right, and tests
#: monkeypatch them to force either branch deterministically.
#: Estimated cost of spawning one pool worker (fork + warmup).
_POOL_SPAWN_S = 0.015
#: Estimated per-block dispatch cost (pickle + queue round-trip).
_DISPATCH_S = 0.002
#: Adaptive chunk sizing aims for blocks of roughly this wall-clock.
_TARGET_BLOCK_S = 0.25


@dataclass(frozen=True)
class BlockRunner:
    """A registered block form of a task function.

    Attributes
    ----------
    block_fn:
        Module-level callable mapping a list of tasks to a list of
        results (one per task, in order, bit-identical to the scalar
        task function applied per task).
    min_block_tasks:
        Smallest sweep size worth block dispatch; smaller sweeps use
        the plain per-task path.
    max_block_tasks:
        Upper bound on tasks per block — caps peak memory of the
        stacked solve.
    """

    block_fn: Callable[[Sequence[Any]], Sequence[Any]]
    min_block_tasks: int = 2
    max_block_tasks: int = 256


_BLOCK_RUNNERS: dict[Callable[..., Any], BlockRunner] = {}


def register_block_runner(
    task_fn: Callable[[_T], _R],
    block_fn: Callable[[Sequence[_T]], Sequence[_R]],
    *,
    min_block_tasks: int = 2,
    max_block_tasks: int = 256,
) -> None:
    """Register *block_fn* as the batched form of *task_fn*.

    Both callables must be module-level (picklable) functions.  The
    contract is strict: ``block_fn(tasks)`` must return exactly
    ``[task_fn(t) for t in tasks]`` — the differential test suite
    enforces bit-identity, and :func:`sweep_map` validates the result
    count of every block.
    """
    check_positive_int(min_block_tasks, "min_block_tasks")
    check_positive_int(max_block_tasks, "max_block_tasks")
    if max_block_tasks < min_block_tasks:
        raise ValueError(
            f"max_block_tasks ({max_block_tasks}) < min_block_tasks "
            f"({min_block_tasks})"
        )
    _BLOCK_RUNNERS[task_fn] = BlockRunner(
        block_fn=block_fn,
        min_block_tasks=min_block_tasks,
        max_block_tasks=max_block_tasks,
    )


def unregister_block_runner(task_fn: Callable[..., Any]) -> None:
    """Remove *task_fn*'s block registration (test hygiene)."""
    _BLOCK_RUNNERS.pop(task_fn, None)


def block_runner_for(
    fn: Callable[..., Any]
) -> BlockRunner | None:
    """The active block runner for *fn*, or ``None``.

    Returns ``None`` when no block form is registered **or** when
    ``REPRO_VECTOR=0`` disables the vector paths — callers need no
    separate knob check.
    """
    reg = _BLOCK_RUNNERS.get(fn)
    if reg is None:
        return None
    from .netsim.batchroute import vector_enabled

    return reg if vector_enabled() else None


def _block_size(n: int, workers: int, runner: BlockRunner) -> int:
    """Chunk-adaptive block size for *n* tasks on *workers* workers.

    Serial dispatch wants one maximal block (the stacked solve's
    amortization is the whole point); pool dispatch aims for roughly
    four blocks per worker so stragglers load-balance.  Both are capped
    by the runner's ``max_block_tasks``.
    """
    size = max(1, -(-n // (workers * 4))) if workers > 1 else n
    return max(1, min(size, runner.max_block_tasks))


def _check_block_results(
    values: Sequence[Any], chunk: Sequence[Any], runner: BlockRunner
) -> None:
    if len(values) != len(chunk):
        raise RuntimeError(
            f"block runner "
            f"{getattr(runner.block_fn, '__qualname__', runner.block_fn)!r}"
            f" returned {len(values)} results for a block of "
            f"{len(chunk)} tasks"
        )


class _SnapshottingBlock:
    """Block wrapper: runs a whole chunk, returns values + snapshot."""

    __slots__ = ("_block_fn",)

    def __init__(self, block_fn: Callable[[Sequence[_T]], Sequence[_R]]):
        self._block_fn = block_fn

    def __call__(
        self, chunk: Sequence[_T]
    ) -> tuple[list[_R], observability.TraceSnapshot]:
        with observability.span("parallel.block", tasks=len(chunk)):
            values = list(self._block_fn(chunk))
        return values, observability.worker_snapshot()


class _ShmBlock:
    """Block wrapper over the shared-memory transport.

    Receives a :class:`repro.sharedmem.ShmPayload` instead of a pickled
    chunk, reconstructs the tasks as read-only zero-copy views over the
    parent's shared segments, runs the block, and offloads any large
    result buffers back through worker-owned segments (small results —
    the common case — return in-band; the parent materializes and
    releases either way via ``decode_result``).
    """

    __slots__ = ("_block_fn",)

    def __init__(self, block_fn: Callable[[Sequence[_T]], Sequence[_R]]):
        self._block_fn = block_fn

    def __call__(
        self, payload: Any
    ) -> tuple[Any, observability.TraceSnapshot]:
        chunk = sharedmem.shm_loads(payload)
        with observability.span("parallel.block", tasks=len(chunk)):
            values = list(self._block_fn(chunk))
        return (
            sharedmem.maybe_shm_dumps(values),
            observability.worker_snapshot(),
        )


def _pool_worker_init() -> None:
    """Pool initializer: zero fork-inherited observability counters and
    drop fork-inherited shared-segment mappings (workers re-attach on
    demand against their own cache)."""
    observability.reset_worker()
    sharedmem.detach_segments()


def _run_block_chunks(
    runner: BlockRunner, chunks: Sequence[Sequence[_T]]
) -> list[Any]:
    """Run block chunks serially in-process, validating each."""
    results: list[Any] = []
    for chunk in chunks:
        with observability.span("parallel.block", tasks=len(chunk)):
            values = list(runner.block_fn(chunk))
        _check_block_results(values, chunk, runner)
        results.extend(values)
    return results


def _block_serial(
    runner: BlockRunner, task_list: Sequence[_T]
) -> list[Any]:
    """Serial block execution (jobs==1, 1-CPU host, crossover guard)."""
    n = len(task_list)
    size = _block_size(n, 1, runner)
    chunks = [task_list[s : s + size] for s in range(0, n, size)]
    with observability.span(
        "parallel.sweep", tasks=n, workers=1, blocks=len(chunks)
    ):
        results = _run_block_chunks(runner, chunks)
    if observability.OBS.enabled:
        observability.counter_add("parallel.sweeps")
        observability.counter_add("parallel.tasks", n)
        observability.counter_add("parallel.blocks", len(chunks))
        observability.gauge_set("parallel.workers", 1)
    return results


def _plan_adaptive(
    n: int, workers: int, runner: BlockRunner, per_task_s: float
) -> tuple[int, int] | None:
    """Chunk plan ``(block_size, workers)`` for the post-probe rest.

    Sizes blocks from the *measured* per-task cost — small enough to
    load-balance (≈4 blocks per worker), but no finer than blocks of
    ``_TARGET_BLOCK_S`` wall-clock need — then projects pool cost
    (worker spawn + per-block dispatch + compute split across workers)
    against just finishing serially.  Returns ``None`` when the pool
    would not pay for itself: the crossover that made
    ``designsearch_parallel_s`` worse than serial is decided by
    arithmetic here, not hoped away.  Workers are capped at the planned
    block count — a pool process with no block to run is pure spawn
    cost.
    """
    workers = min(workers, n)
    by_balance = max(1, -(-n // (workers * 4)))
    by_time = (
        max(1, int(_TARGET_BLOCK_S / per_task_s))
        if per_task_s > 0
        else by_balance
    )
    size = max(1, min(by_balance, by_time, runner.max_block_tasks))
    num_blocks = -(-n // size)
    workers = min(workers, num_blocks)
    if workers <= 1:
        return None
    serial_s = per_task_s * n
    pool_s = (
        workers * _POOL_SPAWN_S
        + num_blocks * _DISPATCH_S
        + serial_s / workers
    )
    if pool_s >= serial_s:
        return None
    return size, workers


def _dispatch_block_pool(
    runner: BlockRunner,
    chunks: Sequence[Sequence[_T]],
    workers: int,
    transport: str | None,
) -> list[Any] | None:
    """Run block chunks through a process pool; ``None`` if no pool.

    With the shared-memory transport each chunk crosses the pipe as a
    small descriptor payload while its arrays live in pool-owned
    segments, unlinked when the dispatch completes (or fails — the
    ``finally`` guarantees no ``/dev/shm`` leak on any exit path).
    """
    from concurrent.futures import ProcessPoolExecutor

    try:
        executor = ProcessPoolExecutor(
            max_workers=workers, initializer=_pool_worker_init
        )
    except (ImportError, NotImplementedError, OSError, PermissionError) as exc:
        warnings.warn(
            f"cannot create a process pool "
            f"({type(exc).__name__}: {exc}); running the blocked sweep "
            f"serially",
            RuntimeWarning,
            stacklevel=3,
        )
        observability.counter_add("parallel.fallback_serial")
        return None

    mode = sharedmem.resolve_transport(transport)
    tx: sharedmem.SharedArrayPool | None = None
    pairs: list[tuple[Any, observability.TraceSnapshot]] = []
    try:
        payloads: Sequence[Any] = chunks
        wrapper: Callable[[Any], Any] = _SnapshottingBlock(runner.block_fn)
        if mode == "shm":
            tx = sharedmem.SharedArrayPool()
            payloads = [tx.dumps(chunk) for chunk in chunks]
            wrapper = _ShmBlock(runner.block_fn)
            if observability.OBS.enabled:
                observability.counter_add(
                    "parallel.shm_bytes", tx.bytes_used
                )
        try:
            pairs = list(
                executor.map(wrapper, payloads, chunksize=1)
            )
        finally:
            executor.shutdown()
    finally:
        if tx is not None:
            tx.unlink()
    _merge_worker_snapshots(snap for _, snap in pairs)
    results: list[Any] = []
    try:
        for (values, _snap), chunk in zip(pairs, chunks):
            plain = sharedmem.decode_result(values)
            _check_block_results(plain, chunk, runner)
            results.extend(plain)
    finally:
        for values, _snap in pairs:
            sharedmem.release_payload(values)
    return results


def _block_sweep(
    runner: BlockRunner,
    task_list: Sequence[_T],
    jobs: int,
    transport: str | None = None,
) -> list[Any]:
    """Execute a sweep through its registered block runner.

    Chunk-adaptive scheduling: the first block runs in-process and is
    timed; the measured per-task cost sizes the remaining chunks and
    decides — by projected cost, see :func:`_plan_adaptive` — whether a
    worker pool pays for itself at all.  A sweep whose pool would cost
    more than it saves finishes serially, so ``jobs>1`` is never a
    pessimization.  Results are bit-identical either way: blocking is
    an execution detail the block-runner contract guarantees away.
    """
    n = len(task_list)
    workers = min(jobs, os.cpu_count() or 1)
    if n <= _SMALL_SWEEP_TASKS:
        workers = 1  # pool overhead beats the savings at this size
    if workers <= 1:
        return _block_serial(runner, task_list)

    probe = list(task_list[: _block_size(n, workers, runner)])
    blocks_run = 1
    pool_workers = 1
    with observability.span(
        "parallel.sweep", tasks=n, workers=workers
    ):
        start = time.perf_counter()  # repro: allow-wallclock chunk-size probe; steers scheduling only, never task results
        with observability.span("parallel.block", tasks=len(probe)):
            values = list(runner.block_fn(probe))
        probe_s = time.perf_counter() - start  # repro: allow-wallclock chunk-size probe; steers scheduling only, never task results
        _check_block_results(values, probe, runner)
        results: list[Any] = list(values)

        remaining = task_list[len(probe):]
        if remaining:
            per_task = max(probe_s / len(probe), 1e-9)
            plan = _plan_adaptive(
                len(remaining), workers, runner, per_task
            )
            pooled: list[Any] | None = None
            if plan is not None:
                size, pool_workers = plan
                chunks = [
                    remaining[s : s + size]
                    for s in range(0, len(remaining), size)
                ]
                pooled = _dispatch_block_pool(
                    runner, chunks, pool_workers, transport
                )
                if pooled is not None:
                    blocks_run += len(chunks)
            if pooled is not None:
                results.extend(pooled)
            else:
                # Projected pool overhead exceeds projected savings
                # (or no pool is available): finish serially with
                # maximal blocks.
                if plan is None:
                    observability.counter_add("parallel.adaptive_serial")
                pool_workers = 1
                size = _block_size(len(remaining), 1, runner)
                chunks = [
                    remaining[s : s + size]
                    for s in range(0, len(remaining), size)
                ]
                results.extend(_run_block_chunks(runner, chunks))
                blocks_run += len(chunks)
    if observability.OBS.enabled:
        observability.counter_add("parallel.sweeps")
        observability.counter_add("parallel.tasks", n)
        observability.counter_add("parallel.blocks", blocks_run)
        observability.gauge_set("parallel.workers", pool_workers)
    return results


def sweep_map(
    fn: Callable[[_T], _R],
    tasks: Iterable[_T],
    jobs: int | None = 1,
    chunksize: int | None = None,
    *,
    policy: Any | None = None,
    checkpoint: Any | None = None,
    transport: str | None = None,
) -> list[_R]:
    """Map *fn* over *tasks*, optionally across worker processes.

    Parameters
    ----------
    fn:
        Pure task function.  For ``jobs > 1`` it must be a module-level
        callable with picklable arguments and results.
    tasks:
        The task grid; consumed eagerly so ordering is fixed before any
        worker starts.
    jobs:
        Worker processes.  ``1`` runs serially in-process; ``None``/``0``
        resolves via :func:`resolve_jobs` (``REPRO_JOBS`` or CPU count).
        The effective count is additionally capped at the machine's CPU
        count; when that cap leaves a single worker, the sweep runs
        serially (a one-worker pool is pure IPC overhead).
    chunksize:
        Tasks handed to a worker per dispatch; defaults to roughly four
        chunks per worker, which amortizes pickling for short tasks
        while keeping the pool load-balanced.
    policy:
        Optional :class:`repro.resilience.ResiliencePolicy`.  When set
        (or when *checkpoint* is set) the sweep runs through
        :func:`repro.resilience.resilient_sweep_map`, which adds
        bounded retries, per-task timeouts, worker-crash recovery, and
        poison-task quarantine while preserving this function's
        ordering and determinism contract.
    checkpoint:
        Optional JSONL checkpoint path (or
        :class:`repro.resilience.SweepCheckpoint`): completed task
        results are journaled as they finish and a restarted sweep
        resumes from them instead of recomputing.
    transport:
        How block payloads reach the workers: ``"shm"`` ships large
        numpy buffers as zero-copy :mod:`repro.sharedmem` descriptors,
        ``"pickle"`` uses the classic pipe, and ``None``/``"auto"``
        (the default) picks shm whenever ``REPRO_SHM`` is not disabled
        and the platform supports it.  Transport never changes
        results — only how their bytes travel.

    Returns
    -------
    list
        One result per task, **in task order** — bit-identical to
        ``[fn(t) for t in tasks]``.

    Notes
    -----
    Pool *creation* failures (platforms without process support) degrade
    to the serial path.  Exceptions raised by *fn* itself always
    propagate — a failing task is a bug, not a reason to fall back.

    When *fn* has a registered block runner (see
    :func:`register_block_runner`) and ``REPRO_VECTOR`` is not disabled,
    the sweep dispatches scenario *blocks* through the runner's
    vectorized block function instead of single tasks — same results,
    bit-identical, but hundreds of scenarios advance in one numpy pass.
    Sweeps of at most ``_SMALL_SWEEP_TASKS`` tasks run their blocks
    serially in-process, where pool startup would dominate.
    *chunksize* is ignored on the block path (block sizing is
    chunk-adaptive).

    Each parallel task result additionally carries the worker's
    cumulative metric snapshot (:mod:`repro.observability`); the final
    snapshot per worker is merged into this process at sweep
    completion, so memo hit/miss accounting
    (:func:`repro.caching.cache_stats`) and — when tracing is enabled —
    counters and span totals reflect worker-side activity.  The merge
    never changes results.
    """
    if policy is not None or checkpoint is not None:
        from .resilience import resilient_sweep_map

        return resilient_sweep_map(
            fn, tasks, jobs, policy=policy, checkpoint=checkpoint,
            transport=transport,
        )
    task_list = list(tasks)
    jobs = resolve_jobs(jobs)
    if chunksize is not None:
        check_positive_int(chunksize, "chunksize")
    # Batchable task family: dispatch scenario blocks through the
    # registered vector runner (even at jobs=1 — the stacked solve's
    # amortization does not need a pool).  REPRO_VECTOR=0 makes
    # block_runner_for return None, restoring the scalar path below.
    runner = block_runner_for(fn)
    if runner is not None and len(task_list) >= runner.min_block_tasks:
        return _block_sweep(runner, task_list, jobs, transport)
    if jobs == 1 or len(task_list) <= 1:
        return _serial_map(fn, task_list)
    if len(task_list) <= _SMALL_SWEEP_TASKS:
        # Crossover guard: at this size pool spawn + per-task pickling
        # costs more than it saves (the BENCH-observed
        # designsearch_parallel_s > designsearch_serial_s), so a
        # requested-parallel small sweep runs serially — with the pool
        # path's observability contract intact.
        return _serial_fallback(fn, task_list)

    # Parallelism cannot beat the hardware: more workers than CPUs only
    # adds process churn and pickling (a 1-CPU host ran the parallel
    # design-search sweep ~2x slower than serial before this cap), so
    # the effective count is bounded by the CPU count — and a bound of
    # one means the pool would be pure overhead: run serially instead.
    workers = min(jobs, len(task_list), os.cpu_count() or 1)
    if workers <= 1:
        return _serial_fallback(fn, task_list)
    if chunksize is None:
        chunksize = max(1, -(-len(task_list) // (workers * 4)))
    try:
        from concurrent.futures import ProcessPoolExecutor

        # The initializer zeroes fork-inherited counters so each
        # worker's cumulative snapshot is a clean delta (see
        # observability.reset_worker).
        executor = ProcessPoolExecutor(
            max_workers=workers, initializer=observability.reset_worker
        )
    except (ImportError, NotImplementedError, OSError, PermissionError) as exc:
        # No usable process pool on this platform/sandbox: the sweep
        # still completes, just serially — but never invisibly.
        warnings.warn(
            f"cannot create a process pool "
            f"({type(exc).__name__}: {exc}); running the sweep "
            f"serially",
            RuntimeWarning,
            stacklevel=2,
        )
        observability.counter_add("parallel.fallback_serial")
        return _serial_fallback(fn, task_list)
    try:
        with observability.span(
            "parallel.sweep", tasks=len(task_list), workers=workers
        ):
            pairs = list(
                executor.map(
                    _SnapshottingTask(fn), task_list, chunksize=chunksize
                )
            )
    finally:
        executor.shutdown()
    _merge_worker_snapshots(snap for _, snap in pairs)
    if observability.OBS.enabled:
        observability.counter_add("parallel.sweeps")
        observability.counter_add("parallel.tasks", len(task_list))
        observability.gauge_set("parallel.workers", workers)
    return [result for result, _ in pairs]
