"""Deterministic process-pool sweep executor.

Every sweep-shaped experiment in this repository — pairing curves,
fault-study grids, design searches, variability streams — evaluates a
pure task function over a fixed grid of (geometry, seed) points.  This
module runs such grids across worker processes while keeping the
results **bit-identical** to the serial path:

* tasks are enumerated once, up front, in a deterministic order;
* randomness is injected only through explicit per-task seeds (see
  :func:`split_seeds`) derived from the caller's base seed, never from
  worker identity, scheduling order, or wall-clock;
* results are collected **in task order** regardless of completion
  order (``ProcessPoolExecutor.map`` semantics);
* ``jobs=1`` — and any environment where a process pool cannot be
  created (restricted sandboxes, missing ``/dev/shm``, recursive
  pools) — falls back to a plain in-process loop over the same
  function, so parallelism is an optimization, never a semantic.

Task functions must be module-level callables and their arguments and
results picklable; the experiment drivers keep their workers at module
scope for exactly this reason.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable, Sequence
from typing import Any, TypeVar

import numpy as np

from ._validation import check_nonnegative_int, check_positive_int

__all__ = ["sweep_map", "split_seeds", "resolve_jobs"]

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Environment knob: default worker count when a caller passes ``jobs=0``.
_JOBS_ENV = "REPRO_JOBS"


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value to a concrete worker count.

    ``None`` or ``0`` means "auto": the ``REPRO_JOBS`` environment
    variable if set and valid, else the machine's CPU count.  Anything
    else must be a positive integer and is returned unchanged.
    """
    if jobs is None or jobs == 0:
        raw = os.environ.get(_JOBS_ENV)
        if raw is not None:
            try:
                val = int(raw)
            except ValueError:
                val = 0
            if val >= 1:
                return val
        return os.cpu_count() or 1
    return check_positive_int(jobs, "jobs")


def split_seeds(seed: int, n: int) -> tuple[int, ...]:
    """*n* statistically independent child seeds of *seed*.

    Uses :class:`numpy.random.SeedSequence` spawning, so the children
    are a pure function of ``(seed, n)`` — the same grid gets the same
    seeds no matter how many workers evaluate it, and nearby base seeds
    do not produce correlated streams (unlike ``seed + i`` arithmetic).

    Examples
    --------
    >>> split_seeds(0, 3) == split_seeds(0, 3)
    True
    >>> len(set(split_seeds(7, 100)))
    100
    """
    check_nonnegative_int(seed, "seed")
    check_nonnegative_int(n, "n")
    ss = np.random.SeedSequence(seed)
    return tuple(int(child.generate_state(1)[0]) for child in ss.spawn(n))


def _serial_map(fn: Callable[[_T], _R], tasks: Sequence[_T]) -> list[_R]:
    return [fn(t) for t in tasks]


def sweep_map(
    fn: Callable[[_T], _R],
    tasks: Iterable[_T],
    jobs: int | None = 1,
    chunksize: int | None = None,
) -> list[_R]:
    """Map *fn* over *tasks*, optionally across worker processes.

    Parameters
    ----------
    fn:
        Pure task function.  For ``jobs > 1`` it must be a module-level
        callable with picklable arguments and results.
    tasks:
        The task grid; consumed eagerly so ordering is fixed before any
        worker starts.
    jobs:
        Worker processes.  ``1`` runs serially in-process; ``None``/``0``
        resolves via :func:`resolve_jobs` (``REPRO_JOBS`` or CPU count).
    chunksize:
        Tasks handed to a worker per dispatch; defaults to roughly four
        chunks per worker, which amortizes pickling for short tasks
        while keeping the pool load-balanced.

    Returns
    -------
    list
        One result per task, **in task order** — bit-identical to
        ``[fn(t) for t in tasks]``.

    Notes
    -----
    Pool *creation* failures (platforms without process support) degrade
    to the serial path.  Exceptions raised by *fn* itself always
    propagate — a failing task is a bug, not a reason to fall back.
    """
    task_list = list(tasks)
    jobs = resolve_jobs(jobs)
    if chunksize is not None:
        check_positive_int(chunksize, "chunksize")
    if jobs == 1 or len(task_list) <= 1:
        return _serial_map(fn, task_list)

    workers = min(jobs, len(task_list))
    if chunksize is None:
        chunksize = max(1, -(-len(task_list) // (workers * 4)))
    try:
        from concurrent.futures import ProcessPoolExecutor

        executor = ProcessPoolExecutor(max_workers=workers)
    except (ImportError, NotImplementedError, OSError, PermissionError):
        # No usable process pool on this platform/sandbox: the sweep
        # still completes, just serially.
        return _serial_map(fn, task_list)
    try:
        return list(executor.map(fn, task_list, chunksize=chunksize))
    finally:
        executor.shutdown()
