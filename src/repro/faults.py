"""Fault injection: degraded links, drained nodes, failure scenarios.

The paper's analysis assumes a *healthy* torus, but the real Mira and
JUQUEEN machines routinely ran with failed links and drained midplanes.
This module is the single source of truth for "what is broken": a
:class:`FaultSet` value type naming failed links, failed nodes, and
per-link capacity degradation factors, plus deterministic seed-driven
scenario generators.  Every other layer consumes a ``FaultSet``:

* :meth:`repro.netsim.network.LinkNetwork.with_faults` zeroes/scales
  link capacities;
* :func:`repro.netsim.routing.fault_aware_route` routes around failures
  and raises :class:`PartitionDisconnectedError` when none exists;
* :class:`repro.simmpi.engine.VirtualMpi` accepts a ``FaultSet`` and
  mid-run :class:`FaultEvent`\\ s, rerouting in-flight transfers or
  aborting with a structured :class:`FaultReport`;
* :mod:`repro.experiments.faultstudy` measures how the paper's geometry
  ranking survives sampled failures.

Directionality
--------------
Links are *directed* at the fault level (Blue Gene/Q links are
physically paired but fail independently per direction); the common
case of a whole cable failing is expressed by failing both directions,
which is what the ``undirected=True`` constructor default and all the
scenario generators do.

Determinism
-----------
Every generator takes a ``seed`` and uses its own ``random.Random``;
the same ``(topology, parameters, seed)`` always yields the same
``FaultSet``, so faulted simulations are bit-reproducible.
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from ._validation import check_nonnegative_int
from .topology.base import SubgraphView, Topology, Vertex
from .topology.torus import Torus

__all__ = [
    "FaultSet",
    "FaultEvent",
    "RepairEvent",
    "FaultReport",
    "DegradedResult",
    "PartitionDisconnectedError",
    "random_link_failures",
    "dimension_outage",
    "midplane_drain",
    "random_degradations",
    "surviving_topology",
]

_Link = tuple[Vertex, Vertex]


class PartitionDisconnectedError(RuntimeError):
    """No surviving route exists between two endpoints.

    Distinct from :class:`repro.simmpi.DeadlockError`: a deadlock is a
    *program* error (mismatched sends/receives), while disconnection is
    a *machine* condition — the fault set severed every path between the
    endpoints.  The exception names the offending endpoints and the
    failed links, and carries the engine's :class:`FaultReport` when
    raised mid-run.
    """

    def __init__(
        self,
        src: Vertex,
        dst: Vertex,
        faults: "FaultSet",
        report: "FaultReport | None" = None,
    ):
        self.src = src
        self.dst = dst
        self.faults = faults
        self.report = report
        shown = sorted(map(repr, faults.failed_links))[:8]
        suffix = (
            f" (+{len(faults.failed_links) - len(shown)} more)"
            if len(faults.failed_links) > len(shown)
            else ""
        )
        detail = (
            f"failed links: {', '.join(shown)}{suffix}"
            if shown
            else f"failed nodes: {sorted(map(repr, faults.failed_nodes))[:8]}"
        )
        super().__init__(
            f"no surviving route from {src!r} to {dst!r}; {detail}"
        )


class FaultSet:
    """An immutable set of link/node failures and capacity degradations.

    Parameters
    ----------
    failed_links:
        ``(u, v)`` pairs of failed links.  With ``undirected=True``
        (default) both directions fail, modelling a severed cable.
    failed_nodes:
        Vertices that are down entirely; every incident link is treated
        as failed.
    degraded_links:
        Mapping ``(u, v) -> factor`` of links running at reduced
        capacity, ``0 < factor < 1``.  Mirrored when ``undirected``.
    undirected:
        Whether link entries apply to both directions.

    Examples
    --------
    >>> f = FaultSet(failed_links=[((0,), (1,))])
    >>> f.is_failed_link((1,), (0,))
    True
    >>> f.capacity_factor((1,), (0,))
    0.0
    """

    __slots__ = ("_links", "_nodes", "_degraded")

    def __init__(
        self,
        failed_links: Iterable[_Link] = (),
        failed_nodes: Iterable[Vertex] = (),
        degraded_links: Mapping[_Link, float] | None = None,
        undirected: bool = True,
    ):
        links: set[_Link] = set()
        for u, v in failed_links:
            if u == v:
                raise ValueError(f"self-loop link ({u!r}, {v!r}) in faults")
            links.add((u, v))
            if undirected:
                links.add((v, u))
        degraded: dict[_Link, float] = {}
        for (u, v), factor in (degraded_links or {}).items():
            f = float(factor)
            if not 0.0 < f < 1.0:
                raise ValueError(
                    f"degradation factor for ({u!r}, {v!r}) must be in "
                    f"(0, 1), got {factor}"
                )
            degraded[(u, v)] = f
            if undirected:
                degraded[(v, u)] = f
        self._links = frozenset(links)
        self._nodes = frozenset(failed_nodes)
        # Failed beats degraded: drop degradations on failed links.
        self._degraded = {
            k: f for k, f in degraded.items() if k not in self._links
        }

    # ------------------------------------------------------------------ #
    # Queries                                                             #
    # ------------------------------------------------------------------ #

    @property
    def failed_links(self) -> frozenset[_Link]:
        """Failed directed links."""
        return self._links

    @property
    def failed_nodes(self) -> frozenset[Vertex]:
        """Failed (drained) nodes."""
        return self._nodes

    @property
    def degraded_links(self) -> dict[_Link, float]:
        """Directed links running at reduced capacity (copy)."""
        return dict(self._degraded)

    def is_empty(self) -> bool:
        """Whether no fault is present (healthy machine)."""
        return not (self._links or self._nodes or self._degraded)

    def __bool__(self) -> bool:
        return not self.is_empty()

    def is_failed_link(self, u: Vertex, v: Vertex) -> bool:
        """Whether the directed link ``u -> v`` itself has failed."""
        return (u, v) in self._links

    def is_failed_node(self, v: Vertex) -> bool:
        """Whether node *v* is down."""
        return v in self._nodes

    def blocks(self, u: Vertex, v: Vertex) -> bool:
        """Whether traffic cannot use ``u -> v`` (link or endpoint down)."""
        return (
            (u, v) in self._links or u in self._nodes or v in self._nodes
        )

    def capacity_factor(self, u: Vertex, v: Vertex) -> float:
        """Capacity multiplier for ``u -> v``: 0 failed, (0,1) degraded."""
        if self.blocks(u, v):
            return 0.0
        return self._degraded.get((u, v), 1.0)

    # ------------------------------------------------------------------ #
    # Algebra                                                             #
    # ------------------------------------------------------------------ #

    def union(self, other: "FaultSet") -> "FaultSet":
        """Combined fault set; overlapping degradations multiply."""
        degraded = dict(self._degraded)
        for k, f in other._degraded.items():
            # Clamp away from 0 so 'degraded' stays distinct from 'failed'.
            degraded[k] = max(degraded.get(k, 1.0) * f, 1e-9)
        links = self._links | other._links
        return FaultSet(
            failed_links=links,
            failed_nodes=self._nodes | other._nodes,
            degraded_links={
                k: f for k, f in degraded.items() if k not in links
            },
            undirected=False,
        )

    def __or__(self, other: "FaultSet") -> "FaultSet":
        return self.union(other)

    def restore(
        self,
        links: Iterable[_Link] = (),
        nodes: Iterable[Vertex] = (),
        undirected: bool = True,
    ) -> "FaultSet":
        """Fault set with the named links/nodes repaired (removed).

        The inverse of :meth:`union` for failures: a repaired link or
        node must currently be failed — repairing something that never
        failed is a modelling error (a mistyped coordinate, a repair
        event ordered before its fault) and raises :class:`ValueError`
        naming the offender.  With ``undirected=True`` (default,
        matching the constructor) both directions of each link are
        repaired, and both must be failed.

        Degradations are untouched: a repaired link returns to *full*
        capacity only if it was failed, not merely degraded.
        """
        repaired: set[_Link] = set()
        for u, v in links:
            for link in ((u, v), (v, u)) if undirected else ((u, v),):
                if link not in self._links:
                    raise ValueError(
                        f"cannot repair link {link!r}: it is not "
                        f"failed (failed links: "
                        f"{sorted(map(repr, self._links))[:8]})"
                    )
                repaired.add(link)
        node_set = set(nodes)
        for n in node_set:
            if n not in self._nodes:
                raise ValueError(
                    f"cannot repair node {n!r}: it is not failed"
                )
        return FaultSet(
            failed_links=self._links - repaired,
            failed_nodes=self._nodes - node_set,
            degraded_links=self._degraded,
            undirected=False,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultSet):
            return NotImplemented
        return (
            self._links == other._links
            and self._nodes == other._nodes
            and self._degraded == other._degraded
        )

    def __hash__(self) -> int:
        return hash(
            (self._links, self._nodes, frozenset(self._degraded.items()))
        )

    def __repr__(self) -> str:
        return (
            f"FaultSet(links={len(self._links)}, nodes={len(self._nodes)}, "
            f"degraded={len(self._degraded)})"
        )


@dataclass(frozen=True)
class FaultEvent:
    """A fault set that strikes at virtual time *time* during a run."""

    time: float
    faults: FaultSet

    def __post_init__(self) -> None:
        if not self.time >= 0.0:
            raise ValueError(
                f"fault event time must be >= 0, got {self.time}"
            )


@dataclass(frozen=True)
class RepairEvent:
    """Named links/nodes come back up at virtual time *time*.

    The other half of the :class:`FaultEvent` lifecycle: a transient
    link flap is a ``FaultEvent`` followed by a ``RepairEvent`` for the
    same links.  The engine validates the whole event timeline at
    construction — a repair naming a link that is not failed at that
    point in the timeline is rejected (see :meth:`FaultSet.restore`).

    With ``undirected=True`` (default) each link entry repairs both
    directions, mirroring the ``FaultSet`` constructor default.
    """

    time: float
    links: tuple[_Link, ...] = ()
    nodes: tuple[Vertex, ...] = ()
    undirected: bool = True

    def __post_init__(self) -> None:
        if not self.time >= 0.0:
            raise ValueError(
                f"repair event time must be >= 0, got {self.time}"
            )
        object.__setattr__(self, "links", tuple(self.links))
        object.__setattr__(self, "nodes", tuple(self.nodes))
        if not self.links and not self.nodes:
            raise ValueError(
                "repair event must name at least one link or node"
            )


@dataclass(frozen=True)
class DegradedResult:
    """Typed stand-in result for a scenario severed by its fault set.

    Sweep runners return this instead of letting
    :class:`PartitionDisconnectedError` abort the whole sweep: the
    scenario is recorded as *degraded* — with the fault set and one
    severed ``(src, dst)`` witness pair — and the remaining scenarios
    proceed.

    Attributes
    ----------
    scenario:
        Hashable scenario identifier chosen by the sweep (e.g.
        ``(num_failures, trial)``).
    faults:
        The fault set that severed the partition.
    witness:
        One ``(src, dst)`` endpoint pair with no surviving route.
    disconnected_flows:
        How many of the scenario's flows were disconnected.
    """

    scenario: tuple
    faults: FaultSet
    witness: tuple[Vertex, Vertex]
    disconnected_flows: int = 1


@dataclass(frozen=True)
class FaultReport:
    """Structured account of a fault that aborted a simulation.

    Attributes
    ----------
    time:
        Virtual time at which the fatal fault struck.
    failed_links:
        The directed links down at abort time.
    aborted_flows:
        ``(src_node, dst_node, remaining_gb)`` for every in-flight
        transfer that could not be rerouted.
    """

    time: float
    failed_links: tuple[_Link, ...]
    aborted_flows: tuple[tuple[Vertex, Vertex, float], ...]


# ---------------------------------------------------------------------- #
# Scenario generators                                                     #
# ---------------------------------------------------------------------- #


def random_link_failures(
    topo: Topology,
    k: int,
    seed: int = 0,
    edges: list[_Link] | None = None,
) -> FaultSet:
    """Fail *k* uniformly sampled undirected links of *topo*.

    Deterministic for a given ``(topology, k, seed)``.  Callers drawing
    many samples from one topology may pass the precomputed undirected
    *edges* list (as yielded by :meth:`Topology.edges`) to avoid
    re-enumerating it per draw.
    """
    check_nonnegative_int(k, "k")
    if edges is None:
        edges = [(u, v) for u, v, _ in topo.edges()]
    if k > len(edges):
        raise ValueError(
            f"cannot fail {k} links; {topo.name} has only "
            f"{len(edges)} edges"
        )
    rng = random.Random(seed)
    return FaultSet(failed_links=rng.sample(edges, k))


def dimension_outage(
    torus: Torus,
    dim: int,
    seed: int = 0,
    fraction: float = 1.0,
) -> FaultSet:
    """Correlated outage of one torus dimension's link plane.

    Models a failed cable bundle: all dimension-*dim* links between
    coordinate ``c`` and ``c+1 (mod a)`` — a full cross-section plane —
    fail together, for a seed-chosen ``c``.  *fraction* < 1 fails only
    that share of the plane (sampled deterministically).
    """
    if not 0 <= dim < torus.ndim:
        raise ValueError(
            f"dimension index {dim} out of range for {torus.name}"
        )
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    a = torus.dims[dim]
    if a == 1:
        raise ValueError(
            f"dimension {dim} of {torus.name} has length 1 and no links"
        )
    rng = random.Random(seed)
    c = rng.randrange(a)
    plane: list[_Link] = []
    for v in torus.vertices():
        if v[dim] != c:
            continue
        u = v[:dim] + ((c + 1) % a,) + v[dim + 1 :]
        if u != v:
            plane.append((v, u))
    if fraction < 1.0:
        keep = max(1, round(fraction * len(plane)))
        plane = rng.sample(plane, keep)
    return FaultSet(failed_links=plane)


def midplane_drain(torus: Torus, dim: int, coord: int) -> FaultSet:
    """Drain the slab of nodes with coordinate *coord* along *dim*.

    On a midplane-level torus this removes one midplane layer (the
    administrative "drain" that takes hardware out for maintenance); on
    a node-level torus it removes a plane of nodes.  All links incident
    to drained nodes are implicitly failed.
    """
    if not 0 <= dim < torus.ndim:
        raise ValueError(
            f"dimension index {dim} out of range for {torus.name}"
        )
    if not 0 <= coord < torus.dims[dim]:
        raise ValueError(
            f"coordinate {coord} out of range for dimension {dim} of "
            f"{torus.name}"
        )
    nodes = [v for v in torus.vertices() if v[dim] == coord]
    return FaultSet(failed_nodes=nodes)


def random_degradations(
    topo: Topology,
    k: int,
    factor: float = 0.5,
    seed: int = 0,
) -> FaultSet:
    """Degrade *k* sampled undirected links to *factor* of their capacity.

    Models links retrained at reduced speed after correctable errors.
    """
    check_nonnegative_int(k, "k")
    if not 0.0 < factor < 1.0:
        raise ValueError(f"factor must be in (0, 1), got {factor}")
    edges = [(u, v) for u, v, _ in topo.edges()]
    if k > len(edges):
        raise ValueError(
            f"cannot degrade {k} links; {topo.name} has only "
            f"{len(edges)} edges"
        )
    rng = random.Random(seed)
    return FaultSet(
        degraded_links={e: factor for e in rng.sample(edges, k)}
    )


def surviving_topology(topo: Topology, faults: FaultSet) -> Topology:
    """Directional view of *topo* with failed links and nodes removed.

    The view is intended for route computation: ``neighbors(u)`` omits
    ``v`` when the *directed* link ``u -> v`` is down, so BFS over the
    view explores exactly the usable directed links.  Degraded links
    remain present (they still carry traffic, just slowly).
    """
    if faults.is_empty():
        return topo
    return SubgraphView(
        topo,
        node_alive=lambda v: not faults.is_failed_node(v),
        edge_alive=lambda u, v: not faults.is_failed_link(u, v),
    )
