"""Virtual-time execution engine for rank programs.

:class:`VirtualMpi` runs one generator ("rank program") per MPI rank
over a partition's torus network.  Ranks yield operations
(:mod:`repro.simmpi.ops`); the engine matches communications into
network *flows*, shares link bandwidth max-min fairly among concurrent
flows (recomputing rates at every event), and advances a single global
virtual clock.  The result is a discrete-event simulation whose
communication layer is exactly the fluid contention model validated in
:mod:`repro.netsim` — but programmable, so workloads the paper only
describes can be written naturally (see ``examples/simmpi_pingpong.py``).

Semantics
---------
* ``Send``/``Recv`` are rendezvous: the transfer starts once both sides
  have posted and both resume when it completes (large-message MPI).
* ``SendRecv`` pairs with the peer's ``SendRecv`` of the same tag; both
  directions transfer concurrently (full duplex) and the rank resumes
  when *both* finish.
* Messages between ranks on the same node cost zero time.
* Bandwidth-only model: per-message latency is negligible at the
  100 MB+ message sizes of the paper's experiments.
* Determinism: rank stepping and matching follow rank order; no clocks,
  no randomness.

Deadlocks (all ranks blocked, nothing in flight) raise
:class:`DeadlockError` naming the blocked ranks — mismatched tags and
unpaired sends are caught instead of hanging.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Generator, Sequence
from dataclasses import dataclass, field

import numpy as np

from .._validation import check_positive_float
from ..netsim.fairness import max_min_fair_rates
from ..netsim.network import LinkNetwork
from ..netsim.routing import dimension_ordered_route
from ..topology.torus import Torus
from .ops import Barrier, Compute, Isend, Recv, Send, SendRecv

__all__ = ["VirtualMpi", "RankStats", "RunResult", "DeadlockError"]

#: Rank program: called with (rank, size), returns a generator of ops.
Program = Callable[[int, int], Generator]

_EPS = 1e-12


class DeadlockError(RuntimeError):
    """All ranks are blocked and no transfer or computation is active."""


@dataclass
class _Flow:
    path: np.ndarray
    remaining: float
    group: "_Group"


@dataclass
class _Group:
    """A completion group: ranks wake when all member flows finish.

    ``deliveries`` maps a waiting rank to the payload its ``yield``
    expression evaluates to on resume (receives get the sender's
    payload; sends resume with ``None``).
    """

    waiters: tuple[int, ...]
    outstanding: int
    deliveries: dict[int, object] = field(default_factory=dict)


@dataclass(frozen=True)
class RankStats:
    """Per-rank accounting of a finished run."""

    finish_time: float
    gb_sent: float
    messages_sent: int
    compute_seconds: float


@dataclass(frozen=True)
class RunResult:
    """Outcome of a :meth:`VirtualMpi.run` call.

    Attributes
    ----------
    time:
        Virtual makespan (seconds) — when the last rank finished.
    ranks:
        Per-rank statistics.
    """

    time: float
    ranks: tuple[RankStats, ...]

    @property
    def total_gb_sent(self) -> float:
        return sum(r.gb_sent for r in self.ranks)

    @property
    def max_compute_seconds(self) -> float:
        return max(r.compute_seconds for r in self.ranks)


class VirtualMpi:
    """A virtual-time MPI world over a torus partition.

    Parameters
    ----------
    torus:
        The partition's node-level torus (use
        :meth:`PartitionGeometry.bgq_network` for physical capacities).
    rank_to_node:
        Node index per rank; defaults to one rank per node (identity).
    link_bandwidth:
        GB/s per unit link weight (2.0 for Blue Gene/Q).
    tie:
        Routing tie-break (see :func:`dimension_ordered_route`).
    """

    def __init__(
        self,
        torus: Torus,
        rank_to_node: Sequence[int] | None = None,
        link_bandwidth: float = 2.0,
        tie: str = "parity",
    ):
        check_positive_float(link_bandwidth, "link_bandwidth")
        self._torus = torus
        self._net = LinkNetwork(torus, link_bandwidth=link_bandwidth)
        self._verts = list(torus.vertices())
        if rank_to_node is None:
            self._rank_node = list(range(torus.num_vertices))
        else:
            self._rank_node = [int(i) for i in rank_to_node]
            n = torus.num_vertices
            if any(not 0 <= i < n for i in self._rank_node):
                raise ValueError(
                    f"rank_to_node entries must be in [0, {n - 1}]"
                )
        self._tie = tie
        self._route_cache: dict[tuple[int, int], np.ndarray] = {}

    @property
    def size(self) -> int:
        """Number of ranks in the world."""
        return len(self._rank_node)

    def _path(self, src_rank: int, dst_rank: int) -> np.ndarray:
        key = (self._rank_node[src_rank], self._rank_node[dst_rank])
        path = self._route_cache.get(key)
        if path is None:
            path = self._net.path_to_links(
                dimension_ordered_route(
                    self._torus, self._verts[key[0]], self._verts[key[1]],
                    tie=self._tie,
                )
            )
            self._route_cache[key] = path
        return path

    # ------------------------------------------------------------------ #

    def run(self, program: Program) -> RunResult:
        """Execute *program* on every rank; return the virtual-time result."""
        size = self.size
        gens = [program(r, size) for r in range(size)]

        READY, BLOCKED, DONE = 0, 1, 2
        state = [READY] * size
        now = 0.0
        finish = [0.0] * size
        gb_sent = [0.0] * size
        msgs = [0] * size
        comp_secs = [0.0] * size

        computing: dict[int, float] = {}          # rank -> finish time
        flows: list[_Flow] = []
        barrier_waiters: list[int] = []
        # Unmatched posts: key (src, dst, tag) for sends; (src, dst, tag)
        # for recvs keyed by the *sender* side too.
        sends: dict[
            tuple[int, int, int], deque[tuple[int, float, object]]
        ] = {}
        recvs: dict[tuple[int, int, int], deque[int]] = {}
        exch: dict[
            tuple[int, int, int], deque[tuple[int, float, object]]
        ] = {}
        eager: dict[
            tuple[int, int, int], deque[tuple[int, float, object]]
        ] = {}
        resume: list[object] = [None] * size

        def wake(group: _Group) -> None:
            for r in group.waiters:
                resume[r] = group.deliveries.get(r)
                state[r] = READY

        def start_flow(src: int, dst: int, gb: float, group: _Group) -> None:
            path = self._path(src, dst)
            gb_sent[src] += gb
            msgs[src] += 1
            if len(path) == 0:  # same node: free
                group.outstanding -= 1
                if group.outstanding == 0:
                    wake(group)
                return
            flows.append(_Flow(path=path, remaining=gb, group=group))

        def advance_rank(rank: int) -> None:
            """Step one rank's generator until it blocks or finishes."""
            while state[rank] == READY:
                try:
                    value, resume[rank] = resume[rank], None
                    op = gens[rank].send(value)
                except StopIteration:
                    state[rank] = DONE
                    finish[rank] = now
                    return
                if isinstance(op, Compute):
                    comp_secs[rank] += op.seconds
                    if op.seconds <= 0:
                        continue
                    computing[rank] = now + op.seconds
                    state[rank] = BLOCKED
                elif isinstance(op, Send):
                    key = (rank, op.dst, op.tag)
                    waiting = recvs.get((rank, op.dst, op.tag))
                    if waiting:
                        receiver = waiting.popleft()
                        group = _Group(
                            waiters=(rank, receiver), outstanding=1,
                            deliveries={receiver: op.payload},
                        )
                        state[rank] = BLOCKED
                        start_flow(rank, op.dst, op.gb, group)
                    else:
                        sends.setdefault(key, deque()).append(
                            (rank, op.gb, op.payload)
                        )
                        state[rank] = BLOCKED
                elif isinstance(op, Isend):
                    key = (rank, op.dst, op.tag)
                    waiting = recvs.get(key)
                    if waiting:
                        receiver = waiting.popleft()
                        group = _Group(
                            waiters=(receiver,), outstanding=1,
                            deliveries={receiver: op.payload},
                        )
                        start_flow(rank, op.dst, op.gb, group)
                    else:
                        eager.setdefault(key, deque()).append(
                            (rank, op.gb, op.payload)
                        )
                        gb_sent[rank] += op.gb
                        msgs[rank] += 1
                    # Sender continues immediately (stays READY).
                elif isinstance(op, Recv):
                    key = (op.src, rank, op.tag)
                    buffered = eager.get(key)
                    if buffered:
                        sender, gb, payload = buffered.popleft()
                        group = _Group(
                            waiters=(rank,), outstanding=1,
                            deliveries={rank: payload},
                        )
                        state[rank] = BLOCKED
                        # Accounting already done at Isend time; start
                        # the wire transfer without recounting.
                        path = self._path(sender, rank)
                        if len(path) == 0:
                            wake(group)
                        else:
                            flows.append(
                                _Flow(path=path, remaining=gb, group=group)
                            )
                        continue
                    waiting = sends.get(key)
                    if waiting:
                        sender, gb, payload = waiting.popleft()
                        group = _Group(
                            waiters=(sender, rank), outstanding=1,
                            deliveries={rank: payload},
                        )
                        state[rank] = BLOCKED
                        start_flow(sender, rank, gb, group)
                    else:
                        recvs.setdefault(key, deque()).append(rank)
                        state[rank] = BLOCKED
                elif isinstance(op, SendRecv):
                    a, b = rank, op.peer
                    key = (min(a, b), max(a, b), op.tag)
                    waiting = exch.get(key)
                    if waiting:
                        peer, peer_gb, peer_payload = waiting.popleft()
                        group = _Group(
                            waiters=(rank, peer), outstanding=2,
                            deliveries={
                                rank: peer_payload, peer: op.payload,
                            },
                        )
                        state[rank] = BLOCKED
                        start_flow(rank, peer, op.gb, group)
                        start_flow(peer, rank, peer_gb, group)
                    else:
                        exch.setdefault(key, deque()).append(
                            (rank, op.gb, op.payload)
                        )
                        state[rank] = BLOCKED
                elif isinstance(op, Barrier):
                    barrier_waiters.append(rank)
                    state[rank] = BLOCKED
                    if len(barrier_waiters) == size:
                        for r in barrier_waiters:
                            state[r] = READY
                        barrier_waiters.clear()
                else:
                    raise TypeError(
                        f"rank {rank} yielded {op!r}; expected a simmpi "
                        "operation"
                    )

        # Main event loop.
        guard = 0
        max_events = 10_000_000
        while True:
            guard += 1
            if guard > max_events:  # pragma: no cover - defensive
                raise RuntimeError("simmpi exceeded the event budget")
            stepped = False
            for r in range(size):
                if state[r] == READY:
                    stepped = True
                    advance_rank(r)
            if stepped:
                continue  # matching may have made other ranks READY
            if all(s == DONE for s in state):
                break
            if not flows and not computing:
                blocked = [r for r in range(size) if state[r] == BLOCKED]
                shown = blocked[:16]
                suffix = (
                    f" (+{len(blocked) - len(shown)} more)"
                    if len(blocked) > len(shown)
                    else ""
                )
                raise DeadlockError(
                    f"{len(blocked)} ranks are blocked with no transfer "
                    f"or computation in flight: {shown}{suffix} "
                    "(mismatched send/recv, unpaired exchange, or "
                    "incomplete barrier)"
                )
            # Advance virtual time to the next event.
            dt = np.inf
            if flows:
                rates = max_min_fair_rates(
                    [f.path for f in flows], self._net.capacities
                )
                dt = min(
                    f.remaining / r for f, r in zip(flows, rates)
                )
            if computing:
                dt = min(dt, min(computing.values()) - now)
            dt = max(dt, 0.0)
            now += dt
            # Progress flows.
            if flows:
                done_groups: list[_Group] = []
                kept: list[_Flow] = []
                for f, r in zip(flows, rates):
                    f.remaining -= r * dt
                    if f.remaining <= _EPS:
                        f.group.outstanding -= 1
                        if f.group.outstanding == 0:
                            done_groups.append(f.group)
                    else:
                        kept.append(f)
                flows = kept
                for g in done_groups:
                    wake(g)
            # Finish computations.
            for r in [r for r, t in computing.items() if t - now <= _EPS]:
                del computing[r]
                state[r] = READY

        return RunResult(
            time=max(finish) if finish else 0.0,
            ranks=tuple(
                RankStats(
                    finish_time=finish[r],
                    gb_sent=gb_sent[r],
                    messages_sent=msgs[r],
                    compute_seconds=comp_secs[r],
                )
                for r in range(size)
            ),
        )
