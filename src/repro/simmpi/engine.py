"""Virtual-time execution engine for rank programs.

:class:`VirtualMpi` runs one generator ("rank program") per MPI rank
over a partition's torus network.  Ranks yield operations
(:mod:`repro.simmpi.ops`); the engine matches communications into
network *flows*, shares link bandwidth max-min fairly among concurrent
flows (recomputing rates at every event), and advances a single global
virtual clock.  The result is a discrete-event simulation whose
communication layer is exactly the fluid contention model validated in
:mod:`repro.netsim` — but programmable, so workloads the paper only
describes can be written naturally (see ``examples/simmpi_pingpong.py``).

Semantics
---------
* ``Send``/``Recv`` are rendezvous: the transfer starts once both sides
  have posted and both resume when it completes (large-message MPI).
* ``SendRecv`` pairs with the peer's ``SendRecv`` of the same tag; both
  directions transfer concurrently (full duplex) and the rank resumes
  when *both* finish.
* Messages between ranks on the same node cost zero time.
* Bandwidth-only model: per-message latency is negligible at the
  100 MB+ message sizes of the paper's experiments.
* Determinism: rank stepping and matching follow rank order; no clocks,
  no randomness.  This extends to faults: the same program, ``FaultSet``
  and fault events yield bit-identical results across repeated runs.

Degraded operation
------------------
A :class:`~repro.faults.FaultSet` passed at construction removes links
and nodes before the first message; routes then avoid failures (see
:func:`repro.netsim.routing.fault_aware_route`).  Mid-run
:class:`~repro.faults.FaultEvent`\\ s strike at a virtual time: in-flight
transfers crossing a newly failed link are rerouted over surviving
links when possible (counted in :attr:`RunResult.reroutes`, restarting
the *remaining* volume on the new path), and when no route survives the
run aborts with :class:`~repro.faults.PartitionDisconnectedError`
carrying a structured :class:`~repro.faults.FaultReport`.

Deadlocks (all ranks blocked, nothing in flight) raise
:class:`DeadlockError` naming the blocked ranks — mismatched tags and
unpaired sends are caught instead of hanging.  Disconnection is *never*
reported as a deadlock: unreachable endpoints raise
:class:`~repro.faults.PartitionDisconnectedError` as soon as the
transfer would start.

Engine internals
----------------
In-flight flows live in one of two interchangeable backends.  The
default (:class:`_VectorFlows`) stores all flow state in a persistent
array-native :class:`~repro.simmpi.ledger.FlowLedger` — an append-only
CSR path arena plus ``remaining``/``group``/``active`` planes — so
every event is a handful of numpy reductions: the fairness solve
consumes a live :class:`~repro.netsim.batchroute.PathMatrix` view with
active-subset indexing, ``dt`` is ``(remaining / rates).min()``, flow
progress is ``remaining[act] -= rates * dt``, and group completion is
a ``bincount``-style grouped reduction.  ``REPRO_VECTOR=0`` swaps in
:class:`_OracleFlows`, the original per-``_Flow``-object loops kept
verbatim as the differential oracle: both backends produce
bit-identical :class:`RunResult`\\ s (the contract of
``tests/properties/test_property_simmpi.py``).

Ready ranks are scheduled through an epoch-ordered heap that
reproduces the historical cyclic ascending scan exactly — rank
wake-ups cost O(log ready) instead of an O(size) rescan per loop
iteration — so scheduling order (and with it every order-sensitive
artifact, e.g. :class:`~repro.faults.FaultReport` flow order) is
unchanged from the scan-based engine.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Generator, Sequence
from dataclasses import dataclass, field
from heapq import heappop, heappush

import numpy as np

from .. import observability
from .._validation import check_positive_float, check_positive_int
from ..caching import memoized
from ..faults import (
    FaultEvent,
    FaultReport,
    FaultSet,
    PartitionDisconnectedError,
    RepairEvent,
)
from ..netsim.batchroute import (
    batch_dimension_ordered_routes,
    link_layout,
    vector_enabled,
)
from ..netsim.fairness import max_min_fair_rates
from ..netsim.network import LinkNetwork
from ..netsim.routing import check_tie, dimension_ordered_route, fault_aware_route
from ..topology.torus import Torus
from .ledger import FlowLedger
from .ops import Barrier, Compute, Isend, Recv, Send, SendRecv

__all__ = [
    "VirtualMpi",
    "RankStats",
    "RunResult",
    "DeadlockError",
    "EventBudgetError",
]

#: Rank program: called with (rank, size), returns a generator of ops.
Program = Callable[[int, int], Generator]

_EPS = 1e-12


def _path_severed(caps: np.ndarray, path: np.ndarray) -> bool:
    """Whether any link of *path* has (effectively) zero capacity.

    Fault injection zeroes failed links exactly, but the check is a
    grouped ``_EPS`` comparison rather than a float ``==``: a capacity
    that rounding has driven below ``_EPS`` carries no traffic either,
    and the reroute must fire for it too (healthy links sit at O(1)
    GB/s, twelve orders of magnitude above the threshold).
    """
    return bool((caps[path] <= _EPS).any())


@memoized(maxsize=256, key=lambda torus: torus)
def _link_dim_table(torus: Torus) -> np.ndarray:
    """Dimension index of every directed link of *torus* ("link class").

    Follows analytically from the dense link layout — the per-vertex
    slot-to-dimension map tiled over vertices — and is memoized per
    torus through :mod:`repro.caching`: engines over equal tori (every
    rank-program sweep) share one read-only table instead of rebuilding
    it with a per-link Python loop.
    """
    layout = link_layout(torus)
    table = np.tile(
        np.asarray(layout.slot_dims), torus.num_vertices
    )
    table.flags.writeable = False
    return table


class DeadlockError(RuntimeError):
    """All ranks are blocked and no transfer or computation is active."""


class EventBudgetError(RuntimeError):
    """The simulation exceeded its event budget (see ``max_events``)."""


@dataclass
class _Flow:
    path: np.ndarray
    remaining: float
    group: "_Group"
    src_node: int
    dst_node: int


@dataclass
class _Group:
    """A completion group: ranks wake when all member flows finish.

    ``deliveries`` maps a waiting rank to the payload its ``yield``
    expression evaluates to on resume (receives get the sender's
    payload; sends resume with ``None``).  ``gid`` is the vector
    backend's dense registration id (-1 until a flow registers the
    group; the oracle backend never assigns one).
    """

    waiters: tuple[int, ...]
    outstanding: int
    deliveries: dict[int, object] = field(default_factory=dict)
    gid: int = -1


class _OracleFlows:
    """Per-``_Flow``-object store: the ``REPRO_VECTOR=0`` oracle.

    These are the original engine's per-flow Python loops, kept
    verbatim: the vectorized :class:`_VectorFlows` backend must
    reproduce this backend's :class:`RunResult`\\ s bit for bit.
    """

    __slots__ = ("flows", "_rates")

    def __init__(self, num_links: int):
        self.flows: list[_Flow] = []
        self._rates: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self.flows)

    def add(
        self,
        path: np.ndarray,
        gb: float,
        group: _Group,
        src_node: int,
        dst_node: int,
    ) -> None:
        self.flows.append(
            _Flow(
                path=path,
                remaining=gb,
                group=group,
                src_node=src_node,
                dst_node=dst_node,
            )
        )

    def solve_dt(self, capacities: np.ndarray) -> float:
        """Re-solve fair rates; return the time to the next completion."""
        rates = max_min_fair_rates(
            [f.path for f in self.flows], capacities
        )
        self._rates = rates
        return min(f.remaining / r for f, r in zip(self.flows, rates))

    def degraded_count(self, degr_mask: np.ndarray) -> int:
        """How many in-flight flows cross a degraded link."""
        return sum(
            1 for f in self.flows if bool(degr_mask[f.path].any())
        )

    def progress(self, dt: float) -> list[_Group]:
        """Advance every flow by ``rate * dt``; return completed groups."""
        done_groups: list[_Group] = []
        kept: list[_Flow] = []
        for f, r in zip(self.flows, self._rates):
            f.remaining -= r * dt
            if f.remaining <= _EPS:
                f.group.outstanding -= 1
                if f.group.outstanding == 0:
                    done_groups.append(f.group)
            else:
                kept.append(f)
        self.flows = kept
        return done_groups

    def reroute_severed(
        self, caps: np.ndarray, path_of
    ) -> tuple[int, list[tuple[int, int, float]]]:
        """Re-path flows crossing a failed link; collect unroutable ones."""
        reroutes = 0
        lost: list[tuple[int, int, float]] = []
        for f in self.flows:
            if not _path_severed(caps, f.path):
                continue
            try:
                f.path = path_of(f.src_node, f.dst_node)
            except PartitionDisconnectedError:
                lost.append((f.src_node, f.dst_node, f.remaining))
                continue
            if len(f.path) == 0:  # pragma: no cover - defensive
                raise AssertionError("reroute produced an empty path")
            reroutes += 1
        return reroutes, lost

    def restore_routes(self, path_of) -> int:
        """Switch flows back to their preferred route after a repair."""
        restores = 0
        for f in self.flows:
            new_path = path_of(f.src_node, f.dst_node)
            if len(new_path) != len(f.path) or not np.array_equal(
                new_path, f.path
            ):
                f.path = new_path
                restores += 1
        return restores


class _VectorFlows:
    """Ledger-backed flow store: the vectorized default backend.

    All per-event work is numpy over the persistent
    :class:`~repro.simmpi.ledger.FlowLedger` planes; completion groups
    stay Python objects, registered in a dense-id map only while they
    have outstanding flows.  Flow-creation order survives reroutes via
    the ledger's ``order_key`` plane, which is what keeps
    order-sensitive artifacts (fault reports, restore scans, route
    cache traffic) bit-identical with :class:`_OracleFlows`.
    """

    __slots__ = (
        "ledger", "groups", "_next_gid",
        "_act", "_rates", "_rem", "_pending",
    )

    def __init__(self, num_links: int):
        self.ledger = FlowLedger(num_links)
        self.groups: dict[int, _Group] = {}
        self._next_gid = 0
        # Active slots carried across events: progress() filters out
        # completions, add() appends (slot ids are monotone, so the
        # ascending order active_slots() would produce is preserved).
        # Dropped to None whenever slots are renumbered or repathed.
        self._act: np.ndarray | None = None
        self._rates: np.ndarray | None = None
        self._rem: np.ndarray | None = None
        self._pending: list[int] = []

    def __len__(self) -> int:
        return self.ledger.num_active

    def add(
        self,
        path: np.ndarray,
        gb: float,
        group: _Group,
        src_node: int,
        dst_node: int,
    ) -> None:
        if group.gid < 0:
            group.gid = self._next_gid
            self._next_gid += 1
            self.groups[group.gid] = group
        self._pending.append(
            self.ledger.add(path, gb, group.gid, src_node, dst_node)
        )

    def solve_dt(self, capacities: np.ndarray) -> float:
        """Re-solve fair rates over the live ledger view.

        The active-subset gather inside
        :func:`~repro.netsim.fairness.max_min_fair_rates` sees exactly
        the entries the oracle's rebuilt path list would contain (up to
        flow permutation, under which the water-fill is equivariant),
        so rates — and the exact ``min`` below — are bit-identical.
        ``validate=False`` skips the solver's failed-link scan: the
        engine reroutes flows off dead links before ever re-solving.
        """
        act = self._act
        if act is None:
            act = self.ledger.active_slots()
        elif self._pending:
            act = np.concatenate(
                (act, np.asarray(self._pending, dtype=np.int64))
            )
        self._pending.clear()
        self._act = act
        rates = max_min_fair_rates(
            self.ledger.view(), capacities, active=act, validate=False
        )
        self._rates = rates
        rem = self.ledger.remaining[act]
        self._rem = rem
        return float((rem / rates).min())

    def degraded_count(self, degr_mask: np.ndarray) -> int:
        """How many in-flight flows cross a degraded link."""
        return self.ledger.crossing_count(degr_mask, self._act)

    def progress(self, dt: float) -> list[_Group]:
        """Advance the remaining plane; return completed groups.

        Completed groups are reported in first-completion (slot) order
        rather than the oracle's flow order; the orders are
        interchangeable because rank wake-ups are scheduled by the
        engine's ready heap (rank-ascending within a pass) independent
        of wake call order.
        """
        act, rates = self._act, self._rates
        led = self.ledger
        after = self._rem - rates * dt
        led.remaining[act] = after
        done_mask = after <= _EPS
        done = act[done_mask]
        completed: list[_Group] = []
        if done.size:
            self._act = act[~done_mask]
            gids = led.group_ids[done]
            led.deactivate(done)
            groups = self.groups
            tally: dict[int, int] = {}
            for g in gids.tolist():
                tally[g] = tally.get(g, 0) + 1
            for g, c in tally.items():
                grp = groups[g]
                grp.outstanding -= c
                if grp.outstanding == 0:
                    del groups[g]
                    completed.append(grp)
            if led.maybe_compact():
                self._act = None  # slots were renumbered
        return completed

    def reroute_severed(
        self, caps: np.ndarray, path_of
    ) -> tuple[int, list[tuple[int, int, float]]]:
        """Re-path flows crossing a failed link; collect unroutable ones.

        Severed flows are found with one masked gather and visited in
        flow-creation order (the oracle's list order), so the route
        cache sees the same miss sequence and a disconnection aborts
        with the same witness flow.
        """
        led = self.ledger
        self._act = None  # repaths retire slots out of creation order
        severed = led.crossing_slots(caps <= _EPS)
        reroutes = 0
        lost: list[tuple[int, int, float]] = []
        for slot in severed.tolist():
            src = int(led.src_nodes[slot])
            dst = int(led.dst_nodes[slot])
            try:
                new_path = path_of(src, dst)
            except PartitionDisconnectedError:
                lost.append((src, dst, float(led.remaining[slot])))
                continue
            if len(new_path) == 0:  # pragma: no cover - defensive
                raise AssertionError("reroute produced an empty path")
            led.repath(slot, new_path)
            reroutes += 1
        return reroutes, lost

    def restore_routes(self, path_of) -> int:
        """Switch flows back to their preferred route after a repair."""
        led = self.ledger
        self._act = None  # repaths retire slots out of creation order
        restores = 0
        for slot in led.active_slots_by_order().tolist():
            src = int(led.src_nodes[slot])
            dst = int(led.dst_nodes[slot])
            new_path = path_of(src, dst)
            old = led.path(slot)
            if len(new_path) != len(old) or not np.array_equal(
                new_path, old
            ):
                led.repath(slot, new_path)
                restores += 1
        return restores


@dataclass(frozen=True)
class RankStats:
    """Per-rank accounting of a finished run."""

    finish_time: float
    gb_sent: float
    messages_sent: int
    compute_seconds: float


@dataclass(frozen=True)
class RunResult:
    """Outcome of a :meth:`VirtualMpi.run` call.

    Attributes
    ----------
    time:
        Virtual makespan (seconds) — when the last rank finished.
    ranks:
        Per-rank statistics.
    reroutes:
        Number of in-flight transfers rerouted around mid-run link
        failures (0 on a healthy run).
    degraded_flow_seconds:
        Degraded-capacity exposure: virtual flow·seconds spent by
        transfers whose path crossed at least one degraded (reduced but
        non-zero capacity) link.
    restores:
        Number of in-flight transfers switched back to a shorter route
        after a mid-run :class:`~repro.faults.RepairEvent` (the second
        half of a fail→reroute→repair→restore cycle).
    """

    time: float
    ranks: tuple[RankStats, ...]
    reroutes: int = 0
    degraded_flow_seconds: float = 0.0
    restores: int = 0

    @property
    def total_gb_sent(self) -> float:
        return float(sum(r.gb_sent for r in self.ranks))

    @property
    def max_compute_seconds(self) -> float:
        return max((r.compute_seconds for r in self.ranks), default=0.0)


class VirtualMpi:
    """A virtual-time MPI world over a torus partition.

    Parameters
    ----------
    torus:
        The partition's node-level torus (use
        :meth:`PartitionGeometry.bgq_network` for physical capacities).
    rank_to_node:
        Node index per rank; defaults to one rank per node (identity).
    link_bandwidth:
        GB/s per unit link weight (2.0 for Blue Gene/Q).
    tie:
        Routing tie-break (see :func:`dimension_ordered_route`);
        validated eagerly here, not on the first routed message.
    faults:
        Faults present from virtual time 0 (failed/degraded links,
        drained nodes).  Routes avoid them from the first message.
    fault_events:
        :class:`~repro.faults.FaultEvent` and
        :class:`~repro.faults.RepairEvent` entries striking mid-run,
        each at its virtual ``time``.  Applied in time order;
        simultaneous events apply in the given order.  The whole
        timeline is validated here at construction: a repair event
        naming a link or node that is not failed at its point in the
        timeline raises :class:`ValueError` immediately, not mid-run.
    max_events:
        Event budget guarding against runaway programs: every rank
        scheduling step and every virtual-time advance consumes one
        unit.  Exceeded budgets raise :class:`EventBudgetError` naming
        the virtual time and the active flow / computing-rank counts.
    """

    def __init__(
        self,
        torus: Torus,
        rank_to_node: Sequence[int] | None = None,
        link_bandwidth: float = 2.0,
        tie: str = "parity",
        faults: FaultSet | None = None,
        fault_events: Sequence[FaultEvent | RepairEvent] = (),
        max_events: int = 10_000_000,
    ):
        check_positive_float(link_bandwidth, "link_bandwidth")
        check_tie(tie)
        self._torus = torus
        self._base_net = LinkNetwork(torus, link_bandwidth=link_bandwidth)
        self._verts = list(torus.vertices())
        if rank_to_node is None:
            self._rank_node = list(range(torus.num_vertices))
        else:
            self._rank_node = [int(i) for i in rank_to_node]
            n = torus.num_vertices
            if any(not 0 <= i < n for i in self._rank_node):
                raise ValueError(
                    f"rank_to_node entries must be in [0, {n - 1}]"
                )
        self._tie = tie
        self._faults0 = faults if faults is not None else FaultSet()
        for ev in fault_events:
            if not isinstance(ev, (FaultEvent, RepairEvent)):
                raise TypeError(
                    f"fault_events entries must be FaultEvent or "
                    f"RepairEvent, got {type(ev).__name__}"
                )
        self._events = tuple(sorted(fault_events, key=lambda e: e.time))
        # Statically replay the timeline so an invalid repair (a link
        # or node never failed at that point) fails fast with context.
        replay = self._faults0
        for ev in self._events:
            if isinstance(ev, FaultEvent):
                replay = replay | ev.faults
            else:
                try:
                    replay = replay.restore(
                        ev.links, ev.nodes, undirected=ev.undirected
                    )
                except ValueError as exc:
                    raise ValueError(
                        f"invalid repair event at time {ev.time}: {exc}"
                    ) from None
        self._max_events = check_positive_int(max_events, "max_events")
        self._net0 = (
            self._base_net.with_faults(self._faults0)
            if self._faults0
            else self._base_net
        )
        self._route_cache: dict[tuple[int, int], np.ndarray] = {}

    @property
    def size(self) -> int:
        """Number of ranks in the world."""
        return len(self._rank_node)

    def _link_dim_array(self) -> np.ndarray:
        """Dimension index of every directed link ("link class").

        Only used while tracing is enabled, to attribute moved bytes per
        torus dimension.  Memoized per torus (see
        :func:`_link_dim_table`): repeated engine constructions over the
        same partition share the table.
        """
        return _link_dim_table(self._torus)

    def warm_routes(
        self, pairs: Sequence[tuple[int, int]]
    ) -> int:
        """Batch-prefetch the route cache for known rank pairs.

        Rank programs with a static communication pattern (the pairing
        benchmark, halo exchanges) know their peers up front; routing
        the whole pattern in one vectorized call
        (:func:`repro.netsim.batchroute.batch_dimension_ordered_routes`)
        before :meth:`run` turns every in-run ``path_of`` lookup into a
        cache hit.  On faulted topologies — or under ``REPRO_VECTOR=0``
        — prefetching falls back to the scalar (fault-aware) router,
        with identical cached paths.

        Returns the number of routes added (pairs already cached, or
        given more than once, are skipped; same-node pairs cache an
        empty path).
        """
        size = self.size
        cache = self._route_cache
        todo: list[tuple[int, int]] = []
        seen: set[tuple[int, int]] = set()
        for a, b in pairs:
            a, b = int(a), int(b)
            if not (0 <= a < size and 0 <= b < size):
                raise ValueError(
                    f"rank pair ({a}, {b}) out of range for a "
                    f"{size}-rank world"
                )
            key = (self._rank_node[a], self._rank_node[b])
            if key in seen or key in cache:
                continue
            seen.add(key)
            todo.append(key)
        if not todo:
            return 0
        if not self._faults0 and vector_enabled():
            src = np.asarray([s for s, _ in todo], dtype=np.int64)
            dst = np.asarray([d for _, d in todo], dtype=np.int64)
            pm = batch_dimension_ordered_routes(
                self._torus, src, dst, tie=self._tie
            )
            for i, key in enumerate(todo):
                cache[key] = pm[i]
        else:
            for key in todo:
                s, d = key
                if self._faults0:
                    verts = fault_aware_route(
                        self._torus, self._verts[s], self._verts[d],
                        self._faults0, tie=self._tie,
                    )
                else:
                    verts = dimension_ordered_route(
                        self._torus, self._verts[s], self._verts[d],
                        tie=self._tie,
                    )
                cache[key] = self._net0.path_to_links(verts)
        if observability.OBS.enabled:
            observability.counter_add(
                "simmpi.route_cache.warmed", len(todo)
            )
        return len(todo)

    def _record_flow_trace(self, path: np.ndarray, gb: float) -> None:
        """Traced-mode accounting of one started flow (bytes per class)."""
        observability.counter_add("simmpi.flows")
        observability.counter_add("simmpi.gb_routed", gb)
        per_dim = np.bincount(self._link_dim_array()[path]) * gb
        hot = np.flatnonzero(per_dim)
        if hot.size:
            observability.counter_add_many(
                [f"simmpi.gb_hops.dim{d}" for d in hot.tolist()],
                per_dim[hot],
            )

    def _degraded_mask(self, net: LinkNetwork) -> np.ndarray | None:
        """Bool mask of links at reduced but non-zero capacity, or None."""
        if net is self._base_net:
            return None
        caps = net.capacities
        base = self._base_net.capacities
        mask = (caps < base) & (caps > 0)
        return mask if mask.any() else None

    # ------------------------------------------------------------------ #

    def run(self, program: Program) -> RunResult:
        """Execute *program* on every rank; return the virtual-time result."""
        if observability.OBS.enabled:
            with observability.span("simmpi.run", ranks=self.size):
                return self._run(program)
        return self._run(program)

    def _run(self, program: Program) -> RunResult:
        size = self.size
        obs = observability.OBS
        gens = [program(r, size) for r in range(size)]

        READY, BLOCKED, DONE = 0, 1, 2
        state = [READY] * size
        n_done = 0
        now = 0.0
        finish = [0.0] * size
        gb_sent = [0.0] * size
        msgs = [0] * size
        comp_secs = [0.0] * size
        reroutes = 0
        restores = 0
        degraded_exposure = 0.0

        # Fault state.  The instance route cache is valid for the
        # construction-time fault set, so every run starts from it —
        # even runs with scheduled mid-run events, whose routes are
        # unchanged until the first event actually *applies* (at which
        # point apply_event swaps in a private cache, keeping the
        # pristine one intact for subsequent runs).
        cur_faults = self._faults0
        net = self._net0
        cache = self._route_cache
        degr_mask = self._degraded_mask(net)
        evt_i = 0

        def path_of(src_node: int, dst_node: int) -> np.ndarray:
            key = (src_node, dst_node)
            path = cache.get(key)
            if path is None:
                if obs.enabled:
                    observability.counter_add("simmpi.route_cache.misses")
                if cur_faults:
                    verts = fault_aware_route(
                        self._torus,
                        self._verts[src_node],
                        self._verts[dst_node],
                        cur_faults,
                        tie=self._tie,
                    )
                else:
                    verts = dimension_ordered_route(
                        self._torus,
                        self._verts[src_node],
                        self._verts[dst_node],
                        tie=self._tie,
                    )
                path = net.path_to_links(verts)
                cache[key] = path
            elif obs.enabled:
                observability.counter_add("simmpi.route_cache.hits")
            return path

        computing: dict[int, float] = {}          # rank -> finish time
        backend = (
            _VectorFlows(len(self._net0.capacities))
            if vector_enabled()
            else _OracleFlows(len(self._net0.capacities))
        )
        barrier_waiters: list[int] = []

        # Ready-rank scheduling: an epoch-ordered heap replacing the
        # historical "rescan ranks 0..size-1 until quiescent" loop with
        # O(log ready) per wake — while reproducing its advancement
        # order *exactly*.  A rank woken at or before the scan cursor
        # belongs to the next pass (epoch + 1); one woken ahead of the
        # cursor is reached in the current pass.  Within an epoch the
        # heap pops ranks in ascending order, just like the scan.
        ready: list[tuple[int, int]] = [(0, r) for r in range(size)]
        epoch = 0
        cursor = -1

        def make_ready(rank: int) -> None:
            state[rank] = READY
            heappush(
                ready, (epoch if rank > cursor else epoch + 1, rank)
            )
        # Unmatched posts: key (src, dst, tag) for sends; (src, dst, tag)
        # for recvs keyed by the *sender* side too.
        sends: dict[
            tuple[int, int, int], deque[tuple[int, float, object]]
        ] = {}
        recvs: dict[tuple[int, int, int], deque[int]] = {}
        exch: dict[
            tuple[int, int, int], deque[tuple[int, float, object]]
        ] = {}
        eager: dict[
            tuple[int, int, int], deque[tuple[int, float, object]]
        ] = {}
        resume: list[object] = [None] * size

        def wake(group: _Group) -> None:
            for r in group.waiters:
                resume[r] = group.deliveries.get(r)
                make_ready(r)

        def add_flow(
            src_node: int, dst_node: int, gb: float, group: _Group
        ) -> None:
            path = path_of(src_node, dst_node)
            if len(path) == 0:  # same node: free
                group.outstanding -= 1
                if group.outstanding == 0:
                    wake(group)
                return
            if obs.enabled:
                self._record_flow_trace(path, gb)
            backend.add(path, gb, group, src_node, dst_node)

        def start_flow(src: int, dst: int, gb: float, group: _Group) -> None:
            gb_sent[src] += gb
            msgs[src] += 1
            add_flow(
                self._rank_node[src], self._rank_node[dst], gb, group
            )

        def apply_event(ev: FaultEvent | RepairEvent) -> None:
            """Merge *ev* into the live fault state and re-path flows."""
            nonlocal cur_faults, net, cache, degr_mask, reroutes, restores
            if isinstance(ev, RepairEvent):
                if obs.enabled:
                    observability.counter_add("simmpi.repair_events")
                cur_faults = cur_faults.restore(
                    ev.links, ev.nodes, undirected=ev.undirected
                )
                net = (
                    self._base_net.with_faults(cur_faults)
                    if cur_faults
                    else self._base_net
                )
                cache = {}
                degr_mask = self._degraded_mask(net)
                # A repair never severs anything: every in-flight path
                # stays usable.  Flows whose preferred route just came
                # back switch over (restore), completing the
                # fail→reroute→repair→restore cycle.
                restores += backend.restore_routes(path_of)
                return
            if obs.enabled:
                observability.counter_add("simmpi.fault_events")
            cur_faults = cur_faults | ev.faults
            net = self._base_net.with_faults(cur_faults)
            cache = {}
            degr_mask = self._degraded_mask(net)
            delta, lost = backend.reroute_severed(net.capacities, path_of)
            reroutes += delta
            if lost:
                report = FaultReport(
                    time=now,
                    failed_links=tuple(sorted(cur_faults.failed_links)),
                    aborted_flows=tuple(
                        (self._verts[s], self._verts[d], gb)
                        for s, d, gb in lost
                    ),
                )
                s, d, _ = lost[0]
                raise PartitionDisconnectedError(
                    self._verts[s], self._verts[d], cur_faults,
                    report=report,
                )

        # Faults scheduled at (or before) time 0 strike before any message.
        while evt_i < len(self._events) and self._events[evt_i].time <= 0.0:
            apply_event(self._events[evt_i])
            evt_i += 1

        def advance_rank(rank: int) -> None:
            """Step one rank's generator until it blocks or finishes."""
            nonlocal n_done
            while state[rank] == READY:
                try:
                    value, resume[rank] = resume[rank], None
                    op = gens[rank].send(value)
                except StopIteration:
                    state[rank] = DONE
                    n_done += 1
                    finish[rank] = now
                    return
                if isinstance(op, Compute):
                    comp_secs[rank] += op.seconds
                    if op.seconds <= 0:
                        continue
                    computing[rank] = now + op.seconds
                    state[rank] = BLOCKED
                elif isinstance(op, Send):
                    key = (rank, op.dst, op.tag)
                    waiting = recvs.get((rank, op.dst, op.tag))
                    if waiting:
                        receiver = waiting.popleft()
                        group = _Group(
                            waiters=(rank, receiver), outstanding=1,
                            deliveries={receiver: op.payload},
                        )
                        state[rank] = BLOCKED
                        start_flow(rank, op.dst, op.gb, group)
                    else:
                        sends.setdefault(key, deque()).append(
                            (rank, op.gb, op.payload)
                        )
                        state[rank] = BLOCKED
                elif isinstance(op, Isend):
                    key = (rank, op.dst, op.tag)
                    waiting = recvs.get(key)
                    if waiting:
                        receiver = waiting.popleft()
                        group = _Group(
                            waiters=(receiver,), outstanding=1,
                            deliveries={receiver: op.payload},
                        )
                        start_flow(rank, op.dst, op.gb, group)
                    else:
                        eager.setdefault(key, deque()).append(
                            (rank, op.gb, op.payload)
                        )
                        gb_sent[rank] += op.gb
                        msgs[rank] += 1
                    # Sender continues immediately (stays READY).
                elif isinstance(op, Recv):
                    key = (op.src, rank, op.tag)
                    buffered = eager.get(key)
                    if buffered:
                        sender, gb, payload = buffered.popleft()
                        group = _Group(
                            waiters=(rank,), outstanding=1,
                            deliveries={rank: payload},
                        )
                        state[rank] = BLOCKED
                        # Accounting already done at Isend time; start
                        # the wire transfer without recounting.
                        add_flow(
                            self._rank_node[sender],
                            self._rank_node[rank],
                            gb,
                            group,
                        )
                        continue
                    waiting = sends.get(key)
                    if waiting:
                        sender, gb, payload = waiting.popleft()
                        group = _Group(
                            waiters=(sender, rank), outstanding=1,
                            deliveries={rank: payload},
                        )
                        state[rank] = BLOCKED
                        start_flow(sender, rank, gb, group)
                    else:
                        recvs.setdefault(key, deque()).append(rank)
                        state[rank] = BLOCKED
                elif isinstance(op, SendRecv):
                    a, b = rank, op.peer
                    key = (min(a, b), max(a, b), op.tag)
                    waiting = exch.get(key)
                    if waiting:
                        peer, peer_gb, peer_payload = waiting.popleft()
                        group = _Group(
                            waiters=(rank, peer), outstanding=2,
                            deliveries={
                                rank: peer_payload, peer: op.payload,
                            },
                        )
                        state[rank] = BLOCKED
                        start_flow(rank, peer, op.gb, group)
                        start_flow(peer, rank, peer_gb, group)
                    else:
                        exch.setdefault(key, deque()).append(
                            (rank, op.gb, op.payload)
                        )
                        state[rank] = BLOCKED
                elif isinstance(op, Barrier):
                    barrier_waiters.append(rank)
                    state[rank] = BLOCKED
                    if len(barrier_waiters) == size:
                        for r in barrier_waiters:
                            make_ready(r)
                        barrier_waiters.clear()
                else:
                    raise TypeError(
                        f"rank {rank} yielded {op!r}; expected a simmpi "
                        "operation"
                    )

        # Main event loop.
        guard = 0

        def budget_error() -> EventBudgetError:
            return EventBudgetError(
                f"simmpi exceeded the event budget of "
                f"{self._max_events} at virtual time {now:.6g} s "
                f"with {len(backend)} active flow(s) and "
                f"{len(computing)} computing rank(s)"
            )

        while True:
            # Drain the ready heap (cyclic ascending scan order; stale
            # entries — ranks already advanced via an inline wake — are
            # skipped without consuming budget).
            while ready:
                e, r = heappop(ready)
                if state[r] != READY:
                    continue
                if e > epoch:
                    epoch = e
                cursor = r
                guard += 1
                if guard > self._max_events:
                    raise budget_error()
                advance_rank(r)
            cursor = -1
            if n_done == size:
                break
            if not len(backend) and not computing:
                blocked = [r for r in range(size) if state[r] == BLOCKED]
                shown = blocked[:16]
                suffix = (
                    f" (+{len(blocked) - len(shown)} more)"
                    if len(blocked) > len(shown)
                    else ""
                )
                raise DeadlockError(
                    f"{len(blocked)} ranks are blocked with no transfer "
                    f"or computation in flight: {shown}{suffix} "
                    "(mismatched send/recv, unpaired exchange, or "
                    "incomplete barrier)"
                )
            guard += 1
            if guard > self._max_events:
                raise budget_error()
            # Advance virtual time to the next event.
            dt = np.inf
            have_flows = len(backend) > 0
            if have_flows:
                dt = backend.solve_dt(net.capacities)
            if computing:
                dt = min(dt, min(computing.values()) - now)
            if evt_i < len(self._events):
                dt = min(dt, self._events[evt_i].time - now)
            dt = max(dt, 0.0)
            if degr_mask is not None and have_flows and dt > 0:
                degraded_exposure += dt * backend.degraded_count(degr_mask)
            now += dt
            # Progress flows.
            if have_flows:
                for g in backend.progress(dt):
                    wake(g)
            # Finish computations.
            for r in [r for r, t in computing.items() if t - now <= _EPS]:
                del computing[r]
                make_ready(r)
            # Strike due fault events.
            while (
                evt_i < len(self._events)
                and self._events[evt_i].time - now <= _EPS
            ):
                apply_event(self._events[evt_i])
                evt_i += 1

        if obs.enabled:
            observability.counter_add("simmpi.runs")
            observability.counter_add("simmpi.gb_sent", sum(gb_sent))
            observability.counter_add("simmpi.messages", sum(msgs))
            observability.counter_add("simmpi.loop_events", guard)
            if reroutes:
                observability.counter_add(
                    "simmpi.fault_reroutes", reroutes
                )
            if restores:
                observability.counter_add(
                    "simmpi.fault_restores", restores
                )
        return RunResult(
            time=max(finish, default=0.0),
            ranks=tuple(
                RankStats(
                    finish_time=finish[r],
                    gb_sent=gb_sent[r],
                    messages_sent=msgs[r],
                    compute_seconds=comp_secs[r],
                )
                for r in range(size)
            ),
            reroutes=reroutes,
            degraded_flow_seconds=degraded_exposure,
            restores=restores,
        )
