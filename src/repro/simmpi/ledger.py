"""Persistent array-native flow ledger for the simmpi engine.

:class:`FlowLedger` is the storage backend behind the vectorized
:class:`~repro.simmpi.engine.VirtualMpi` event loop.  The oracle engine
(``REPRO_VECTOR=0``) keeps one Python ``_Flow`` object per in-flight
message and rebuilds a list of path arrays for every fairness solve;
the ledger instead keeps all flow state in preallocated numpy planes:

* an **append-only CSR path arena** (``links``/``offsets``) — paths
  already arrive as int64 arrays from :mod:`repro.netsim.batchroute`
  via the engine's route cache, so adding a flow is two slice writes;
* per-slot ``remaining`` / ``group_id`` / ``src`` / ``dst`` /
  ``order_key`` / ``active`` planes, so per-event progress is
  ``remaining[act] -= rates * dt`` instead of a Python loop;
* an incrementally maintained per-link **load plane** (flows currently
  crossing each link), updated on add/retire rather than recounted;
* a cached read-only :class:`~repro.netsim.batchroute.PathMatrix`
  *view* of the live arena (invalidated by appends, never copied), so
  the fairness solver's active-subset indexing consumes ledger state
  directly.

Slots are never moved while the engine holds indices to them: flows
retire by flipping ``active`` off, and reroutes append a fresh slot
that inherits the retired slot's ``order_key`` (the oracle's
flow-creation order, which fault reports and restore scans must
reproduce).  The arena therefore grows monotonically within an event
window; :meth:`maybe_compact` squeezes retired entries out at owner-
chosen safe points, gated by the ``REPRO_LEDGER_COMPACT`` knob so
steady-state runs amortize the rebuild.
"""

from __future__ import annotations

import numpy as np

from .. import env, observability
from ..netsim.batchroute import PathMatrix
from ..netsim.stacked import gather_subset_entries

__all__ = ["FlowLedger"]


class FlowLedger:
    """Array-native store of in-flight flows (paths + progress planes).

    Parameters
    ----------
    num_links:
        Size of the directed-link space (length of the network's
        capacity plane); fixes the load-plane shape.
    slot_capacity, entry_capacity:
        Initial sizes of the slot planes and the path arena; both grow
        geometrically on demand.
    compact_min:
        Retired-entry floor before :meth:`maybe_compact` rebuilds the
        arena; ``None`` reads ``REPRO_LEDGER_COMPACT``.
    """

    __slots__ = (
        "_num_links",
        "_links",
        "_offsets",
        "_remaining",
        "_group",
        "_src",
        "_dst",
        "_order",
        "_active",
        "_link_load",
        "_n_slots",
        "_n_active",
        "_used",
        "_live_entries",
        "_next_order",
        "_view",
        "_compact_min",
        "compactions",
    )

    def __init__(
        self,
        num_links: int,
        *,
        slot_capacity: int = 64,
        entry_capacity: int = 1024,
        compact_min: int | None = None,
    ):
        if num_links < 0:
            raise ValueError("num_links must be non-negative")
        if slot_capacity < 1 or entry_capacity < 1:
            raise ValueError("capacities must be positive")
        self._num_links = int(num_links)
        self._links = np.empty(entry_capacity, dtype=np.int64)
        self._offsets = np.zeros(slot_capacity + 1, dtype=np.int64)
        self._remaining = np.empty(slot_capacity, dtype=np.float64)
        self._group = np.empty(slot_capacity, dtype=np.int64)
        self._src = np.empty(slot_capacity, dtype=np.int64)
        self._dst = np.empty(slot_capacity, dtype=np.int64)
        self._order = np.empty(slot_capacity, dtype=np.int64)
        self._active = np.zeros(slot_capacity, dtype=bool)
        self._link_load = np.zeros(self._num_links, dtype=np.int64)
        self._n_slots = 0
        self._n_active = 0
        self._used = 0
        self._live_entries = 0
        self._next_order = 0
        self._view: PathMatrix | None = None
        self._compact_min = (
            int(compact_min)
            if compact_min is not None
            else env.get_int("REPRO_LEDGER_COMPACT")
        )
        self.compactions = 0

    # ------------------------------------------------------------------ #
    # Introspection                                                        #
    # ------------------------------------------------------------------ #

    @property
    def num_links(self) -> int:
        """Size of the directed-link space."""
        return self._num_links

    @property
    def num_slots(self) -> int:
        """Slots ever allocated (retired slots included, pre-compact)."""
        return self._n_slots

    @property
    def num_active(self) -> int:
        """Flows currently in flight."""
        return self._n_active

    @property
    def arena_used(self) -> int:
        """Path-arena entries written (live + retired)."""
        return self._used

    @property
    def retired_entries(self) -> int:
        """Arena entries belonging to retired slots."""
        return self._used - self._live_entries

    @property
    def remaining(self) -> np.ndarray:
        """Per-slot remaining GB plane (writable; owner-managed)."""
        return self._remaining

    @property
    def group_ids(self) -> np.ndarray:
        """Per-slot completion-group id plane."""
        return self._group

    @property
    def src_nodes(self) -> np.ndarray:
        """Per-slot source node plane."""
        return self._src

    @property
    def dst_nodes(self) -> np.ndarray:
        """Per-slot destination node plane."""
        return self._dst

    @property
    def order_keys(self) -> np.ndarray:
        """Per-slot flow-creation order keys (inherited by reroutes)."""
        return self._order

    @property
    def link_load(self) -> np.ndarray:
        """Read-only snapshot of flows crossing each link."""
        load = self._link_load.view()
        load.flags.writeable = False
        return load

    def active_slots(self) -> np.ndarray:
        """Active slot ids, ascending."""
        return np.flatnonzero(self._active[: self._n_slots])

    def active_slots_by_order(self) -> np.ndarray:
        """Active slot ids in flow-creation (oracle iteration) order."""
        act = self.active_slots()
        return act[np.argsort(self._order[act], kind="stable")]

    def path(self, slot: int) -> np.ndarray:
        """The path entries of one slot (a view — do not mutate)."""
        return self._links[self._offsets[slot] : self._offsets[slot + 1]]

    def view(self) -> PathMatrix:
        """Live :class:`PathMatrix` over the arena (cached until append)."""
        if self._view is None:
            self._view = PathMatrix.unchecked(
                self._links[: self._used],
                self._offsets[: self._n_slots + 1],
            )
        return self._view

    def subset_entries(
        self, slots: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """CSR entries of *slots*: ``(entry_links, entry_rows, lengths)``."""
        return gather_subset_entries(self._links, self._offsets, slots)

    def crossing_count(self, link_mask: np.ndarray, slots: np.ndarray) -> int:
        """How many of *slots* cross at least one masked link."""
        entry_links, entry_rows, _ = self.subset_entries(slots)
        if entry_links.size == 0:
            return 0
        hit_rows = entry_rows[link_mask[entry_links]]
        if hit_rows.size == 0:
            return 0
        return int((np.bincount(hit_rows, minlength=len(slots)) > 0).sum())

    def crossing_slots(self, link_mask: np.ndarray) -> np.ndarray:
        """Active slots crossing a masked link, in flow-creation order.

        The fault path uses this with ``capacities <= eps`` to find
        severed flows; creation order matches the oracle's flow-list
        iteration, which :class:`~repro.faults.FaultReport` contents
        depend on.
        """
        act = self.active_slots()
        entry_links, entry_rows, _ = self.subset_entries(act)
        if entry_links.size == 0:
            return act[:0]
        hit_rows = entry_rows[link_mask[entry_links]]
        if hit_rows.size == 0:
            return act[:0]
        hit = act[np.bincount(hit_rows, minlength=len(act)) > 0]
        return hit[np.argsort(self._order[hit], kind="stable")]

    # ------------------------------------------------------------------ #
    # Mutation                                                             #
    # ------------------------------------------------------------------ #

    def add(
        self,
        path: np.ndarray,
        remaining: float,
        group_id: int,
        src_node: int,
        dst_node: int,
        *,
        order_key: int | None = None,
    ) -> int:
        """Append a flow; returns its slot id.

        *order_key* is assigned monotonically when omitted; reroutes
        pass the retired slot's key so creation order survives.
        """
        path = np.ascontiguousarray(path, dtype=np.int64).ravel()
        n = self._n_slots
        if n + 2 > len(self._offsets):
            self._grow_slots()
        m = len(path)
        used = self._used
        if used + m > len(self._links):
            self._grow_entries(used + m)
        self._links[used : used + m] = path
        self._offsets[n + 1] = used + m
        self._used = used + m
        self._remaining[n] = remaining
        self._group[n] = group_id
        self._src[n] = src_node
        self._dst[n] = dst_node
        if order_key is None:
            order_key = self._next_order
            self._next_order += 1
        else:
            self._next_order = max(self._next_order, order_key + 1)
        self._order[n] = order_key
        self._active[n] = True
        self._n_slots = n + 1
        self._n_active += 1
        self._live_entries += m
        np.add.at(self._link_load, path, 1)
        self._view = None
        return n

    def deactivate(self, slots: np.ndarray) -> None:
        """Retire the given active slots (completed or rerouted flows)."""
        slots = np.ascontiguousarray(slots, dtype=np.int64).ravel()
        if slots.size == 0:
            return
        if not self._active[slots].all():
            raise ValueError("cannot deactivate an already-retired slot")
        self._active[slots] = False
        self._n_active -= int(slots.size)
        if slots.size <= 8:
            # Typical per-event retirement is one or two flows; slicing
            # the arena directly skips the full CSR gather machinery.
            offsets, links = self._offsets, self._links
            removed = 0
            for s in slots.tolist():
                lo, hi = int(offsets[s]), int(offsets[s + 1])
                np.subtract.at(self._link_load, links[lo:hi], 1)
                removed += hi - lo
            self._live_entries -= removed
        else:
            entry_links, _, lengths = self.subset_entries(slots)
            np.subtract.at(self._link_load, entry_links, 1)
            self._live_entries -= int(lengths.sum())

    def repath(self, slot: int, new_path: np.ndarray) -> int:
        """Replace a slot's path; returns the fresh slot id.

        CSR entries cannot be edited in place (offsets are shared with
        every live view), so the slot retires and a new one inherits
        its ``remaining`` / group / endpoints / ``order_key``.
        """
        if not self._active[slot]:
            raise ValueError(f"slot {slot} is not active")
        remaining = float(self._remaining[slot])
        group_id = int(self._group[slot])
        src = int(self._src[slot])
        dst = int(self._dst[slot])
        order_key = int(self._order[slot])
        self.deactivate(np.asarray([slot], dtype=np.int64))
        return self.add(
            new_path, remaining, group_id, src, dst, order_key=order_key
        )

    def maybe_compact(self) -> bool:
        """Squeeze retired entries out of the arena when it pays.

        Compacts only when retired entries both exceed the
        ``REPRO_LEDGER_COMPACT`` floor and outnumber live entries, so
        the O(live) rebuild is amortized against at least as much
        reclaimed space.  **Slot ids are renumbered** — the owner must
        hold no slot references across a call.
        """
        retired = self._used - self._live_entries
        if retired < self._compact_min or retired <= self._live_entries:
            return False
        self._compact()
        return True

    def _compact(self) -> None:
        act = self.active_slots()
        entry_links, _, lengths = self.subset_entries(act)
        old_n = self._n_slots
        n = len(act)
        # Fancy-indexed gathers copy, so front-compaction is safe even
        # though source and destination overlap.
        self._remaining[:n] = self._remaining[act]
        self._group[:n] = self._group[act]
        self._src[:n] = self._src[act]
        self._dst[:n] = self._dst[act]
        self._order[:n] = self._order[act]
        self._active[:old_n] = False
        self._active[:n] = True
        self._offsets[0] = 0
        np.cumsum(lengths, out=self._offsets[1 : n + 1])
        self._links[: len(entry_links)] = entry_links
        self._n_slots = n
        self._used = int(len(entry_links))
        self._live_entries = self._used
        self._view = None
        self.compactions += 1
        observability.counter_add("simmpi.ledger.compactions")

    # ------------------------------------------------------------------ #
    # Growth                                                               #
    # ------------------------------------------------------------------ #

    def _grow_slots(self) -> None:
        cap = max(2 * (len(self._offsets) - 1), 2)
        offsets = np.zeros(cap + 1, dtype=np.int64)
        offsets[: self._n_slots + 1] = self._offsets[: self._n_slots + 1]
        self._offsets = offsets
        for name in ("_remaining", "_group", "_src", "_dst", "_order"):
            old = getattr(self, name)
            grown = np.empty(cap, dtype=old.dtype)
            grown[: self._n_slots] = old[: self._n_slots]
            setattr(self, name, grown)
        active = np.zeros(cap, dtype=bool)
        active[: self._n_slots] = self._active[: self._n_slots]
        self._active = active
        self._view = None

    def _grow_entries(self, need: int) -> None:
        cap = max(2 * len(self._links), need)
        links = np.empty(cap, dtype=np.int64)
        links[: self._used] = self._links[: self._used]
        self._links = links
        self._view = None
