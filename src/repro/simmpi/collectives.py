"""Reusable collective sub-programs for simmpi rank programs.

Each helper is a generator meant to be composed into a rank program with
``yield from``; its return value (via ``StopIteration``) is the
collective's result:

>>> def program(rank, size):
...     blocks = yield from allgather_ring(rank, size, my_block, gb)

The algorithms mirror :mod:`repro.netsim.collectives` but move *real
payloads* between ranks, so programs can both compute with the gathered
data and be charged the correct virtual network time.
"""

from __future__ import annotations

from collections.abc import Generator

from .._validation import check_nonnegative_int, check_positive_int
from .ops import Isend, Recv, SendRecv

__all__ = ["allgather_ring", "alltoall_pairwise", "broadcast_ring"]


def allgather_ring(
    rank: int, size: int, block: object, gb_per_block: float
) -> Generator:
    """Ring allgather: returns the list of every rank's block, in rank
    order.  ``size - 1`` rounds; round ``j`` forwards the block received
    in round ``j - 1`` to the successor.
    """
    check_nonnegative_int(rank, "rank")
    check_positive_int(size, "size")
    blocks: list[object] = [None] * size
    blocks[rank] = block
    if size == 1:
        return blocks
    succ = (rank + 1) % size
    pred = (rank - 1) % size
    carried = block
    carried_idx = rank
    for _ in range(size - 1):
        # Eager-send the carried block forward, then wait for the
        # predecessor's — a ring pipeline needs distinct send/recv
        # partners, so rendezvous Send would deadlock here.
        yield Isend(dst=succ, gb=gb_per_block,
                    payload=(carried_idx, carried), tag=1)
        got_idx, got = yield Recv(src=pred, tag=1)
        blocks[got_idx] = got
        carried, carried_idx = got, got_idx
    return blocks


def alltoall_pairwise(
    rank: int, size: int, outgoing: list[object], gb_per_block: float
) -> Generator:
    """Pairwise-exchange all-to-all: ``outgoing[j]`` goes to rank ``j``;
    returns the list of blocks received (own block passes through).

    ``size - 1`` rounds; in round ``j`` every rank exchanges with the
    rank ``j`` ahead/behind cyclically (the shift schedule of
    :func:`repro.netsim.collectives.pairwise_alltoall`).
    """
    check_nonnegative_int(rank, "rank")
    check_positive_int(size, "size")
    if len(outgoing) != size:
        raise ValueError(
            f"outgoing has {len(outgoing)} blocks for {size} ranks"
        )
    received: list[object] = [None] * size
    received[rank] = outgoing[rank]
    for j in range(1, size):
        to = (rank + j) % size
        frm = (rank - j) % size
        if to == frm:
            # Even size, antipodal round: a symmetric exchange.
            got = yield SendRecv(peer=to, gb=gb_per_block,
                                 payload=outgoing[to], tag=2)
            received[frm] = got
            continue
        yield Isend(dst=to, gb=gb_per_block, payload=outgoing[to], tag=2)
        received[frm] = (yield Recv(src=frm, tag=2))
    return received


def broadcast_ring(
    rank: int, size: int, block: object, gb: float, root: int = 0
) -> Generator:
    """Ring broadcast from *root*: returns the root's block on every rank.

    A pipeline around the ring — ``size - 1`` sequential hops (simple,
    bandwidth-optimal for large messages up to the pipeline latency).
    """
    check_nonnegative_int(rank, "rank")
    check_positive_int(size, "size")
    check_nonnegative_int(root, "root")
    if size == 1:
        return block
    pos = (rank - root) % size
    succ = (rank + 1) % size
    pred = (rank - 1) % size
    if pos == 0:
        yield Isend(dst=succ, gb=gb, payload=block, tag=3)
        return block
    data = yield Recv(src=pred, tag=3)
    if pos != size - 1:
        yield Isend(dst=succ, gb=gb, payload=data, tag=3)
    return data
