"""Operation types for the virtual-time MPI simulator.

Rank programs are Python generators that ``yield`` operation objects;
the engine (:mod:`repro.simmpi.engine`) interprets them, advances
virtual time, and resumes the generator when the operation completes.
Supported operations:

* :class:`Compute` — spend local computation time;
* :class:`Send` / :class:`Recv` — blocking rendezvous point-to-point
  (the transfer starts when both sides have posted, and both resume when
  the last byte arrives — the behaviour of large-message MPI); sends may
  carry a Python *payload* that the matching receive's ``yield``
  expression evaluates to, so programs can move real data;
* :class:`Isend` — eager (buffered) send: the sender continues at once,
  only the receiver waits for the wire time;
* :class:`SendRecv` — simultaneous exchange (full-duplex links make the
  two directions independent);
* :class:`Barrier` — global synchronization.

All volumes are in GB (matching the link-capacity units of
:mod:`repro.netsim`).
"""

from __future__ import annotations

from dataclasses import dataclass

from .._validation import check_nonnegative_int, check_positive_float

__all__ = ["Compute", "Send", "Isend", "Recv", "SendRecv", "Barrier"]


@dataclass(frozen=True)
class Compute:
    """Spend *seconds* of local computation time."""

    seconds: float

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError(
                f"compute time must be non-negative, got {self.seconds}"
            )


@dataclass(frozen=True)
class Send:
    """Blocking send of *gb* gigabytes to rank *dst* with a *tag*.

    *payload* is an optional Python object delivered to the matching
    :class:`Recv` when the transfer completes — rank programs can move
    real data (e.g. NumPy blocks) while the engine charges virtual time
    for *gb*.  The payload is passed by reference; treat it as
    immutable after sending.
    """

    dst: int
    gb: float
    tag: int = 0
    payload: object = None

    def __post_init__(self) -> None:
        check_nonnegative_int(self.dst, "dst")
        check_positive_float(self.gb, "gb")
        check_nonnegative_int(self.tag, "tag")


@dataclass(frozen=True)
class Isend:
    """Eager (buffered, non-blocking) send: the rank continues
    immediately; the transfer occupies the network once the receiver
    posts, and only the receiver waits for its completion.  Models
    MPI's buffered/eager path and is what makes ring pipelines
    expressible under rendezvous semantics.
    """

    dst: int
    gb: float
    tag: int = 0
    payload: object = None

    def __post_init__(self) -> None:
        check_nonnegative_int(self.dst, "dst")
        check_positive_float(self.gb, "gb")
        check_nonnegative_int(self.tag, "tag")


@dataclass(frozen=True)
class Recv:
    """Blocking receive from rank *src* with a matching *tag*."""

    src: int
    tag: int = 0

    def __post_init__(self) -> None:
        check_nonnegative_int(self.src, "src")
        check_nonnegative_int(self.tag, "tag")


@dataclass(frozen=True)
class SendRecv:
    """Simultaneously send *gb* to *peer* and receive from *peer*.

    Equivalent to posting a :class:`Send` and a :class:`Recv` to the
    same peer at once; completes when both directions finish.  The
    yielding rank resumes with the peer's *payload* as the value of the
    ``yield`` expression.
    """

    peer: int
    gb: float
    tag: int = 0
    payload: object = None

    def __post_init__(self) -> None:
        check_nonnegative_int(self.peer, "peer")
        check_positive_float(self.gb, "gb")
        check_nonnegative_int(self.tag, "tag")


@dataclass(frozen=True)
class Barrier:
    """Block until every rank has reached a barrier."""
