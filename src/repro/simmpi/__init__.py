"""simmpi — a virtual-time MPI-style simulator over the contention model.

Write rank programs as Python generators yielding operations; execute
them with :class:`VirtualMpi` over any torus partition.  The engine
advances a global virtual clock, sharing link bandwidth max-min fairly
among concurrent transfers — the same contention model as
:mod:`repro.netsim`, now programmable.

>>> from repro.simmpi import VirtualMpi, Send, Recv, Compute
>>> from repro.topology import Torus
>>> def program(rank, size):
...     if rank == 0:
...         yield Send(dst=1, gb=4.0)
...     elif rank == 1:
...         yield Recv(src=0)
>>> world = VirtualMpi(Torus((4,)), link_bandwidth=2.0)
>>> world.run(program).time
2.0
"""

from ..faults import (
    FaultEvent,
    FaultReport,
    FaultSet,
    PartitionDisconnectedError,
    RepairEvent,
)
from .collectives import allgather_ring, alltoall_pairwise, broadcast_ring
from .engine import (
    DeadlockError,
    EventBudgetError,
    RankStats,
    RunResult,
    VirtualMpi,
)
from .ledger import FlowLedger
from .ops import Barrier, Compute, Isend, Recv, Send, SendRecv

__all__ = [
    "VirtualMpi",
    "FlowLedger",
    "RunResult",
    "RankStats",
    "DeadlockError",
    "EventBudgetError",
    "FaultSet",
    "FaultEvent",
    "RepairEvent",
    "FaultReport",
    "PartitionDisconnectedError",
    "Compute",
    "Send",
    "Isend",
    "Recv",
    "SendRecv",
    "Barrier",
    "allgather_ring",
    "alltoall_pairwise",
    "broadcast_ring",
]
