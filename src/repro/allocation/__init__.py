"""Processor allocation analysis (S5 in DESIGN.md).

Partition geometries, their enumeration, allocation policies (Mira's
predefined list, JUQUEEN's free cuboids), the geometry optimizer behind
the paper's Tables 1/2/5/6/7, and the contention-aware scheduling advisor
proposed in the paper's future work.
"""

from .advisor import AdvisorDecision, JobRequest, SchedulingAdvisor
from .enumeration import (
    achievable_midplane_counts,
    enumerate_geometries,
    factorizations_into_dims,
)
from .geometry import PartitionGeometry
from .optimizer import (
    GeometryComparison,
    best_geometry_for_machine,
    best_worst_table,
    compare_policy_to_optimal,
    corollary_3_4_improves,
    improvable_sizes,
    worst_geometry_for_machine,
)
from .variability import (
    SELECTION_RULES,
    VariabilityReport,
    simulate_job_stream,
)
from .policy import (
    AllocationPolicy,
    FreeCuboidPolicy,
    PredefinedListPolicy,
    juqueen_policy,
    mira_policy,
    sequoia_policy,
)

__all__ = [
    "PartitionGeometry",
    "factorizations_into_dims",
    "enumerate_geometries",
    "achievable_midplane_counts",
    "AllocationPolicy",
    "PredefinedListPolicy",
    "FreeCuboidPolicy",
    "mira_policy",
    "juqueen_policy",
    "sequoia_policy",
    "GeometryComparison",
    "best_geometry_for_machine",
    "worst_geometry_for_machine",
    "compare_policy_to_optimal",
    "improvable_sizes",
    "best_worst_table",
    "corollary_3_4_improves",
    "JobRequest",
    "AdvisorDecision",
    "SchedulingAdvisor",
    "VariabilityReport",
    "simulate_job_stream",
    "SELECTION_RULES",
]
