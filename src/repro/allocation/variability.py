"""Run-time variability under size-only allocation requests.

JUQUEEN-style policies let users request only a partition *size*; the
scheduler then picks any permissible geometry.  Section 4.3 of the paper
warns that this produces inconsistent performance — identical jobs run
at different speeds depending on the geometry they happen to receive,
and repeated scaling studies can reach wrong conclusions.

This module quantifies that effect: a stream of identical jobs is pushed
through a policy under different geometry-selection rules, and the
resulting run-time distribution is summarized.  Selection rules:

* ``"best"`` / ``"worst"`` — deterministic extremes;
* ``"random"`` — uniformly random permissible geometry (seeded);
* ``"first-fit"`` — deterministic but arbitrary (enumeration order) —
  how a naive scheduler might behave.
"""

from __future__ import annotations

import statistics
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from .. import observability
from .._validation import check_nonnegative_int, check_positive_int
from ..parallel import sweep_map
from .advisor import JobRequest
from .geometry import PartitionGeometry
from .policy import AllocationPolicy

__all__ = [
    "VariabilityReport",
    "simulate_job_stream",
    "simulate_job_streams",
    "SELECTION_RULES",
]

SELECTION_RULES = ("best", "worst", "random", "first-fit")


@dataclass(frozen=True)
class VariabilityReport:
    """Distribution of run times for identical size-only jobs.

    Attributes
    ----------
    runtimes:
        Per-job simulated run times (seconds).
    geometries:
        The geometry each job received.
    """

    selection: str
    runtimes: tuple[float, ...]
    geometries: tuple[PartitionGeometry, ...]

    @property
    def mean(self) -> float:
        return statistics.fmean(self.runtimes)

    @property
    def stdev(self) -> float:
        if len(self.runtimes) < 2:
            return 0.0
        return statistics.stdev(self.runtimes)

    @property
    def spread(self) -> float:
        """max / min run time — 1.0 means perfectly consistent."""
        return max(self.runtimes) / min(self.runtimes)

    @property
    def distinct_geometries(self) -> int:
        return len(set(self.geometries))


def simulate_job_stream(
    policy: AllocationPolicy,
    job: JobRequest,
    num_jobs: int,
    selection: str = "random",
    seed: int = 0,
) -> VariabilityReport:
    """Run *num_jobs* identical size-only requests through *policy*.

    Each job's run time follows the :class:`JobRequest` model: the
    contention-bound share inflates by the ratio between the best
    permissible bandwidth and the allocated geometry's.

    Examples
    --------
    >>> from repro.allocation.policy import juqueen_policy
    >>> job = JobRequest(8, 3600.0, 0.5)
    >>> rep = simulate_job_stream(juqueen_policy(), job, 10, "random")
    >>> rep.spread > 1.0   # geometry roulette shows up as variance
    True
    """
    if selection not in SELECTION_RULES:
        raise ValueError(
            f"selection must be one of {SELECTION_RULES}, got {selection!r}"
        )
    check_positive_int(num_jobs, "num_jobs")
    check_nonnegative_int(seed, "seed")
    geos = policy.permissible_geometries(job.num_midplanes)
    if not geos:
        raise ValueError(
            f"{policy.machine.name} policy supports no partition of "
            f"{job.num_midplanes} midplanes"
        )
    best_bw = geos[0].normalized_bisection_bandwidth
    rng = np.random.default_rng(seed)

    picked: list[PartitionGeometry] = []
    for i in range(num_jobs):
        if selection == "best":
            picked.append(geos[0])
        elif selection == "worst":
            picked.append(geos[-1])
        elif selection == "first-fit":
            # Enumeration order is bandwidth-sorted; a naive scheduler's
            # "first fitting shape" is modelled as the lexicographically
            # first dims tuple, which for elongated-first enumeration is
            # usually a poor geometry.
            picked.append(min(geos, key=lambda g: g.dims[::-1]))
        else:  # random
            picked.append(geos[int(rng.integers(len(geos)))])

    runtimes = tuple(job.runtime_on(g, best_bw) for g in picked)
    return VariabilityReport(
        selection=selection,
        runtimes=runtimes,
        geometries=tuple(picked),
    )


def _stream_task(
    task: tuple[AllocationPolicy, JobRequest, int, str, int],
) -> VariabilityReport:
    policy, job, num_jobs, selection, seed = task
    return simulate_job_stream(policy, job, num_jobs, selection, seed=seed)


def simulate_job_streams(
    policy: AllocationPolicy,
    job: JobRequest,
    num_jobs: int,
    selections: Sequence[str] = SELECTION_RULES,
    seed: int = 0,
    jobs: int | None = 1,
    checkpoint=None,
    transport: str | None = None,
) -> list[VariabilityReport]:
    """One :func:`simulate_job_stream` per selection rule, optionally in
    parallel.

    Every rule's stream uses the *same* base seed (matching what a
    serial loop over :func:`simulate_job_stream` would do), so the
    reports are bit-identical to the serial path regardless of *jobs*.
    *checkpoint* (a JSONL path) journals completed rule streams and
    resumes a killed sweep from them (see :mod:`repro.resilience`);
    *transport* selects the worker payload path (see
    :mod:`repro.sharedmem`).
    """
    with observability.span(
        "experiment.variability", rules=len(selections)
    ):
        return sweep_map(
            _stream_task,
            [(policy, job, num_jobs, rule, seed) for rule in selections],
            jobs=jobs,
            checkpoint=checkpoint,
            transport=transport,
        )
