"""Processor allocation policies.

An allocation policy determines which partition geometries a scheduler
may hand to a job of a requested size.  The paper contrasts two policy
styles:

* **Predefined list** (Mira): only a fixed table of geometries exists;
  jobs get exactly the listed geometry for their size.
* **Free cuboid** (JUQUEEN, Sequoia): any cuboid of midplanes that fits
  the machine is permissible.  Users may request an exact geometry or
  only a size — in the latter case the scheduler's choice is
  unconstrained, so *both* optimal and pessimal geometries can be
  served, producing the run-to-run variance the strong-scaling
  experiment (Section 4.3) warns about.
"""

from __future__ import annotations

import abc
from collections.abc import Mapping, Sequence

from .._validation import check_positive_int
from ..machines.bgq import BlueGeneQMachine
from .enumeration import achievable_midplane_counts, enumerate_geometries
from .geometry import PartitionGeometry

__all__ = [
    "AllocationPolicy",
    "PredefinedListPolicy",
    "FreeCuboidPolicy",
    "mira_policy",
    "juqueen_policy",
    "sequoia_policy",
]


class AllocationPolicy(abc.ABC):
    """Base class for allocation policies over a specific machine."""

    def __init__(self, machine: BlueGeneQMachine):
        self._machine = machine

    @property
    def machine(self) -> BlueGeneQMachine:
        """The machine this policy allocates on."""
        return self._machine

    @abc.abstractmethod
    def supported_sizes(self) -> list[int]:
        """Midplane counts for which the policy can allocate a partition."""

    @abc.abstractmethod
    def permissible_geometries(
        self, num_midplanes: int
    ) -> list[PartitionGeometry]:
        """All geometries the scheduler may serve for the given size.

        Sorted best-bandwidth-first.  Empty when the size is unsupported.
        """

    # ------------------------------------------------------------------ #
    # Derived conveniences                                                 #
    # ------------------------------------------------------------------ #

    def supports(self, num_midplanes: int) -> bool:
        """Whether any partition of this size can be allocated."""
        return bool(self.permissible_geometries(num_midplanes))

    def best_geometry(self, num_midplanes: int) -> PartitionGeometry:
        """Permissible geometry with maximum internal bisection bandwidth."""
        geos = self.permissible_geometries(num_midplanes)
        if not geos:
            raise ValueError(
                f"{self._machine.name} policy supports no partition of "
                f"{num_midplanes} midplanes"
            )
        return geos[0]

    def worst_geometry(self, num_midplanes: int) -> PartitionGeometry:
        """Permissible geometry with minimum internal bisection bandwidth."""
        geos = self.permissible_geometries(num_midplanes)
        if not geos:
            raise ValueError(
                f"{self._machine.name} policy supports no partition of "
                f"{num_midplanes} midplanes"
            )
        return geos[-1]

    def bandwidth_spread(self, num_midplanes: int) -> float:
        """Ratio best/worst permissible bisection bandwidth for a size.

        1.0 means the policy is geometry-deterministic for that size; the
        paper's improvable Mira rows have spread 2.0 (new vs current).
        """
        geos = self.permissible_geometries(num_midplanes)
        if not geos:
            raise ValueError(
                f"{self._machine.name} policy supports no partition of "
                f"{num_midplanes} midplanes"
            )
        best = geos[0].normalized_bisection_bandwidth
        worst = geos[-1].normalized_bisection_bandwidth
        return best / worst


class PredefinedListPolicy(AllocationPolicy):
    """A fixed table of geometries, one per supported size (Mira-style).

    Parameters
    ----------
    machine:
        Host machine.
    table:
        Mapping ``midplane count -> geometry dims``.  Every geometry must
        fit the machine and have the promised size.
    """

    def __init__(
        self,
        machine: BlueGeneQMachine,
        table: Mapping[int, Sequence[int]],
    ):
        super().__init__(machine)
        self._table: dict[int, PartitionGeometry] = {}
        for size, dims in table.items():
            size = check_positive_int(size, "table key")
            geo = PartitionGeometry(dims)
            if geo.num_midplanes != size:
                raise ValueError(
                    f"table entry {size}: geometry {geo.dims} has "
                    f"{geo.num_midplanes} midplanes"
                )
            if not geo.fits_in(machine):
                raise ValueError(
                    f"table entry {size}: geometry {geo.dims} does not fit "
                    f"in {machine.name} {machine.midplane_dims}"
                )
            self._table[size] = geo

    def supported_sizes(self) -> list[int]:
        return sorted(self._table)

    def permissible_geometries(
        self, num_midplanes: int
    ) -> list[PartitionGeometry]:
        check_positive_int(num_midplanes, "num_midplanes")
        geo = self._table.get(num_midplanes)
        return [geo] if geo is not None else []

    def geometry_for(self, num_midplanes: int) -> PartitionGeometry:
        """The single listed geometry for a size (KeyError if absent)."""
        return self._table[num_midplanes]


class FreeCuboidPolicy(AllocationPolicy):
    """Any cuboid of midplanes that fits is permissible (JUQUEEN-style)."""

    def supported_sizes(self) -> list[int]:
        return achievable_midplane_counts(self._machine)

    def permissible_geometries(
        self, num_midplanes: int
    ) -> list[PartitionGeometry]:
        check_positive_int(num_midplanes, "num_midplanes")
        return enumerate_geometries(self._machine, num_midplanes)


def mira_policy() -> PredefinedListPolicy:
    """Mira's production allocation policy (predefined list, Table 6)."""
    from ..machines.catalog import MIRA, MIRA_PREDEFINED_PARTITIONS

    return PredefinedListPolicy(MIRA, MIRA_PREDEFINED_PARTITIONS)


def juqueen_policy() -> FreeCuboidPolicy:
    """JUQUEEN's allocation policy (any fitting cuboid)."""
    from ..machines.catalog import JUQUEEN

    return FreeCuboidPolicy(JUQUEEN)


def sequoia_policy() -> FreeCuboidPolicy:
    """Sequoia's (apparent) allocation policy (any fitting cuboid)."""
    from ..machines.catalog import SEQUOIA

    return FreeCuboidPolicy(SEQUOIA)
