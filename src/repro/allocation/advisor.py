"""Contention-aware scheduling advisor (the paper's future-work feature).

Section 5 proposes that job schedulers take a user hint — "this job is
expected to be contention-bound" — and use it to decide between
allocating a currently-free partition with sub-optimal bisection
bandwidth or waiting for a better-shaped one.  This module implements
that decision rule as a small, testable model:

* a job is described by its size, an estimated run time on an optimal
  partition, and a *contention fraction* (share of run time that scales
  inversely with bisection bandwidth);
* allocating a sub-optimal geometry inflates the contention-bound share
  by the bandwidth ratio;
* waiting costs the expected queue delay until a better partition frees
  up.

The advisor recommends whichever option minimizes expected completion
time, and quantifies the regret of the other choice.
"""

from __future__ import annotations

from dataclasses import dataclass

from .._validation import (
    check_positive_float,
    check_positive_int,
    check_probability,
)
from .geometry import PartitionGeometry
from .policy import AllocationPolicy

__all__ = ["JobRequest", "AdvisorDecision", "SchedulingAdvisor"]


@dataclass(frozen=True)
class JobRequest:
    """A job submission with a contention hint.

    Attributes
    ----------
    num_midplanes:
        Requested partition size.
    optimal_runtime:
        Estimated wall-clock (seconds) on a best-bisection partition.
    contention_fraction:
        Fraction of *optimal_runtime* spent in contention-bound
        communication (0 = pure compute, 1 = fully bandwidth-bound).
        This is the paper's user-provided hint, made quantitative.
    """

    num_midplanes: int
    optimal_runtime: float
    contention_fraction: float

    def __post_init__(self) -> None:
        check_positive_int(self.num_midplanes, "num_midplanes")
        check_positive_float(self.optimal_runtime, "optimal_runtime")
        check_probability(self.contention_fraction, "contention_fraction")

    def runtime_on(self, geometry: PartitionGeometry, best_bw: int) -> float:
        """Predicted runtime on *geometry*, given the best achievable
        bandwidth *best_bw* for this size.

        The contention-bound share inflates by ``best_bw / geometry_bw``;
        the compute share is geometry-independent (as observed in the
        paper's matrix multiplication experiment).
        """
        bw = geometry.normalized_bisection_bandwidth
        if bw <= 0:
            raise ValueError(f"geometry {geometry.dims} has no bandwidth")
        slowdown = best_bw / bw
        compute = self.optimal_runtime * (1.0 - self.contention_fraction)
        comm = self.optimal_runtime * self.contention_fraction * slowdown
        return compute + comm


@dataclass(frozen=True)
class AdvisorDecision:
    """The advisor's recommendation for one job.

    Attributes
    ----------
    action:
        ``"allocate"`` (take the available partition now) or ``"wait"``
        (hold for a better-shaped partition).
    available_time:
        Expected completion time if allocated now.
    wait_time:
        Expected completion time if waiting for the optimal geometry.
    regret:
        Time saved by following the recommendation instead of the
        alternative (always >= 0).
    """

    action: str
    available_time: float
    wait_time: float

    @property
    def regret(self) -> float:
        return abs(self.available_time - self.wait_time)


class SchedulingAdvisor:
    """Decides allocate-now vs wait-for-better-geometry for hinted jobs."""

    def __init__(self, policy: AllocationPolicy):
        self._policy = policy

    @property
    def policy(self) -> AllocationPolicy:
        return self._policy

    def decide(
        self,
        job: JobRequest,
        available: PartitionGeometry,
        expected_wait: float,
    ) -> AdvisorDecision:
        """Recommend allocating *available* now vs waiting *expected_wait*
        seconds for a best-bandwidth partition of the job's size.

        A non-contention-bound job (fraction 0) is always allocated
        immediately — geometry cannot hurt it.
        """
        if available.num_midplanes != job.num_midplanes:
            raise ValueError(
                f"available partition has {available.num_midplanes} "
                f"midplanes; job wants {job.num_midplanes}"
            )
        if expected_wait < 0:
            raise ValueError(
                f"expected_wait must be non-negative, got {expected_wait}"
            )
        best = self._policy.best_geometry(job.num_midplanes)
        best_bw = best.normalized_bisection_bandwidth
        now = job.runtime_on(available, best_bw)
        later = expected_wait + job.runtime_on(best, best_bw)
        action = "allocate" if now <= later else "wait"
        return AdvisorDecision(
            action=action, available_time=now, wait_time=later
        )

    def breakeven_wait(
        self, job: JobRequest, available: PartitionGeometry
    ) -> float:
        """The queue delay below which waiting beats allocating now.

        Zero when the available partition is already optimal for the job
        (waiting can never help).
        """
        if available.num_midplanes != job.num_midplanes:
            raise ValueError(
                f"available partition has {available.num_midplanes} "
                f"midplanes; job wants {job.num_midplanes}"
            )
        best = self._policy.best_geometry(job.num_midplanes)
        best_bw = best.normalized_bisection_bandwidth
        now = job.runtime_on(available, best_bw)
        optimal = job.runtime_on(best, best_bw)
        return max(0.0, now - optimal)
