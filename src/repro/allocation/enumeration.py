"""Enumeration of partition geometries.

Generates every canonical cuboid-of-midplanes geometry of a given size
that fits inside a host machine — the search space over which the
paper's analysis finds best- and worst-case partitions (Tables 2, 5, 7).
"""

from __future__ import annotations

from collections.abc import Iterator

from .._validation import check_positive_int
from ..caching import memoized
from ..machines.bgq import BlueGeneQMachine
from .geometry import PartitionGeometry

__all__ = [
    "factorizations_into_dims",
    "enumerate_geometries",
    "achievable_midplane_counts",
]


def factorizations_into_dims(
    n: int, max_dims: int = 4, max_len: int | None = None
) -> Iterator[tuple[int, ...]]:
    """All descending factorizations of *n* into at most *max_dims* factors.

    Yields tuples ``(f_1 >= f_2 >= ... )`` of length exactly *max_dims*
    (padded with 1s) whose product is *n*, each at most *max_len* (if
    given).  Deterministic descending-lexicographic order.

    Examples
    --------
    >>> sorted(factorizations_into_dims(8, 3))
    [(2, 2, 2), (4, 2, 1), (8, 1, 1)]
    """
    n = check_positive_int(n, "n")
    max_dims = check_positive_int(max_dims, "max_dims")
    cap = n if max_len is None else check_positive_int(max_len, "max_len")

    def rec(remaining: int, slots: int, limit: int) -> Iterator[tuple[int, ...]]:
        if slots == 1:
            if remaining <= limit:
                yield (remaining,)
            return
        f = min(limit, remaining)
        while f >= 1:
            if remaining % f == 0:
                if f == 1:
                    if remaining == 1:
                        yield (1,) * slots
                    f -= 1
                    continue
                for rest in rec(remaining // f, slots - 1, f):
                    yield (f,) + rest
            f -= 1

    yield from rec(n, max_dims, cap)


@memoized()
def _enumerate_for_dims(
    machine_dims: tuple[int, ...], num_midplanes: int
) -> tuple[PartitionGeometry, ...]:
    # Whether a cuboid fits depends only on the host's midplane dims, so
    # same-shape machines (e.g. design-search candidates vs the real
    # JUQUEEN) share one memo entry.
    machine = BlueGeneQMachine("host", machine_dims)
    out = []
    for dims in factorizations_into_dims(
        num_midplanes, max_dims=4, max_len=machine_dims[0]
    ):
        geo = PartitionGeometry(dims)
        if geo.fits_in(machine):
            out.append(geo)
    out.sort(
        key=lambda g: (-g.normalized_bisection_bandwidth, g.dims)
    )
    return tuple(out)


def enumerate_geometries(
    machine: BlueGeneQMachine, num_midplanes: int
) -> list[PartitionGeometry]:
    """All canonical geometries of *num_midplanes* that fit in *machine*.

    Sorted by descending bisection bandwidth (best first), ties broken by
    dimension tuple for determinism.  Memoized per (machine shape, size);
    the returned list is a fresh copy the caller may reorder freely.

    Examples
    --------
    >>> from repro.machines import JUQUEEN
    >>> [g.dims for g in enumerate_geometries(JUQUEEN, 4)]
    [(2, 2, 1, 1), (4, 1, 1, 1)]
    """
    num_midplanes = check_positive_int(num_midplanes, "num_midplanes")
    return list(_enumerate_for_dims(machine.midplane_dims, num_midplanes))


@memoized()
def _achievable_for_dims(machine_dims: tuple[int, ...]) -> tuple[int, ...]:
    machine = BlueGeneQMachine("host", machine_dims)
    counts = set()
    m = machine_dims
    for a in range(1, m[0] + 1):
        for b in range(1, m[1] + 1):
            for c in range(1, m[2] + 1):
                for d in range(1, m[3] + 1):
                    if PartitionGeometry((a, b, c, d)).fits_in(machine):
                        counts.add(a * b * c * d)
    return tuple(sorted(counts))


def achievable_midplane_counts(machine: BlueGeneQMachine) -> list[int]:
    """Every midplane count for which some cuboid fits in *machine*.

    These are the sizes appearing on the x-axes of Figures 1, 2 and 7.
    Memoized per machine shape (the design search probes hundreds of
    candidate shapes, many repeatedly).
    """
    return list(_achievable_for_dims(machine.midplane_dims))
