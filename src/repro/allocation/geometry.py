"""Partition geometries: canonical representation and derived quantities.

A *partition geometry* is a cuboid of midplanes, written canonically with
dimensions sorted in descending order (the paper's convention, which
identifies rotations).  This module wraps the 4-tuple in a small
value class carrying all the quantities the analysis needs: node counts,
node-level dimensions, normalized internal bisection bandwidth, and shape
predicates ("ring-shaped" geometries cause the bandwidth 'spikes' in
Figure 2).
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from functools import total_ordering

from .._validation import check_dims
from ..machines.bgq import (
    LINK_BANDWIDTH_GB_PER_S,
    NODES_PER_MIDPLANE,
    BlueGeneQMachine,
    midplane_to_node_dims,
    normalized_bisection_bandwidth,
)
from ..topology.torus import Torus

__all__ = ["PartitionGeometry"]


@total_ordering
class PartitionGeometry:
    """A canonical (sorted-descending) cuboid of midplanes.

    Parameters
    ----------
    dims:
        Midplane counts per dimension; up to 4 entries, padded with 1s
        and sorted descending.

    Examples
    --------
    >>> g = PartitionGeometry((1, 2, 2))
    >>> g.dims
    (2, 2, 1, 1)
    >>> g.num_midplanes, g.num_nodes
    (4, 2048)
    >>> g.normalized_bisection_bandwidth
    512
    """

    __slots__ = ("_dims",)

    def __init__(self, dims: Sequence[int]):
        d = check_dims(dims, "dims")
        if len(d) > 4:
            raise ValueError(
                f"partition geometries have at most 4 dimensions, got "
                f"{len(d)}"
            )
        padded = tuple(sorted(d, reverse=True)) + (1,) * (4 - len(d))
        self._dims: tuple[int, int, int, int] = padded  # type: ignore[assignment]

    # ------------------------------------------------------------------ #
    # Shape                                                                #
    # ------------------------------------------------------------------ #

    @property
    def dims(self) -> tuple[int, int, int, int]:
        """Canonical midplane dimensions (sorted descending, length 4)."""
        return self._dims

    @property
    def num_midplanes(self) -> int:
        """Number of midplanes ``P``."""
        return math.prod(self._dims)

    @property
    def num_nodes(self) -> int:
        """Number of compute nodes (512 per midplane)."""
        return NODES_PER_MIDPLANE * self.num_midplanes

    @property
    def node_dims(self) -> tuple[int, ...]:
        """Node-level 5-D torus dimensions of the partition."""
        return midplane_to_node_dims(self._dims)

    @property
    def longest_dim(self) -> int:
        """Largest midplane dimension ``A_1``."""
        return self._dims[0]

    def is_ring(self) -> bool:
        """Whether the geometry is ring-shaped (``P × 1 × 1 × 1``).

        Ring partitions have the worst possible bisection (256 normalized
        regardless of size) and cause the 'spiking' drops in Figure 2:
        midplane counts with a large prime factor exceeding the host's
        other dimensions *force* a ring.
        """
        return self._dims[1] == 1

    def is_cube(self) -> bool:
        """Whether all four midplane dimensions are equal."""
        return len(set(self._dims)) == 1

    def aspect_ratio(self) -> float:
        """Largest over smallest midplane dimension."""
        return self._dims[0] / self._dims[3]

    # ------------------------------------------------------------------ #
    # Bandwidth                                                            #
    # ------------------------------------------------------------------ #

    @property
    def normalized_bisection_bandwidth(self) -> int:
        """Internal bisection bandwidth with unit link capacity.

        Equals ``256 · P / A_1`` (Corollary 3.4's monotonicity in
        ``A_1 / |A|`` at fixed size); computed from the node-level torus.
        """
        return normalized_bisection_bandwidth(self._dims)

    def bisection_bandwidth_gb_per_s(
        self, link_bandwidth: float = LINK_BANDWIDTH_GB_PER_S
    ) -> float:
        """Internal bisection bandwidth in GB/s (per direction)."""
        return self.normalized_bisection_bandwidth * link_bandwidth

    @property
    def bandwidth_per_node(self) -> float:
        """Normalized bisection bandwidth per compute node.

        The quantity that determines per-pair throughput in the bisection
        pairing experiment (Figures 3 and 4).
        """
        return self.normalized_bisection_bandwidth / self.num_nodes

    def network(self) -> Torus:
        """The partition's node-level torus as a unit-capacity graph.

        This is the *combinatorial* view used by the isoperimetric
        analysis (each link contributes 1 unit, the paper's
        normalization).  For simulation use :meth:`bgq_network`, which
        models the E dimension's doubled physical capacity.
        """
        return Torus(self.node_dims)

    def bgq_network(self) -> Torus:
        """The partition's node-level torus with physical capacities.

        Blue Gene/Q's E dimension has length 2, and both E ports of a
        node reach the same partner — two parallel links, i.e. double
        capacity on E edges.  Dimensions A–D have unit capacity.  The
        bisection numbers of the paper are unaffected (the bisection
        always cuts a longest dimension, never E), but local traffic in
        the contention simulator sees the correct E bandwidth.
        """
        dims = self.node_dims
        weights = tuple(2.0 if a == 2 else 1.0 for a in dims)
        return Torus(dims, dim_weights=weights)

    def midplane_network(self) -> Torus:
        """The partition's 4-D torus of midplanes."""
        return Torus(self._dims)

    # ------------------------------------------------------------------ #
    # Relations                                                            #
    # ------------------------------------------------------------------ #

    def fits_in(self, machine: BlueGeneQMachine) -> bool:
        """Whether this geometry fits inside *machine* (sorted
        componentwise comparison of midplane dimensions)."""
        return machine.fits(self._dims)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PartitionGeometry):
            return self._dims == other._dims
        return NotImplemented

    def __lt__(self, other: "PartitionGeometry") -> bool:
        if not isinstance(other, PartitionGeometry):
            return NotImplemented
        # Order primarily by size, then by bandwidth (worse first), then
        # lexicographically for determinism.
        return (
            self.num_midplanes,
            self.normalized_bisection_bandwidth,
            self._dims,
        ) < (
            other.num_midplanes,
            other.normalized_bisection_bandwidth,
            other._dims,
        )

    def __hash__(self) -> int:
        return hash(self._dims)

    def label(self) -> str:
        """The paper's ``A × B × C × D`` rendering of the geometry."""
        return " x ".join(str(a) for a in self._dims)

    def __repr__(self) -> str:
        return f"PartitionGeometry({self._dims})"
