"""Partition geometry optimization — the paper's Section 3.2 analysis.

Given a machine and (optionally) its allocation policy, find for every
partition size the geometry with optimal internal bisection bandwidth,
and flag sizes where the policy's current/worst geometry is sub-optimal.
These routines generate the data behind Tables 1, 2, 5, 6 and 7 and
Figures 1, 2 and 7.
"""

from __future__ import annotations

from dataclasses import dataclass

from .._validation import check_positive_int
from ..caching import memoized
from ..machines.bgq import BlueGeneQMachine
from .enumeration import enumerate_geometries
from .geometry import PartitionGeometry
from .policy import AllocationPolicy, PredefinedListPolicy

__all__ = [
    "GeometryComparison",
    "best_geometry_for_machine",
    "worst_geometry_for_machine",
    "compare_policy_to_optimal",
    "improvable_sizes",
    "best_worst_table",
    "corollary_3_4_improves",
]


@dataclass(frozen=True)
class GeometryComparison:
    """One row of a current-vs-proposed comparison (Table 1/2 style).

    Attributes
    ----------
    num_midplanes:
        Partition size ``P`` in midplanes.
    num_nodes:
        Partition size in compute nodes (512 per midplane).
    current:
        The geometry the policy serves today (Mira's listed geometry, or
        the worst permissible one for free-cuboid policies).
    current_bw:
        Its normalized internal bisection bandwidth.
    proposed:
        The best geometry of the same size that fits the machine.
    proposed_bw:
        Its normalized internal bisection bandwidth.
    """

    num_midplanes: int
    num_nodes: int
    current: PartitionGeometry
    current_bw: int
    proposed: PartitionGeometry
    proposed_bw: int

    @property
    def improvement(self) -> float:
        """Bandwidth ratio proposed / current (1.0 = no improvement)."""
        return self.proposed_bw / self.current_bw

    @property
    def is_improved(self) -> bool:
        """Whether the proposed geometry strictly beats the current one."""
        return self.proposed_bw > self.current_bw


@memoized()
def _geometry_extremes(
    machine_dims: tuple[int, ...], num_midplanes: int
) -> tuple[PartitionGeometry, PartitionGeometry] | None:
    """(best, worst) fitting geometry for a machine shape, or ``None``.

    Shared across every driver that ranks geometries — the design
    search alone asks for the same (shape, size) extremes thousands of
    times while scoring candidate machines.
    """
    machine = BlueGeneQMachine("host", machine_dims)
    geos = enumerate_geometries(machine, num_midplanes)
    if not geos:
        return None
    return geos[0], geos[-1]


def best_geometry_for_machine(
    machine: BlueGeneQMachine, num_midplanes: int
) -> PartitionGeometry:
    """The maximum-bisection geometry of a size that fits *machine*.

    This ignores the allocation policy — it is the *physically possible*
    optimum the paper proposes switching to.
    """
    check_positive_int(num_midplanes, "num_midplanes")
    extremes = _geometry_extremes(machine.midplane_dims, num_midplanes)
    if extremes is None:
        raise ValueError(
            f"no cuboid of {num_midplanes} midplanes fits in "
            f"{machine.name} {machine.midplane_dims}"
        )
    return extremes[0]


def worst_geometry_for_machine(
    machine: BlueGeneQMachine, num_midplanes: int
) -> PartitionGeometry:
    """The minimum-bisection geometry of a size that fits *machine*."""
    check_positive_int(num_midplanes, "num_midplanes")
    extremes = _geometry_extremes(machine.midplane_dims, num_midplanes)
    if extremes is None:
        raise ValueError(
            f"no cuboid of {num_midplanes} midplanes fits in "
            f"{machine.name} {machine.midplane_dims}"
        )
    return extremes[1]


def compare_policy_to_optimal(
    policy: AllocationPolicy,
) -> list[GeometryComparison]:
    """Compare every supported size of *policy* against the physical optimum.

    For predefined-list policies the "current" geometry is the listed
    one; for free-cuboid policies it is the worst permissible geometry
    (the paper's "worst-case" column — what an unlucky size-only request
    may receive).
    """
    rows: list[GeometryComparison] = []
    for size in policy.supported_sizes():
        if isinstance(policy, PredefinedListPolicy):
            current = policy.geometry_for(size)
        else:
            current = policy.worst_geometry(size)
        proposed = best_geometry_for_machine(policy.machine, size)
        rows.append(
            GeometryComparison(
                num_midplanes=size,
                num_nodes=current.num_nodes,
                current=current,
                current_bw=current.normalized_bisection_bandwidth,
                proposed=proposed,
                proposed_bw=proposed.normalized_bisection_bandwidth,
            )
        )
    return rows


def improvable_sizes(policy: AllocationPolicy) -> list[GeometryComparison]:
    """The comparison rows where the proposed geometry strictly wins.

    These are exactly the rows of Tables 1 and 2 (the "showing only rows
    where the bisection is increased" filter).
    """
    return [r for r in compare_policy_to_optimal(policy) if r.is_improved]


def best_worst_table(
    machine: BlueGeneQMachine, sizes: list[int] | None = None
) -> list[GeometryComparison]:
    """Best-vs-worst geometry for every achievable size of *machine*.

    The data behind Table 7 (JUQUEEN best/worst list); *sizes* defaults
    to every achievable midplane count.
    """
    from .enumeration import achievable_midplane_counts

    if sizes is None:
        sizes = achievable_midplane_counts(machine)
    rows: list[GeometryComparison] = []
    for size in sizes:
        worst = worst_geometry_for_machine(machine, size)
        best = best_geometry_for_machine(machine, size)
        rows.append(
            GeometryComparison(
                num_midplanes=size,
                num_nodes=worst.num_nodes,
                current=worst,
                current_bw=worst.normalized_bisection_bandwidth,
                proposed=best,
                proposed_bw=best.normalized_bisection_bandwidth,
            )
        )
    return rows


def corollary_3_4_improves(
    a: PartitionGeometry, b: PartitionGeometry
) -> bool:
    """Corollary 3.4: does *b* strictly improve on *a*?

    For equal-size cuboids of midplanes, ``B`` has strictly greater
    internal bisection bandwidth than ``A`` iff its largest dimension is
    strictly smaller (``B_1 / |A| < A_1 / |A|``).

    Raises :class:`ValueError` when the geometries differ in size.
    """
    if a.num_midplanes != b.num_midplanes:
        raise ValueError(
            "Corollary 3.4 compares equal-size partitions; got "
            f"{a.num_midplanes} vs {b.num_midplanes} midplanes"
        )
    return b.longest_dim < a.longest_dim
