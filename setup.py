"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so
that ``pip install -e .`` works on environments whose setuptools lacks the
``wheel`` package (legacy ``setup.py develop`` path, offline clusters).
"""

from setuptools import setup

setup()
