"""Benchmark — zero-copy shared-memory transport vs per-task pickling.

The parallel-sweep bugfix has two halves, and this harness guards both:

* **Transport.** Moving a designsearch-shaped sweep (>= 64 tasks that
  share a large :class:`repro.netsim.batchroute.PathMatrix`, the way
  real sweep tasks share routing tables and fault planes) through the
  :mod:`repro.sharedmem` block transport must beat moving the same
  tasks through per-task pickle round-trips by at least 1.5x.  Per-task
  dispatch re-serializes the shared arrays for every task; the block
  transport copies them into a shared segment once per chunk and every
  worker attaches a view.  The ratio is recorded as
  ``sweep_shm_speedup`` in BENCH_perf.json, where
  ``check_perf_regression.py`` guards it as a higher-is-better ratio.

* **Crossover.** A sweep at or under the small-sweep cutoff run with
  ``jobs=4`` must cost within 10% (plus absolute slack) of the same
  sweep run serially — the executor must decline the pool instead of
  reproducing the BENCH-observed ``designsearch_parallel_s`` >
  ``designsearch_serial_s`` inversion.

The transport legs are measured in-process (encode + decode round
trips) rather than through pool wall-clock, so the comparison is
meaningful on single-core CI runners too: what is being timed is the
serialization work itself, which is the part the shared-memory path
removes.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_shm_transport.py -s
"""

from __future__ import annotations

import json
import os
import pickle
import platform
import time
from pathlib import Path

import numpy as np
import pytest

from repro import sharedmem
from repro.analysis.report import render_table
from repro.netsim.batchroute import PathMatrix

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_perf.json"

pytestmark = pytest.mark.skipif(
    not sharedmem.shm_supported(),
    reason="multiprocessing.shared_memory unusable on this platform",
)

#: Acceptance floor from the issue: zero-copy beats per-task pickling
#: by at least this factor on a >= 64-task sweep with array payloads.
MIN_SPEEDUP = 1.5

#: Sweep shape: one task per candidate, dispatched as ``JOBS`` blocks.
N_TASKS = 64
JOBS = 4

#: Paths in the shared PathMatrix — ~1.5 MB of CSR arrays, the scale
#: at which re-pickling it per task dominated dispatch.
SHARED_PATHS = 48_000

REPEATS = 3


def _append_perf_record(timings: dict) -> None:
    """Append one record to the BENCH_perf.json trajectory.

    Same record shape as ``bench_perfbaseline.py`` (``benchmarks/`` is
    not a package, so the helper is duplicated); the per-key regression
    guard pairs each metric with its own previous occurrence.
    """
    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "cpu_count": os.cpu_count() or 1,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "timings": timings,
    }
    history: list[dict] = []
    if BENCH_FILE.exists():
        try:
            history = json.loads(BENCH_FILE.read_text())
        except (json.JSONDecodeError, OSError):
            history = []
        if not isinstance(history, list):
            history = []
    history.append(record)
    BENCH_FILE.write_text(json.dumps(history, indent=2) + "\n")


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def _tasks() -> list[tuple[int, int, PathMatrix]]:
    """A designsearch-shaped sweep: small per-task params plus a large
    shared routing payload referenced by every task."""
    paths = [
        [j % 97, (j + 1) % 97, (j + 2) % 97] for j in range(SHARED_PATHS)
    ]
    shared = PathMatrix.from_paths(paths)
    return [(i, 1000 + i, shared) for i in range(N_TASKS)]


def _chunks(tasks: list, jobs: int) -> list[list]:
    size = (len(tasks) + jobs - 1) // jobs
    return [tasks[i: i + size] for i in range(0, len(tasks), size)]


def _pickle_leg(tasks: list) -> list:
    """Per-task pickling: one dumps+loads round trip per task."""
    return [pickle.loads(pickle.dumps(t, protocol=5)) for t in tasks]


def _shm_leg(tasks: list) -> list:
    """Block transport: encode ``JOBS`` chunks into shared segments,
    attach them back as zero-copy views (what each worker does).

    The returned PathMatrix views stay readable after the pool unlinks
    (the mapping lives until :func:`sharedmem.detach_segments`); the
    caller drops them and detaches when done, exactly like a worker.
    """
    out: list = []
    with sharedmem.SharedArrayPool() as pool:
        payloads = [pool.dumps(chunk) for chunk in _chunks(tasks, JOBS)]
        for payload in payloads:
            out.extend(sharedmem.shm_loads(payload))
    return out


def test_shm_transport_speedup(report):
    """Zero-copy block transport >= 1.5x per-task pickling, guarded."""
    tasks = _tasks()
    assert len(tasks) >= 64

    # Warm both legs once (codec registration, segment probe, pickle
    # memo tables) so the timed sections compare steady state.
    _pickle_leg(tasks[:2])
    _shm_leg(tasks[:2])
    sharedmem.detach_segments()

    pickle_s = min(
        _timed(lambda: _pickle_leg(tasks))[1] for _ in range(REPEATS)
    )
    shm_times = []
    for _ in range(REPEATS):
        out, t = _timed(lambda: _shm_leg(tasks))
        del out  # release the zero-copy views before closing mappings
        sharedmem.detach_segments()
        shm_times.append(t)
    shm_s = min(shm_times)

    # The speedup only counts if the transport moved identical bits.
    via_pickle = _pickle_leg(tasks)
    via_shm = _shm_leg(tasks)
    for (pi, pseed, ppm), (si, sseed, spm) in zip(via_pickle, via_shm):
        assert (pi, pseed) == (si, sseed)
        assert np.array_equal(ppm._link_ids, spm._link_ids)
        assert np.array_equal(ppm._offsets, spm._offsets)
    del via_shm, spm
    sharedmem.detach_segments()
    assert sharedmem.active_segments() == []

    speedup = pickle_s / max(shm_s, 1e-9)
    shared_kib = (
        tasks[0][2]._link_ids.nbytes + tasks[0][2]._offsets.nbytes
    ) // 1024

    _append_perf_record({"sweep_shm_speedup": round(speedup, 2)})

    report(render_table(
        [
            {
                "transport": name,
                "round_trip_s": f"{secs:.4f}",
                "vs_pickle": f"x{pickle_s / max(secs, 1e-9):.2f}",
            }
            for name, secs in [
                (f"per-task pickle x{N_TASKS}", pickle_s),
                (f"shm blocks x{JOBS}", shm_s),
            ]
        ],
        ["transport", "round_trip_s", "vs_pickle"],
        title=f"Sweep transport: {N_TASKS} tasks sharing "
        f"~{shared_kib} KiB of CSR arrays",
    ))

    assert speedup >= MIN_SPEEDUP, (
        f"shm transport only x{speedup:.2f} over per-task pickling "
        f"(pickle {pickle_s:.4f}s, shm {shm_s:.4f}s); "
        f"need >= x{MIN_SPEEDUP}"
    )


def test_small_sweep_parallel_matches_serial(report):
    """jobs=4 on a sub-cutoff sweep costs the same as serial.

    ``design_search(12, ...)`` enumerates 21 candidates — under the
    32-task cutoff — so the executor must run it in-process for any
    ``jobs`` value rather than paying pool startup it cannot amortize
    (the original ``designsearch_parallel_s > designsearch_serial_s``
    bug).
    """
    from repro.caching import clear_all_caches
    from repro.experiments.designsearch import design_search
    from repro.machines.catalog import JUQUEEN

    def key(cands):
        return [
            (c.machine.midplane_dims, c.bandwidths,
             c.dominated_baseline, c.wins)
            for c in cands
        ]

    clear_all_caches()
    design_search(12, JUQUEEN, jobs=1)  # warm memos: compare dispatch
    serial_s = parallel_s = float("inf")
    for _ in range(REPEATS):
        serial, t = _timed(lambda: design_search(12, JUQUEEN, jobs=1))
        serial_s = min(serial_s, t)
        parallel, t = _timed(lambda: design_search(12, JUQUEEN, jobs=4))
        parallel_s = min(parallel_s, t)
    assert key(parallel) == key(serial)

    report(render_table(
        [{
            "grid": "design_search(12) — 21 candidates",
            "serial_s": f"{serial_s:.4f}",
            "jobs=4_s": f"{parallel_s:.4f}",
            "identical": "yes",
        }],
        ["grid", "serial_s", "jobs=4_s", "identical"],
        title="Small-sweep crossover: jobs=4 must not pay for a pool",
    ))

    # Within 10% plus absolute slack for scheduler jitter on tiny runs.
    assert parallel_s <= serial_s * 1.10 + 0.05, (
        f"jobs=4 took {parallel_s:.4f}s vs serial {serial_s:.4f}s on a "
        f"sub-cutoff sweep: the executor paid for a pool it cannot use"
    )
