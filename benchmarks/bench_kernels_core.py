"""Performance benchmarks for the kernel implementations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels.caps import CapsConfig, caps_steps
from repro.kernels.strassen import strassen_winograd


@pytest.fixture(scope="module")
def operands():
    rng = np.random.default_rng(0)
    n = 256
    return rng.standard_normal((n, n)), rng.standard_normal((n, n))


def test_bench_strassen_winograd_256(benchmark, operands):
    A, B = operands
    C = benchmark(strassen_winograd, A, B, 64)
    assert np.allclose(C, A @ B)


def test_bench_numpy_matmul_256(benchmark, operands):
    """Baseline for the Strassen measurement above (BLAS)."""
    A, B = operands
    C = benchmark(lambda: A @ B)
    assert C.shape == (256, 256)


def test_bench_caps_schedule_generation(benchmark):
    steps = benchmark(
        lambda: caps_steps(CapsConfig(n=32928, num_ranks=117649))
    )
    assert len(steps) == 6


def test_bench_caps_traffic_aggregation(benchmark):
    from repro.experiments.matmul import step_traffic_matrix

    node_of_rank = np.repeat(np.arange(2048, dtype=np.int64), 16)[:31213]
    config = CapsConfig(n=32928, num_ranks=31213)
    step = caps_steps(config)[-1]

    def run():
        return step_traffic_matrix(
            31213, step.stride, step.group_size, node_of_rank,
            round_offset=1,
        )

    src, dst, cnt = benchmark(run)
    assert cnt.sum() > 0
