"""Benchmark — Sequoia allocation analysis (Section 5 of the paper).

Sequoia (16×16×16×12×2 nodes, 4×4×4×3 midplanes) transitioned to
classified work before the paper's experiments, so the paper only
*analyzes* it: "both optimal and sub-optimal permissible partitions may
be defined for certain midplane counts ... depending on its allocation
policy it may be possible to improve its network performance".  This
harness regenerates that analysis with the same machinery as
Tables 2/7.
"""

from __future__ import annotations

import pytest

from repro.allocation.optimizer import best_worst_table
from repro.analysis.report import render_table
from repro.machines.catalog import SEQUOIA


@pytest.fixture(scope="module")
def rows():
    return best_worst_table(SEQUOIA)


def test_sequoia_best_worst(benchmark, rows, report):
    benchmark(best_worst_table, SEQUOIA)
    improved = [r for r in rows if r.is_improved]

    # The Section 5 claim: improvable sizes exist.
    assert improved, "Sequoia should have geometry-sensitive sizes"
    # The familiar small sizes behave like Mira/JUQUEEN.
    by_size = {r.num_midplanes: r for r in rows}
    assert by_size[4].current_bw == 256 and by_size[4].proposed_bw == 512
    assert by_size[16].proposed.dims == (2, 2, 2, 2)
    assert by_size[16].proposed_bw == 2048
    # Sequoia's three length-4 dims + one length-3 admit a 3x3x3 cube.
    assert by_size[27].proposed.dims == (3, 3, 3, 1)
    assert by_size[27].proposed_bw == 2304
    # Full machine: 192 midplanes, bisection 2*192*512/16 = 12288.
    assert by_size[192].current_bw == 12288

    table = [
        {
            "midplanes": r.num_midplanes,
            "nodes": r.num_nodes,
            "worst": r.current.dims,
            "worst_bw": r.current_bw,
            "best": r.proposed.dims if r.is_improved else None,
            "best_bw": r.proposed_bw if r.is_improved else None,
        }
        for r in rows
    ]
    report(render_table(
        table,
        ["midplanes", "nodes", "worst", "worst_bw", "best", "best_bw"],
        title="Sequoia — best/worst permissible partitions (Section 5 "
              f"analysis; {len(improved)} of {len(rows)} sizes improvable)",
    ))
