"""Ablation benchmarks for the CAPS communication model.

DESIGN.md calls out three modelling choices whose effect the paper's
data cannot pin down exactly; this harness quantifies each on the
4-midplane Figure 5 configuration:

* **exchange schedule** — sequential pairwise rounds (reference
  implementation behaviour) vs fully-overlapped superposition;
* **recursion digit order** — deep-major (deepest BFS level spans the
  allocation) vs top-major (contiguous top-level groups);
* **rank-to-node mapping** — "tedcba" (longest dimension fastest) vs
  "abcdet" (launcher default).  The two bracket the paper's measured
  ×1.37–×1.52 communication ratios.
"""

from __future__ import annotations

import pytest

from repro.allocation.geometry import PartitionGeometry
from repro.analysis.report import render_table
from repro.experiments.matmul import run_caps_on_geometry

CUR = PartitionGeometry((4, 1, 1, 1))
PROP = PartitionGeometry((2, 2, 1, 1))
PARAMS = dict(num_ranks=31213, matrix_dim=32928, max_cores=16)


def _ratio(**kwargs) -> tuple[float, float, float]:
    rc = run_caps_on_geometry(CUR, **PARAMS, **kwargs)
    rp = run_caps_on_geometry(PROP, **PARAMS, **kwargs)
    return (
        rc.communication_time,
        rp.communication_time,
        rc.communication_time / rp.communication_time,
    )


@pytest.fixture(scope="module")
def ablation_rows():
    rows = []
    for schedule in ("rounds", "superposition"):
        for digit_order in ("deep-major", "top-major"):
            for node_order in ("tedcba", "abcdet"):
                cur_t, prop_t, ratio = _ratio(
                    schedule=schedule,
                    digit_order=digit_order,
                    node_order=node_order,
                )
                rows.append({
                    "schedule": schedule,
                    "digit_order": digit_order,
                    "node_order": node_order,
                    "current_s": cur_t,
                    "proposed_s": prop_t,
                    "ratio": ratio,
                })
    return rows


def test_caps_model_ablation(benchmark, ablation_rows, report):
    benchmark.pedantic(
        lambda: _ratio(schedule="rounds", digit_order="deep-major",
                       node_order="tedcba"),
        rounds=1, iterations=1,
    )
    by_key = {
        (r["schedule"], r["digit_order"], r["node_order"]): r
        for r in ablation_rows
    }
    default = by_key[("rounds", "deep-major", "tedcba")]
    # The default configuration shows strong geometry sensitivity,
    # covering the paper's 1.37-1.52 band.
    assert default["ratio"] >= 1.37

    # Rounds schedule concentrates traffic -> at least as sensitive as
    # superposition under the default orders.
    overlap = by_key[("superposition", "deep-major", "tedcba")]
    assert default["ratio"] >= overlap["ratio"] - 0.05

    # Top-major + abcdet (both locality-first) nearly erases the effect:
    # the geometry choice would not have been measurable.
    weakest = by_key[("rounds", "top-major", "abcdet")]
    assert weakest["ratio"] < default["ratio"]

    report(render_table(
        ablation_rows,
        ["schedule", "digit_order", "node_order", "current_s",
         "proposed_s", "ratio"],
        title="Ablation — CAPS model choices vs geometry sensitivity "
              "(4-midplane Figure 5 row; paper measured ratio 1.37)",
    ))
