"""Benchmark regenerating Figure 4 — JUQUEEN bisection pairing experiment.

Same protocol as Figure 3 on JUQUEEN's worst-case vs best-case
geometries for 4/6/8/12/16 midplanes.  Asserts the paper's claims:

* ×2.0 between worst and best everywhere both differ;
* per-node bandwidth identical for the 4 and 8 midplane best-case
  partitions but 50% smaller for 6 midplanes — so the best-case times
  satisfy t(6) = 1.5 t(4) = 1.5 t(8) (the figure-caption observation).
"""

from __future__ import annotations

import pytest

from repro.allocation.geometry import PartitionGeometry
from repro.analysis.report import render_series
from repro.experiments.pairing import run_pairing

JUQUEEN_ROWS = [
    (4, (4, 1, 1, 1), (2, 2, 1, 1)),
    (6, (6, 1, 1, 1), (3, 2, 1, 1)),
    (8, (4, 2, 1, 1), (2, 2, 2, 1)),
    (12, (6, 2, 1, 1), (3, 2, 2, 1)),
    (16, (4, 2, 2, 1), (2, 2, 2, 2)),
]


@pytest.fixture(scope="module")
def results():
    out = {}
    for mp, worst, best in JUQUEEN_ROWS:
        out[mp] = (
            run_pairing(PartitionGeometry(worst)),
            run_pairing(PartitionGeometry(best)),
        )
    return out


def test_figure4_juqueen_pairing(benchmark, results, report):
    benchmark.pedantic(
        lambda: run_pairing(PartitionGeometry((6, 1, 1, 1))),
        rounds=1, iterations=1,
    )
    worst = {mp: r[0].time_seconds for mp, r in results.items()}
    best = {mp: r[1].time_seconds for mp, r in results.items()}

    # x2 everywhere on these sizes (all have differing best/worst).
    for mp in worst:
        assert worst[mp] / best[mp] == pytest.approx(2.0, rel=0.05), mp

    # Figure 4 caption: best-case per-node bandwidth equal at 4 and 8
    # midplanes, 50% smaller at 6.
    assert best[4] == pytest.approx(best[8], rel=1e-6)
    assert best[6] / best[4] == pytest.approx(1.5, rel=0.01)

    report(render_series(
        {"worst-case": worst, "proposed": best},
        title="Figure 4 — JUQUEEN bisection pairing (simulated seconds; "
              "paper measured >= 1.92x ratios)",
        y_format="{:.1f}",
    ))
