"""Ablation benchmark — routing tie-break policy on the pairing result.

The bisection pairing traffic travels exactly half way around each
even ring, so every flow's direction is a tie.  Real torus routers
balance such traffic; a strictly deterministic router sends every tie
the same way, leaving half the ring links idle.  This harness checks
that the paper's ×2 geometry conclusion is invariant to that choice,
while absolute times double under the unbalanced router — the kind of
"one-direction utilization" effect the paper mentions for Mira's
24-midplane partition.
"""

from __future__ import annotations

import pytest

from repro.allocation.geometry import PartitionGeometry
from repro.analysis.report import render_table
from repro.experiments.pairing import PairingParameters, run_pairing

CUR = PartitionGeometry((4, 1, 1, 1))
PROP = PartitionGeometry((2, 2, 1, 1))


@pytest.fixture(scope="module")
def results():
    out = {}
    for tie in ("parity", "positive"):
        params = PairingParameters(rounds=2, tie=tie)
        out[tie] = (
            run_pairing(CUR, params).time_seconds,
            run_pairing(PROP, params).time_seconds,
        )
    return out


def test_tie_break_ablation(benchmark, results, report):
    benchmark.pedantic(
        lambda: run_pairing(CUR, PairingParameters(rounds=1)),
        rounds=1, iterations=1,
    )
    rows = []
    for tie, (worse, better) in results.items():
        rows.append({
            "tie-break": tie,
            "current_s": worse,
            "proposed_s": better,
            "ratio": worse / better,
        })
    by_tie = {r["tie-break"]: r for r in rows}

    # The geometry conclusion (x2) is routing-invariant.
    for r in rows:
        assert r["ratio"] == pytest.approx(2.0, rel=0.02)
    # A one-directional router doubles absolute times (half the links
    # idle), exactly the utilization effect the paper flags.
    assert by_tie["positive"]["current_s"] == pytest.approx(
        2 * by_tie["parity"]["current_s"], rel=0.02
    )

    report(render_table(
        rows,
        ["tie-break", "current_s", "proposed_s", "ratio"],
        title="Ablation — routing tie-break vs pairing times "
              "(4 midplanes, 2 rounds)",
    ))
