"""Benchmark regenerating Table 5 and Figure 7 — machine design study."""

from __future__ import annotations

import pytest

from repro.analysis import paperdata
from repro.analysis.figures import figure7
from repro.analysis.report import render_series
from repro.analysis.tables import table5
from repro.experiments.machinedesign import (
    compare_machines,
    is_constructible_within,
    peak_speedup_nearest_size,
    peak_speedup_over_baseline,
)
from repro.machines.catalog import JUQUEEN, JUQUEEN_48, JUQUEEN_54, MIRA


def test_table5_best_case_partitions(benchmark, report):
    got = benchmark(table5)
    for size, entry in paperdata.TABLE_5_MACHINE_DESIGN.items():
        for machine, want in entry.items():
            have = got[size].get(machine)
            if want is None:
                assert have is None, (size, machine)
            else:
                assert have is not None and have[1] == want[1], (
                    size, machine,
                )
    lines = ["Table 5 — best-case partitions (regenerated; matches "
             "paper exactly)"]
    for size in sorted(got):
        cells = []
        for name in ("JUQUEEN", "JUQUEEN-54", "JUQUEEN-48"):
            v = got[size].get(name)
            cells.append(
                "-" if v is None else
                f"{'x'.join(map(str, v[0]))}({v[1]})"
            )
        lines.append(f"  {size:>3}  " + "  ".join(c.ljust(18) for c in cells))
    report("\n".join(lines))


def test_figure7_machine_comparison(benchmark, report):
    fig = benchmark(figure7)
    # Shape: hypothetical machines never below JUQUEEN at common sizes,
    # strictly above at 48 (J-48).
    for size, bw in fig["JUQUEEN"].items():
        for other in ("JUQUEEN-48", "JUQUEEN-54"):
            o = fig[other].get(size)
            if bw is not None and o is not None:
                assert o >= bw
    assert fig["JUQUEEN-48"][48] == 3072 > fig["JUQUEEN"][48] == 2048
    assert fig["JUQUEEN-54"][54] == 4608

    rows = compare_machines([JUQUEEN, JUQUEEN_48, JUQUEEN_54])
    # Paper headline speedups.
    assert peak_speedup_over_baseline(
        rows, "JUQUEEN", "JUQUEEN-48"
    ) == pytest.approx(1.5)
    assert peak_speedup_nearest_size(rows, "JUQUEEN", "JUQUEEN-54") >= 2.0
    # Physical feasibility.
    assert is_constructible_within(JUQUEEN_48, MIRA)
    assert is_constructible_within(JUQUEEN_54, MIRA)

    report(render_series(
        fig,
        title="Figure 7 — best-case bisection bandwidth: JUQUEEN vs "
              "JUQUEEN-48 vs JUQUEEN-54",
        y_format="{:.0f}",
    ))


def test_hypothetical_machine_contention_speedup(benchmark, report):
    """Simulate the paper's prediction that JUQUEEN-48 beats JUQUEEN by
    x1.5 on contention-bound work at 48 midplanes (24 576 nodes)."""
    from repro.allocation.geometry import PartitionGeometry
    from repro.experiments.pairing import PairingParameters, run_pairing

    params = PairingParameters(rounds=1)
    juq = run_pairing(PartitionGeometry((6, 2, 2, 2)), params)
    j48 = run_pairing(PartitionGeometry((4, 3, 2, 2)), params)
    benchmark.pedantic(
        lambda: run_pairing(PartitionGeometry((4, 3, 2, 2)), params),
        rounds=1, iterations=1,
    )
    ratio = juq.time_seconds / j48.time_seconds
    assert ratio == pytest.approx(1.5, rel=0.02)

    # JUQUEEN-54's near-full-machine case: its 54-midplane partition vs
    # JUQUEEN's full 56 (a job needing ~54 midplanes occupies all of
    # JUQUEEN).  Per-pair volume is identical; the bandwidth-per-node
    # gap 4608/27648 vs 2048/28672 predicts ~x2.3.
    juq_full = run_pairing(PartitionGeometry((7, 2, 2, 2)), params)
    j54 = run_pairing(PartitionGeometry((3, 3, 3, 2)), params)
    ratio54 = juq_full.time_seconds / j54.time_seconds
    assert ratio54 >= 2.0

    report(
        "Hypothetical machine contention checks (pairing, 1 round):\n"
        f"  48 midplanes: JUQUEEN best 6x2x2x2 {juq.time_seconds:7.2f} s"
        f" vs JUQUEEN-48 4x3x2x2 {j48.time_seconds:7.2f} s"
        f"  -> x{ratio:.2f} (paper predicts x1.5)\n"
        f"  near-full:    JUQUEEN 7x2x2x2 (56) {juq_full.time_seconds:7.2f} s"
        f" vs JUQUEEN-54 3x3x3x2 (54) {j54.time_seconds:7.2f} s"
        f"  -> x{ratio54:.2f} (paper predicts up to x2)"
    )
