"""Benchmark — future-work kernels (FFT transpose, N-body ring).

Quantifies Section 5's prediction that kernels with lower
computation-to-communication ratios are more bisection-sensitive than
fast matrix multiplication, on the 4-midplane current/proposed pair:

* the FFT global transpose (pairwise all-to-all) realizes a
  communication ratio well above the CAPS wall-clock ratios;
* the N-body *walk-order* ring is contention-free and geometry
  insensitive (good task mapping sidesteps the bisection);
* the N-body *random-order* ring is hotspot-dominated — much slower
  than the walk ring and nearly geometry-independent — showing why
  mapping/routing quality, not just bisection, bounds real kernels.
"""

from __future__ import annotations

import pytest

from repro.allocation.geometry import PartitionGeometry
from repro.analysis.report import render_table
from repro.experiments.futurekernels import (
    run_fft_transpose,
    run_nbody_sweep,
)

CUR = PartitionGeometry((4, 1, 1, 1))
PROP = PartitionGeometry((2, 2, 1, 1))
FFT_N = 2**28
BODIES = 2_000_000


@pytest.fixture(scope="module")
def runs():
    return {
        "fft": (run_fft_transpose(CUR, FFT_N),
                run_fft_transpose(PROP, FFT_N)),
        "nbody-walk": (run_nbody_sweep(CUR, BODIES),
                       run_nbody_sweep(PROP, BODIES)),
        "nbody-random": (
            run_nbody_sweep(CUR, BODIES, ring_order="random"),
            run_nbody_sweep(PROP, BODIES, ring_order="random"),
        ),
    }


def test_future_kernels_sensitivity(benchmark, runs, report):
    benchmark.pedantic(
        lambda: run_fft_transpose(PROP, FFT_N), rounds=1, iterations=1
    )
    rows = []
    for name, (worse, better) in runs.items():
        rows.append({
            "kernel": name,
            "comm worse (s)": worse.communication_time,
            "comm better (s)": better.communication_time,
            "comm ratio": worse.communication_time
            / better.communication_time,
            "comm fraction": worse.comm_fraction,
        })
    by_name = {r["kernel"]: r for r in rows}

    # FFT: strongly bisection-sensitive (all-to-all crosses the cut).
    assert by_name["fft"]["comm ratio"] >= 1.5
    # Walk-order N-body: contention-free, geometry-insensitive.
    assert by_name["nbody-walk"]["comm ratio"] == pytest.approx(1.0)
    # Random-order N-body: hotspot-dominated — much slower than walk
    # order, but the hotspots are geometry-independent.
    walk = runs["nbody-walk"][0].communication_time
    rand = runs["nbody-random"][0].communication_time
    assert rand > 3 * walk
    assert by_name["nbody-random"]["comm ratio"] == pytest.approx(
        1.0, rel=0.5
    )

    report(render_table(
        rows,
        ["kernel", "comm worse (s)", "comm better (s)", "comm ratio",
         "comm fraction"],
        title="Future-work kernels on 4-midplane geometries "
              "(worse = 4x1x1x1, better = 2x2x1x1)",
    ))
