"""Benchmark regenerating Figure 3 — Mira bisection pairing experiment.

Runs the full-scale fluid simulation (paper parameters: 26 counted
rounds of 16 × 0.1342 GB chunks, 2 GB/s links) on Mira's current and
proposed geometries for 4/8/16/24 midplanes, and asserts the paper's
shape claims:

* ×2.0 predicted speedup at 4, 8, 16 midplanes (paper measured >= 1.92);
* a reduced ratio at 24 midplanes (paper predicted 1.50, measured 1.44;
  the pure bisection ratio is 2048/1536 = 1.33 — our fluid simulation
  realizes exactly that);
* proposed times flat across 4/8/16, rising ×1.5 at 24 (constant
  bandwidth, ×1.5 nodes — the effect the paper calls expected).
"""

from __future__ import annotations

import pytest

from repro.allocation.geometry import PartitionGeometry
from repro.analysis.paperdata import PAIRING_PREDICTED_RATIOS
from repro.analysis.report import render_series
from repro.experiments.pairing import run_pairing

MIRA_ROWS = [
    (4, (4, 1, 1, 1), (2, 2, 1, 1)),
    (8, (4, 2, 1, 1), (2, 2, 2, 1)),
    (16, (4, 4, 1, 1), (2, 2, 2, 2)),
    (24, (4, 3, 2, 1), (3, 2, 2, 2)),
]


@pytest.fixture(scope="module")
def results():
    out = {}
    for mp, cur, prop in MIRA_ROWS:
        out[mp] = (
            run_pairing(PartitionGeometry(cur)),
            run_pairing(PartitionGeometry(prop)),
        )
    return out


def test_figure3_mira_pairing(benchmark, results, report):
    # Benchmark one representative full-scale run (4 midplanes, current).
    benchmark.pedantic(
        lambda: run_pairing(PartitionGeometry((4, 1, 1, 1))),
        rounds=1, iterations=1,
    )
    series_cur = {mp: r[0].time_seconds for mp, r in results.items()}
    series_prop = {mp: r[1].time_seconds for mp, r in results.items()}

    # Paper shape: x2 speedup at 4/8/16 midplanes.
    for mp in (4, 8, 16):
        ratio = series_cur[mp] / series_prop[mp]
        assert ratio == pytest.approx(
            PAIRING_PREDICTED_RATIOS[mp], rel=0.05
        ), mp
    # 24 midplanes: reduced ratio (bisection 2048/1536 = 4/3; the paper
    # predicted 1.5 and measured 1.44 — accept the band).
    r24 = series_cur[24] / series_prop[24]
    assert 1.25 <= r24 <= 1.55, r24

    # Proposed geometries: flat 4->16, x1.5 step at 24.
    assert series_prop[4] == pytest.approx(series_prop[8], rel=1e-6)
    assert series_prop[8] == pytest.approx(series_prop[16], rel=1e-6)
    assert series_prop[24] / series_prop[16] == pytest.approx(1.5, rel=0.01)

    # Current geometries: flat across all sizes (bandwidth/node constant).
    assert series_cur[4] == pytest.approx(series_cur[16], rel=1e-6)

    report(render_series(
        {"current": series_cur, "proposed": series_prop},
        title="Figure 3 — Mira bisection pairing (simulated seconds; "
              "paper measured ~150/~75 s with >= 1.92x ratios)",
        y_format="{:.1f}",
    ))
