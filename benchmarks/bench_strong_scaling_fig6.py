"""Benchmark regenerating Table 4 and Figure 6 — the strong-scaling
illusion experiment.

Shape assertions (Section 4.3 of the paper):

* both curves share the 2-midplane point (only one cuboid exists);
* communication on proposed geometries scales better 2→8 than on
  current ones (paper: ×4.4 vs ×3.3 including the L2 cache effect);
* the L2-spill model fires only on 2 midplanes (32 GB aggregate L2 <
  the ~37 GB CAPS working set), producing the super-linear 2→4 drop;
* computation time is geometry-independent and halves with rank count.
"""

from __future__ import annotations

import pytest

from repro.analysis.paperdata import FIGURE_6_STRONG_SCALING_TIMES
from repro.analysis.report import render_series, render_table
from repro.analysis.tables import table4
from repro.experiments.strongscaling import run_strong_scaling


@pytest.fixture(scope="module")
def result():
    return run_strong_scaling()


def test_table4_parameters(benchmark, report):
    rows = benchmark(table4)
    assert [r["current_bw"] for r in rows] == [256, 256, 512]
    assert [r["proposed_bw"] for r in rows] == [256, 512, 1024]
    report(render_table(
        rows,
        ["nodes", "midplanes", "ranks", "max_cores", "avg_cores",
         "current_bw", "proposed_bw"],
        title="Table 4 — strong-scaling parameters (bandwidths "
              "recomputed; match paper)",
    ))


def test_figure6_strong_scaling(benchmark, result, report):
    benchmark.pedantic(
        lambda: run_strong_scaling(apply_cache_model=False),
        rounds=1, iterations=1,
    )
    cur = {p.num_midplanes: p.communication_time for p in result.current}
    prop = {p.num_midplanes: p.communication_time for p in result.proposed}
    comp = {p.num_midplanes: p.computation_time for p in result.current}

    # Common starting point.
    assert cur[2] == pytest.approx(prop[2])
    # Proposed scales strictly better.
    assert result.speedup("proposed") > result.speedup("current")
    # Proposed 2->8 speedup in a band around the paper's x4.4; current
    # clearly sub-linear (paper x3.3).
    assert 2.8 <= result.speedup("proposed") <= 5.5
    assert result.speedup("current") < result.speedup("proposed")
    # Super-linear 2->4 on proposed (cache effect + doubled bandwidth).
    assert prop[2] / prop[4] > 1.6
    # Spill penalty only at 2 midplanes.
    assert result.current[0].spill_penalty > 1.0
    assert result.current[1].spill_penalty == 1.0
    # Computation halves as ranks double, independent of geometry.
    assert comp[2] == pytest.approx(2 * comp[4], rel=1e-6)
    assert comp[4] == pytest.approx(2 * comp[8], rel=1e-6)

    paper = FIGURE_6_STRONG_SCALING_TIMES
    report(render_series(
        {
            "sim current": cur,
            "sim proposed": prop,
            "sim computation": comp,
            "paper current": paper["current"],
            "paper proposed": paper["proposed"],
        },
        title="Figure 6 — strong-scaling communication seconds "
              "(simulated vs paper-measured)",
        y_format="{:.4f}",
    ))
