"""Benchmarks regenerating Table 2, Table 7 and Figure 2 (JUQUEEN)."""

from __future__ import annotations

from repro.analysis import paperdata, tables
from repro.analysis.figures import figure2
from repro.analysis.report import render_series, render_table

TABLE2_COLS = ["nodes", "midplanes", "worst", "worst_bw", "best", "best_bw"]


def test_table2_juqueen_improved(benchmark, report):
    rows = benchmark(tables.table2)
    assert rows == paperdata.TABLE_2_JUQUEEN_IMPROVED
    report(render_table(rows, TABLE2_COLS,
                        title="Table 2 — JUQUEEN best/worst differing "
                              "rows (regenerated; matches paper exactly)"))


def test_table7_juqueen_full(benchmark, report):
    rows = benchmark(tables.table7)
    assert rows == paperdata.TABLE_7_JUQUEEN_FULL
    report(render_table(rows, TABLE2_COLS,
                        title="Table 7 — JUQUEEN full best/worst list "
                              "(regenerated; matches paper exactly)"))


def test_figure2_juqueen_bandwidth_curves(benchmark, report):
    fig = benchmark(figure2)
    # Shape: best >= worst everywhere; exactly 2x on improvable sizes.
    for mp, bw in fig["worst"].items():
        assert fig["best"][mp] >= bw
    for mp in (4, 6, 8, 12, 16, 24):
        assert fig["best"][mp] == 2 * fig["worst"][mp]
    # 'Spiking' drops: ring-only sizes fall back to 256.
    for mp in (5, 7):
        assert fig["best"][mp] == 256
        assert fig["best"][mp - 1] > 256
    report(render_series(fig, title="Figure 2 — JUQUEEN best/worst "
                                    "normalized bisection bandwidth"))
