"""Benchmark — geometry robustness and faulted-run performance.

Two claims ride on the fault subsystem:

1. **Ranking stability** (degraded-bisection study): the paper's Table
   1/2 geometry ranking — optimal beats default by the bisection ratio —
   survives sampled link failures.  A handful of random failures shaves
   at most ``2k`` links off a multi-hundred-link bisection, so the ×2
   advantage at Mira-16 cannot flip; the study quantifies it and this
   harness asserts 100% stability for k ≤ 8.
2. **Engine overhead**: running the pairing workload under a static
   fault set (one failed link forcing a reroute) stays within the same
   order of magnitude as the healthy run — fault-aware routing only
   pays BFS for pairs whose natural path is broken.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import pytest

from repro.allocation.geometry import PartitionGeometry
from repro.analysis.report import render_table
from repro.experiments.faultstudy import (
    degraded_bisection_study,
    fluid_fault_sweep,
)
from repro.faults import FaultSet, random_link_failures
from repro.machines.catalog import JUQUEEN, MIRA
from repro.simmpi import SendRecv, VirtualMpi

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_perf.json"


def _append_perf_record(timings: dict) -> None:
    """Append one record to the BENCH_perf.json trajectory.

    Same record shape as ``bench_perfbaseline.py`` (``benchmarks/`` is
    not a package, so the helper is duplicated); the per-key regression
    guard in ``check_perf_regression.py`` pairs each metric with its
    own previous occurrence, so harnesses can append independently.
    """
    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "cpu_count": os.cpu_count() or 1,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "timings": timings,
    }
    history: list[dict] = []
    if BENCH_FILE.exists():
        try:
            history = json.loads(BENCH_FILE.read_text())
        except (json.JSONDecodeError, OSError):
            history = []
        if not isinstance(history, list):
            history = []
    history.append(record)
    BENCH_FILE.write_text(json.dumps(history, indent=2) + "\n")


def test_mira_ranking_survives_failures(benchmark, report):
    rows = benchmark.pedantic(
        lambda: degraded_bisection_study(
            MIRA, 16, max_failures=8, trials=20, seed=0
        ),
        rounds=1,
        iterations=1,
    )
    # Healthy baseline equals Table 1: 1024 (4x4x1x1) vs 2048 (2x2x2x2).
    assert rows[0].default_mean_bw == 1024.0
    assert rows[0].optimal_mean_bw == 2048.0
    # The x2 geometry advantage never flips under k <= 8 failures.
    assert all(r.ranking_stable_fraction == 1.0 for r in rows)
    # Each failure removes at most 2 links from a perpendicular cut.
    for r in rows:
        assert r.optimal_min_bw >= 2048 - 2 * r.failures

    report(render_table(
        [
            {
                "failures": r.failures,
                "default_mean": f"{r.default_mean_bw:.1f}",
                "optimal_mean": f"{r.optimal_mean_bw:.1f}",
                "stable": f"{100 * r.ranking_stable_fraction:.0f}%",
            }
            for r in rows
        ],
        ["failures", "default_mean", "optimal_mean", "stable"],
        title="Mira 16 midplanes: surviving bisection under k link "
              "failures (20 draws each)",
    ))


def test_juqueen_ranking_survives_failures(report):
    rows = degraded_bisection_study(
        JUQUEEN, 8, max_failures=6, trials=10, seed=7
    )
    assert all(r.ranking_stable_fraction == 1.0 for r in rows)
    report(render_table(
        [
            {
                "failures": r.failures,
                "default_mean": f"{r.default_mean_bw:.1f}",
                "optimal_mean": f"{r.optimal_mean_bw:.1f}",
                "stable": f"{100 * r.ranking_stable_fraction:.0f}%",
            }
            for r in rows
        ],
        ["failures", "default_mean", "optimal_mean", "stable"],
        title="JUQUEEN 8 midplanes: surviving bisection under k link "
              "failures (10 draws each)",
    ))


def test_faulted_pairing_overhead(benchmark, report):
    """Pairing workload on a 1-midplane partition with one failed link."""
    geo = PartitionGeometry((1, 1, 1, 1))
    torus = geo.bgq_network()
    verts = list(torus.vertices())
    index = {v: i for i, v in enumerate(verts)}

    def program(rank, size):
        yield SendRecv(peer=index[torus.antipode(verts[rank])], gb=0.1342)

    healthy = VirtualMpi(torus, link_bandwidth=2.0).run(program)
    faults = random_link_failures(torus, 1, seed=3)
    world = VirtualMpi(torus, link_bandwidth=2.0, faults=faults)
    faulted = benchmark.pedantic(
        lambda: world.run(program), rounds=1, iterations=1
    )
    # Repeated faulted runs are bit-identical (determinism guarantee).
    assert world.run(program).time == faulted.time
    # One failed link barely dents a 512-node partition's makespan.
    assert faulted.time <= 2.0 * healthy.time

    report(render_table(
        [{
            "scenario": s,
            "time_s": f"{t:.4f}",
        } for s, t in [("healthy", healthy.time), ("1 link down", faulted.time)]],
        ["scenario", "time_s"],
        title="Pairing on 512 nodes: healthy vs one failed link",
    ))


def test_fluid_fault_sweep_throughput(report):
    """Scenario throughput of the flow-level fault sweep, guarded in CI.

    Times the fault-masked batch-routing sweep on a 512-node partition
    and records ``fault_sweep_scenarios_per_s`` in the BENCH_perf.json
    trajectory, where ``check_perf_regression.py`` fails the build if
    the rate halves.  Also asserts the sweep's contract: deterministic
    rows, the healthy ``k = 0`` scenario at full fluid bisection, and
    no spurious degradation (k <= 4 failures cannot sever a min cut of
    9 links on this torus).
    """
    geo = PartitionGeometry((1, 1, 1, 1))
    rows = fluid_fault_sweep(geo, max_failures=2, trials=2, seed=0)  # warm
    t0 = time.perf_counter()
    rows = fluid_fault_sweep(geo, max_failures=4, trials=5, seed=0)
    elapsed = time.perf_counter() - t0
    assert len(rows) == 1 + 4 * 5
    assert rows[0].failures == 0 and rows[0].bandwidth > 0
    assert all(r.degraded is None for r in rows)
    assert all(0 < r.bandwidth <= rows[0].bandwidth for r in rows)
    # Determinism: a rerun of the same grid is bit-identical.
    assert fluid_fault_sweep(geo, max_failures=4, trials=5, seed=0) == rows

    rate = len(rows) / max(elapsed, 1e-9)
    _append_perf_record({"fault_sweep_scenarios_per_s": round(rate, 2)})

    report(render_table(
        [{
            "grid": "512 nodes, k<=4, 21 scenarios",
            "elapsed_s": f"{elapsed:.3f}",
            "scenarios_per_s": f"{rate:.1f}",
            "healthy_bw": f"{rows[0].bandwidth:.1f}",
        }],
        ["grid", "elapsed_s", "scenarios_per_s", "healthy_bw"],
        title="Flow-level fault sweep: scenario throughput "
              "(fault-masked batch routing)",
    ))
