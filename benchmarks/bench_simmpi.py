"""Benchmark — the virtual-time MPI layer agrees with the flow harness.

Runs the paper's Experiment A written as a rank program through
:mod:`repro.simmpi` on the 4-midplane geometry pair and checks exact
agreement with the flow-level harness, plus measures the engine's
event-loop performance at the 2048-rank scale.
"""

from __future__ import annotations

import pytest

from repro.allocation.geometry import PartitionGeometry
from repro.analysis.report import render_table
from repro.experiments.pairing import PairingParameters, run_pairing
from repro.simmpi import SendRecv, VirtualMpi


def _pairing_program(torus, gb):
    verts = list(torus.vertices())
    index = {v: i for i, v in enumerate(verts)}

    def program(rank, size):
        yield SendRecv(peer=index[torus.antipode(verts[rank])], gb=gb)

    return program


@pytest.fixture(scope="module")
def results():
    params = PairingParameters(rounds=2)
    out = {}
    for dims in ((4, 1, 1, 1), (2, 2, 1, 1)):
        geo = PartitionGeometry(dims)
        torus = geo.bgq_network()
        world = VirtualMpi(torus, link_bandwidth=params.link_bandwidth)
        prog = _pairing_program(torus, params.volume_per_pair_gb)
        out[dims] = (
            world.run(prog).time,
            run_pairing(geo, params).time_seconds,
        )
    return out


def test_simmpi_matches_flow_harness(benchmark, results, report):
    params = PairingParameters(rounds=2)
    geo = PartitionGeometry((2, 2, 1, 1))
    torus = geo.bgq_network()
    world = VirtualMpi(torus, link_bandwidth=params.link_bandwidth)
    prog = _pairing_program(torus, params.volume_per_pair_gb)
    benchmark.pedantic(lambda: world.run(prog), rounds=1, iterations=1)

    rows = []
    for dims, (simmpi_t, harness_t) in results.items():
        assert simmpi_t == pytest.approx(harness_t)
        rows.append({
            "geometry": dims,
            "simmpi_s": simmpi_t,
            "flow_harness_s": harness_t,
        })
    # Geometry conclusion carried through the MPI layer.
    times = {d: t[0] for d, t in results.items()}
    assert times[(4, 1, 1, 1)] / times[(2, 2, 1, 1)] == pytest.approx(2.0)

    report(render_table(
        rows,
        ["geometry", "simmpi_s", "flow_harness_s"],
        title="simmpi vs flow-level harness (Experiment A, 2 rounds, "
              "2048 ranks) — exact agreement",
    ))
