"""Benchmark — run-time variability under size-only requests.

Quantifies Section 4.3's warning: with JUQUEEN's free-cuboid policy, a
size-only request can receive geometries whose bisection differs 2×, so
identical jobs show large run-to-run variance; fixing the geometry (or
always serving the best one) removes it.
"""

from __future__ import annotations

import pytest

from repro.allocation.advisor import JobRequest
from repro.allocation.policy import juqueen_policy
from repro.allocation.variability import simulate_job_stream
from repro.analysis.report import render_table

JOB = JobRequest(num_midplanes=8, optimal_runtime=3600.0,
                 contention_fraction=0.6)
NUM_JOBS = 200


@pytest.fixture(scope="module")
def reports():
    policy = juqueen_policy()
    return {
        rule: simulate_job_stream(policy, JOB, NUM_JOBS, rule, seed=7)
        for rule in ("best", "worst", "random", "first-fit")
    }


def test_size_only_request_variability(benchmark, reports, report):
    benchmark(
        simulate_job_stream, juqueen_policy(), JOB, NUM_JOBS, "random", 7
    )
    rows = []
    for rule, rep in reports.items():
        rows.append({
            "selection": rule,
            "mean (s)": rep.mean,
            "stdev (s)": rep.stdev,
            "spread": rep.spread,
            "geometries": rep.distinct_geometries,
        })
    by_rule = {r["selection"]: r for r in rows}

    # Deterministic extremes are perfectly consistent.
    assert by_rule["best"]["spread"] == pytest.approx(1.0)
    assert by_rule["worst"]["spread"] == pytest.approx(1.0)
    # A fully contention-bound share of 0.6 on a 2x bandwidth gap:
    # worst runtime = 0.4 + 0.6 * 2 = 1.6x the best.
    assert by_rule["worst"]["mean (s)"] / by_rule["best"]["mean (s)"] == (
        pytest.approx(1.6)
    )
    # Random selection shows the inconsistency the paper warns about.
    assert by_rule["random"]["spread"] == pytest.approx(1.6)
    assert by_rule["random"]["stdev (s)"] > 0
    assert by_rule["random"]["geometries"] >= 2

    report(render_table(
        rows,
        ["selection", "mean (s)", "stdev (s)", "spread", "geometries"],
        title="Size-only request variability — 200 identical 8-midplane "
              "jobs on JUQUEEN (contention fraction 0.6)",
    ))
