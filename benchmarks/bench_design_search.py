"""Benchmark — automated machine-design search (Section 5 extension).

The paper hand-picks JUQUEEN-48 and JUQUEEN-54; this harness runs the
exhaustive design search over every 4-D machine geometry of at most 56
midplanes and confirms both designs emerge mechanically, then prints the
leaderboard.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import render_table
from repro.experiments.designsearch import design_search
from repro.experiments.machinedesign import (
    compare_machines,
    peak_speedup_nearest_size,
)
from repro.machines.catalog import JUQUEEN, JUQUEEN_48, JUQUEEN_54


def test_design_search_leaderboard(benchmark, report):
    search = benchmark(design_search, 56, JUQUEEN)

    top = search[0]
    assert top.machine.midplane_dims == JUQUEEN_48.midplane_dims
    dominating = [c for c in search if c.dominated_baseline]
    assert JUQUEEN_54.midplane_dims in {
        c.machine.midplane_dims for c in dominating
    }

    # JUQUEEN-54's case is nearest-size: among dominating designs of
    # < 56 midplanes it offers the largest near-size bandwidth jump.
    rows = compare_machines([JUQUEEN, JUQUEEN_54])
    assert peak_speedup_nearest_size(rows, "JUQUEEN", "JUQUEEN-54") >= 2.0

    table = [
        {
            "geometry": c.machine.midplane_dims,
            "midplanes": c.machine.num_midplanes,
            "dominates": c.dominated_baseline,
            "strict wins": c.wins,
            "total BW": c.total_bandwidth,
        }
        for c in search[:10]
    ]
    report(render_table(
        table,
        ["geometry", "midplanes", "dominates", "strict wins", "total BW"],
        title="Design search vs JUQUEEN (top 10 of "
              f"{len(search)} candidate machines; the paper's hand-picked "
              "JUQUEEN-48 ranks first)",
    ))
