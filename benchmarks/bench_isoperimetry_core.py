"""Performance benchmarks for the isoperimetric core.

These are genuine pytest-benchmark measurements (many rounds) of the
hot combinatorial routines: the Theorem 3.1 bound, the exhaustive
cuboid optimizer on production-size tori, Harper/Lindsey closed forms,
and the brute-force oracle on its feasibility boundary.
"""

from __future__ import annotations

import pytest

from repro.isoperimetry.bounds import torus_isoperimetric_bound
from repro.isoperimetry.cuboids import best_cuboid, cuboid_profile
from repro.isoperimetry.exact import ExactSolver
from repro.isoperimetry.harper import harper_min_boundary
from repro.isoperimetry.lindsey import lindsey_min_boundary
from repro.topology.torus import Torus

# Mira's full node-level network.
MIRA_NODE_DIMS = (16, 16, 12, 8, 2)


def test_bench_theorem31_bound(benchmark):
    result = benchmark(
        torus_isoperimetric_bound, MIRA_NODE_DIMS, 24576
    )
    assert result.value > 0


def test_bench_best_cuboid_mira_scale(benchmark):
    shape, per = benchmark(best_cuboid, MIRA_NODE_DIMS, 24576)
    assert per == 6144  # machine bisection


def test_bench_cuboid_profile_midplane(benchmark):
    prof = benchmark(cuboid_profile, (4, 4, 4, 4, 2))
    assert prof[256] == 256


def test_bench_harper_q20(benchmark):
    value = benchmark(harper_min_boundary, 20, 12345)
    assert value > 0


def test_bench_lindsey_dragonfly_group_scale(benchmark):
    value = benchmark(lindsey_min_boundary, (16, 6, 4), 100)
    assert value > 0


def test_bench_exact_solver_setup_and_bisection(benchmark):
    torus = Torus((4, 3, 2))

    def run():
        return ExactSolver(torus).min_perimeter(12)[0]

    assert benchmark(run) == 12  # the 4x3x2 torus's bisection


def test_bench_bandwidth_of_every_mira_size(benchmark):
    from repro.allocation.optimizer import compare_policy_to_optimal
    from repro.allocation.policy import mira_policy

    rows = benchmark(lambda: compare_policy_to_optimal(mira_policy()))
    assert len(rows) == 10
