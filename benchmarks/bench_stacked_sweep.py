"""Benchmark — stacked multi-scenario sweep throughput.

The stacked rewrite's headline claim: batching a fault sweep's
scenarios into one :class:`repro.netsim.stacked.StackedPathMatrix` and
water-filling them in a single numpy pass beats solving them one at a
time.  This harness times a 201-scenario ``fluid_fault_sweep`` grid
three ways on the same tasks:

* **stacked** — the block-dispatched driver path (the default);
* **vector per-scenario** — one scenario at a time through the same
  vectorized router and scalar water-fill (block dispatch bypassed);
* **oracle per-scenario** — ``REPRO_VECTOR=0``, the scalar reference
  path the differential suite pins the stacked results to.

It records ``sweep_throughput_scenarios_per_s`` (stacked) and
``sweep_scalar_scenarios_per_s`` (oracle) in the BENCH_perf.json
trajectory — ``check_perf_regression.py`` guards both as rates — and
asserts the acceptance floor: stacked ≥ 5× the per-scenario oracle,
with bit-identical rows from all three paths.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

from repro.allocation.geometry import PartitionGeometry
from repro.analysis.report import render_table
from repro.experiments.faultstudy import (
    LINK_BANDWIDTH_GB_PER_S,
    _fluid_scenario,
    fluid_fault_sweep,
)

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_perf.json"

#: 1 healthy + 2 * 100 fault scenarios = 201 tasks (the acceptance
#: criterion asks for a >= 200-scenario sweep).
GEOMETRY = PartitionGeometry((1, 1, 1, 1))
MAX_FAILURES = 2
TRIALS = 100
SEED = 0


def _append_perf_record(timings: dict) -> None:
    """Append one record to the BENCH_perf.json trajectory.

    Same record shape as ``bench_perfbaseline.py`` (``benchmarks/`` is
    not a package, so the helper is duplicated); the per-key regression
    guard pairs each metric with its own previous occurrence.
    """
    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "cpu_count": os.cpu_count() or 1,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "timings": timings,
    }
    history: list[dict] = []
    if BENCH_FILE.exists():
        try:
            history = json.loads(BENCH_FILE.read_text())
        except (json.JSONDecodeError, OSError):
            history = []
        if not isinstance(history, list):
            history = []
    history.append(record)
    BENCH_FILE.write_text(json.dumps(history, indent=2) + "\n")


def _tasks() -> list[tuple]:
    counts = [1 if k == 0 else TRIALS for k in range(MAX_FAILURES + 1)]
    return [
        (
            GEOMETRY.dims,
            k,
            t,
            SEED + 1000 * k + t,
            LINK_BANDWIDTH_GB_PER_S,
            "parity",
        )
        for k, n_trials in enumerate(counts)
        for t in range(n_trials)
    ]


def test_stacked_sweep_throughput(report):
    """Stacked block dispatch vs the per-scenario paths, guarded in CI."""
    tasks = _tasks()
    assert len(tasks) >= 200

    # Warm caches (routing tables, memoized layouts) on every path so
    # the timed sections compare steady-state throughput.
    _ = [_fluid_scenario(t) for t in tasks[:3]]
    _ = fluid_fault_sweep(
        GEOMETRY, max_failures=1, trials=2, seed=SEED, jobs=1
    )

    t0 = time.perf_counter()
    stacked_rows = fluid_fault_sweep(
        GEOMETRY,
        max_failures=MAX_FAILURES,
        trials=TRIALS,
        seed=SEED,
        jobs=1,
    )
    stacked_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    vector_rows = [_fluid_scenario(t) for t in tasks]
    vector_s = time.perf_counter() - t0

    assert os.environ.get("REPRO_VECTOR") is None
    os.environ["REPRO_VECTOR"] = "0"
    try:
        _ = [_fluid_scenario(t) for t in tasks[:3]]  # warm oracle path
        t0 = time.perf_counter()
        oracle_rows = [_fluid_scenario(t) for t in tasks]
        oracle_s = time.perf_counter() - t0
    finally:
        del os.environ["REPRO_VECTOR"]

    # The speedup only counts if the answers are bit-identical.
    assert stacked_rows == vector_rows
    assert stacked_rows == oracle_rows
    assert len(stacked_rows) == len(tasks)

    n = len(tasks)
    stacked_rate = n / max(stacked_s, 1e-9)
    vector_rate = n / max(vector_s, 1e-9)
    oracle_rate = n / max(oracle_s, 1e-9)
    # Acceptance floor: the stacked path is >= 5x the per-scenario
    # oracle on a >= 200-scenario sweep (measured ~11x on 1 CPU).
    assert stacked_rate >= 5.0 * oracle_rate, (
        f"stacked sweep at {stacked_rate:.1f}/s is below 5x the "
        f"per-scenario oracle at {oracle_rate:.1f}/s"
    )

    _append_perf_record({
        "sweep_throughput_scenarios_per_s": round(stacked_rate, 2),
        "sweep_scalar_scenarios_per_s": round(oracle_rate, 2),
    })

    report(render_table(
        [
            {
                "path": name,
                "elapsed_s": f"{secs:.3f}",
                "scenarios_per_s": f"{rate:.1f}",
                "vs_oracle": f"{rate / oracle_rate:.1f}x",
            }
            for name, secs, rate in [
                ("stacked block dispatch", stacked_s, stacked_rate),
                ("vector per-scenario", vector_s, vector_rate),
                ("oracle per-scenario (REPRO_VECTOR=0)", oracle_s,
                 oracle_rate),
            ]
        ],
        ["path", "elapsed_s", "scenarios_per_s", "vs_oracle"],
        title=f"Fluid fault sweep, {n} scenarios on 512 nodes: stacked "
              f"vs per-scenario execution",
    ))
