"""Benchmark regenerating Table 3 and Figure 5 — CAPS matmul on Mira.

Drives the CAPS communication schedule through the simulator with the
paper's exact parameters (Table 3) on current vs proposed geometries.
Shape assertions:

* proposed geometry strictly reduces communication time at every size;
* the improvement ratios land in a band around the paper's measured
  ×1.37–×1.52 (exact magnitude depends on the rank-to-node mapping,
  which the paper customized for its multi-core runs; see
  EXPERIMENTS.md);
* computation time is geometry-independent and matches the paper's
  measured values within the flop-rate calibration;
* total wall-clock improves by a smaller factor than communication
  (the paper's ×1.08–×1.22), since computation is common.
"""

from __future__ import annotations

import pytest

from repro.allocation.geometry import PartitionGeometry
from repro.analysis.paperdata import (
    COMPUTATION_TIMES_SECONDS,
    FIGURE_5_COMM_TIMES,
    TABLE_3_MATMUL_PARAMS,
)
from repro.analysis.report import render_series, render_table
from repro.analysis.tables import table3
from repro.experiments.matmul import run_caps_on_geometry

GEOMETRIES = {
    4: ((4, 1, 1, 1), (2, 2, 1, 1)),
    8: ((4, 2, 1, 1), (2, 2, 2, 1)),
    16: ((4, 4, 1, 1), (2, 2, 2, 2)),
    24: ((4, 3, 2, 1), (3, 2, 2, 2)),
}


@pytest.fixture(scope="module")
def results():
    out = {}
    for row in TABLE_3_MATMUL_PARAMS:
        mp = row["midplanes"]
        cur_dims, prop_dims = GEOMETRIES[mp]
        out[mp] = tuple(
            run_caps_on_geometry(
                PartitionGeometry(dims),
                num_ranks=row["ranks"],
                matrix_dim=row["matrix_dim"],
                max_cores=row["max_cores"],
            )
            for dims in (cur_dims, prop_dims)
        )
    return out


def test_table3_parameters(benchmark, report):
    rows = benchmark(table3)
    assert [r["midplanes"] for r in rows] == [4, 8, 16, 24]
    report(render_table(
        rows,
        ["nodes", "midplanes", "ranks", "max_cores", "avg_cores",
         "matrix_dim", "computation_time_model"],
        title="Table 3 — matmul experiment parameters "
              "(+ modelled computation seconds)",
    ))


def test_figure5_caps_communication(benchmark, results, report):
    benchmark.pedantic(
        lambda: run_caps_on_geometry(
            PartitionGeometry((4, 1, 1, 1)),
            num_ranks=31213, matrix_dim=32928, max_cores=16,
        ),
        rounds=1, iterations=1,
    )
    cur = {mp: r[0].communication_time for mp, r in results.items()}
    prop = {mp: r[1].communication_time for mp, r in results.items()}

    for mp in cur:
        # Proposed strictly wins at every size.
        assert prop[mp] < cur[mp], mp
        # Ratio in a band containing the paper's 1.37..1.52 and our
        # mapping sensitivity (see EXPERIMENTS.md).
        ratio = cur[mp] / prop[mp]
        assert 1.15 <= ratio <= 2.1, (mp, ratio)

    # Communication decreases with midplane count on proposed geometries
    # up to 16 midplanes (strong scaling of the same problem).
    assert prop[4] > prop[8] > prop[16]

    # Computation: geometry-independent, close to the paper's values.
    for mp, (rc, rp) in results.items():
        assert rc.computation_time == rp.computation_time
        assert rc.computation_time == pytest.approx(
            COMPUTATION_TIMES_SECONDS[mp], rel=0.5
        ), mp

    # Wall-clock improvement smaller than communication improvement.
    for mp, (rc, rp) in results.items():
        comm_ratio = rc.communication_time / rp.communication_time
        wall_ratio = rc.total_time / rp.total_time
        assert 1.0 < wall_ratio < comm_ratio, mp

    paper_cur = {mp: v["current"] for mp, v in FIGURE_5_COMM_TIMES.items()}
    paper_prop = {mp: v["proposed"] for mp, v in FIGURE_5_COMM_TIMES.items()}
    report(render_series(
        {
            "sim current": cur,
            "sim proposed": prop,
            "paper current": paper_cur,
            "paper proposed": paper_prop,
        },
        title="Figure 5 — CAPS communication seconds "
              "(simulated vs paper-measured)",
        y_format="{:.4f}",
    ))
