"""Benchmarks regenerating Table 1, Table 6 and Figure 1 (Mira).

The quantities are combinatorial, so beyond timing the generation we
assert cell-for-cell equality with the paper's published values.
"""

from __future__ import annotations

from repro.analysis import paperdata, tables
from repro.analysis.figures import figure1
from repro.analysis.report import render_series, render_table

TABLE_COLS = [
    "nodes", "midplanes", "current", "current_bw", "proposed",
    "proposed_bw",
]


def test_table1_mira_improved(benchmark, report):
    rows = benchmark(tables.table1)
    assert rows == paperdata.TABLE_1_MIRA_IMPROVED
    report(render_table(rows, TABLE_COLS,
                        title="Table 1 — Mira improved partitions "
                              "(regenerated; matches paper exactly)"))


def test_table6_mira_full(benchmark, report):
    rows = benchmark(tables.table6)
    assert rows == paperdata.TABLE_6_MIRA_FULL
    report(render_table(rows, TABLE_COLS,
                        title="Table 6 — Mira full partition list "
                              "(regenerated; matches paper exactly)"))


def test_figure1_mira_bandwidth_curves(benchmark, report):
    fig = benchmark(figure1)
    # Shape: proposed dominates everywhere, strictly on 4/8/16/24.
    for mp, bw in fig["current"].items():
        assert fig["proposed"][mp] >= bw
    for mp in (4, 8, 16):
        assert fig["proposed"][mp] == 2 * fig["current"][mp]
    assert fig["proposed"][24] * 3 == fig["current"][24] * 4
    # Endpoints of the plotted range.
    assert fig["current"][1] == 256
    assert fig["current"][96] == 6144
    report(render_series(fig, title="Figure 1 — Mira normalized bisection "
                                    "bandwidth (current vs proposed)"))
