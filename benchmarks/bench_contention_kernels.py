"""Benchmark — kernel contention sensitivity (the paper's future work).

Section 5 predicts that kernels with higher contention lower bounds
(direct N-body, classical matmul) benefit more from improved partition
bisection than fast matrix multiplication.  This harness computes the
Ballard-et-al-style bounds for all three kernels on the 4-midplane
current/proposed pair and checks the predicted ordering.
"""

from __future__ import annotations

import pytest

from repro.allocation.geometry import PartitionGeometry
from repro.analysis.contention import (
    caps_contention,
    geometry_sensitivity,
    nbody_contention,
    summa_contention,
)
from repro.analysis.report import render_table

CUR = PartitionGeometry((4, 1, 1, 1))
PROP = PartitionGeometry((2, 2, 1, 1))
RANKS = 2401
N = 9408
BODIES = N * N


@pytest.fixture(scope="module")
def bounds():
    return {
        "caps": (caps_contention(CUR, RANKS, N),
                 caps_contention(PROP, RANKS, N)),
        "summa": (summa_contention(CUR, RANKS, N),
                  summa_contention(PROP, RANKS, N)),
        "nbody": (nbody_contention(CUR, RANKS, BODIES),
                  nbody_contention(PROP, RANKS, BODIES)),
    }


def test_contention_bound_sensitivity(benchmark, bounds, report):
    benchmark(caps_contention, CUR, RANKS, N)

    rows = []
    for kernel, (worse, better) in bounds.items():
        rows.append({
            "kernel": kernel,
            "words_per_rank": worse.words_per_rank,
            "bound_worse_s": worse.bound_seconds,
            "bound_better_s": better.bound_seconds,
            "sensitivity": geometry_sensitivity(worse, better),
        })

    # Every kernel's bound scales with the bisection ratio (x2 here).
    for row in rows:
        assert row["sensitivity"] == pytest.approx(2.0)

    # Absolute contention floors: N-body (O(1) compute/word) > classical
    # matmul > CAPS at matched scale — the paper's predicted ordering of
    # who has the most to gain.
    floors = {r["kernel"]: r["bound_worse_s"] for r in rows}
    assert floors["nbody"] > floors["summa"] > floors["caps"]

    report(render_table(
        rows,
        ["kernel", "words_per_rank", "bound_worse_s", "bound_better_s",
         "sensitivity"],
        title="Future-work ablation — contention lower bounds by kernel "
              "(4-midplane geometries)",
    ))
