"""Performance benchmarks for the network simulator core.

Measures the substrate operations the experiments are built from:
network construction, routing, max-min fairness and the fluid engine,
at the scale of a 4-midplane Blue Gene/Q partition (2048 nodes).
"""

from __future__ import annotations

import pytest

from repro.netsim.fairness import max_min_fair_rates
from repro.netsim.fluid import simulate_flows
from repro.netsim.network import LinkNetwork
from repro.netsim.routing import dimension_ordered_route
from repro.netsim.traffic import bisection_pairing
from repro.topology.torus import Torus

PARTITION_DIMS = (16, 4, 4, 4, 2)  # 4 midplanes, current geometry


@pytest.fixture(scope="module")
def torus():
    return Torus(PARTITION_DIMS)


@pytest.fixture(scope="module")
def network(torus):
    return LinkNetwork(torus, link_bandwidth=2.0)


@pytest.fixture(scope="module")
def pairing_paths(torus, network):
    return [
        network.path_to_links(dimension_ordered_route(torus, s, d))
        for s, d in bisection_pairing(torus)
    ]


def test_bench_network_construction(benchmark, torus):
    net = benchmark(LinkNetwork, torus, 2.0)
    assert net.num_links == 2 * torus.num_edges


def test_bench_routing_2048_antipodal_pairs(benchmark, torus, network):
    pairs = bisection_pairing(torus)

    def run():
        return [
            network.path_to_links(dimension_ordered_route(torus, s, d))
            for s, d in pairs
        ]

    paths = benchmark.pedantic(run, rounds=2, iterations=1)
    assert len(paths) == 2048


def test_bench_max_min_fairness_2048_flows(benchmark, network, pairing_paths):
    rates = benchmark(
        max_min_fair_rates, pairing_paths, network.capacities
    )
    assert rates.min() == pytest.approx(0.5)


def test_bench_fluid_simulation_2048_flows(benchmark, network, pairing_paths):
    makespan = benchmark.pedantic(
        lambda: simulate_flows(
            network, pairing_paths, [1.0] * len(pairing_paths)
        ),
        rounds=2, iterations=1,
    )
    assert makespan == pytest.approx(2.0)
