#!/usr/bin/env python
"""CI guard: fail when a tracked timing regresses against the trajectory.

Reads the ``BENCH_perf.json`` trajectory that
``benchmarks/bench_perfbaseline.py`` appends to, takes the newest record
and the most recent *comparable* earlier record (same CPU count and
platform — cross-runner comparisons are noise), and fails when any
``*_s`` timing regressed by more than the allowed factor.

Derived metrics (``*_speedup``, ``*_pct``, ``*_rate``) are skipped:
they have their own in-bench assertions.  Timings below an absolute
floor are skipped too — a 2 ms blip on a 1 ms measurement is jitter,
not a regression.

Usage::

    python benchmarks/check_perf_regression.py [path/to/BENCH_perf.json]

Exit status 0 when no comparable baseline exists (first run on a new
runner), or when every timing is within bounds; 1 on regression.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: A timing must grow by more than this factor to count as a regression.
MAX_REGRESSION_FACTOR = 2.0

#: Timings shorter than this (seconds) are jitter-dominated; skip them.
ABSOLUTE_FLOOR_S = 0.005

DEFAULT_BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_perf.json"


def load_history(path: Path) -> list[dict]:
    try:
        history = json.loads(path.read_text())
    except FileNotFoundError:
        return []
    except (json.JSONDecodeError, OSError) as exc:
        print(f"perf guard: cannot read {path}: {exc}")
        return []
    return history if isinstance(history, list) else []


def comparable(a: dict, b: dict) -> bool:
    """Records are comparable when taken on equivalent runners."""
    return (
        a.get("cpu_count") == b.get("cpu_count")
        and a.get("platform") == b.get("platform")
    )


def find_baseline(history: list[dict]) -> tuple[dict | None, dict | None]:
    """(current, baseline): newest record and its comparable predecessor."""
    if not history:
        return None, None
    current = history[-1]
    for record in reversed(history[:-1]):
        if comparable(current, record):
            return current, record
    return current, None


def check(history: list[dict]) -> list[str]:
    """Return a list of failure messages (empty = pass)."""
    current, baseline = find_baseline(history)
    if current is None:
        print("perf guard: no bench records yet; nothing to check")
        return []
    if baseline is None:
        print(
            "perf guard: no comparable baseline "
            f"(cpu_count={current.get('cpu_count')}, "
            f"platform={current.get('platform')!r}); first run passes"
        )
        return []

    failures: list[str] = []
    checked = 0
    for key, now in sorted(current.get("timings", {}).items()):
        if not key.endswith("_s"):
            continue
        before = baseline.get("timings", {}).get(key)
        if before is None or not isinstance(before, (int, float)):
            continue
        if not isinstance(now, (int, float)):
            continue
        if before < ABSOLUTE_FLOOR_S and now < ABSOLUTE_FLOOR_S:
            continue
        checked += 1
        limit = max(before * MAX_REGRESSION_FACTOR, ABSOLUTE_FLOOR_S)
        status = "ok"
        if now > limit:
            status = "REGRESSED"
            failures.append(
                f"{key}: {now:.4f}s vs baseline {before:.4f}s "
                f"(> x{MAX_REGRESSION_FACTOR} limit {limit:.4f}s)"
            )
        print(f"perf guard: {key}: {before:.4f}s -> {now:.4f}s [{status}]")
    print(
        f"perf guard: {checked} timing(s) checked against baseline "
        f"{baseline.get('timestamp', '?')}"
    )
    return failures


def main(argv: list[str]) -> int:
    path = Path(argv[1]) if len(argv) > 1 else DEFAULT_BENCH_FILE
    failures = check(load_history(path))
    if failures:
        print(f"perf guard: {len(failures)} regression(s):")
        for message in failures:
            print(f"  {message}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
