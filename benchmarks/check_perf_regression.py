#!/usr/bin/env python
"""CI guard: fail when a tracked metric regresses against the trajectory.

Reads the ``BENCH_perf.json`` trajectory that the benchmark harnesses
(``benchmarks/bench_perfbaseline.py``, ``benchmarks/bench_faults.py``)
append to.  Different harnesses append different records, so the guard
works **per key**: for every metric name ever recorded it takes the
newest record carrying that key and the most recent *comparable*
earlier record carrying it (same CPU count and platform — cross-runner
comparisons are noise), and fails when the metric regressed by more
than the allowed factor.

Three metric families are guarded, told apart by suffix:

``*_s``
    Wall-clock timings — lower is better; a regression is growth by
    more than ``MAX_REGRESSION_FACTOR``.  Timings below an absolute
    floor are skipped (a 2 ms blip on a 1 ms measurement is jitter).
``*_per_s``
    Throughput rates — higher is better; a regression is a drop below
    ``baseline / MAX_REGRESSION_FACTOR``.
``*_speedup``
    Dimensionless higher-is-better ratios (``pairing_vector_speedup``,
    ``sweep_shm_speedup``): guarded like rates — a drop below
    ``baseline / MAX_REGRESSION_FACTOR`` fails.

Anything else (``*_pct``, ``*_rate``, metadata) is skipped: other
derived metrics have their own in-bench assertions.

Usage::

    python benchmarks/check_perf_regression.py [path/to/BENCH_perf.json]

Exit status 0 when no comparable baseline exists for any key (first
run on a new runner), or when every metric is within bounds; 1 on
regression.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: A timing must grow (a rate must shrink) by more than this factor to
#: count as a regression.
MAX_REGRESSION_FACTOR = 2.0

#: Timings shorter than this (seconds) are jitter-dominated; skip them.
ABSOLUTE_FLOOR_S = 0.005

DEFAULT_BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_perf.json"


def load_history(path: Path) -> list[dict]:
    try:
        history = json.loads(path.read_text())
    except FileNotFoundError:
        return []
    except (json.JSONDecodeError, OSError) as exc:
        print(f"perf guard: cannot read {path}: {exc}")
        return []
    return history if isinstance(history, list) else []


def comparable(a: dict, b: dict) -> bool:
    """Records are comparable when taken on equivalent runners."""
    return (
        a.get("cpu_count") == b.get("cpu_count")
        and a.get("platform") == b.get("platform")
    )


def classify(key: str) -> str | None:
    """``"rate"`` for ``*_per_s``, ``"timing"`` for ``*_s``,
    ``"speedup"`` for ``*_speedup``, else None."""
    if key.endswith("_per_s"):
        return "rate"
    if key.endswith("_s"):
        return "timing"
    if key.endswith("_speedup"):
        return "speedup"
    return None


def tracked_keys(history: list[dict]) -> list[str]:
    """Every guarded metric name appearing anywhere in the trajectory."""
    keys: set[str] = set()
    for rec in history:
        timings = rec.get("timings")
        if isinstance(timings, dict):
            keys.update(k for k in timings if classify(k) is not None)
    return sorted(keys)


def latest_pair(
    history: list[dict], key: str
) -> tuple[tuple[dict, float] | None, tuple[dict, float] | None]:
    """(current, baseline) for one key: each a ``(record, value)`` pair.

    *current* is the newest record carrying a numeric *key*; *baseline*
    is the next older comparable record carrying it.  Either may be
    ``None`` when absent.
    """
    current: tuple[dict, float] | None = None
    for rec in reversed(history):
        timings = rec.get("timings")
        if not isinstance(timings, dict):
            continue
        val = timings.get(key)
        if isinstance(val, bool) or not isinstance(val, (int, float)):
            continue
        if current is None:
            current = (rec, float(val))
        elif comparable(current[0], rec):
            return current, (rec, float(val))
    return current, None


def check(history: list[dict]) -> list[str]:
    """Return a list of failure messages (empty = pass)."""
    if not history:
        print("perf guard: no bench records yet; nothing to check")
        return []

    failures: list[str] = []
    checked = 0
    for key in tracked_keys(history):
        kind = classify(key)
        current, baseline = latest_pair(history, key)
        if current is None:
            continue
        if baseline is None:
            print(f"perf guard: {key}: no comparable baseline; skipped")
            continue
        now = current[1]
        before = baseline[1]
        if kind == "timing":
            if before < ABSOLUTE_FLOOR_S and now < ABSOLUTE_FLOOR_S:
                continue
            checked += 1
            limit = max(before * MAX_REGRESSION_FACTOR, ABSOLUTE_FLOOR_S)
            regressed = now > limit
            unit, bound = "s", f"> x{MAX_REGRESSION_FACTOR} limit {limit:.4f}s"
            arrow = f"{before:.4f}s -> {now:.4f}s"
        else:  # rate or speedup: higher is better
            if before <= 0:
                continue
            checked += 1
            limit = before / MAX_REGRESSION_FACTOR
            regressed = now < limit
            unit = "/s" if kind == "rate" else "x"
            bound = (
                f"< baseline/{MAX_REGRESSION_FACTOR} limit "
                f"{limit:.2f}{unit}"
            )
            arrow = f"{before:.2f}{unit} -> {now:.2f}{unit}"
        status = "ok"
        if regressed:
            status = "REGRESSED"
            failures.append(
                f"{key}: {now:.4f}{unit} vs baseline {before:.4f}{unit} "
                f"({bound})"
            )
        print(f"perf guard: {key}: {arrow} [{status}]")
    print(f"perf guard: {checked} metric(s) checked against baselines")
    return failures


def main(argv: list[str]) -> int:
    path = Path(argv[1]) if len(argv) > 1 else DEFAULT_BENCH_FILE
    failures = check(load_history(path))
    if failures:
        print(f"perf guard: {len(failures)} regression(s):")
        for message in failures:
            print(f"  {message}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
