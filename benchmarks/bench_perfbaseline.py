"""Performance baseline — sweep executor and hot-path caches.

This harness is the repository's perf anchor: it times the serial and
parallel (``jobs=4``) evaluation of the design-search and fault-study
grids, and the cold/warm behaviour of the solver hot paths (geometry
enumeration memo, cuboid-bound memo, simmpi route cache).  Every run
appends one record to ``BENCH_perf.json`` at the repository root, so
successive PRs accumulate a perf trajectory to regress against.

Assertions:

* parallel results are **bit-identical** to serial (always);
* on multi-core runners the parallel sweep is measurably faster than
  serial (skipped on single-core boxes, where a process pool cannot
  beat the loop);
* warm cache passes are at least as fast as cold passes by a large
  factor (the memos actually memoize).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_perfbaseline.py -s
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import pytest

from repro.analysis.report import render_table
from repro.caching import cache_stats, clear_all_caches
from repro.experiments.designsearch import design_search
from repro.experiments.faultstudy import degraded_bisection_study
from repro.machines.catalog import JUQUEEN, MIRA
from repro.simmpi import SendRecv, VirtualMpi
from repro.topology import Torus

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_perf.json"

#: Worker count the acceptance grid is timed at.
JOBS = 4

_CORES = os.cpu_count() or 1


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def _append_record(record: dict) -> None:
    history: list[dict] = []
    if BENCH_FILE.exists():
        try:
            history = json.loads(BENCH_FILE.read_text())
        except (json.JSONDecodeError, OSError):
            history = []
        if not isinstance(history, list):
            history = []
    history.append(record)
    BENCH_FILE.write_text(json.dumps(history, indent=2) + "\n")


@pytest.fixture(scope="module")
def perf_record():
    """Collect this run's timings; flush to BENCH_perf.json at the end."""
    record: dict = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "cpu_count": _CORES,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "jobs": JOBS,
        "timings": {},
    }
    yield record
    _append_record(record)


def test_sweep_grids_parallel_identical_and_timed(perf_record, report):
    """Serial vs jobs=4 on the designsearch + faultstudy grids."""
    def designsearch_grid(jobs):
        return design_search(32, JUQUEEN, jobs=jobs)

    def faultstudy_grid(jobs):
        return degraded_bisection_study(
            MIRA, 16, max_failures=6, trials=12, seed=0, jobs=jobs
        )

    timings = perf_record["timings"]
    rows = []
    for name, grid in (
        ("designsearch", designsearch_grid),
        ("faultstudy", faultstudy_grid),
    ):
        clear_all_caches()
        serial, t_serial = _timed(lambda: grid(1))
        clear_all_caches()
        parallel, t_parallel = _timed(lambda: grid(JOBS))

        if name == "designsearch":
            # DesignCandidate carries a machine object without __eq__;
            # compare the value payload.
            def key(cands):
                return [
                    (
                        c.machine.midplane_dims,
                        c.bandwidths,
                        c.dominated_baseline,
                        c.wins,
                    )
                    for c in cands
                ]

            assert key(parallel) == key(serial)
        else:
            assert parallel == serial  # frozen dataclasses: bit-identical

        timings[f"{name}_serial_s"] = round(t_serial, 4)
        timings[f"{name}_parallel_s"] = round(t_parallel, 4)
        rows.append(
            {
                "grid": name,
                "serial_s": f"{t_serial:.3f}",
                f"jobs={JOBS}_s": f"{t_parallel:.3f}",
                "speedup": f"x{t_serial / max(t_parallel, 1e-9):.2f}",
                "identical": "yes",
            }
        )

    report(render_table(
        rows,
        ["grid", "serial_s", f"jobs={JOBS}_s", "speedup", "identical"],
        title=f"Sweep executor: serial vs jobs={JOBS} "
        f"({_CORES} core(s) available)",
    ))

    if _CORES >= 2:
        total_serial = (
            timings["designsearch_serial_s"]
            + timings["faultstudy_serial_s"]
        )
        total_parallel = (
            timings["designsearch_parallel_s"]
            + timings["faultstudy_parallel_s"]
        )
        assert total_parallel < total_serial, (
            f"jobs={JOBS} ({total_parallel:.3f}s) not faster than serial "
            f"({total_serial:.3f}s) on a {_CORES}-core runner"
        )


def test_geometry_memo_hot_path(perf_record, report):
    """Cold vs warm design-search scoring (geometry/bisection memos)."""
    clear_all_caches()
    _, t_cold = _timed(lambda: design_search(32, JUQUEEN, jobs=1))
    _, t_warm = _timed(lambda: design_search(32, JUQUEEN, jobs=1))
    stats = cache_stats()
    # The warm pass resolves at the topmost memo (_geometry_extremes)
    # without re-reaching the enumeration memo below it.
    extremes = stats["repro.allocation.optimizer._geometry_extremes"]

    perf_record["timings"]["designsearch_cold_s"] = round(t_cold, 4)
    perf_record["timings"]["designsearch_warm_s"] = round(t_warm, 4)
    perf_record["timings"]["extremes_memo_hit_rate"] = round(
        extremes.hit_rate, 4
    )

    report(render_table(
        [{
            "path": "design_search(32, JUQUEEN)",
            "cold_s": f"{t_cold:.3f}",
            "warm_s": f"{t_warm:.3f}",
            "speedup": f"x{t_cold / max(t_warm, 1e-9):.1f}",
            "memo_hits": extremes.hits,
            "memo_misses": extremes.misses,
        }],
        ["path", "cold_s", "warm_s", "speedup", "memo_hits",
         "memo_misses"],
        title="Hot-path memo: cold vs warm geometry scoring",
    ))

    # The warm pass must actually hit the memos.
    assert extremes.hits > 0
    assert t_warm <= t_cold


def test_route_cache_reuse_hot_path(perf_record, report):
    """Second simmpi run on the same engine reuses prebuilt routes."""
    torus = Torus((8, 8))

    def program(rank, size):
        yield SendRecv(peer=(rank + size // 2) % size, gb=0.25)

    world = VirtualMpi(torus, link_bandwidth=2.0)
    first, t_first = _timed(lambda: world.run(program))
    second, t_second = _timed(lambda: world.run(program))
    assert first == second

    perf_record["timings"]["simmpi_first_run_s"] = round(t_first, 4)
    perf_record["timings"]["simmpi_cached_run_s"] = round(t_second, 4)

    report(render_table(
        [{
            "workload": "8x8 antipodal SendRecv",
            "first_s": f"{t_first:.3f}",
            "cached_s": f"{t_second:.3f}",
            "speedup": f"x{t_first / max(t_second, 1e-9):.1f}",
        }],
        ["workload", "first_s", "cached_s", "speedup"],
        title="simmpi route cache: first vs subsequent run",
    ))
    # Routing is a significant share of the first run; the cached run
    # must not be slower.
    assert t_second <= t_first * 1.5


def test_trace_overhead_on_pairing_hot_path(perf_record, report):
    """Enabled-tracing overhead on the pairing sweep, vs untraced.

    The observability contract is that disabled-mode instrumentation is
    a single attribute check (untraced timings here *include* those
    checks — they are the production hot path), and that even enabled
    collection stays cheap and bit-identical.
    """
    from repro import observability
    from repro.allocation.geometry import PartitionGeometry
    from repro.experiments.pairing import (
        PairingParameters,
        run_pairing_sweep,
    )

    geometries = [
        PartitionGeometry(dims)
        for dims in [(4, 2, 1, 1), (2, 2, 2, 1), (3, 2, 1, 1),
                     (4, 1, 1, 1), (2, 2, 1, 1), (8, 1, 1, 1)]
    ]
    params = PairingParameters(rounds=4)

    def sweep():
        return run_pairing_sweep(geometries, params, jobs=1)

    was_enabled = observability.enabled()
    try:
        observability.disable()
        sweep()  # warm the memos so both passes run the same code
        untraced, t_untraced = _timed(sweep)

        observability.enable()
        observability.reset()
        traced, t_traced = _timed(sweep)
        counters = dict(observability.OBS.counters)
        span_totals = dict(observability.OBS.span_totals)
    finally:
        observability.OBS.enabled = was_enabled
        observability.reset()

    assert traced == untraced  # collection never changes results
    # The trace must be non-trivial: the sweep actually got observed.
    # The stacked executor evaluates the whole grid as one batched
    # sweep, so the span fires at sweep granularity (the per-run span
    # belongs to the scalar path).
    assert counters.get("pairing.runs") == len(geometries)
    assert span_totals["experiment.pairing.sweep"][0] == 1

    overhead_pct = 100.0 * (t_traced - t_untraced) / max(t_untraced, 1e-9)
    timings = perf_record["timings"]
    timings["pairing_untraced_s"] = round(t_untraced, 4)
    timings["pairing_traced_s"] = round(t_traced, 4)
    timings["trace_overhead_pct"] = round(overhead_pct, 2)

    report(render_table(
        [{
            "path": f"pairing sweep x{len(geometries)} (serial)",
            "untraced_s": f"{t_untraced:.3f}",
            "traced_s": f"{t_traced:.3f}",
            "overhead": f"{overhead_pct:+.1f}%",
            "identical": "yes",
        }],
        ["path", "untraced_s", "traced_s", "overhead", "identical"],
        title="Observability: enabled-tracing overhead on the pairing "
        "hot path",
    ))

    # Generous bound — this guards against accidentally expensive
    # instrumentation (e.g. formatting in the hot loop), not jitter.
    assert t_traced <= t_untraced * 1.5 + 0.05, (
        f"tracing overhead {overhead_pct:.1f}% exceeds the 50% guard"
    )


def test_batch_router_speedup_on_pairing(perf_record, report):
    """Scalar (``REPRO_VECTOR=0``) vs batch-routed pairing sweep.

    The CSR batch router plus the PathMatrix-native solvers must beat
    the per-pair scalar path by at least 5x on the Figure 3/4 geometry
    grid — with bit-identical PairingResults (exact float equality).
    """
    from repro.allocation.geometry import PartitionGeometry
    from repro.experiments.pairing import (
        PairingParameters,
        run_pairing_sweep,
    )

    geometries = [
        PartitionGeometry(dims)
        for dims in [(4, 2, 1, 1), (2, 2, 2, 1), (3, 2, 1, 1),
                     (4, 1, 1, 1), (2, 2, 1, 1), (8, 1, 1, 1)]
    ]
    params = PairingParameters(rounds=4)

    def sweep():
        return run_pairing_sweep(geometries, params, jobs=1)

    saved = os.environ.get("REPRO_VECTOR")
    try:
        os.environ["REPRO_VECTOR"] = "0"
        clear_all_caches()
        sweep()  # warm geometry memos so both passes run the same code
        scalar, t_scalar = _timed(sweep)

        os.environ["REPRO_VECTOR"] = "1"
        vector, t_vector = _timed(sweep)
    finally:
        if saved is None:
            os.environ.pop("REPRO_VECTOR", None)
        else:
            os.environ["REPRO_VECTOR"] = saved

    assert vector == scalar  # frozen dataclasses: bit-identical floats

    speedup = t_scalar / max(t_vector, 1e-9)
    timings = perf_record["timings"]
    timings["pairing_scalar_s"] = round(t_scalar, 4)
    timings["pairing_vector_s"] = round(t_vector, 4)
    timings["pairing_vector_speedup"] = round(speedup, 2)

    report(render_table(
        [{
            "path": f"pairing sweep x{len(geometries)} (serial)",
            "scalar_s": f"{t_scalar:.3f}",
            "vector_s": f"{t_vector:.3f}",
            "speedup": f"x{speedup:.1f}",
            "identical": "yes",
        }],
        ["path", "scalar_s", "vector_s", "speedup", "identical"],
        title="Batch router: scalar oracle vs vectorized pairing sweep",
    ))

    assert speedup >= 5.0, (
        f"batch-routed pairing only x{speedup:.2f} over scalar "
        f"(scalar {t_scalar:.3f}s, vector {t_vector:.3f}s); need >= x5"
    )


def test_simmpi_engine_speedup(perf_record, report):
    """Per-object oracle engine vs the array-native FlowLedger engine.

    An event-loop-bound kernel: 2048 ranks on a 64x32 torus exchanging
    with their ``rank ^ 1`` neighbour over dedicated links, volumes
    staggered per rank so completions arrive one flow per event.  Each
    event re-solves fair rates over ~2k in-flight flows: the oracle
    pays a Python loop per flow per event, the ledger engine a handful
    of numpy calls.  Results must be bit-identical (RunResult dataclass
    equality — exact floats) and the vector engine at least 5x faster.

    Timings are min-of-N after a warm pass: the oracle/vector ratio is
    a property of the code, the minimum is the least-noisy estimator
    of it on a shared box.
    """
    from repro import observability

    torus = Torus((64, 32))
    n_ranks = 64 * 32
    rounds = 3

    def program(rank, size):
        peer = rank ^ 1
        for rnd in range(rounds):
            yield SendRecv(
                peer=peer, gb=0.25 + 0.001 * rank + 0.05 * rnd, tag=rnd
            )

    world = VirtualMpi(torus, link_bandwidth=2.0)
    world.warm_routes([(r, r ^ 1) for r in range(n_ranks)])

    saved = os.environ.get("REPRO_VECTOR")
    was_enabled = observability.enabled()
    try:
        os.environ["REPRO_VECTOR"] = "1"
        # Warm pass, traced: warms every allocator/cache and counts the
        # scheduling events so the rate below needs no in-loop clock.
        observability.enable()
        observability.reset()
        warm = world.run(program)
        events = int(observability.OBS.counters["simmpi.loop_events"])
        observability.disable()
        observability.reset()

        t_vec = []
        for _ in range(3):
            vector, t = _timed(lambda: world.run(program))
            t_vec.append(t)

        os.environ["REPRO_VECTOR"] = "0"
        t_orc = []
        for _ in range(2):
            oracle, t = _timed(lambda: world.run(program))
            t_orc.append(t)
    finally:
        if saved is None:
            os.environ.pop("REPRO_VECTOR", None)
        else:
            os.environ["REPRO_VECTOR"] = saved
        observability.OBS.enabled = was_enabled
        observability.reset()

    # Bit-identical across the oracle, the vector engine, and the
    # traced warm pass (collection never changes results).
    assert vector == oracle
    assert vector == warm

    t_vector = min(t_vec)
    t_oracle = min(t_orc)
    speedup = t_oracle / max(t_vector, 1e-9)
    events_per_s = events / max(t_vector, 1e-9)

    timings = perf_record["timings"]
    timings["simmpi_oracle_s"] = round(t_oracle, 4)
    timings["simmpi_vector_s"] = round(t_vector, 4)
    timings["simmpi_engine_speedup"] = round(speedup, 2)
    timings["simmpi_events_per_s"] = round(events_per_s, 1)

    report(render_table(
        [{
            "workload": f"64x32 neighbour exchange x{rounds}",
            "events": events,
            "oracle_s": f"{t_oracle:.3f}",
            "vector_s": f"{t_vector:.3f}",
            "events/s": f"{events_per_s:,.0f}",
            "speedup": f"x{speedup:.1f}",
            "identical": "yes",
        }],
        ["workload", "events", "oracle_s", "vector_s", "events/s",
         "speedup", "identical"],
        title="simmpi engine: per-object oracle vs FlowLedger vector",
    ))

    assert speedup >= 5.0, (
        f"ledger engine only x{speedup:.2f} over the oracle "
        f"(oracle {t_oracle:.3f}s, vector {t_vector:.3f}s); need >= x5"
    )


def test_trajectory_file_written(perf_record):
    """BENCH_perf.json exists and is a well-formed trajectory."""
    # Flush what we have so far without waiting for fixture teardown.
    _append_record({**perf_record, "partial": True})
    history = json.loads(BENCH_FILE.read_text())
    assert isinstance(history, list) and history
    last = history[-1]
    assert last["cpu_count"] == _CORES
    assert "timings" in last
    # Drop the probe record again: the module fixture writes the final one.
    BENCH_FILE.write_text(json.dumps(history[:-1], indent=2) + "\n")


def test_sanitizer_disabled_overhead_on_pairing(
    perf_record, report, monkeypatch
):
    """REPRO_CHECK's *disabled*-path cost on the pairing sweep.

    The contract sanitizer (``repro.contracts``) guards PathMatrix/
    StackedPathMatrix construction and solver entry behind
    ``contracts.enabled()`` — one env-dict lookup. This measures that
    lookup's cost on the production hot path by interleaving the real
    disabled path against a stubbed-out ``enabled`` (the
    pre-instrumentation baseline), and asserts the median overhead
    stays within the 1% budget. It also asserts the *enabled* path is
    bit-identical: the checks raise, they never modify.
    """
    import statistics

    from repro import contracts
    from repro.allocation.geometry import PartitionGeometry
    from repro.experiments.pairing import (
        PairingParameters,
        run_pairing_sweep,
    )

    geometries = [
        PartitionGeometry(dims)
        for dims in [(4, 2, 1, 1), (2, 2, 2, 1), (3, 2, 1, 1),
                     (4, 1, 1, 1), (2, 2, 1, 1), (8, 1, 1, 1)]
    ]
    params = PairingParameters(rounds=4)

    def sweep():
        return run_pairing_sweep(geometries, params, jobs=1)

    monkeypatch.delenv("REPRO_CHECK", raising=False)
    baseline_result = sweep()  # warm the memos for every pass below

    # Bit-identity first: contracts hot must not change a single bit.
    monkeypatch.setenv("REPRO_CHECK", "1")
    checked_result = sweep()
    assert checked_result == baseline_result
    monkeypatch.delenv("REPRO_CHECK", raising=False)

    def timed_run(stub: bool) -> float:
        if stub:
            original, contracts.enabled = contracts.enabled, lambda: False
            try:
                return _timed(sweep)[1]
            finally:
                contracts.enabled = original
        return _timed(sweep)[1]

    # Interleave A/B so drift (thermal, noisy neighbours) hits both.
    with_check: list[float] = []
    without: list[float] = []
    for _ in range(5):
        without.append(timed_run(stub=True))
        with_check.append(timed_run(stub=False))
    t_without = statistics.median(without)
    t_with = statistics.median(with_check)

    overhead_pct = 100.0 * (t_with - t_without) / max(t_without, 1e-9)
    timings = perf_record["timings"]
    timings["pairing_unchecked_s"] = round(t_without, 4)
    timings["pairing_check_disabled_s"] = round(t_with, 4)
    timings["lint_sanitizer_overhead_pct"] = round(overhead_pct, 2)

    report(render_table(
        [{
            "path": f"pairing sweep x{len(geometries)} (serial)",
            "stubbed_s": f"{t_without:.3f}",
            "disabled_s": f"{t_with:.3f}",
            "overhead": f"{overhead_pct:+.2f}%",
            "identical": "yes",
        }],
        ["path", "stubbed_s", "disabled_s", "overhead", "identical"],
        title="REPRO_CHECK sanitizer: disabled-path overhead on the "
        "pairing hot path",
    ))

    # The 1% budget, with a small absolute floor so sub-jitter
    # timings on fast boxes cannot flake the build.
    assert t_with <= t_without * 1.01 + 0.02, (
        f"sanitizer disabled-path overhead {overhead_pct:.2f}% "
        f"exceeds the 1% budget"
    )
