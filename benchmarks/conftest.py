"""Shared helpers for the benchmark harnesses.

Every harness regenerates one or more of the paper's tables/figures,
prints them (run pytest with ``-s`` to see the reports inline; they are
also always emitted through the ``report`` fixture at the end), and
asserts the paper's *shape* claims — who wins, by roughly what factor,
where crossovers fall — per DESIGN.md.
"""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def report():
    """Collect rendered tables/figures and print them at session end."""
    chunks: list[str] = []
    yield chunks.append
    if chunks:
        print("\n\n" + "\n\n".join(chunks) + "\n")


def ratio(a: float, b: float) -> float:
    """Guarded ratio used by the shape assertions."""
    if b <= 0:
        raise ValueError(f"non-positive denominator: {b}")
    return a / b
