"""Unit tests for the Blue Gene/Q machine model."""

from __future__ import annotations

import pytest

from repro.machines.bgq import (
    LINK_BANDWIDTH_GB_PER_S,
    MIDPLANE_NODE_DIMS,
    NODES_PER_MIDPLANE,
    BlueGeneQMachine,
    bgq_bisection_formula,
    midplane_to_node_dims,
    normalized_bisection_bandwidth,
)


class TestConstants:
    def test_midplane_is_512_nodes(self):
        import math

        assert math.prod(MIDPLANE_NODE_DIMS) == NODES_PER_MIDPLANE == 512

    def test_link_bandwidth_from_paper(self):
        assert LINK_BANDWIDTH_GB_PER_S == 2.0


class TestNodeDims:
    def test_mira(self):
        assert midplane_to_node_dims((4, 4, 3, 2)) == (16, 16, 12, 8, 2)

    def test_juqueen(self):
        assert midplane_to_node_dims((7, 2, 2, 2)) == (28, 8, 8, 8, 2)

    def test_single_midplane(self):
        assert midplane_to_node_dims((1, 1, 1, 1)) == (4, 4, 4, 4, 2)

    def test_requires_four_dims(self):
        with pytest.raises(ValueError):
            midplane_to_node_dims((4, 4, 3))


class TestBisectionFormula:
    def test_matches_2n_over_l(self):
        assert bgq_bisection_formula(49152, 16) == 6144

    def test_validation(self):
        with pytest.raises(ValueError):
            bgq_bisection_formula(0, 16)
        with pytest.raises(ValueError):
            bgq_bisection_formula(512, 3)
        with pytest.raises(ValueError):
            bgq_bisection_formula(512, 5)
        with pytest.raises(ValueError):
            bgq_bisection_formula(1000, 16)

    @pytest.mark.parametrize(
        "dims,bw",
        [
            ((1, 1, 1, 1), 256),
            ((2, 1, 1, 1), 256),
            ((2, 2, 1, 1), 512),
            ((4, 1, 1, 1), 256),
            ((4, 2, 1, 1), 512),
            ((2, 2, 2, 1), 1024),
            ((4, 4, 1, 1), 1024),
            ((2, 2, 2, 2), 2048),
            ((4, 3, 2, 1), 1536),
            ((3, 2, 2, 2), 2048),
            ((4, 4, 2, 1), 2048),
            ((4, 4, 3, 1), 3072),
            ((4, 4, 2, 2), 4096),
            ((4, 4, 3, 2), 6144),
            ((3, 3, 1, 1), 768),
            ((3, 3, 3, 1), 2304),
            ((3, 3, 2, 2), 3072),
            ((3, 3, 3, 2), 4608),
            ((4, 3, 2, 2), 3072),
            ((7, 2, 2, 2), 2048),
        ],
    )
    def test_normalized_bandwidth_against_paper_tables(self, dims, bw):
        """Every bandwidth value appearing in the paper's tables."""
        assert normalized_bisection_bandwidth(dims) == bw

    def test_equivalent_256_p_over_a1(self):
        import math

        for dims in [(4, 3, 2, 1), (2, 2, 2, 2), (7, 2, 2, 2)]:
            p = math.prod(dims)
            assert normalized_bisection_bandwidth(dims) == 256 * p // max(dims)


class TestMachine:
    def test_mira_facts(self):
        m = BlueGeneQMachine("Mira", (4, 4, 3, 2))
        assert m.num_midplanes == 96
        assert m.num_nodes == 49152
        assert m.num_racks == 48
        assert m.node_dims == (16, 16, 12, 8, 2)
        assert m.bisection_bandwidth() == 6144

    def test_bandwidth_in_gb(self):
        m = BlueGeneQMachine("Mira", (4, 4, 3, 2))
        assert m.bisection_bandwidth(LINK_BANDWIDTH_GB_PER_S) == 12288.0

    def test_dims_canonicalized(self):
        m = BlueGeneQMachine("X", (2, 3, 4, 4))
        assert m.midplane_dims == (4, 4, 3, 2)

    def test_fits(self):
        m = BlueGeneQMachine("JUQUEEN", (7, 2, 2, 2))
        assert m.fits((7, 2, 2, 2))
        assert m.fits((5, 1, 1, 1))
        assert m.fits((2, 2, 2, 2))
        assert not m.fits((3, 3, 1, 1))
        assert not m.fits((8, 1, 1, 1))

    def test_fits_short_dims_padded(self):
        m = BlueGeneQMachine("X", (4, 4, 3, 2))
        assert m.fits((4, 4))
        assert not m.fits((4, 4, 4))

    def test_network_sizes(self):
        m = BlueGeneQMachine("X", (2, 1, 1, 1))
        assert m.network().num_vertices == 1024
        assert m.midplane_network().num_vertices == 2

    def test_requires_name_and_four_dims(self):
        with pytest.raises(ValueError):
            BlueGeneQMachine("", (4, 4, 3, 2))
        with pytest.raises(ValueError):
            BlueGeneQMachine("X", (4, 4, 3))

    def test_equality(self):
        assert BlueGeneQMachine("A", (2, 2, 1, 1)) == BlueGeneQMachine(
            "A", (1, 2, 2, 1)
        )
        assert BlueGeneQMachine("A", (2, 2, 1, 1)) != BlueGeneQMachine(
            "B", (2, 2, 1, 1)
        )
