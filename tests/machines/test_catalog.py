"""Unit tests for the machine catalog."""

from __future__ import annotations

import pytest

from repro.machines.catalog import (
    JUQUEEN,
    JUQUEEN_48,
    JUQUEEN_54,
    MACHINES,
    MIRA,
    MIRA_PREDEFINED_PARTITIONS,
    SEQUOIA,
    get_machine,
)


class TestCatalogFacts:
    def test_mira(self):
        assert MIRA.midplane_dims == (4, 4, 3, 2)
        assert MIRA.num_nodes == 49152

    def test_juqueen(self):
        assert JUQUEEN.midplane_dims == (7, 2, 2, 2)
        assert JUQUEEN.num_nodes == 28672

    def test_sequoia(self):
        assert SEQUOIA.midplane_dims == (4, 4, 4, 3)
        assert SEQUOIA.num_nodes == 98304
        assert SEQUOIA.node_dims == (16, 16, 16, 12, 2)

    def test_hypothetical_machines(self):
        assert JUQUEEN_48.num_midplanes == 48
        assert JUQUEEN_54.num_midplanes == 54

    def test_hypotheticals_fit_inside_mira(self):
        """The paper's feasibility argument: both are Mira subgraphs."""
        assert MIRA.fits(JUQUEEN_48.midplane_dims)
        assert MIRA.fits(JUQUEEN_54.midplane_dims)

    def test_hypotheticals_beat_juqueen_globally(self):
        assert JUQUEEN_54.bisection_bandwidth() == 4608
        assert JUQUEEN_48.bisection_bandwidth() == 3072
        assert JUQUEEN.bisection_bandwidth() == 2048


class TestPredefinedPartitions:
    def test_sizes_match_keys(self):
        import math

        for size, dims in MIRA_PREDEFINED_PARTITIONS.items():
            assert math.prod(dims) == size

    def test_all_fit_mira(self):
        for dims in MIRA_PREDEFINED_PARTITIONS.values():
            assert MIRA.fits(dims)

    def test_expected_sizes(self):
        assert sorted(MIRA_PREDEFINED_PARTITIONS) == [
            1, 2, 4, 8, 16, 24, 32, 48, 64, 96,
        ]


class TestLookup:
    def test_case_insensitive(self):
        assert get_machine("MIRA") is MIRA
        assert get_machine("juqueen-54") is JUQUEEN_54

    def test_whitespace_tolerant(self):
        assert get_machine("  sequoia ") is SEQUOIA

    def test_unknown_raises_with_candidates(self):
        with pytest.raises(KeyError, match="mira"):
            get_machine("summit")

    def test_catalog_complete(self):
        assert set(MACHINES) == {
            "mira", "juqueen", "sequoia", "juqueen-48", "juqueen-54",
        }
