"""Analyzer core: suppressions, reporters, docs drift, CLI wiring."""

from __future__ import annotations

import json
import textwrap

import pytest

import repro.staticcheck as sc
from repro import env
from repro.cli import main


def analyze(src: str, **kw):
    return sc.analyze_source(textwrap.dedent(src), "src/repro/demo.py", **kw)


class TestSuppressions:
    def test_reason_is_recorded(self):
        res = analyze(
            "x = y == 1.0  # repro: allow-float-eq stored sentinel\n"
        )
        assert res.clean
        ((finding, reason),) = res.suppressed
        assert finding.rule == "float-eq"
        assert reason == "stored sentinel"

    def test_line_above_applies(self):
        res = analyze("""
            # repro: allow-float-eq stored sentinel
            x = y == 1.0
        """)
        assert res.clean

    def test_two_lines_above_does_not_apply(self):
        res = analyze("""
            # repro: allow-float-eq stored sentinel

            x = y == 1.0
        """)
        assert not res.clean

    def test_wrong_rule_id_does_not_suppress(self):
        res = analyze(
            "x = y == 1.0  # repro: allow-wallclock wrong rule\n"
        )
        assert [f.rule for f in res.findings] == ["float-eq"]

    def test_missing_reason_keeps_finding_and_flags_marker(self):
        res = analyze("x = y == 1.0  # repro: allow-float-eq\n")
        rules = sorted(f.rule for f in res.findings)
        assert rules == ["float-eq", "suppression-missing-reason"]

    def test_marker_inside_string_is_not_a_suppression(self):
        res = analyze(
            's = "# repro: allow-float-eq nope"\nx = y == 1.0\n'
        )
        assert [f.rule for f in res.findings] == ["float-eq"]


class TestDriver:
    def test_parse_error_is_a_finding(self):
        res = analyze("def broken(:\n")
        (f,) = res.findings
        assert f.rule == "parse-error"

    def test_rule_filter(self):
        src = """
            import time
            t = time.time()
            x = y == 1.0
        """
        only_float = analyze(src, rules=["float-eq"])
        assert [f.rule for f in only_float.findings] == ["float-eq"]
        with pytest.raises(KeyError):
            analyze(src, rules=["no-such-rule"])

    def test_every_rule_has_summary_and_hint(self):
        for rid, rule in sc.RULES.items():
            assert rule.id == rid
            assert rule.summary
            assert rule.hint


class TestReporters:
    def test_text_report_has_location_rule_and_hint(self):
        res = analyze("x = y == 1.0\n")
        text = sc.render_text(res)
        assert "src/repro/demo.py:1:5: [float-eq]" in text
        assert "fix:" in text
        assert "1 finding (0 suppressed) in 1 file" in text

    def test_json_report_round_trips(self):
        res = analyze(
            "x = y == 1.0\n"
            "z = w == 0.0  # repro: allow-float-eq stored sentinel\n"
        )
        payload = json.loads(sc.render_json(res))
        assert payload["version"] == 1
        assert payload["files_scanned"] == 1
        (f,) = payload["findings"]
        assert f["rule"] == "float-eq" and f["line"] == 1
        (s,) = payload["suppressed"]
        assert s["reason"] == "stored sentinel"
        assert "float-eq" in payload["rules"]


class TestDocsDrift:
    def _docs(self, tmp_path, performance: str, observability: str = ""):
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "performance.md").write_text(performance)
        (docs / "observability.md").write_text(observability)
        return docs

    def test_in_sync_docs_pass(self, tmp_path):
        names = " ".join(k.name for k in env.knobs())
        docs = self._docs(tmp_path, names)
        assert sc.check_knob_docs(docs) == []

    def test_undocumented_knob_flagged(self, tmp_path):
        names = [k.name for k in env.knobs()]
        docs = self._docs(tmp_path, " ".join(names[:-1]))
        (f,) = sc.check_knob_docs(docs)
        assert f.rule == "knob-docs"
        assert names[-1] in f.message

    def test_unregistered_doc_mention_flagged(self, tmp_path):
        names = " ".join(k.name for k in env.knobs())
        docs = self._docs(tmp_path, names, "see REPRO_NO_SUCH_KNOB\n")
        (f,) = sc.check_knob_docs(docs)
        assert "REPRO_NO_SUCH_KNOB" in f.message
        assert f.path == "docs/observability.md"
        assert f.line == 1

    def test_real_docs_are_in_sync(self):
        docs = sc.find_docs_dir(__import__("pathlib").Path(__file__))
        assert docs is not None
        assert sc.check_knob_docs(docs) == []


class TestCli:
    def test_lint_clean_file_exits_zero(self, tmp_path, capsys):
        f = tmp_path / "clean.py"
        f.write_text("x = 1\n")
        assert main(["lint", str(f), "--no-docs-check"]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_lint_violation_exits_nonzero_with_details(
        self, tmp_path, capsys
    ):
        f = tmp_path / "bad.py"
        f.write_text("import random\nx = random.random()\n")
        assert main(["lint", str(f), "--no-docs-check"]) == 1
        out = capsys.readouterr().out
        assert "[unseeded-random]" in out
        assert "bad.py:2:" in out
        assert "fix:" in out

    def test_soft_mode_exits_zero(self, tmp_path):
        f = tmp_path / "bad.py"
        f.write_text("import random\nx = random.random()\n")
        assert main(["lint", str(f), "--soft", "--no-docs-check"]) == 0

    def test_json_output_file(self, tmp_path):
        f = tmp_path / "bad.py"
        f.write_text("x = y == 1.0\n")
        out = tmp_path / "report.json"
        code = main([
            "lint", str(f), "--no-docs-check",
            "--format", "json", "--output", str(out),
        ])
        assert code == 1
        payload = json.loads(out.read_text())
        assert payload["findings"][0]["rule"] == "float-eq"

    def test_rule_filter_flag(self, tmp_path):
        f = tmp_path / "bad.py"
        f.write_text("import random\nx = random.random()\ny = z == 1.0\n")
        assert main([
            "lint", str(f), "--no-docs-check", "--rules", "float-eq",
        ]) == 1

    def test_unknown_rule_is_an_error(self, tmp_path, capsys):
        f = tmp_path / "clean.py"
        f.write_text("x = 1\n")
        assert main([
            "lint", str(f), "--no-docs-check", "--rules", "bogus",
        ]) == 2
        assert "unknown rule" in capsys.readouterr().err
