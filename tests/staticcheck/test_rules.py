"""Per-rule fixtures: true positive, true negative, suppression.

Every rule gets at least one fixture that must fire, one
similar-but-clean fixture that must stay silent, and one showing the
``# repro: allow-<rule>`` marker silencing it with an audit reason.
"""

from __future__ import annotations

import textwrap

from repro.staticcheck import analyze_source


def run(src: str, *, path: str = "src/repro/demo.py", rules=None):
    return analyze_source(textwrap.dedent(src), path, rules=rules)


def fired(result, rule: str) -> list:
    return [f for f in result.findings if f.rule == rule]


# ------------------------------------------------------------------ #
# unseeded-random


class TestUnseededRandom:
    def test_global_random_call_fires(self):
        res = run("""
            import random
            x = random.random()
        """)
        (f,) = fired(res, "unseeded-random")
        assert f.line == 3
        assert "module-global RNG" in f.message

    def test_numpy_legacy_global_fires(self):
        res = run("""
            import numpy as np
            noise = np.random.rand(8)
        """)
        assert fired(res, "unseeded-random")

    def test_os_urandom_fires(self):
        res = run("""
            import os
            token = os.urandom(16)
        """)
        (f,) = fired(res, "unseeded-random")
        assert "OS entropy" in f.message

    def test_system_random_fires(self):
        res = run("""
            import random
            rng = random.SystemRandom()
        """)
        assert fired(res, "unseeded-random")

    def test_import_from_global_fires(self):
        res = run("from random import shuffle\n")
        (f,) = fired(res, "unseeded-random")
        assert "random.shuffle" in f.message

    def test_seeded_constructors_clean(self):
        res = run("""
            import random
            import numpy as np
            rng = random.Random(7)
            gen = np.random.default_rng(np.random.SeedSequence(3))
            x = rng.random() + gen.random()
        """)
        assert not fired(res, "unseeded-random")

    def test_suppression(self):
        res = run("""
            import os
            salt = os.urandom(8)  # repro: allow-unseeded-random salt is cosmetic, never journaled
        """)
        assert not fired(res, "unseeded-random")
        assert res.suppressed


# ------------------------------------------------------------------ #
# wallclock


class TestWallclock:
    def test_time_call_fires(self):
        res = run("""
            import time
            stamp = time.time()
        """)
        (f,) = fired(res, "wallclock")
        assert "time.time" in f.message

    def test_datetime_now_fires(self):
        res = run("""
            import datetime
            stamp = datetime.datetime.now()
        """)
        assert fired(res, "wallclock")

    def test_observability_module_sanctioned(self):
        res = run(
            """
            import time
            t = time.perf_counter()
            """,
            path="src/repro/observability.py",
        )
        assert not fired(res, "wallclock")

    def test_unrelated_time_name_clean(self):
        res = run("""
            def schedule(time):
                return time + 1.5
        """)
        assert not fired(res, "wallclock")

    def test_suppression(self):
        res = run("""
            import time
            time.sleep(0.1)  # repro: allow-wallclock backoff only, results unaffected
        """)
        assert not fired(res, "wallclock")


# ------------------------------------------------------------------ #
# set-order


class TestSetOrder:
    def test_list_over_set_fires(self):
        res = run("order = list({3, 1, 2})\n")
        assert fired(res, "set-order")

    def test_join_over_set_fires(self):
        res = run("label = ', '.join({'b', 'a'})\n")
        assert fired(res, "set-order")

    def test_listcomp_over_set_fires(self):
        res = run("rows = [x * 2 for x in {1, 2, 3}]\n")
        assert fired(res, "set-order")

    def test_accumulating_loop_over_set_fires(self):
        res = run("""
            out = []
            for name in set(names):
                out.append(name)
        """)
        assert fired(res, "set-order")

    def test_sorted_set_clean(self):
        res = run("""
            order = sorted({3, 1, 2})
            label = ', '.join(sorted({'b', 'a'}))
        """)
        assert not fired(res, "set-order")

    def test_orderfree_loop_clean(self):
        # The sharedmem unlink loop: iterating a set is fine when no
        # ordered output is built from it.
        res = run("""
            for seg in {d.segment for d in descriptors}:
                unlink(seg)
        """)
        assert not fired(res, "set-order")

    def test_suppression(self):
        res = run(
            "order = list({3, 1, 2})"
            "  # repro: allow-set-order order rechecked downstream\n"
        )
        assert not fired(res, "set-order")


# ------------------------------------------------------------------ #
# float-eq


class TestFloatEq:
    def test_literal_eq_fires(self):
        res = run("flag = x == 1.0\n")
        (f,) = fired(res, "float-eq")
        assert "1.0" in f.message

    def test_cast_noteq_fires(self):
        res = run("flag = a != float(b)\n")
        assert fired(res, "float-eq")

    def test_division_eq_fires(self):
        res = run("flag = (a / b) == c\n")
        assert fired(res, "float-eq")

    def test_negated_literal_fires(self):
        res = run("flag = x == -1.0\n")
        assert fired(res, "float-eq")

    def test_int_and_inequality_clean(self):
        res = run("""
            a = x == 1
            b = y > 1.0
            c = math.isclose(z, 1.0)
        """)
        assert not fired(res, "float-eq")

    def test_suppression_line_above(self):
        res = run("""
            # repro: allow-float-eq stored sentinel, never computed
            flag = x == 0.0
        """)
        assert not fired(res, "float-eq")
        assert res.suppressed


# ------------------------------------------------------------------ #
# env-knob


class TestEnvKnob:
    def test_environ_subscript_fires(self):
        res = run("""
            import os
            jobs = os.environ["REPRO_JOBS"]
        """)
        assert fired(res, "env-knob")

    def test_getenv_fires(self):
        res = run("""
            import os
            jobs = os.getenv("REPRO_JOBS", "0")
        """)
        assert fired(res, "env-knob")

    def test_imported_environ_fires(self):
        res = run("""
            from os import environ
            jobs = environ.get("REPRO_JOBS")
        """)
        assert fired(res, "env-knob")

    def test_registry_module_sanctioned(self):
        res = run(
            """
            import os
            raw = os.environ.get("REPRO_JOBS")
            """,
            path="src/repro/env.py",
        )
        assert not fired(res, "env-knob")

    def test_registry_read_clean(self):
        res = run("""
            from repro import env
            jobs = env.get_int("REPRO_JOBS")
        """)
        assert not fired(res, "env-knob")

    def test_suppression(self):
        res = run("""
            import os
            os.environ["COLUMNS"] = "200"  # repro: allow-env-knob test harness shimming the terminal
        """)
        assert not fired(res, "env-knob")


# ------------------------------------------------------------------ #
# shm-mutation


class TestShmMutation:
    def test_write_through_attached_view_fires(self):
        res = run("""
            from repro.sharedmem import attach_array, detach_segments
            def worker(desc):
                arr = attach_array(desc)
                arr[0] = 99.0
                detach_segments([desc])
        """)
        (f,) = fired(res, "shm-mutation")
        assert "arr" in f.message

    def test_augassign_through_attached_view_fires(self):
        res = run("""
            from repro.sharedmem import attach_array, detach_segments
            def worker(desc):
                arr = attach_array(desc)
                arr[:] += 1.0
                detach_segments([desc])
        """)
        assert fired(res, "shm-mutation")

    def test_reenabling_writeable_fires(self):
        res = run("""
            def hack(buf):
                buf.flags.writeable = True
        """)
        assert fired(res, "shm-mutation")

    def test_copy_then_mutate_clean(self):
        res = run("""
            from repro.sharedmem import attach_array, detach_segments
            def worker(desc):
                arr = attach_array(desc).copy()
                local = arr
                scratch = list(arr)
                scratch[0] = 99.0
                detach_segments([desc])
        """)
        assert not fired(res, "shm-mutation")

    def test_sharedmem_module_may_flip_writeable(self):
        res = run(
            """
            def _decode(buf):
                buf.flags.writeable = True
            """,
            path="src/repro/sharedmem.py",
        )
        assert not fired(res, "shm-mutation")

    def test_suppression(self):
        res = run("""
            from repro.sharedmem import attach_array, detach_segments
            def worker(desc):
                arr = attach_array(desc)
                arr[0] = 0.0  # repro: allow-shm-mutation scratch segment owned exclusively by this worker
                detach_segments([desc])
        """)
        assert not fired(res, "shm-mutation")


# ------------------------------------------------------------------ #
# shm-pairing


class TestShmPairing:
    def test_attach_without_release_fires(self):
        res = run("""
            from repro.sharedmem import attach_array
            def worker(desc):
                return attach_array(desc).sum()
        """)
        (f,) = fired(res, "shm-pairing")
        assert "never releases" in f.message

    def test_attach_with_release_clean(self):
        res = run("""
            from repro.sharedmem import attach_array, detach_segments
            def worker(desc):
                try:
                    return attach_array(desc).sum()
                finally:
                    detach_segments([desc])
        """)
        assert not fired(res, "shm-pairing")

    def test_codec_definition_clean(self):
        # to_shared/from_shared *definitions* are the codec itself;
        # segment ownership lies with the transport calling them.
        res = run("""
            class Payload:
                def to_shared(self):
                    return put_array(self.data)
        """)
        assert not fired(res, "shm-pairing")

    def test_suppression(self):
        res = run("""
            from repro.sharedmem import attach_array
            def peek(desc):
                return attach_array(desc)[0]  # repro: allow-shm-pairing caller owns segment lifetime
        """)
        assert not fired(res, "shm-pairing")


# ------------------------------------------------------------------ #
# missing-span


class TestMissingSpan:
    EXPERIMENT = "src/repro/experiments/demo.py"

    def test_bare_driver_fires(self):
        res = run(
            """
            def run_demo(machine):
                return machine
            """,
            path=self.EXPERIMENT,
        )
        (f,) = fired(res, "missing-span")
        assert "run_demo" in f.message

    def test_sweep_suffix_fires(self):
        res = run(
            """
            def demo_sweep(grid):
                return grid
            """,
            path=self.EXPERIMENT,
        )
        assert fired(res, "missing-span")

    def test_profiled_decorator_clean(self):
        res = run(
            """
            from .. import observability

            @observability.profiled("experiment.demo.run")
            def run_demo(machine):
                return machine
            """,
            path=self.EXPERIMENT,
        )
        assert not fired(res, "missing-span")

    def test_inline_span_clean(self):
        res = run(
            """
            from .. import observability

            def run_demo(machine):
                with observability.span("experiment.demo"):
                    return machine
            """,
            path=self.EXPERIMENT,
        )
        assert not fired(res, "missing-span")

    def test_private_helper_and_other_packages_clean(self):
        res = run(
            """
            def _run_inner(machine):
                return machine
            """,
            path=self.EXPERIMENT,
        )
        assert not fired(res, "missing-span")
        res = run("""
            def run_anything(x):
                return x
        """)
        assert not fired(res, "missing-span")

    def test_suppression(self):
        res = run(
            """
            def run_demo(machine):  # repro: allow-missing-span microsecond helper, span overhead dominates
                return machine
            """,
            path=self.EXPERIMENT,
        )
        assert not fired(res, "missing-span")


# ------------------------------------------------------------------ #
# checkpoint-purity


class TestCheckpointPurity:
    def test_pid_in_record_fires(self):
        res = run("""
            import os
            def save(ckpt, key, value):
                ckpt.record(key, os.getpid(), value)
        """)
        (f,) = fired(res, "checkpoint-purity")
        assert "os.getpid" in f.message

    def test_segment_attr_in_record_fires(self):
        res = run("""
            def save(self, key, payload):
                self.ckpt.record(key, payload.segment)
        """)
        assert fired(res, "checkpoint-purity")

    def test_timestamp_keyword_fires(self):
        res = run("""
            import time
            def save(checkpoint, key, value):
                checkpoint.record(key, value, at=time.time())
        """)
        assert fired(res, "checkpoint-purity")

    def test_content_pure_record_clean(self):
        res = run("""
            def save(self, index, value):
                self.ckpt.record(self.keys[index], index, value)
        """)
        assert not fired(res, "checkpoint-purity")

    def test_unrelated_record_receiver_clean(self):
        res = run("""
            import os
            def save(audit_log, key):
                audit_log.record(key, os.getpid())
        """)
        assert not fired(res, "checkpoint-purity")

    def test_suppression(self):
        res = run("""
            import os
            def save(ckpt, key):
                ckpt.record(key, os.getpid())  # repro: allow-checkpoint-purity debug journal, never resumed
        """)
        assert not fired(res, "checkpoint-purity")
