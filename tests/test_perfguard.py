"""Unit tests for the CI perf-regression guard.

The guard script lives outside the package (``benchmarks/``), so it is
loaded here by file path.  It compares the newest ``BENCH_perf.json``
record against the most recent record from an equivalent runner and
fails on >2x timing regressions.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

GUARD_PATH = (
    Path(__file__).resolve().parent.parent
    / "benchmarks"
    / "check_perf_regression.py"
)


@pytest.fixture(scope="module")
def guard():
    spec = importlib.util.spec_from_file_location("perfguard", GUARD_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def record(timings, cpu=4, platform="linux-test", ts="2026-01-01T00:00:00Z"):
    return {
        "timestamp": ts,
        "cpu_count": cpu,
        "platform": platform,
        "timings": timings,
    }


class TestFindBaseline:
    def test_empty_history(self, guard):
        assert guard.find_baseline([]) == (None, None)

    def test_single_record_has_no_baseline(self, guard):
        current, baseline = guard.find_baseline([record({"a_s": 1.0})])
        assert current is not None and baseline is None

    def test_skips_incomparable_runners(self, guard):
        other = record({"a_s": 1.0}, cpu=16)
        mine_old = record({"a_s": 2.0})
        mine_new = record({"a_s": 2.1})
        current, baseline = guard.find_baseline([mine_old, other, mine_new])
        assert current is mine_new
        assert baseline is mine_old

    def test_uses_most_recent_comparable(self, guard):
        older = record({"a_s": 5.0}, ts="2026-01-01T00:00:00Z")
        newer = record({"a_s": 1.0}, ts="2026-01-02T00:00:00Z")
        current = record({"a_s": 1.1}, ts="2026-01-03T00:00:00Z")
        _, baseline = guard.find_baseline([older, newer, current])
        assert baseline is newer


class TestCheck:
    def test_no_records_passes(self, guard):
        assert guard.check([]) == []

    def test_no_baseline_passes(self, guard):
        assert guard.check([record({"a_s": 1.0})]) == []

    def test_within_bounds_passes(self, guard):
        history = [record({"a_s": 1.0}), record({"a_s": 1.9})]
        assert guard.check(history) == []

    def test_regression_detected(self, guard):
        history = [record({"a_s": 1.0}), record({"a_s": 2.5})]
        failures = guard.check(history)
        assert len(failures) == 1
        assert "a_s" in failures[0]

    def test_improvement_passes(self, guard):
        history = [record({"a_s": 2.0}), record({"a_s": 0.1})]
        assert guard.check(history) == []

    def test_derived_metrics_skipped(self, guard):
        history = [
            record({"pairing_vector_speedup": 20.0, "rate": 0.9}),
            record({"pairing_vector_speedup": 1.0, "rate": 0.1}),
        ]
        assert guard.check(history) == []

    def test_tiny_timings_skipped_as_jitter(self, guard):
        history = [record({"a_s": 0.001}), record({"a_s": 0.004})]
        assert guard.check(history) == []

    def test_new_timing_key_passes(self, guard):
        history = [record({}), record({"new_s": 3.0})]
        assert guard.check(history) == []

    def test_non_numeric_timing_ignored(self, guard):
        history = [record({"a_s": "fast"}), record({"a_s": 1.0})]
        assert guard.check(history) == []


class TestMain:
    def test_passes_on_real_trajectory_format(self, guard, tmp_path):
        path = tmp_path / "BENCH_perf.json"
        path.write_text(json.dumps([
            record({"a_s": 1.0}),
            record({"a_s": 1.2}),
        ]))
        assert guard.main(["prog", str(path)]) == 0

    def test_fails_on_regression(self, guard, tmp_path):
        path = tmp_path / "BENCH_perf.json"
        path.write_text(json.dumps([
            record({"a_s": 1.0}),
            record({"a_s": 9.0}),
        ]))
        assert guard.main(["prog", str(path)]) == 1

    def test_missing_file_passes(self, guard, tmp_path):
        assert guard.main(["prog", str(tmp_path / "nope.json")]) == 0

    def test_corrupt_file_passes(self, guard, tmp_path):
        path = tmp_path / "BENCH_perf.json"
        path.write_text("{not json")
        assert guard.main(["prog", str(path)]) == 0

    def test_checks_repo_trajectory_by_default_path(self, guard):
        # The committed trajectory itself must pass the guard (records
        # from different runners are simply incomparable).
        history = guard.load_history(guard.DEFAULT_BENCH_FILE)
        assert isinstance(history, list)
        assert guard.check(history) is not None
