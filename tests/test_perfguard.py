"""Unit tests for the CI perf-regression guard.

The guard script lives outside the package (``benchmarks/``), so it is
loaded here by file path.  It compares, per metric key, the newest
``BENCH_perf.json`` record carrying the key against the most recent
comparable earlier record carrying it, and fails on >2x regressions —
timing growth for ``*_s`` keys, throughput drop for ``*_per_s`` keys,
and ratio drop for ``*_speedup`` keys.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

GUARD_PATH = (
    Path(__file__).resolve().parent.parent
    / "benchmarks"
    / "check_perf_regression.py"
)


@pytest.fixture(scope="module")
def guard():
    spec = importlib.util.spec_from_file_location("perfguard", GUARD_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def record(timings, cpu=4, platform="linux-test", ts="2026-01-01T00:00:00Z"):
    return {
        "timestamp": ts,
        "cpu_count": cpu,
        "platform": platform,
        "timings": timings,
    }


class TestClassify:
    def test_rate_key(self, guard):
        assert guard.classify("fault_sweep_scenarios_per_s") == "rate"

    def test_timing_key(self, guard):
        assert guard.classify("designsearch_serial_s") == "timing"

    def test_per_s_not_mistaken_for_timing(self, guard):
        # *_per_s also ends with _s; the rate class must win.
        assert guard.classify("x_per_s") == "rate"

    def test_speedup_keys_classified(self, guard):
        assert guard.classify("pairing_vector_speedup") == "speedup"
        assert guard.classify("sweep_shm_speedup") == "speedup"

    def test_derived_metrics_unclassified(self, guard):
        assert guard.classify("trace_overhead_pct") is None
        assert guard.classify("extremes_memo_hit_rate") is None

    def test_stacked_sweep_throughput_is_a_rate(self, guard):
        # The stacked-sweep benchmark's headline metric must be under
        # guard as a throughput (drop = regression), not a timing.
        assert (
            guard.classify("sweep_throughput_scenarios_per_s") == "rate"
        )

    def test_engine_bench_keys_classified(self, guard):
        # The FlowLedger-engine benchmark's headline metrics: the
        # oracle/vector ratio is a higher-is-better speedup, the event
        # throughput a rate, and the raw timings timings.
        assert guard.classify("simmpi_engine_speedup") == "speedup"
        assert guard.classify("simmpi_events_per_s") == "rate"
        assert guard.classify("simmpi_oracle_s") == "timing"
        assert guard.classify("simmpi_vector_s") == "timing"


class TestLatestPair:
    def test_empty_history(self, guard):
        assert guard.latest_pair([], "a_s") == (None, None)

    def test_single_record_has_no_baseline(self, guard):
        current, baseline = guard.latest_pair([record({"a_s": 1.0})], "a_s")
        assert current is not None and baseline is None
        assert current[1] == 1.0

    def test_skips_incomparable_runners(self, guard):
        other = record({"a_s": 1.0}, cpu=16)
        mine_old = record({"a_s": 2.0})
        mine_new = record({"a_s": 2.1})
        current, baseline = guard.latest_pair(
            [mine_old, other, mine_new], "a_s"
        )
        assert current[0] is mine_new
        assert baseline[0] is mine_old

    def test_uses_most_recent_comparable(self, guard):
        older = record({"a_s": 5.0}, ts="2026-01-01T00:00:00Z")
        newer = record({"a_s": 1.0}, ts="2026-01-02T00:00:00Z")
        current = record({"a_s": 1.1}, ts="2026-01-03T00:00:00Z")
        _, baseline = guard.latest_pair([older, newer, current], "a_s")
        assert baseline[0] is newer

    def test_key_found_across_interleaved_harness_records(self, guard):
        # bench_faults and bench_perfbaseline append separate records;
        # each key pairs with its own previous occurrence, not with
        # whatever record happens to be last.
        history = [
            record({"a_s": 1.0}),
            record({"r_per_s": 50.0}),
            record({"a_s": 1.1}),
            record({"r_per_s": 48.0}),
        ]
        (cur_a, now_a), (base_a, before_a) = guard.latest_pair(
            history, "a_s"
        )
        assert (now_a, before_a) == (1.1, 1.0)
        (cur_r, now_r), (base_r, before_r) = guard.latest_pair(
            history, "r_per_s"
        )
        assert (now_r, before_r) == (48.0, 50.0)

    def test_non_numeric_values_skipped(self, guard):
        history = [record({"a_s": 1.0}), record({"a_s": "fast"})]
        current, baseline = guard.latest_pair(history, "a_s")
        assert current[1] == 1.0
        assert baseline is None


class TestCheck:
    def test_no_records_passes(self, guard):
        assert guard.check([]) == []

    def test_no_baseline_passes(self, guard):
        assert guard.check([record({"a_s": 1.0})]) == []

    def test_within_bounds_passes(self, guard):
        history = [record({"a_s": 1.0}), record({"a_s": 1.9})]
        assert guard.check(history) == []

    def test_timing_regression_detected(self, guard):
        history = [record({"a_s": 1.0}), record({"a_s": 2.5})]
        failures = guard.check(history)
        assert len(failures) == 1
        assert "a_s" in failures[0]

    def test_timing_improvement_passes(self, guard):
        history = [record({"a_s": 2.0}), record({"a_s": 0.1})]
        assert guard.check(history) == []

    def test_rate_regression_detected(self, guard):
        history = [
            record({"sweep_per_s": 100.0}),
            record({"sweep_per_s": 40.0}),
        ]
        failures = guard.check(history)
        assert len(failures) == 1
        assert "sweep_per_s" in failures[0]

    def test_rate_within_bounds_passes(self, guard):
        history = [
            record({"sweep_per_s": 100.0}),
            record({"sweep_per_s": 60.0}),
        ]
        assert guard.check(history) == []

    def test_rate_improvement_passes(self, guard):
        history = [
            record({"sweep_per_s": 100.0}),
            record({"sweep_per_s": 400.0}),
        ]
        assert guard.check(history) == []

    def test_derived_metrics_skipped(self, guard):
        history = [
            record({"trace_overhead_pct": 20.0, "rate": 0.9}),
            record({"trace_overhead_pct": 1.0, "rate": 0.1}),
        ]
        assert guard.check(history) == []

    def test_speedup_regression_detected(self, guard):
        history = [
            record({"sweep_shm_speedup": 4.0}),
            record({"sweep_shm_speedup": 1.1}),
        ]
        failures = guard.check(history)
        assert len(failures) == 1
        assert "sweep_shm_speedup" in failures[0]

    def test_speedup_within_bounds_passes(self, guard):
        history = [
            record({"sweep_shm_speedup": 4.0}),
            record({"sweep_shm_speedup": 2.5}),
        ]
        assert guard.check(history) == []

    def test_speedup_improvement_passes(self, guard):
        history = [
            record({"sweep_shm_speedup": 2.0}),
            record({"sweep_shm_speedup": 8.0}),
        ]
        assert guard.check(history) == []

    def test_tiny_timings_skipped_as_jitter(self, guard):
        history = [record({"a_s": 0.001}), record({"a_s": 0.004})]
        assert guard.check(history) == []

    def test_new_timing_key_passes(self, guard):
        history = [record({}), record({"new_s": 3.0})]
        assert guard.check(history) == []

    def test_non_numeric_timing_ignored(self, guard):
        history = [record({"a_s": "fast"}), record({"a_s": 1.0})]
        assert guard.check(history) == []

    def test_stacked_sweep_throughput_guarded(self, guard):
        history = [
            record({"sweep_throughput_scenarios_per_s": 400.0}),
            record({"sweep_throughput_scenarios_per_s": 150.0}),
        ]
        failures = guard.check(history)
        assert len(failures) == 1
        assert "sweep_throughput_scenarios_per_s" in failures[0]

    def test_mixed_harness_records_each_key_guarded(self, guard):
        # A faults-bench record appended after the baseline record must
        # not hide baseline timing regressions, and vice versa.
        history = [
            record({"a_s": 1.0}),
            record({"r_per_s": 100.0}),
            record({"a_s": 5.0}),       # timing regressed x5
            record({"r_per_s": 10.0}),  # rate regressed x10
        ]
        failures = guard.check(history)
        assert len(failures) == 2
        assert any("a_s" in f for f in failures)
        assert any("r_per_s" in f for f in failures)


class TestMain:
    def test_passes_on_real_trajectory_format(self, guard, tmp_path):
        path = tmp_path / "BENCH_perf.json"
        path.write_text(json.dumps([
            record({"a_s": 1.0}),
            record({"a_s": 1.2, "sweep_per_s": 80.0}),
        ]))
        assert guard.main(["prog", str(path)]) == 0

    def test_fails_on_regression(self, guard, tmp_path):
        path = tmp_path / "BENCH_perf.json"
        path.write_text(json.dumps([
            record({"a_s": 1.0}),
            record({"a_s": 9.0}),
        ]))
        assert guard.main(["prog", str(path)]) == 1

    def test_missing_file_passes(self, guard, tmp_path):
        assert guard.main(["prog", str(tmp_path / "nope.json")]) == 0

    def test_corrupt_file_passes(self, guard, tmp_path):
        path = tmp_path / "BENCH_perf.json"
        path.write_text("{not json")
        assert guard.main(["prog", str(path)]) == 0

    def test_checks_repo_trajectory_by_default_path(self, guard):
        # The committed trajectory itself must pass the guard (records
        # from different runners are simply incomparable).
        history = guard.load_history(guard.DEFAULT_BENCH_FILE)
        assert isinstance(history, list)
        assert guard.check(history) is not None
