"""The repro.env knob registry: declarations, accessors, semantics."""

from __future__ import annotations

import pytest

from repro import env

ALL_KNOBS = (
    "REPRO_JOBS",
    "REPRO_CACHE_SIZE",
    "REPRO_TRACE",
    "REPRO_VECTOR",
    "REPRO_SHM",
    "REPRO_CHECK",
    "REPRO_LEDGER_COMPACT",
    "REPRO_RESILIENCE_TEST_KILL",
    "REPRO_RESILIENCE_TEST_KILL_MARKER",
)


class TestRegistry:
    def test_every_expected_knob_is_declared(self):
        assert {k.name for k in env.knobs()} == set(ALL_KNOBS)

    def test_knobs_sorted_and_documented(self):
        names = [k.name for k in env.knobs()]
        assert names == sorted(names)
        for k in env.knobs():
            assert k.doc.strip(), f"{k.name} has no docstring"

    def test_knob_lookup(self):
        assert env.knob("REPRO_CHECK").kind == "flag"
        with pytest.raises(KeyError):
            env.knob("REPRO_NOPE")

    def test_unregistered_read_raises(self):
        with pytest.raises(KeyError, match="not registered"):
            env.get_raw("REPRO_NOPE")

    def test_reregistration_identical_is_noop(self):
        k = env.knob("REPRO_JOBS")
        assert env.register(k.name, k.kind, k.default, k.doc) is k

    def test_reregistration_conflict_raises(self):
        k = env.knob("REPRO_JOBS")
        with pytest.raises(ValueError, match="conflicting"):
            env.register(k.name, k.kind, 99, k.doc)

    def test_knob_must_be_namespaced(self):
        with pytest.raises(ValueError, match="REPRO_"):
            env.Knob("JOBS", "int", 0, "nope")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            env.Knob("REPRO_X", "bool", 0, "nope")


class TestFlagSemantics:
    @pytest.mark.parametrize("raw", ["0", "false", "no", "off", "FALSE", " Off "])
    def test_falsey_values_disable(self, raw, monkeypatch):
        monkeypatch.setenv("REPRO_VECTOR", raw)
        assert env.get_flag("REPRO_VECTOR") is False

    @pytest.mark.parametrize("raw", ["1", "true", "yes", "on", "2", "weird"])
    def test_other_values_enable(self, raw, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK", raw)
        assert env.get_flag("REPRO_CHECK") is True

    def test_unset_takes_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_VECTOR", raising=False)
        monkeypatch.delenv("REPRO_CHECK", raising=False)
        assert env.get_flag("REPRO_VECTOR") is True
        assert env.get_flag("REPRO_CHECK") is False

    @pytest.mark.parametrize("raw", ["", "   "])
    def test_empty_counts_as_unset(self, raw, monkeypatch):
        # `REPRO_VECTOR= python ...` has always meant "default", for
        # an on-by-default knob and an off-by-default knob alike.
        monkeypatch.setenv("REPRO_VECTOR", raw)
        monkeypatch.setenv("REPRO_CHECK", raw)
        assert env.get_flag("REPRO_VECTOR") is True
        assert env.get_flag("REPRO_CHECK") is False

    def test_is_falsey_is_truthy_vocabulary(self):
        assert env.is_falsey("") and env.is_falsey(" OFF ")
        assert env.is_truthy("YES") and not env.is_truthy("/tmp/x.jsonl")


class TestIntSemantics:
    def test_valid_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_SIZE", "128")
        assert env.get_int("REPRO_CACHE_SIZE") == 128

    @pytest.mark.parametrize("raw", ["banana", "-3", "0", "1.5"])
    def test_invalid_falls_back_to_default(self, raw, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_SIZE", raw)
        assert env.get_int("REPRO_CACHE_SIZE") == 4096

    def test_unset_takes_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_SIZE", raising=False)
        assert env.get_int("REPRO_CACHE_SIZE") == 4096


class TestCheckEnabled:
    def test_follows_environment_at_call_time(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHECK", raising=False)
        assert env.check_enabled() is False
        monkeypatch.setenv("REPRO_CHECK", "1")
        assert env.check_enabled() is True
        monkeypatch.setenv("REPRO_CHECK", "0")
        assert env.check_enabled() is False


class TestLegacyCallersStillWork:
    """The migrated modules keep their pre-registry semantics."""

    def test_caching_default_size(self, monkeypatch):
        from repro.caching import default_cache_size

        monkeypatch.setenv("REPRO_CACHE_SIZE", "64")
        assert default_cache_size() == 64
        monkeypatch.setenv("REPRO_CACHE_SIZE", "not-a-number")
        assert default_cache_size() == 4096

    def test_parallel_invalid_jobs_still_warns(self, monkeypatch):
        from repro.parallel import resolve_jobs

        monkeypatch.setenv("REPRO_JOBS", "banana")
        with pytest.warns(RuntimeWarning, match="banana"):
            resolve_jobs(0)

    def test_sharedmem_flag(self, monkeypatch):
        from repro.sharedmem import shm_enabled

        monkeypatch.setenv("REPRO_SHM", "off")
        assert shm_enabled() is False
        monkeypatch.delenv("REPRO_SHM", raising=False)
        assert shm_enabled() is True
