"""CLI tests for --trace exporting and `repro trace summarize`."""

from __future__ import annotations

import json

import pytest

from repro import observability
from repro.cli import main


@pytest.fixture(autouse=True)
def obs_sandbox():
    """Save/restore process trace state around every CLI invocation."""
    s = observability.OBS
    saved = (
        s.enabled, s.events, s.dropped_events, s.stack,
        s.span_totals, s.counters, s.gauges, s.origin,
    )
    yield
    (
        s.enabled, s.events, s.dropped_events, s.stack,
        s.span_totals, s.counters, s.gauges, s.origin,
    ) = saved


class TestTraceFlag:
    def test_pairing_writes_trace(self, tmp_path, capsys):
        trace = tmp_path / "pairing.jsonl"
        code = main(
            ["pairing", "2", "1", "1", "1", "--rounds", "1",
             "--trace", str(trace)]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "trace:" in err and str(trace) in err
        assert trace.exists()
        records = [
            json.loads(line)
            for line in trace.read_text().splitlines()
        ]
        types = {r["type"] for r in records}
        assert {"meta", "span_total", "counter"} <= types
        counters = {
            r["name"] for r in records if r["type"] == "counter"
        }
        assert "pairing.runs" in counters

    def test_trace_flag_does_not_leak_enabled_state(self, tmp_path):
        was_enabled = observability.enabled()
        trace = tmp_path / "t.jsonl"
        assert main(
            ["pairing", "1", "1", "1", "1", "--rounds", "1",
             "--trace", str(trace)]
        ) == 0
        assert observability.enabled() == was_enabled

    def test_env_knob_writes_trace(self, tmp_path, monkeypatch, capsys):
        trace = tmp_path / "env.jsonl"
        monkeypatch.setenv("REPRO_TRACE", str(trace))
        observability.configure_from_env()
        try:
            assert main(
                ["pairing", "1", "1", "1", "1", "--rounds", "1"]
            ) == 0
        finally:
            observability.disable()
            observability.reset()
        assert trace.exists()


class TestTraceSummarize:
    def test_summarize_renders_tables(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        assert main(
            ["pairing", "2", "1", "1", "1", "--rounds", "1",
             "--trace", str(trace)]
        ) == 0
        capsys.readouterr()
        assert main(["trace", "summarize", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "experiment.pairing.run" in out
        assert "pairing.runs" in out
        assert "span" in out and "counter" in out

    def test_missing_file_exit_2(self, tmp_path, capsys):
        assert main(
            ["trace", "summarize", str(tmp_path / "absent.jsonl")]
        ) == 2
        assert "error" in capsys.readouterr().err

    def test_garbage_file_exit_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("this is not a trace\n")
        assert main(["trace", "summarize", str(bad)]) == 2
        assert "error" in capsys.readouterr().err
