"""Unit tests for the bounded memoization layer."""

from __future__ import annotations

import pytest

from repro.caching import (
    BoundedMemo,
    cache_stats,
    clear_all_caches,
    default_cache_size,
    memoized,
)


class TestBoundedMemo:
    def test_hit_and_miss_accounting(self):
        memo = BoundedMemo(maxsize=4, name="t")
        assert memo.get_or_compute("a", lambda: 1) == 1
        assert memo.get_or_compute("a", lambda: 2) == 1  # cached
        info = memo.info()
        assert (info.hits, info.misses, info.size) == (1, 1, 1)
        assert info.hit_rate == pytest.approx(0.5)

    def test_lru_eviction_bounds_size(self):
        memo = BoundedMemo(maxsize=3, name="t")
        for k in range(10):
            memo.get_or_compute(k, lambda k=k: k)
        assert len(memo) == 3
        # Oldest entries evicted, newest retained.
        assert 9 in memo and 8 in memo and 7 in memo
        assert 0 not in memo

    def test_access_refreshes_recency(self):
        memo = BoundedMemo(maxsize=2, name="t")
        memo.get_or_compute("a", lambda: 1)
        memo.get_or_compute("b", lambda: 2)
        memo.get_or_compute("a", lambda: 0)  # refresh "a"
        memo.get_or_compute("c", lambda: 3)  # evicts "b", not "a"
        assert "a" in memo and "c" in memo and "b" not in memo

    def test_clear_resets_counters(self):
        memo = BoundedMemo(maxsize=2, name="t")
        memo.get_or_compute("a", lambda: 1)
        memo.clear()
        info = memo.info()
        assert (info.hits, info.misses, len(memo)) == (0, 0, 0)

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            BoundedMemo(maxsize=0)


class TestMemoizedDecorator:
    def test_caches_by_args(self):
        calls = []

        @memoized(maxsize=8)
        def f(x, y=1):
            calls.append((x, y))
            return x + y

        assert f(1) == 2
        assert f(1) == 2
        assert f(1, y=2) == 3
        assert calls == [(1, 1), (1, 2)]
        info = f.cache_info()
        assert info.hits == 1 and info.misses == 2

    def test_custom_key_canonicalizes(self):
        calls = []

        @memoized(maxsize=8, key=lambda dims: tuple(sorted(dims)))
        def g(dims):
            calls.append(tuple(dims))
            return sum(dims)

        assert g((3, 1, 2)) == 6
        assert g((1, 2, 3)) == 6  # same canonical key: no recompute
        assert len(calls) == 1

    def test_cache_clear(self):
        @memoized(maxsize=4)
        def h(x):
            return object()

        first = h(1)
        assert h(1) is first
        h.cache_clear()
        assert h(1) is not first

    def test_bounded(self):
        @memoized(maxsize=2)
        def f(x):
            return x

        for i in range(10):
            f(i)
        assert f.cache_info().size == 2


class TestRegistry:
    def test_production_memos_registered(self):
        # Import the hot-path modules so their memos exist.
        import repro.allocation.enumeration  # noqa: F401
        import repro.allocation.optimizer  # noqa: F401
        import repro.isoperimetry.cuboids  # noqa: F401
        import repro.machines.bgq  # noqa: F401

        names = set(cache_stats())
        expected = {
            "repro.machines.bgq._bisection_of_node_dims",
            "repro.allocation.enumeration._enumerate_for_dims",
            "repro.allocation.enumeration._achievable_for_dims",
            "repro.allocation.optimizer._geometry_extremes",
            "repro.isoperimetry.cuboids._cuboid_extremes",
        }
        assert expected <= names

    def test_clear_all_caches(self):
        from repro.machines.bgq import normalized_bisection_bandwidth

        normalized_bisection_bandwidth((2, 2, 1, 1))
        clear_all_caches()
        for info in cache_stats().values():
            assert info.size == 0 and info.hits == 0 and info.misses == 0

    def test_cached_values_match_fresh_computation(self):
        from repro.machines.bgq import normalized_bisection_bandwidth

        clear_all_caches()
        cold = normalized_bisection_bandwidth((4, 3, 2, 1))
        warm = normalized_bisection_bandwidth((4, 3, 2, 1))
        assert cold == warm == 256 * 24 // 4


@memoized(maxsize=64)
def _expensive_identity(x):
    return x


def _memo_task(x):
    # Repeating keys (x % 3) guarantee hits inside each worker process.
    return _expensive_identity(x % 3)


class TestWorkerStatsMerge:
    def test_jobs2_sweep_counts_visible_in_cache_stats(self):
        """Regression: cache_stats() was all-zero after a jobs>1 sweep.

        Worker-side hit/miss counters must merge back into the parent
        registry once the sweep completes, so ``hits + misses`` equals
        the number of memoized lookups regardless of where they ran.
        """
        from repro.parallel import sweep_map

        _expensive_identity.cache_clear()
        n_tasks = 12
        results = sweep_map(_memo_task, list(range(n_tasks)), jobs=2)
        assert results == [x % 3 for x in range(n_tasks)]
        info = cache_stats()[_expensive_identity.cache.name]
        assert info.hits + info.misses == n_tasks
        assert info.hits > 0

    def test_merge_and_reset_counters(self):
        memo = BoundedMemo(maxsize=4, name="merge-t")
        memo.get_or_compute("a", lambda: 1)
        memo.get_or_compute("a", lambda: 1)
        memo.merge_counts(5, 7)
        info = memo.info()
        assert (info.hits, info.misses) == (6, 8)
        memo.reset_counters()
        info = memo.info()
        assert (info.hits, info.misses) == (0, 0)
        assert "a" in memo  # data survives a counter reset

    def test_merge_rejects_negative(self):
        memo = BoundedMemo(maxsize=4, name="merge-neg")
        with pytest.raises(ValueError):
            memo.merge_counts(-1, 0)


class TestDefaultSize:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_SIZE", "17")
        assert default_cache_size() == 17

    def test_invalid_env_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_SIZE", "lots")
        assert default_cache_size() == 4096
        monkeypatch.setenv("REPRO_CACHE_SIZE", "-3")
        assert default_cache_size() == 4096

    def test_unset_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_SIZE", raising=False)
        assert default_cache_size() == 4096
