"""Unit tests for the fault-injection value types and generators."""

from __future__ import annotations

import pytest

from repro.faults import (
    FaultEvent,
    FaultSet,
    PartitionDisconnectedError,
    dimension_outage,
    midplane_drain,
    random_degradations,
    random_link_failures,
    surviving_topology,
)
from repro.topology import Torus
from repro.topology.base import is_connected_subset


class TestFaultSet:
    def test_empty(self):
        f = FaultSet()
        assert f.is_empty()
        assert not f
        assert f.capacity_factor((0,), (1,)) == 1.0
        assert not f.blocks((0,), (1,))

    def test_undirected_mirroring(self):
        f = FaultSet(failed_links=[((0,), (1,))])
        assert f.is_failed_link((0,), (1,))
        assert f.is_failed_link((1,), (0,))
        assert f.capacity_factor((1,), (0,)) == 0.0

    def test_directed_failure(self):
        f = FaultSet(failed_links=[((0,), (1,))], undirected=False)
        assert f.is_failed_link((0,), (1,))
        assert not f.is_failed_link((1,), (0,))

    def test_failed_node_blocks_incident_links(self):
        f = FaultSet(failed_nodes=[(1,)])
        assert f.blocks((0,), (1,))
        assert f.blocks((1,), (2,))
        assert not f.blocks((2,), (3,))
        assert f.capacity_factor((0,), (1,)) == 0.0

    def test_degradation_factor(self):
        f = FaultSet(degraded_links={((0,), (1,)): 0.25})
        assert f.capacity_factor((0,), (1,)) == 0.25
        assert f.capacity_factor((1,), (0,)) == 0.25
        assert not f.blocks((0,), (1,))

    def test_degradation_factor_validated(self):
        with pytest.raises(ValueError):
            FaultSet(degraded_links={((0,), (1,)): 0.0})
        with pytest.raises(ValueError):
            FaultSet(degraded_links={((0,), (1,)): 1.0})

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            FaultSet(failed_links=[((0,), (0,))])

    def test_failed_beats_degraded(self):
        f = FaultSet(
            failed_links=[((0,), (1,))],
            degraded_links={((0,), (1,)): 0.5},
        )
        assert f.capacity_factor((0,), (1,)) == 0.0
        assert ((0,), (1,)) not in f.degraded_links

    def test_union(self):
        a = FaultSet(failed_links=[((0,), (1,))])
        b = FaultSet(
            failed_nodes=[(5,)],
            degraded_links={((2,), (3,)): 0.5},
        )
        u = a | b
        assert u.is_failed_link((1,), (0,))
        assert u.is_failed_node((5,))
        assert u.capacity_factor((2,), (3,)) == 0.5

    def test_union_degradations_multiply(self):
        a = FaultSet(degraded_links={((0,), (1,)): 0.5})
        b = FaultSet(degraded_links={((0,), (1,)): 0.5})
        assert (a | b).capacity_factor((0,), (1,)) == 0.25

    def test_equality_and_hash(self):
        a = FaultSet(failed_links=[((0,), (1,))])
        b = FaultSet(failed_links=[((1,), (0,))])
        assert a == b
        assert hash(a) == hash(b)
        assert a != FaultSet()

    def test_repr(self):
        f = FaultSet(failed_links=[((0,), (1,))], failed_nodes=[(2,)])
        assert "links=2" in repr(f)
        assert "nodes=1" in repr(f)


class TestFaultEvent:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(time=-1.0, faults=FaultSet())

    def test_zero_time_ok(self):
        assert FaultEvent(time=0.0, faults=FaultSet()).time == 0.0


class TestGenerators:
    def test_random_link_failures_deterministic(self):
        t = Torus((4, 4))
        a = random_link_failures(t, 3, seed=42)
        b = random_link_failures(t, 3, seed=42)
        assert a == b
        assert a != random_link_failures(t, 3, seed=43)
        # 3 undirected failures = 6 directed links.
        assert len(a.failed_links) == 6

    def test_random_link_failures_bounds(self):
        t = Torus((3,))
        with pytest.raises(ValueError):
            random_link_failures(t, 99)
        assert random_link_failures(t, 0).is_empty()

    def test_dimension_outage_is_one_plane(self):
        t = Torus((4, 4))
        f = dimension_outage(t, 0, seed=0)
        # One cross-section plane of dim 0: 4 undirected links.
        assert len(f.failed_links) == 8
        # All failed links step in dimension 0.
        for (u, v) in f.failed_links:
            assert u[1] == v[1] and u[0] != v[0]

    def test_dimension_outage_validates(self):
        t = Torus((4, 1))
        with pytest.raises(ValueError):
            dimension_outage(t, 1)
        with pytest.raises(ValueError):
            dimension_outage(t, 5)
        with pytest.raises(ValueError):
            dimension_outage(t, 0, fraction=0.0)

    def test_midplane_drain(self):
        t = Torus((4, 3))
        f = midplane_drain(t, 0, 2)
        assert len(f.failed_nodes) == 3
        assert all(v[0] == 2 for v in f.failed_nodes)
        with pytest.raises(ValueError):
            midplane_drain(t, 0, 9)

    def test_random_degradations(self):
        t = Torus((4, 4))
        f = random_degradations(t, 2, factor=0.5, seed=1)
        assert len(f.degraded_links) == 4  # 2 undirected = 4 directed
        assert set(f.degraded_links.values()) == {0.5}
        with pytest.raises(ValueError):
            random_degradations(t, 1, factor=1.5)


class TestSurvivingTopology:
    def test_empty_faults_is_identity(self):
        t = Torus((4,))
        assert surviving_topology(t, FaultSet()) is t

    def test_failed_link_removed_both_ways(self):
        t = Torus((4,))
        view = surviving_topology(
            t, FaultSet(failed_links=[((0,), (1,))])
        )
        assert (1,) not in {v for v, _ in view.neighbors((0,))}
        assert (0,) not in {v for v, _ in view.neighbors((1,))}
        assert (3,) in {v for v, _ in view.neighbors((0,))}

    def test_failed_node_removed(self):
        t = Torus((4,))
        view = surviving_topology(t, FaultSet(failed_nodes=[(2,)]))
        assert view.num_vertices == 3
        assert not view.contains((2,))
        assert (2,) not in {v for v, _ in view.neighbors((1,))}

    def test_degraded_links_stay(self):
        t = Torus((4,))
        view = surviving_topology(
            t, FaultSet(degraded_links={((0,), (1,)): 0.5})
        )
        assert (1,) in {v for v, _ in view.neighbors((0,))}

    def test_outage_keeps_torus_connected(self):
        t = Torus((4, 4))
        view = surviving_topology(t, dimension_outage(t, 0, seed=5))
        assert is_connected_subset(view, view.vertices())


class TestPartitionDisconnectedError:
    def test_names_endpoints_and_links(self):
        f = FaultSet(failed_links=[((0,), (1,))])
        err = PartitionDisconnectedError((0,), (4,), f)
        msg = str(err)
        assert "(0,)" in msg and "(4,)" in msg
        assert "failed links" in msg
        assert err.src == (0,) and err.dst == (4,)
        assert err.report is None

    def test_names_nodes_when_no_links(self):
        f = FaultSet(failed_nodes=[(3,)])
        err = PartitionDisconnectedError((0,), (3,), f)
        assert "failed nodes" in str(err)


class TestFaultSetRestore:
    def test_restore_failed_link_both_directions(self):
        f = FaultSet(failed_links=[((0,), (1,)), ((2,), (3,))])
        r = f.restore(links=[((0,), (1,))])
        assert not r.is_failed_link((0,), (1,))
        assert not r.is_failed_link((1,), (0,))
        assert r.is_failed_link((2,), (3,))

    def test_restore_reverse_orientation(self):
        f = FaultSet(failed_links=[((0,), (1,))])
        assert f.restore(links=[((1,), (0,))]).is_empty()

    def test_restore_failed_node(self):
        f = FaultSet(failed_nodes=[(1,), (2,)])
        r = f.restore(nodes=[(1,)])
        assert not r.blocks((0,), (1,))
        assert r.blocks((2,), (3,))

    def test_restore_everything_yields_empty_set(self):
        f = FaultSet(failed_links=[((0,), (1,))], failed_nodes=[(5,)])
        r = f.restore(links=[((0,), (1,))], nodes=[(5,)])
        assert r.is_empty()
        assert not r

    def test_restore_preserves_degradations(self):
        f = FaultSet(
            failed_links=[((0,), (1,))],
            degraded_links={((2,), (3,)): 0.5},
        )
        r = f.restore(links=[((0,), (1,))])
        assert r.capacity_factor((2,), (3,)) == 0.5

    def test_restore_never_failed_link_rejected(self):
        f = FaultSet(failed_links=[((0,), (1,))])
        with pytest.raises(ValueError, match="not failed"):
            f.restore(links=[((4,), (5,))])

    def test_restore_never_failed_node_rejected(self):
        with pytest.raises(ValueError, match="not failed"):
            FaultSet(failed_nodes=[(1,)]).restore(nodes=[(9,)])

    def test_directed_restore_of_undirected_failure_rejected(self):
        # An undirected failure stores both directions; restoring only
        # one direction of a purely directed failure must not succeed
        # against the opposite direction.
        f = FaultSet(failed_links=[((0,), (1,))], undirected=False)
        with pytest.raises(ValueError, match="not failed"):
            f.restore(links=[((1,), (0,))], undirected=False)

    def test_restore_does_not_mutate_original(self):
        f = FaultSet(failed_links=[((0,), (1,))])
        f.restore(links=[((0,), (1,))])
        assert f.is_failed_link((0,), (1,))


class TestRepairEvent:
    def test_fields_coerced_to_tuples(self):
        from repro.faults import RepairEvent

        ev = RepairEvent(time=1.0, links=[((0,), (1,))], nodes=[(2,)])
        assert ev.links == (((0,), (1,)),)
        assert ev.nodes == ((2,),)
        assert ev.undirected

    def test_negative_time_rejected(self):
        from repro.faults import RepairEvent

        with pytest.raises(ValueError):
            RepairEvent(time=-0.5, links=[((0,), (1,))])

    def test_empty_repair_rejected(self):
        from repro.faults import RepairEvent

        with pytest.raises(ValueError):
            RepairEvent(time=1.0)


class TestDegradedResult:
    def test_carries_witness_and_faults(self):
        from repro.faults import DegradedResult

        faults = FaultSet(failed_links=[((0,), (1,))])
        d = DegradedResult(
            scenario=(3, 1),
            faults=faults,
            witness=((0,), (4,)),
            disconnected_flows=2,
        )
        assert d.scenario == (3, 1)
        assert d.faults is faults
        assert d.witness == ((0,), (4,))
        assert d.disconnected_flows == 2

    def test_default_single_flow(self):
        from repro.faults import DegradedResult

        d = DegradedResult(
            scenario=(1, 0), faults=FaultSet(), witness=((0,), (1,))
        )
        assert d.disconnected_flows == 1
