"""Unit tests for the shared validation helpers."""

from __future__ import annotations

import pytest

from repro._validation import (
    as_sorted_desc,
    check_dims,
    check_nonnegative_int,
    check_positive_float,
    check_positive_int,
    check_probability,
    check_subset_size,
    require,
)


class TestRequire:
    def test_passes(self):
        require(True, "never")

    def test_raises(self):
        with pytest.raises(ValueError, match="boom"):
            require(False, "boom")


class TestIntChecks:
    def test_positive_ok(self):
        assert check_positive_int(3, "x") == 3

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            check_positive_int(0, "x")

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            check_positive_int(True, "x")

    def test_float_rejected(self):
        with pytest.raises(TypeError):
            check_positive_int(3.0, "x")

    def test_nonnegative_allows_zero(self):
        assert check_nonnegative_int(0, "x") == 0
        with pytest.raises(ValueError):
            check_nonnegative_int(-1, "x")


class TestDims:
    def test_tuple_returned(self):
        assert check_dims([4, 3, 2]) == (4, 3, 2)

    def test_string_rejected(self):
        with pytest.raises(TypeError):
            check_dims("432")

    def test_min_len(self):
        with pytest.raises(ValueError):
            check_dims([], min_len=1)
        assert check_dims([2], min_len=1) == (2,)

    def test_member_validation(self):
        with pytest.raises(ValueError):
            check_dims([4, 0])
        with pytest.raises(TypeError):
            check_dims([4, "2"])


class TestFloatChecks:
    def test_positive_ok(self):
        assert check_positive_float(2.5, "x") == 2.5
        assert check_positive_float(3, "x") == 3.0

    def test_rejects_zero_nan_inf(self):
        for bad in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(ValueError):
                check_positive_float(bad, "x")

    def test_rejects_bool_and_str(self):
        with pytest.raises(TypeError):
            check_positive_float(True, "x")
        with pytest.raises(TypeError):
            check_positive_float("fast", "x")

    def test_probability_range(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0
        with pytest.raises(ValueError):
            check_probability(1.01, "p")


class TestSubsetSize:
    def test_ok(self):
        assert check_subset_size(3, 10) == 3

    def test_exceeds(self):
        with pytest.raises(ValueError):
            check_subset_size(11, 10)


class TestSortedDesc:
    def test_sorts(self):
        assert as_sorted_desc([1, 3, 2]) == (3, 2, 1)
